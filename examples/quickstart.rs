//! Quickstart: plan a Combo placement, build it, attack it, and compare
//! with random placement.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use worst_case_placement::prelude::*;

fn main() -> Result<(), PlacementError> {
    // A small data-center slice: 71 nodes, 2400 objects, 3-way
    // replication (HDFS/GFS-style). An object becomes unavailable once 2
    // of its 3 replicas are down; we plan for 4 simultaneous node
    // failures.
    let params = SystemParams::new(71, 2400, 3, 2, 4)?;
    println!(
        "system: n={} b={} r={} s={} k={}",
        params.n(),
        params.b(),
        params.r(),
        params.s(),
        params.k()
    );

    // Plan: the DP picks how to split objects across Simple(x, λ) packings.
    let combo = ComboStrategy::plan_constructive(&params, &RegistryConfig::default())?;
    println!("\nCombo plan (λ_x per overlap bound x):");
    for (x, (lam, objs)) in combo
        .plan()
        .lambdas
        .iter()
        .zip(&combo.plan().objects)
        .enumerate()
    {
        let spec = combo.profile().spec(x as u16);
        println!("  x={x}: λ={lam}, objects={objs}  [{}]", spec.provenance);
    }
    println!("guaranteed availability ≥ {}", combo.lower_bound());

    // Build the actual placement and attack it.
    let placement = combo.build(&params)?;
    let adversary = AdversaryConfig::default();
    let (avail, wc) = availability(&placement, params.s(), params.k(), &adversary);
    println!(
        "\nworst {} failures found by adversary (exact={}): kill {} objects → {} survive",
        params.k(),
        wc.exact,
        wc.failed,
        avail
    );
    assert!(avail >= combo.lower_bound(), "the paper's bound must hold");

    // Compare with load-balanced random placement under the same attack.
    let random = RandomStrategy::new(42, RandomVariant::LoadBalanced).place(&params)?;
    let (avail_rnd, wc_rnd) = availability(&random, params.s(), params.k(), &adversary);
    println!(
        "random placement under its own worst attack (exact={}): {} survive",
        wc_rnd.exact, avail_rnd
    );

    println!(
        "\ncombo preserved {} more objects than random in the worst case",
        avail as i64 - avail_rnd as i64
    );
    Ok(())
}
