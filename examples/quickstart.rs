//! Quickstart: drive the full plan → build → attack → report pipeline
//! through the `Engine` facade and compare Combo against Random.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use worst_case_placement::prelude::*;

fn main() -> Result<(), PlacementError> {
    // A small data-center slice: 71 nodes, 2400 objects, 3-way
    // replication (HDFS/GFS-style). An object becomes unavailable once 2
    // of its 3 replicas are down; we plan for 4 simultaneous node
    // failures.
    let params = SystemParams::new(71, 2400, 3, 2, 4)?;
    println!(
        "system: n={} b={} r={} s={} k={}",
        params.n(),
        params.b(),
        params.r(),
        params.s(),
        params.k()
    );

    // One engine, any strategy: the exact branch-and-bound adversary
    // (with heuristic fallback) attacks whatever the strategy builds.
    let engine = Engine::with_attacker(params, AdversaryConfig::default());

    let combo = engine.evaluate(&StrategyKind::Combo)?;
    println!(
        "\n{}: guaranteed ≥ {}, measured {} (exact={}, worst nodes {:?})",
        combo.strategy, combo.lower_bound, combo.measured_availability, combo.exact, combo.witness
    );
    println!(
        "  loads: min {} / mean {:.1} / max {} replicas per node",
        combo.load_stats.min, combo.load_stats.mean, combo.load_stats.max
    );
    println!(
        "  cost: plan {:.1} ms, build {:.1} ms, attack {:.1} ms",
        combo.timings.plan_ns as f64 / 1e6,
        combo.timings.build_ns as f64 / 1e6,
        combo.timings.attack_ns as f64 / 1e6
    );
    assert!(
        combo.measured_availability as i64 >= combo.lower_bound,
        "the paper's bound must hold"
    );

    // Compare with load-balanced random placement under the same attack.
    let random = engine.evaluate(&StrategyKind::Random {
        seed: 42,
        variant: RandomVariant::LoadBalanced,
    })?;
    println!(
        "\n{}: measured {} under its own worst attack (exact={})",
        random.strategy, random.measured_availability, random.exact
    );

    println!(
        "\ncombo preserved {} more objects than random in the worst case",
        combo.measured_availability as i64 - random.measured_availability as i64
    );

    // Every report serializes for downstream tooling.
    println!("\ncombo report as JSON:\n{}", combo.to_json());
    Ok(())
}
