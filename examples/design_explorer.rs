//! Design explorer: inspect what the combinatorial substrate can build
//! for a given system size — the same information the paper's Fig. 4 and
//! Sec. III-C parameter-selection study convey.
//!
//! Run with (defaults shown):
//!
//! ```sh
//! cargo run --release --example design_explorer -- 71 5
//! ```

use worst_case_placement::designs::chunking::{best_chunking, ideal_capacity};
use worst_case_placement::designs::registry::{best_unit_packing, RegistryConfig};
use worst_case_placement::designs::{catalog, verify};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(71);
    let r: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    assert!((2..=5).contains(&r), "the paper's scope is 2 ≤ r ≤ 5");

    println!("=== constructible packings for n = {n}, r = {r} ===\n");
    let config = RegistryConfig::default();
    for x in 1..r {
        let t = x + 1;
        match best_unit_packing(t, r, n, 5_000, &config) {
            Some(unit) => {
                // Materialize a few hundred blocks and verify the packing
                // property end-to-end.
                let design = unit.materialize(500).expect("registry units materialize");
                assert!(
                    verify::is_t_packing(&design, t, 1),
                    "registry delivered a non-packing?!"
                );
                println!(
                    "x = {x}: {t}-({}, {r}, 1) packing, capacity {}{}\n         {}",
                    unit.v(),
                    unit.capacity(),
                    if unit.is_maximal() { " (maximum)" } else { "" },
                    unit.provenance()
                );
            }
            None => println!("x = {x}: nothing constructible"),
        }
    }

    println!("\n=== Observation-2 chunking (t = 2), Steiner sizes only ===\n");
    let sizes = catalog::steiner_sizes(2, r, r, n);
    let plan = best_chunking(n, r, 2, 3, &sizes, 1);
    println!(
        "admissible Steiner sizes ≤ {n}: {:?}\nbest ≤3-chunk plan: {:?} → capacity {} (ideal {})",
        sizes,
        plan.sizes,
        plan.capacity,
        ideal_capacity(2, r, n, 1),
    );
}
