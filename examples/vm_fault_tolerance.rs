//! VM fault tolerance: primary/backup pairs (`r = 2`), the scenario the
//! paper's introduction motivates with VMware FT.
//!
//! Each "object" is a VM whose two replicas (primary + hot standby) must
//! not *both* be lost (`s = r = 2`). The question: across a rack of 71
//! hosts, how should the pairs be spread so a targeted k-host outage
//! strands as few VMs as possible?
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example vm_fault_tolerance
//! ```

use worst_case_placement::prelude::*;

fn main() -> Result<(), PlacementError> {
    let n = 71u16;

    println!("VM pairs on {n} hosts; a VM dies only if BOTH replicas die (s = r = 2)\n");
    println!(
        "{:>6} {:>4} {:>16} {:>16} {:>14}",
        "VMs", "k", "combo surviving", "random surviving", "combo bound"
    );
    for (b, k) in [(600u64, 2u16), (1200, 3), (2400, 4)] {
        let params = SystemParams::new(n, b, 2, 2, k)?;
        let engine = Engine::with_attacker(params, AdversaryConfig::default());

        // Combo placement: with r = 2 and s = 2 the x = 1 slot is the
        // "all distinct pairs" design — no two VMs share both hosts until
        // capacity forces λ up.
        let combo = engine.evaluate(&StrategyKind::Combo)?;

        // The usual practice: random placement with a load cap.
        let random = engine.evaluate(&StrategyKind::Random {
            seed: 7,
            variant: RandomVariant::LoadBalanced,
        })?;

        println!(
            "{:>6} {:>4} {:>16} {:>16} {:>14}",
            b, k, combo.measured_availability, random.measured_availability, combo.lower_bound
        );
        assert!(combo.measured_availability as i64 >= combo.lower_bound);
    }

    println!(
        "\nWith pairs kept distinct (a 2-(71,2,λ) packing), killing k hosts fells at\n\
         most λ·C(k,2) VMs — the worst case is capped by design, while random\n\
         placement concentrates more pairs on unlucky host sets."
    );
    Ok(())
}
