//! Distributed file system blocks: GFS/HDFS-style 3-way replication where
//! a block stays readable while *any* replica survives (`s = r = 3`),
//! attacked by an informed adversary.
//!
//! Also shows the flip side the paper stresses: the same placement logic
//! with quorum objects (`s = 2`, majority of 3 lost ⇒ object down) trades
//! away the advantage — placement strategy must match the failure
//! semantics.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example distributed_fs
//! ```

use worst_case_placement::prelude::*;

fn main() -> Result<(), PlacementError> {
    let n = 257u16;
    let b = 4800u64;
    let r = 3u16;

    println!("{b} file blocks, {r} replicas each, on {n} chunkservers\n");
    for (label, s) in [
        ("read-anywhere (s = 3: all replicas must die)", 3u16),
        ("majority quorum (s = 2)", 2),
    ] {
        println!("--- {label} ---");
        println!(
            "{:>4} {:>18} {:>18} {:>12}",
            "k", "combo surviving", "random surviving", "combo bound"
        );
        for k in [4u16, 6, 8] {
            let params = SystemParams::new(n, b, r, s, k)?;
            let engine = Engine::with_attacker(params, AdversaryConfig::default());
            let combo = engine.evaluate(&StrategyKind::Combo)?;
            let random = engine.evaluate(&StrategyKind::Random {
                seed: 11,
                variant: RandomVariant::LoadBalanced,
            })?;
            println!(
                "{:>4} {:>18} {:>18} {:>12}",
                k, combo.measured_availability, random.measured_availability, combo.lower_bound
            );
            assert!(combo.measured_availability as i64 >= combo.lower_bound);
        }
        println!();
    }

    println!(
        "At s = r every surviving replica keeps a block alive, so the adversary\n\
         must capture whole replica sets — packings make that maximally hard.\n\
         Under majority quorums (s = 2) the adversary only needs 2 of 3 replicas,\n\
         and the safe choice of placement changes with it (compare the bounds)."
    );
    Ok(())
}
