//! Adaptive placement under churn: objects come and go, the placer keeps
//! the worst-case guarantee live — the extension the paper leaves as
//! future work (Sec. IV-D).
//!
//! The churn itself goes through the stateful `AdaptivePlacer`; the final
//! audit freezes the live population into an `AdaptiveSnapshot` and runs
//! it through the `Engine` pipeline like any other strategy.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example adaptive_cluster
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use worst_case_placement::core::adaptive::AdaptivePlacer;
use worst_case_placement::prelude::*;

fn main() -> Result<(), PlacementError> {
    let params = SystemParams::new(71, 1500, 3, 2, 4)?;
    let mut placer = AdaptivePlacer::new(&params, &RegistryConfig::default(), 0.05)?;
    let mut rng = StdRng::seed_from_u64(2015);
    let mut live: Vec<u64> = Vec::new();

    println!("churn simulation on n=71, r=3, s=2, planned for k=4\n");
    println!(
        "{:>6} {:>6} {:>14} {:>12} {:>10}",
        "step", "live", "lambdas", "live bound", "replan?"
    );

    for step in 0..=5000u32 {
        // 60% adds until warm, then balanced churn.
        let warm = live.len() >= 1000;
        let add = live.is_empty() || rng.gen_bool(if warm { 0.5 } else { 0.8 });
        if add {
            live.push(placer.add_object()?);
        } else {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            placer.remove_object(id)?;
        }
        if step % 1000 == 0 {
            println!(
                "{:>6} {:>6} {:>14} {:>12} {:>10}",
                step,
                placer.len(),
                format!("{:?}", placer.lambdas()),
                placer.lower_bound(),
                placer.needs_replan()?
            );
        }
    }

    // The live guarantee must hold against a real adversary: freeze the
    // population and push it through the same pipeline as every other
    // strategy. The engine evaluates the *live* object count.
    let live_count = placer.len() as u64;
    let snapshot = AdaptiveSnapshot::from_placer(placer);
    let engine = Engine::with_attacker(params.with_b(live_count)?, AdversaryConfig::default());
    let report = engine.evaluate_strategy(&snapshot)?;
    println!(
        "\nfinal: {live_count} live objects; adversary (exact={}) leaves {} ≥ bound {}",
        report.exact, report.measured_availability, report.lower_bound
    );
    assert!(report.measured_availability as i64 >= report.lower_bound);
    Ok(())
}
