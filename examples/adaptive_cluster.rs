//! Adaptive placement under churn: objects come and go, the placer keeps
//! the worst-case guarantee live — the extension the paper leaves as
//! future work (Sec. IV-D).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example adaptive_cluster
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use worst_case_placement::core::adaptive::AdaptivePlacer;
use worst_case_placement::prelude::*;

fn main() -> Result<(), PlacementError> {
    let params = SystemParams::new(71, 1500, 3, 2, 4)?;
    let mut placer = AdaptivePlacer::new(&params, &RegistryConfig::default(), 0.05)?;
    let mut rng = StdRng::seed_from_u64(2015);
    let mut live: Vec<u64> = Vec::new();
    let adversary = AdversaryConfig::default();

    println!("churn simulation on n=71, r=3, s=2, planned for k=4\n");
    println!(
        "{:>6} {:>6} {:>14} {:>12} {:>10}",
        "step", "live", "lambdas", "live bound", "replan?"
    );

    for step in 0..=5000u32 {
        // 60% adds until warm, then balanced churn.
        let warm = live.len() >= 1000;
        let add = live.is_empty() || rng.gen_bool(if warm { 0.5 } else { 0.8 });
        if add {
            live.push(placer.add_object()?);
        } else {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            placer.remove_object(id)?;
        }
        if step % 1000 == 0 {
            println!(
                "{:>6} {:>6} {:>14} {:>12} {:>10}",
                step,
                placer.len(),
                format!("{:?}", placer.lambdas()),
                placer.lower_bound(),
                placer.needs_replan()?
            );
        }
    }

    // The live guarantee must hold against a real adversary.
    let placement = placer.snapshot()?;
    let (avail, wc) = availability(&placement, 2, 4, &adversary);
    println!(
        "\nfinal: {} live objects; adversary (exact={}) leaves {} ≥ bound {}",
        placer.len(),
        wc.exact,
        avail,
        placer.lower_bound()
    );
    assert!(avail as i64 >= placer.lower_bound());
    Ok(())
}
