//! # worst-case-placement
//!
//! A from-scratch Rust implementation of **"Replica Placement for
//! Availability in the Worst Case"** (Li, Gao & Reiter, ICDCS 2015): place
//! `b` objects, each replicated on `r` of `n` nodes, so that an adversary
//! who knows the placement and fails the worst `k` nodes kills as few
//! objects as possible (an object dies once `s` of its replicas do).
//!
//! The headline idea: build placements from *t-packings* — block designs
//! in which no `x+1` nodes jointly host more than `λ` objects — instead
//! of placing replicas randomly. This library implements the paper's
//! whole stack:
//!
//! * [`core`] — the `Simple(x, λ)` and `Combo(⟨λ_x⟩)` strategies, the
//!   availability-maximizing dynamic program, load-balanced random
//!   placement, the Lemma-1/2/3 capacity and availability bounds, the
//!   unified `PlacementStrategy` trait every family implements, the
//!   `Engine` facade running plan → build → attack → report in one call,
//!   the `dynamic` subsystem maintaining a live placement across
//!   cluster churn by incremental repair, and the `topology` module's
//!   hierarchical failure domains (zone → rack → node trees) with
//!   topology-aware spread/repair strategies;
//! * [`designs`] — every design family the strategies need, built from
//!   scratch (Steiner triple systems, finite-geometry line designs,
//!   Hermitian unitals, Boolean/doubled quadruple systems, Möbius subline
//!   designs, greedy packings), plus the existence catalog, chunk
//!   decomposition and a provenance-carrying registry;
//! * [`gf`] — finite fields `GF(p^k)` and the projective/affine
//!   geometries behind the constructions;
//! * [`adversary`] — exact branch-and-bound and local-search worst-case
//!   failure search (Definition 1 made executable), at node granularity
//!   and over whole failure domains (the budget spent on racks/zones);
//! * [`analysis`] — the closed forms: c-competitiveness (Theorem 1),
//!   the worst-case vulnerability of random placement (Theorem 2,
//!   Definitions 5–6) and the `s = 1` bound (Lemma 4);
//! * [`combin`] / [`sim`] — combinatorics and experiment substrates;
//! * [`service`] — the serving layer: epoch-snapshotted placements
//!   behind the `PlacementProvider` trait, published by a repair thread
//!   that batches churn into `DynamicEngine` repairs.
//!
//! The `wcp-experiments` crate regenerates every table and figure of the
//! paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured
//! record.
//!
//! ## Example: the Engine facade
//!
//! ```
//! use worst_case_placement::prelude::*;
//!
//! // 71 nodes, 1200 objects, 3-way replication, objects die at 2 replica
//! // losses; plan for 3 simultaneous node failures. The engine plans the
//! // strategy, builds the placement, attacks it with the exact
//! // branch-and-bound adversary, and reports everything in one record.
//! let params = SystemParams::new(71, 1200, 3, 2, 3)?;
//! let engine = Engine::with_attacker(params, AdversaryConfig::default());
//! let report = engine.evaluate(&StrategyKind::Combo)?;
//!
//! // The paper's guarantee holds: measured availability is at least the
//! // DP-optimized lower bound.
//! assert!(report.measured_availability as i64 >= report.lower_bound);
//! assert_eq!(report.witness.len(), 3);
//!
//! // The same pipeline runs every strategy family for comparison …
//! let sweep = engine.evaluate_all()?;
//! assert!(sweep.iter().any(|r| r.strategy == "ring"));
//! // … and every report serializes to JSON.
//! assert!(report.to_json().starts_with('{'));
//! # Ok::<(), worst_case_placement::core::PlacementError>(())
//! ```

#![forbid(unsafe_code)]

/// Runs the README's quickstart as a doctest so the documented
/// entry-point can never drift from the real API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use wcp_adversary as adversary;
pub use wcp_analysis as analysis;
pub use wcp_combin as combin;
pub use wcp_core as core;
pub use wcp_designs as designs;
pub use wcp_gf as gf;
pub use wcp_service as service;
pub use wcp_sim as sim;

/// The names most programs need, in one import.
pub mod prelude {
    pub use wcp_adversary::{
        availability, AdversaryConfig, DomainAttacker, DomainLadderOutcome, DomainWorstCase,
        Ladder, LadderOutcome, ScratchAdversary, WorstCase,
    };
    pub use wcp_analysis::{competitive_constants, pr_avail, pr_avail_fraction};
    pub use wcp_core::{
        combo_plan, lb_avail_co, lb_avail_si, movement_between, repair_domain_collisions,
        AdaptiveSnapshot, AttackOutcome, Attacker, ClusterEvent, ComboStrategy, DomainRepaired,
        DomainSpreadStrategy, DynamicConfig, DynamicEngine, DynamicError, Engine, EvaluationReport,
        ExhaustiveAttacker, FailureUnit, GroupStrategy, LoadStats, MovementReport, PackingProfile,
        Placement, PlacementError, PlacementStrategy, PlannerContext, RandomStrategy,
        RandomVariant, RepairAction, RingStrategy, SimpleStrategy, StepReport, StrategyKind,
        SystemParams, Timings, Topology,
    };
    pub use wcp_designs::registry::RegistryConfig;
    pub use wcp_service::{
        PlacementProvider, ServiceConfig, ServiceEvent, ServiceHandle, Snapshot,
    };
    pub use wcp_sim::churn::{ChurnEvent, ChurnEventKind, ChurnSpec, ChurnTrace};
}
