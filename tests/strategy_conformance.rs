//! Trait-conformance suite: every registered `StrategyKind`, on a grid
//! of small `(n, r, s, k)` instances, must
//!
//! 1. build a structurally valid placement (`r` distinct in-range nodes
//!    per object, exactly `b` objects),
//! 2. respect its load cap where it claims one (Definition 4 for the
//!    Random family), and
//! 3. measure — under the *exact* adversary — worst-case availability at
//!    least its claimed `lower_bound` (Lemmas 2–3 for the packing
//!    strategies, the closed forms for ring/group, the vacuous 0 for
//!    Random).

use worst_case_placement::prelude::*;

/// The conformance grid: small enough for the exact adversary
/// everywhere, wide enough to hit every `x < s` slot, `s = r`, `s = 1`,
/// and both baselines' regimes.
fn grid() -> Vec<SystemParams> {
    let mut grid = Vec::new();
    for (n, b, r) in [(9u16, 27u64, 3u16), (12, 40, 3), (13, 26, 3), (16, 64, 4)] {
        for s in 1..=r.min(3) {
            for k in [s, s + 2] {
                if k < n {
                    grid.push(SystemParams::new(n, b, r, s, k).expect("valid grid point"));
                }
            }
        }
    }
    grid
}

fn check_structure(placement: &Placement, params: &SystemParams, name: &str) {
    assert_eq!(
        placement.num_objects() as u64,
        params.b(),
        "{name}: object count"
    );
    assert_eq!(placement.num_nodes(), params.n(), "{name}: node count");
    for (obj, set) in placement.replica_sets().iter().enumerate() {
        assert_eq!(
            set.len(),
            usize::from(params.r()),
            "{name}: object {obj} replica count"
        );
        assert!(
            set.windows(2).all(|w| w[0] < w[1]),
            "{name}: object {obj} nodes not distinct/sorted: {set:?}"
        );
        assert!(
            set.last().is_none_or(|&nd| nd < params.n()),
            "{name}: object {obj} node out of range: {set:?}"
        );
    }
}

/// The headline conformance property: plan → build → exact attack, and
/// `measured ≥ lower_bound`, for every strategy family on every grid
/// point.
#[test]
fn measured_availability_dominates_claimed_bound() {
    for params in grid() {
        let engine = Engine::with_attacker(params, AdversaryConfig::default());
        for kind in StrategyKind::all(&params) {
            let report = match engine.evaluate(&kind) {
                Ok(report) => report,
                // Not every x-slot is constructible at every tiny size.
                Err(PlacementError::Design(_)) => continue,
                Err(e) => panic!("{}: unexpected error {e}", kind.label()),
            };
            assert!(
                report.exact,
                "{}: grid instances must be exactly attackable",
                report.strategy
            );
            assert!(
                report.measured_availability as i64 >= report.lower_bound,
                "{} violates its bound at n={} b={} r={} s={} k={}: measured {} < claimed {}",
                report.strategy,
                params.n(),
                params.b(),
                params.r(),
                params.s(),
                params.k(),
                report.measured_availability,
                report.lower_bound
            );
        }
    }
}

/// Structural validity of everything every kind builds, plus the Random
/// family's Definition-4 load cap.
#[test]
fn placements_are_structurally_valid() {
    let ctx = PlannerContext::default();
    for params in grid() {
        for kind in StrategyKind::all(&params) {
            let strategy = match kind.plan(&params, &ctx) {
                Ok(strategy) => strategy,
                Err(PlacementError::Design(_)) => continue,
                Err(e) => panic!("{}: unexpected error {e}", kind.label()),
            };
            let placement = strategy.build(&params).expect("builds");
            check_structure(&placement, &params, strategy.name());
        }
    }
}

/// Definition 4: the load-balanced Random variants never exceed
/// `⌈rb/n⌉` replicas per node.
#[test]
fn random_family_respects_load_cap() {
    let ctx = PlannerContext::default();
    for params in grid() {
        let cap = RandomStrategy::load_cap(&params);
        for (seed, variant) in [
            (1u64, RandomVariant::LoadBalanced),
            (2, RandomVariant::SequentialUniform),
        ] {
            let placement = StrategyKind::Random { seed, variant }
                .plan(&params, &ctx)
                .expect("plans")
                .build(&params)
                .expect("builds");
            assert!(
                placement.max_load() <= cap,
                "variant {variant:?} exceeded cap {cap} at n={} b={}",
                params.n(),
                params.b()
            );
        }
    }
}

/// The baselines' closed-form bounds are not just valid but *tight*
/// (they claim the exact worst case) wherever they claim more than the
/// vacuous 0 — the adversary must not find anything worse.
#[test]
fn baseline_bounds_are_tight_when_nonvacuous() {
    for params in grid() {
        let engine = Engine::with_attacker(params, AdversaryConfig::default());
        for kind in [StrategyKind::Ring, StrategyKind::Group] {
            let report = engine.evaluate(&kind).expect("evaluates");
            assert!(report.exact);
            if report.lower_bound > 0 {
                assert_eq!(
                    report.measured_availability as i64,
                    report.lower_bound,
                    "{} closed form not tight at n={} b={} r={} s={} k={}",
                    report.strategy,
                    params.n(),
                    params.b(),
                    params.r(),
                    params.s(),
                    params.k()
                );
            }
        }
    }
}

/// Dynamic conformance: every registered family also survives a short
/// churn trace through the `DynamicEngine` — after every event the live
/// placement validates, the attack is exact, and availability stays
/// within the configured threshold of the engine's from-scratch oracle.
#[test]
fn every_family_survives_churn_through_the_dynamic_engine() {
    let params = SystemParams::new(13, 26, 3, 2, 3).expect("valid");
    let trace = ChurnSpec::new("conformance-dyn", 16, 13, 8).generate();
    let config = DynamicConfig {
        threshold: 0.05,
        ..DynamicConfig::default()
    };
    let slack = config.threshold * params.b() as f64;
    for kind in StrategyKind::all(&params) {
        let mut engine = match DynamicEngine::with_attacker(
            params,
            kind.clone(),
            trace.capacity,
            config.clone(),
            AdversaryConfig::default(),
        ) {
            Ok(engine) => engine,
            // Not every x-slot is constructible at the initial size.
            Err(DynamicError::Placement(PlacementError::Design(_))) => continue,
            Err(e) => panic!("{}: unexpected error {e}", kind.label()),
        };
        for (i, event) in trace.events.iter().enumerate() {
            let step = engine
                .apply(event.into())
                .unwrap_or_else(|e| panic!("{}: event {i} failed: {e}", kind.label()));
            engine
                .validate()
                .unwrap_or_else(|e| panic!("{}: invalid after event {i}: {e}", kind.label()));
            assert!(
                step.exact && step.oracle_exact,
                "{}: event {i} must be exactly attackable",
                kind.label()
            );
            assert!(
                step.availability as f64 >= step.oracle_availability as f64 - slack - 1e-9,
                "{}: event {i} degrades past threshold: {step:?}",
                kind.label()
            );
        }
        assert_eq!(
            engine.movement().events,
            trace.len() as u64,
            "{}",
            kind.label()
        );
    }
}

/// Topology-aware conformance: `DomainSpread` planned against real
/// (non-flat) topologies — nested zones, uneven racks, fan-out-1
/// chains — builds structurally valid placements, never co-locates two
/// replicas of one object in a rack when racks ≥ r, and degenerates to
/// its flat planning exactly when no topology is supplied.
#[test]
fn domain_spread_conforms_across_topologies() {
    let topologies = [
        Topology::split(12, &[4]).expect("4 racks"),
        Topology::split(13, &[5, 2]).expect("uneven racks in 2 zones"),
        // Fan-out-1 chain: every node its own rack, one zone above.
        Topology::split(9, &[9, 1]).expect("chain"),
    ];
    for topo in topologies {
        let n = topo.num_nodes();
        let params = SystemParams::new(n, u64::from(n) * 3, 3, 2, 3).expect("valid");
        let ctx = PlannerContext {
            topology: Some(topo.clone()),
            ..PlannerContext::default()
        };
        let placement = StrategyKind::DomainSpread
            .plan(&params, &ctx)
            .expect("plans")
            .build(&params)
            .expect("builds");
        check_structure(&placement, &params, "domain-spread");
        if topo.num_levels() > 0 && topo.domains_at(1) >= params.r() {
            for set in placement.replica_sets() {
                let mut racks: Vec<u16> = set.iter().map(|&nd| topo.domain_of(nd, 1)).collect();
                racks.sort_unstable();
                racks.dedup();
                assert_eq!(
                    racks.len(),
                    usize::from(params.r()),
                    "replicas share a rack under {topo:?}: {set:?}"
                );
            }
        }
    }
    // No topology in the context ⇒ the strategy plans against the flat
    // tree; supplying the flat tree explicitly must be identical.
    let params = SystemParams::new(12, 36, 3, 2, 3).expect("valid");
    let implicit = StrategyKind::DomainSpread
        .plan(&params, &PlannerContext::default())
        .expect("plans")
        .build(&params)
        .expect("builds");
    let explicit = StrategyKind::DomainSpread
        .plan(
            &params,
            &PlannerContext {
                topology: Some(Topology::flat(12)),
                ..PlannerContext::default()
            },
        )
        .expect("plans")
        .build(&params)
        .expect("builds");
    assert_eq!(implicit, explicit);
}

/// The repair wrapper conformance: every family's placement, wrapped in
/// `DomainRepaired`, stays structurally valid and ends rack-collision
/// free when racks ≥ r.
#[test]
fn domain_repair_wrapper_conforms_for_every_family() {
    let topo = Topology::split(12, &[4]).expect("4 racks");
    let params = SystemParams::new(12, 36, 3, 2, 3).expect("valid");
    let ctx = PlannerContext {
        topology: Some(topo.clone()),
        ..PlannerContext::default()
    };
    for kind in StrategyKind::all(&params) {
        let inner = match kind.plan(&params, &ctx) {
            Ok(strategy) => strategy,
            Err(PlacementError::Design(_)) => continue,
            Err(e) => panic!("{}: unexpected error {e}", kind.label()),
        };
        let wrapped = DomainRepaired::new(inner, topo.clone());
        let placement = wrapped.build(&params).expect("repairs");
        check_structure(&placement, &params, wrapped.name());
        for set in placement.replica_sets() {
            let mut racks: Vec<u16> = set.iter().map(|&nd| topo.domain_of(nd, 1)).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(
                racks.len(),
                usize::from(params.r()),
                "{}: unresolved collision {set:?}",
                wrapped.name()
            );
        }
    }
}

/// Every family evaluated under the *domain* adversary: the engine
/// pipeline accepts a `DomainAttacker`, the witness leaf set achieves
/// the reported damage, and the domain adversary is never weaker than
/// the per-node adversary on the same placement (a rack superset of
/// every leaf choice is always available).
#[test]
fn domain_adversary_dominates_node_adversary_for_every_family() {
    let topo = Topology::split(12, &[4]).expect("4 racks");
    let params = SystemParams::new(12, 36, 3, 2, 2).expect("valid");
    let ctx = PlannerContext {
        topology: Some(topo.clone()),
        ..PlannerContext::default()
    };
    let node_engine =
        Engine::with_attacker(params, AdversaryConfig::default()).with_context(ctx.clone());
    let domain_engine = Engine::with_attacker(params, DomainAttacker::new(topo)).with_context(ctx);
    for kind in StrategyKind::all(&params) {
        let node = match node_engine.evaluate(&kind) {
            Ok(report) => report,
            Err(PlacementError::Design(_)) => continue,
            Err(e) => panic!("{}: unexpected error {e}", kind.label()),
        };
        let domain = domain_engine.evaluate(&kind).expect("evaluates");
        assert!(
            domain.exact,
            "{}: grid instance must be exact",
            kind.label()
        );
        assert!(
            domain.measured_availability <= node.measured_availability,
            "{}: domain adversary weaker than node adversary ({} > {})",
            kind.label(),
            domain.measured_availability,
            node.measured_availability
        );
    }
}

/// Reports serialize to JSON for every family (the serving-layer
/// contract of `EvaluationReport`).
#[test]
fn every_report_serializes() {
    let params = SystemParams::new(13, 26, 3, 2, 3).expect("valid");
    let engine = Engine::with_attacker(params, AdversaryConfig::default());
    for report in engine.evaluate_all().expect("sweep") {
        let json = report.to_json();
        assert!(json.contains(&format!("\"strategy\": {:?}", report.strategy)));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
