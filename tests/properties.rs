//! Property-based end-to-end invariants over randomly drawn small
//! systems: whatever the parameters, bounds must hold and structures must
//! verify.

use proptest::prelude::*;
use worst_case_placement::designs::{
    registry::RegistryConfig as DRegistryConfig, verify, BlockDesign,
};
use worst_case_placement::prelude::*;

/// Strategy for drawing valid small system parameters.
fn small_params() -> impl Strategy<Value = (u16, u64, u16, u16, u16)> {
    // n in 8..=16, r in 2..=4, s in 1..=r, k in s..=min(6, n-1), b in 10..=80
    (8u16..=16, 10u64..=80, 2u16..=4).prop_flat_map(|(n, b, r)| {
        (1u16..=r).prop_flat_map(move |s| (s..=6.min(n - 1)).prop_map(move |k| (n, b, r, s, k)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Combo: plan → build → exact attack ≥ lower bound, always.
    #[test]
    fn combo_bound_always_holds((n, b, r, s, k) in small_params()) {
        let params = SystemParams::new(n, b, r, s, k).expect("strategy draws valid params");
        let combo = ComboStrategy::plan_constructive(&params, &RegistryConfig::default())
            .expect("plan");
        let placement = combo.build(&params).expect("build");
        prop_assert_eq!(placement.num_objects() as u64, b);
        let (avail, wc) = availability(&placement, s, k, &AdversaryConfig::default());
        prop_assert!(wc.exact, "instances this small must be exact");
        prop_assert!(
            avail >= combo.lower_bound(),
            "bound {} violated by measured {}", combo.lower_bound(), avail
        );
    }

    /// The multiset of replica sets of a Simple(x, λ) placement really is
    /// a (x+1)-(n, r, λ) packing.
    #[test]
    fn simple_placements_are_packings((n, b, r, s, k) in small_params(), x in 1u16..3) {
        prop_assume!(x < s);
        let params = SystemParams::new(n, b, r, s, k).expect("valid");
        let Ok(strategy) = SimpleStrategy::plan_constructive(x, &params, &RegistryConfig::default()) else {
            return Ok(()); // nothing constructible at this size — fine
        };
        let placement = strategy.build(b).expect("build");
        let design = BlockDesign::new(n, r, placement.replica_sets().to_vec()).expect("valid blocks");
        prop_assert!(
            verify::is_t_packing(&design, x + 1, strategy.lambda()),
            "λ = {} exceeded", strategy.lambda()
        );
    }

    /// Random placements respect the Definition-4 load cap and produce
    /// valid replica sets.
    #[test]
    fn random_placement_valid((n, b, r, _s, _k) in small_params(), seed in any::<u64>()) {
        let params = SystemParams::new(n, b, r, 1, 1).expect("valid");
        let placement = RandomStrategy::new(seed, RandomVariant::LoadBalanced)
            .place(&params)
            .expect("sample");
        prop_assert!(placement.max_load() <= RandomStrategy::load_cap(&params));
        prop_assert_eq!(placement.num_objects() as u64, b);
    }

    /// prAvail (Theorem-2 limit) is monotone: more failures never help,
    /// larger thresholds never hurt.
    #[test]
    fn pr_avail_monotone(n in 20u16..100, r in 2u16..=5, b in 100u64..2000) {
        let mut prev = u64::MAX;
        for k in 2..=8u16 {
            let pa = pr_avail(n, k, r, 2, b);
            prop_assert!(pa <= prev);
            prev = pa;
        }
        let mut prev = 0u64;
        for s in 1..=r {
            let pa = pr_avail(n, 4, r, s, b);
            prop_assert!(pa >= prev);
            prev = pa;
        }
    }

    /// The registry never lies: whatever it claims, materialization
    /// delivers a packing of the declared strength and at least
    /// min(request, capacity) blocks.
    #[test]
    fn registry_units_verify(t in 1u16..=4, r in 2u16..=5, v_max in 8u16..40) {
        prop_assume!(t <= r);
        let cfg = DRegistryConfig::default();
        if let Some(unit) = worst_case_placement::designs::registry::best_unit_packing(t, r, v_max, 200, &cfg) {
            let want = unit.capacity().min(200) as usize;
            let design = unit.materialize(200).expect("materialize");
            prop_assert!(design.num_blocks() >= want, "promised {want}, got {}", design.num_blocks());
            prop_assert!(verify::is_t_packing(&design, t, 1));
        }
    }
}
