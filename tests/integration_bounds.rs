//! Cross-crate integration: the paper's availability bounds must hold
//! against the exact adversary on placements the library actually builds.

use worst_case_placement::prelude::*;

/// Lemma 2: `Avail(π) ≥ lbAvail_si` for constructive Simple placements,
/// verified with the exact adversary on small systems.
#[test]
fn lemma2_holds_on_constructed_simple_placements() {
    let registry = RegistryConfig::default();
    for (n, b, r, s) in [
        (13u16, 26u64, 3u16, 2u16),
        (13, 26, 3, 3),
        (16, 100, 4, 2),
        (17, 60, 5, 3),
    ] {
        for x in 1..s {
            let params = SystemParams::new(n, b, r, s, s).expect("valid");
            let Ok(strategy) = SimpleStrategy::plan_constructive(x, &params, &registry) else {
                continue; // slot not constructible at this size
            };
            let placement = strategy.build(b).expect("capacity planned");
            for k in s..=6.min(n - 1) {
                let (avail, wc) = availability(&placement, s, k, &AdversaryConfig::default());
                assert!(wc.exact, "small instances must be exact");
                let lb = strategy.lower_bound(b, k, s);
                assert!(
                    avail as i64 >= lb,
                    "Lemma 2 violated: n={n} b={b} r={r} s={s} x={x} k={k}: {avail} < {lb}"
                );
            }
        }
    }
}

/// Lemma 3: `Avail(π) ≥ lbAvail_co` for constructive Combo placements.
#[test]
fn lemma3_holds_on_constructed_combo_placements() {
    let registry = RegistryConfig::default();
    for (n, b, r, s, k) in [
        (13u16, 40u64, 3u16, 2u16, 3u16),
        (13, 60, 3, 3, 4),
        (17, 120, 4, 2, 4),
        (21, 200, 5, 3, 5),
    ] {
        let params = SystemParams::new(n, b, r, s, k).expect("valid");
        let combo = ComboStrategy::plan_constructive(&params, &registry).expect("plan");
        let placement = combo.build(&params).expect("build");
        assert_eq!(placement.num_objects() as u64, b);
        let (avail, wc) = availability(&placement, s, k, &AdversaryConfig::default());
        assert!(wc.exact);
        assert!(
            avail >= combo.lower_bound(),
            "Lemma 3 violated at n={n} b={b} r={r} s={s} k={k}: {avail} < {}",
            combo.lower_bound()
        );
    }
}

/// Theorem 1: `Avail(π′) < c·Avail(π) + α` for every alternative
/// placement π′ we can sample, with π a constructive Simple placement.
#[test]
fn theorem1_competitive_bound_empirically() {
    let registry = RegistryConfig::default();
    let (n, b, r, s, k, x) = (13u16, 26u64, 3u16, 3u16, 4u16, 1u16);
    let params = SystemParams::new(n, b, r, s, k).expect("valid");
    let strategy = SimpleStrategy::plan_constructive(x, &params, &registry).expect("plan");
    let placement = strategy.build(b).expect("build");
    let (avail_simple, _) = availability(&placement, s, k, &AdversaryConfig::default());

    let bound = competitive_constants(strategy.nx(), r, s, x, k, 1)
        .expect("premise holds for these parameters");
    // π′ candidates: random placements (balanced and not) and the Combo.
    for seed in 0..10u64 {
        let alt = RandomStrategy::new(seed, RandomVariant::LoadBalanced)
            .place(&params)
            .expect("sample");
        let (avail_alt, _) = availability(&alt, s, k, &AdversaryConfig::default());
        assert!(
            (avail_alt as f64) < bound.c * avail_simple as f64 + bound.alpha,
            "Theorem 1 violated by seed {seed}: {avail_alt} vs c·{avail_simple}+α \
             (c={}, α={})",
            bound.c,
            bound.alpha
        );
    }
}

/// The adversary ladder is internally consistent: greedy ≤ local search ≤
/// exact, and the auto adversary returns the exact value when it can.
#[test]
fn adversary_ladder_consistency() {
    let params = SystemParams::new(15, 80, 3, 2, 4).expect("valid");
    let placement = RandomStrategy::new(3, RandomVariant::LoadBalanced)
        .place(&params)
        .expect("sample");
    let cfg = AdversaryConfig::default();
    let greedy = worst_case_failures(
        &placement,
        2,
        4,
        &AdversaryConfig {
            exact_budget: 0,
            restarts: 0,
            ..cfg.clone()
        },
    );
    let auto = worst_case_failures(&placement, 2, 4, &cfg);
    assert!(auto.exact);
    assert!(greedy.failed <= auto.failed);
    // The witness reproduces the count.
    assert_eq!(placement.failed_objects(&auto.nodes, 2), auto.failed);
}
