//! Cross-crate integration: the paper's availability bounds must hold
//! against the exact adversary on placements the library actually builds,
//! driven end to end through the `Engine` facade.

use worst_case_placement::prelude::*;

/// Lemma 2: `Avail(π) ≥ lbAvail_si` for constructive Simple placements,
/// verified with the exact adversary on small systems.
#[test]
fn lemma2_holds_on_constructed_simple_placements() {
    for (n, b, r, s) in [
        (13u16, 26u64, 3u16, 2u16),
        (13, 26, 3, 3),
        (16, 100, 4, 2),
        (17, 60, 5, 3),
    ] {
        for x in 1..s {
            for k in s..=6.min(n - 1) {
                let params = SystemParams::new(n, b, r, s, k).expect("valid");
                let engine = Engine::with_attacker(params, AdversaryConfig::default());
                let report = match engine.evaluate(&StrategyKind::Simple { x }) {
                    Ok(report) => report,
                    Err(PlacementError::Design(_)) => continue, // slot not constructible
                    Err(e) => panic!("unexpected error: {e}"),
                };
                assert!(report.exact, "small instances must be exact");
                assert!(
                    report.measured_availability as i64 >= report.lower_bound,
                    "Lemma 2 violated: n={n} b={b} r={r} s={s} x={x} k={k}: {} < {}",
                    report.measured_availability,
                    report.lower_bound
                );
            }
        }
    }
}

/// Lemma 3: `Avail(π) ≥ lbAvail_co` for constructive Combo placements.
#[test]
fn lemma3_holds_on_constructed_combo_placements() {
    for (n, b, r, s, k) in [
        (13u16, 40u64, 3u16, 2u16, 3u16),
        (13, 60, 3, 3, 4),
        (17, 120, 4, 2, 4),
        (21, 200, 5, 3, 5),
    ] {
        let params = SystemParams::new(n, b, r, s, k).expect("valid");
        let engine = Engine::with_attacker(params, AdversaryConfig::default());
        let report = engine.evaluate(&StrategyKind::Combo).expect("evaluates");
        assert_eq!(report.measured_availability + report.worst_failed, b);
        assert!(report.exact);
        assert!(
            report.measured_availability as i64 >= report.lower_bound,
            "Lemma 3 violated at n={n} b={b} r={r} s={s} k={k}: {} < {}",
            report.measured_availability,
            report.lower_bound
        );
    }
}

/// Theorem 1: `Avail(π′) < c·Avail(π) + α` for every alternative
/// placement π′ we can sample, with π a constructive Simple placement.
///
/// This is the one integration test that still touches a *concrete*
/// strategy type: the competitive constants need the planned sub-system
/// size `n_x`, which is Simple-specific and deliberately not part of the
/// `PlacementStrategy` trait.
#[test]
fn theorem1_competitive_bound_empirically() {
    let (n, b, r, s, k, x) = (13u16, 26u64, 3u16, 3u16, 4u16, 1u16);
    let params = SystemParams::new(n, b, r, s, k).expect("valid");
    let engine = Engine::with_attacker(params, AdversaryConfig::default());
    let strategy =
        SimpleStrategy::plan_constructive(x, &params, &RegistryConfig::default()).expect("plan");
    let simple = engine.evaluate_strategy(&strategy).expect("evaluates");

    let bound = competitive_constants(strategy.nx(), r, s, x, k, 1)
        .expect("premise holds for these parameters");
    // π′ candidates: random placements under the same engine.
    for seed in 0..10u64 {
        let alt = engine
            .evaluate(&StrategyKind::Random {
                seed,
                variant: RandomVariant::LoadBalanced,
            })
            .expect("evaluates");
        assert!(
            (alt.measured_availability as f64)
                < bound.c * simple.measured_availability as f64 + bound.alpha,
            "Theorem 1 violated by seed {seed}: {} vs c·{}+α (c={}, α={})",
            alt.measured_availability,
            simple.measured_availability,
            bound.c,
            bound.alpha
        );
    }
}

/// The adversary ladder is internally consistent: greedy ≤ local search ≤
/// exact, and the auto adversary returns the exact value when it can —
/// observed through engine reports with differently configured attackers.
#[test]
fn adversary_ladder_consistency() {
    let params = SystemParams::new(15, 80, 3, 2, 4).expect("valid");
    let kind = StrategyKind::Random {
        seed: 3,
        variant: RandomVariant::LoadBalanced,
    };
    let cfg = AdversaryConfig::default();
    let greedy_only = AdversaryConfig {
        exact_budget: 0,
        restarts: 0,
        ..cfg.clone()
    };
    let greedy = Engine::with_attacker(params, greedy_only)
        .evaluate(&kind)
        .expect("evaluates");
    let auto = Engine::with_attacker(params, cfg)
        .evaluate(&kind)
        .expect("evaluates");
    assert!(auto.exact);
    assert!(!greedy.exact);
    assert!(greedy.worst_failed <= auto.worst_failed);
    // The engine's built-in exhaustive attacker agrees with the exact
    // branch-and-bound.
    let builtin = Engine::new(params).evaluate(&kind).expect("evaluates");
    assert!(builtin.exact);
    assert_eq!(builtin.worst_failed, auto.worst_failed);
}
