//! Differential test oracle for the dynamic-membership subsystem.
//!
//! The incremental path (`DynamicEngine` repairing a live placement
//! event by event) is checked against the from-scratch path (a fresh
//! `Engine` plan → build → exact attack at the current membership — the
//! oracle): after *every* event of a churn trace,
//!
//! 1. the repaired placement must satisfy every `Placement` invariant
//!    plus the dynamic ones (no replica on a down slot, load accounting
//!    consistent),
//! 2. its worst-case availability under the exact adversary must be
//!    within the configured degradation threshold of the oracle's, and
//! 3. for deterministic strategies the engine's internal oracle must
//!    *equal* an independently computed `Engine` evaluation (the
//!    differential check proper).
//!
//! The acceptance-scale trace (n = 71, b = 1200, r = 3, s = 2, k = 3,
//! 200 events) additionally bounds movement: incremental repair must
//! move < 20% of the replicas the per-event full replans would have.

use proptest::prelude::*;
use worst_case_placement::prelude::*;

/// The exact adversary used everywhere in this suite (default budgets
/// prove the worst case at every size exercised here).
fn attacker() -> ScratchAdversary {
    ScratchAdversary::new(AdversaryConfig::default())
}

/// Replays `trace` through a `DynamicEngine`, asserting the per-event
/// invariants; returns the movement report.
fn replay_checked(
    params: SystemParams,
    kind: StrategyKind,
    trace: &ChurnTrace,
    threshold: f64,
    cross_check_oracle: bool,
) -> MovementReport {
    let config = DynamicConfig {
        threshold,
        ..DynamicConfig::default()
    };
    let mut engine =
        DynamicEngine::with_attacker(params, kind.clone(), trace.capacity, config, attacker())
            .expect("initial plan");
    let slack = threshold * params.b() as f64;
    for (i, event) in trace.events.iter().enumerate() {
        let step = engine.apply(event.into()).expect("legal trace event");
        engine.validate().unwrap_or_else(|e| {
            panic!(
                "{}: invariants violated after event {i} ({event:?}): {e}",
                kind.label()
            )
        });
        assert!(
            step.exact && step.oracle_exact,
            "{}: event {i} not attacked exactly: {step:?}",
            kind.label()
        );
        assert!(
            step.availability as f64 >= step.oracle_availability as f64 - slack - 1e-9,
            "{}: event {i} degrades past threshold: {step:?}",
            kind.label()
        );
        // The attacker is sound: re-counting the witness equals the claim.
        if cross_check_oracle {
            // The from-scratch Engine is the oracle: at the current
            // membership, planning the same deterministic strategy on the
            // compact node set and attacking it exactly must reproduce the
            // engine's internal oracle availability.
            let compact =
                SystemParams::new(step.active, params.b(), params.r(), params.s(), params.k())
                    .expect("active membership is a valid size");
            let oracle = Engine::with_attacker(compact, AdversaryConfig::default())
                .evaluate(&kind)
                .expect("oracle evaluates");
            assert!(oracle.exact);
            assert_eq!(
                oracle.measured_availability,
                step.oracle_availability,
                "{}: event {i}: internal oracle diverges from from-scratch Engine",
                kind.label()
            );
        }
    }
    *engine.movement()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every event of a random trace keeps the incrementally repaired
    /// placement valid and within threshold of the from-scratch oracle,
    /// and the engine's internal oracle matches an independent `Engine`
    /// evaluation (ring is deterministic, so equality is exact).
    #[test]
    fn repaired_placement_tracks_the_oracle(
        n in 10u16..14,
        spare in 0u16..4,
        b in 20u64..50,
        events in 10usize..25,
        seed in 0u64..1000,
    ) {
        let params = SystemParams::new(n, b, 3, 2, 3).expect("valid");
        let trace = ChurnSpec {
            seed_index: seed,
            ..ChurnSpec::new("diff-prop", n + spare, n, events)
        }
        .generate();
        let movement = replay_checked(params, StrategyKind::Ring, &trace, 0.05, true);
        prop_assert_eq!(movement.events, trace.len() as u64);
        prop_assert_eq!(movement.repairs + movement.replans, movement.events);
    }

    /// The same invariants hold for the seeded Random strategy (whose
    /// replans the engine plans with the same seed, keeping the internal
    /// oracle reproducible).
    #[test]
    fn random_strategy_tracks_the_oracle(
        seed in 0u64..500,
        events in 10usize..20,
    ) {
        let params = SystemParams::new(12, 36, 3, 2, 3).expect("valid");
        let kind = StrategyKind::Random { seed: 0x5eed, variant: RandomVariant::LoadBalanced };
        let trace = ChurnSpec {
            seed_index: seed,
            ..ChurnSpec::new("diff-rand", 15, 12, events)
        }
        .generate();
        let movement = replay_checked(params, kind, &trace, 0.05, true);
        prop_assert_eq!(movement.events, trace.len() as u64);
    }
}

/// A mid-size trace that runs in debug builds too: every strategy-family
/// representative survives churn with the differential guarantees.
#[test]
fn medium_trace_all_families() {
    let params = SystemParams::new(31, 120, 3, 2, 3).expect("valid");
    let trace = ChurnSpec::new("diff-medium", 36, 31, 30).generate();
    for kind in [
        StrategyKind::Combo,
        StrategyKind::Ring,
        StrategyKind::Group,
        StrategyKind::parse_spec("random").expect("builtin"),
    ] {
        // Combo/Group replan through the fallback at unconstructible
        // sizes, so only deterministic always-constructible kinds get the
        // exact-equality oracle cross-check.
        let cross_check = kind == StrategyKind::Ring;
        replay_checked(params, kind, &trace, 0.05, cross_check);
    }
}

/// The acceptance-scale criterion (exact adversary at n = 71 is
/// release-only; CI runs this via `cargo test --release`): on a
/// 200-event seeded trace at (n=71, b=1200, r=3, s=2, k=3), incremental
/// repair moves < 20% of what per-event full replans would move, while
/// availability stays within the configured threshold of the oracle at
/// every event.
#[cfg_attr(
    debug_assertions,
    ignore = "exact adversary at n=71/b=1200 × 200 events is release-only; CI runs cargo test --release --test dynamic_differential"
)]
#[test]
fn acceptance_200_event_trace() {
    let params = SystemParams::new(71, 1200, 3, 2, 3).expect("valid");
    let trace = ChurnSpec::new("acceptance", 80, 71, 200).generate();
    assert_eq!(trace.len(), 200);
    let movement = replay_checked(params, StrategyKind::Combo, &trace, 0.05, false);
    assert_eq!(movement.events, 200);
    assert!(
        movement.movement_ratio() < 0.20,
        "incremental repair moved {} of {} replicas full replans would ({}%)",
        movement.moved,
        movement.replan_moved,
        movement.movement_ratio() * 100.0
    );
}

/// Rejected events must not corrupt the engine: after an error the
/// placement still validates and further legal events apply cleanly.
#[test]
fn errors_do_not_poison_the_engine() {
    let params = SystemParams::new(13, 26, 3, 2, 3).expect("valid");
    let mut engine = DynamicEngine::with_attacker(
        params,
        StrategyKind::Ring,
        16,
        DynamicConfig::default(),
        attacker(),
    )
    .expect("plans");
    assert!(engine.apply(ClusterEvent::Join { node: 5 }).is_err()); // already up
    assert!(engine.apply(ClusterEvent::Recover { node: 14 }).is_err()); // never failed
    assert!(engine.apply(ClusterEvent::Fail { node: 99 }).is_err()); // out of range
    engine
        .validate()
        .expect("state unchanged by rejected events");
    let step = engine.apply(ClusterEvent::Fail { node: 5 }).expect("legal");
    assert_eq!(step.active, 12);
    engine.validate().expect("valid after repair");
}
