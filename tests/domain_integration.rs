//! Fault-domain extension, end to end: the paper's guarantees lifted to
//! rack-level correlated failures and verified by the exact adversary.

use worst_case_placement::core::domains::{domain_placement, project, FaultDomains};
use worst_case_placement::prelude::*;

#[test]
fn domain_bound_holds_under_exact_adversary() {
    // 84 nodes in 21 racks of 4; replicas in 3 distinct racks; object
    // fails once 2 racks are gone; plan for 3 rack failures.
    let fd = FaultDomains::uniform(84, 21).unwrap();
    let (placement, bound) =
        domain_placement(fd.clone(), 200, 3, 2, 3, &RegistryConfig::default()).unwrap();
    let projected = project(&placement, &fd).unwrap();
    let (avail, wc) = availability(&projected, 2, 3, &AdversaryConfig::default());
    assert!(wc.exact);
    assert!(avail >= bound, "domain bound {bound} violated: {avail}");
}

#[test]
fn domain_failures_dominate_node_failures() {
    // Failing k whole racks is at least as damaging as failing k nodes.
    let fd = FaultDomains::uniform(30, 10).unwrap();
    let (placement, _) =
        domain_placement(fd.clone(), 90, 3, 2, 2, &RegistryConfig::default()).unwrap();
    let projected = project(&placement, &fd).unwrap();
    let cfg = AdversaryConfig::default();
    let (avail_domain, _) = availability(&projected, 2, 2, &cfg);
    let (avail_node, _) = availability(&placement, 2, 2, &cfg);
    assert!(avail_domain <= avail_node);
}

#[test]
fn rack_aware_beats_rack_oblivious() {
    // A rack-oblivious random placement can put two replicas of one
    // object into the same rack; against rack failures the domain-aware
    // packing must do at least as well in the worst case.
    let fd = FaultDomains::uniform(40, 10).unwrap();
    let b = 120u64;
    let (aware, _) = domain_placement(fd.clone(), b, 3, 2, 3, &RegistryConfig::default()).unwrap();
    let aware_proj = project(&aware, &fd).unwrap();

    let params = SystemParams::new(40, b, 3, 2, 3).unwrap();
    let oblivious = RandomStrategy::new(99, RandomVariant::LoadBalanced)
        .place(&params)
        .unwrap();
    // Project manually, allowing duplicate domains (count a domain once;
    // an object with 2 replicas in a failed rack loses both).
    let mut worst_oblivious = 0u64;
    let cfg = AdversaryConfig::default();
    // Domain-level failure of a set D kills the object if ≥ s replicas
    // sit in D; evaluate by brute force over all 2-of-10 rack subsets.
    for d1 in 0..10u16 {
        for d2 in d1 + 1..10 {
            let failed_nodes: Vec<u16> = (0..40u16)
                .filter(|&nd| {
                    let d = fd.domain_of(nd);
                    d == d1 || d == d2
                })
                .collect();
            worst_oblivious = worst_oblivious.max(oblivious.failed_objects(&failed_nodes, 2));
        }
    }
    let (aware_avail, wc) = availability(&aware_proj, 2, 2, &cfg);
    assert!(wc.exact);
    let aware_worst = b - aware_avail;
    assert!(
        aware_worst <= worst_oblivious,
        "rack-aware worst {aware_worst} vs oblivious {worst_oblivious}"
    );
}
