//! Regression tests pinning the reproduction to the paper's published
//! numbers (see EXPERIMENTS.md for the full record and the documented
//! deviations).

use wcp_analysis::theorem2::VulnTable;
use wcp_experiments::{fig10_simple_cell, fig9_cell, Outcome};

/// Fig. 9a, n = 71, r = 2, s = 2: the entire table matches the paper
/// cell-for-cell.
#[test]
fn fig9a_r2_s2_exact_match() {
    let expected: &[(u64, [i64; 6])] = &[
        (600, [75, 57, 45, 33, 25, 16]),
        (1200, [80, 70, 60, 52, 46, 40]),
        (2400, [85, 76, 71, 67, 64, 61]),
        (4800, [77, 68, 62, 57, 53, 50]),
        (9600, [69, 58, 52, 47, 43, 40]),
        (19_200, [60, 48, 42, 37, 34, 31]),
        (38_400, [48, 38, 32, 28, 25, 23]),
    ];
    let table = VulnTable::new(38_400);
    for &(b, row) in expected {
        for (i, &want) in row.iter().enumerate() {
            let k = (i + 2) as u16;
            let cell = fig9_cell(&table, 71, 2, 2, b, k);
            assert_eq!(cell.pct, Some(want), "b={b} k={k}");
            assert_eq!(cell.outcome, Outcome::Win);
        }
    }
}

/// Fig. 9a, n = 71, r = 3, s = 3: matches the paper including the
/// dark-gray (Random-wins) cells.
#[test]
fn fig9a_r3_s3_exact_match() {
    let expected: &[(u64, [i64; 5])] = &[
        (600, [66, 50, 50, 28, 22]),
        (1200, [66, 20, 14, -11, -27]),
        (2400, [66, 20, -25, -81, -100]),
        (4800, [75, 42, 0, -42, -84]),
        (9600, [80, 50, 23, -5, -29]),
        (19_200, [83, 63, 44, 25, 10]),
        (38_400, [85, 71, 60, 50, 40]),
    ];
    let table = VulnTable::new(38_400);
    for &(b, row) in expected {
        for (i, &want) in row.iter().enumerate() {
            let k = (i + 3) as u16;
            let cell = fig9_cell(&table, 71, 3, 3, b, k);
            assert_eq!(cell.pct, Some(want), "b={b} k={k}");
        }
    }
}

/// Fig. 10a, n = 31, r = s = 3: the x = 1 and x = 2 Simple sub-tables
/// match the paper exactly, λ values included.
#[test]
fn fig10a_simple_subtables_exact_match() {
    let table = VulnTable::new(38_400);
    // (b, λ1, x=1 row for k=3..6, λ2, x=2 row for k=3..6)
    type Fig10Row = (u64, u64, [i64; 4], u64, [i64; 4]);
    let expected: &[Fig10Row] = &[
        (600, 4, [0, -33, -30, -42], 1, [75, 33, 0, -42]),
        (1200, 8, [-100, -100, -100, -100], 1, [75, 50, 23, 0]),
        (2400, 16, [-166, -190, -178, -166], 1, [83, 63, 47, 33]),
        (4800, 31, [-342, -287, -255, -229], 2, [71, 50, 31, 14]),
        (9600, 62, [-520, -439, -357, -297], 3, [70, 47, 33, 23]),
        (19_200, 124, [-785, -570, -450, -366], 5, [64, 45, 33, 24]),
        (38_400, 248, [-1027, -713, -535, -425], 9, [59, 40, 30, 23]),
    ];
    for &(b, lam1, row1, lam2, row2) in expected {
        for (i, &want) in row1.iter().enumerate() {
            let k = (i + 3) as u16;
            let (cell, lam) = fig10_simple_cell(&table, 31, 3, 3, 1, b, k);
            assert_eq!(lam, lam1, "λ1 at b={b}");
            assert_eq!(cell.pct, Some(want), "x=1 b={b} k={k}");
        }
        for (i, &want) in row2.iter().enumerate() {
            let k = (i + 3) as u16;
            let (cell, lam) = fig10_simple_cell(&table, 31, 3, 3, 2, b, k);
            assert_eq!(lam, lam2, "λ2 at b={b}");
            assert_eq!(cell.pct, Some(want), "x=2 b={b} k={k}");
        }
    }
}

/// Fig. 10a Combo at b = 4800, k ∈ {5, 6}: the paper highlights that the
/// DP's mix (Simple(2,1) + Simple(1,2)) beats every single-x placement —
/// entries 44 and 36.
#[test]
fn fig10a_combo_beats_every_simple() {
    let table = VulnTable::new(4800);
    for (k, want) in [(5u16, 44i64), (6, 36)] {
        let combo = fig9_cell(&table, 31, 3, 3, 4800, k);
        assert_eq!(combo.pct, Some(want), "combo k={k}");
        let (s1, _) = fig10_simple_cell(&table, 31, 3, 3, 1, 4800, k);
        let (s2, _) = fig10_simple_cell(&table, 31, 3, 3, 2, 4800, k);
        assert!(combo.pct > s1.pct && combo.pct > s2.pct, "k={k}");
    }
}

/// Fig. 9b, n = 257, r = 4, s = 4: all 35 cells match the paper exactly.
#[test]
fn fig9b_r4_s4_exact_match() {
    let expected: &[(u64, [i64; 5])] = &[
        (600, [50, 66, 33, 25, 0]),
        (1200, [50, 66, 33, 25, 0]),
        (2400, [50, 66, 33, 25, 20]),
        (4800, [50, 66, 50, 25, 20]),
        (9600, [50, 33, -25, -40, -50]),
        (19_200, [66, 33, -25, -60, -133]),
        (38_400, [66, 50, 0, -33, -100]),
    ];
    let table = VulnTable::new(38_400);
    for &(b, row) in expected {
        for (i, &want) in row.iter().enumerate() {
            let k = (i + 4) as u16;
            let cell = fig9_cell(&table, 257, 4, 4, b, k);
            assert_eq!(cell.pct, Some(want), "b={b} k={k}");
        }
    }
}

/// The paper's prose anchor: "n = 71, r = 2, s = 2, b = 2400 and k = 2,
/// Combo guarantees to preserve the availability of 85% of the objects
/// that will probably fail under Random."
#[test]
fn prose_anchor_85_percent() {
    let table = VulnTable::new(2400);
    let cell = fig9_cell(&table, 71, 2, 2, 2400, 2);
    assert_eq!(cell.pct, Some(85));
}

/// Theorem-2 prAvail is sane at the paper's scales and the two published
/// variants differ by exactly one object.
#[test]
fn pr_avail_variants() {
    let table = VulnTable::new(38_400);
    for (n, k, r, s, b) in [
        (71u16, 5u16, 5u16, 3u16, 38_400u64),
        (257, 8, 5, 2, 9600),
        (71, 2, 2, 2, 600),
    ] {
        let def6 = table.pr_avail(n, k, r, s, b);
        let paper = table.pr_avail_paper(n, k, r, s, b);
        assert_eq!(def6 - 1, paper, "({n},{k},{r},{s},{b})");
        assert!(def6 <= b);
    }
}
