//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API the library actually
//! uses: a seedable RNG ([`rngs::StdRng`]), uniform range sampling
//! ([`Rng::gen_range`]), Bernoulli draws ([`Rng::gen_bool`]) and
//! Fisher–Yates shuffling ([`seq::SliceRandom`]).
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny,
//! fast, and passes BigCrush — more than adequate for the seeded,
//! non-cryptographic sampling this library performs. Streams differ from
//! upstream `StdRng` (ChaCha12), which only matters to tests asserting
//! determinism *per seed*, not specific draws; none do the latter.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, as upstream does.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one element.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen through i128 so negative signed bounds don't wrap
                // (every sampled type fits i128 losslessly).
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn negative_signed_ranges_sample_correctly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..200 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            seen_neg |= v < 0;
            seen_pos |= v >= 0;
            let w = rng.gen_range(i8::MIN..=i8::MAX); // full-domain inclusive
            let _ = w;
            let x = rng.gen_range(-3i32..=-1);
            assert!((-3..=-1).contains(&x));
        }
        assert!(seen_neg && seen_pos, "both signs should occur");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u16..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        assert!(
            counts.iter().all(|&c| (800..1200).contains(&c)),
            "{counts:?}"
        );
    }
}
