//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest the test suites use: the [`proptest!`]
//! macro over `pattern in strategy` arguments, integer/float range and
//! [`any`] strategies, tuple composition, [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Unlike upstream there is no shrinking and no persisted failure
//! seeds: each test runs `ProptestConfig::cases` random cases from a
//! seed derived from the test name, so failures reproduce exactly on
//! re-run. Rejections via `prop_assume!` do not count toward the case
//! budget (up to a global retry cap).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 96 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be resampled.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The result type of generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % span
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Stable per-test seed (FNV-1a over the test name).
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The commonly imported names.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u64;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= u64::from(config.cases) * 200 + 1000,
                    "too many rejected cases in {}",
                    stringify!($name)
                );
                let __sampled = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                let __shown = format!("{:?}", __sampled);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    let ($($pat,)+) = __sampled;
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            __shown
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(cfg = $cfg; $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "{} != {} ({:?} vs {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("{:?} != {:?}: {}", l, r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "{} == {} ({:?})",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Rejects the current case (resampled without counting) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u16, u16)> {
        (1u16..10).prop_flat_map(|a| (a..=10).prop_map(move |b| (a, b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 2usize..=9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn flat_map_respects_dependency((a, b) in pair()) {
            prop_assert!(a <= b, "a={} b={}", a, b);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_ok_return(x in 0u32..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert_ne!(x, 1000);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_from_name("a"), crate::seed_from_name("a"));
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }
}
