//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified from upstream): each benchmark is warmed up,
//! auto-calibrated to a per-sample iteration count targeting
//! ~[`TARGET_SAMPLE_NANOS`], then measured for `sample_size` samples.
//! The median ns/iter is reported on stdout, and every completed
//! measurement is appended to the JSON file named by the
//! `CRITERION_SHIM_JSON` environment variable (if set) so callers can
//! snapshot results.

use std::fmt::Display;
use std::time::Instant;

/// Per-sample target duration for calibration (100 µs keeps full runs
/// fast while still amortizing timer overhead).
pub const TARGET_SAMPLE_NANOS: f64 = 100_000.0;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/benchmark` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration across samples.
    pub min_ns: f64,
    /// Maximum nanoseconds per iteration across samples.
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
}

/// The harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let m = run_benchmark(id.to_string(), 20, f);
        self.results.push(m);
        self
    }

    /// All measurements recorded so far.
    #[must_use]
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the final summary and writes the optional JSON snapshot.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.results.len());
        if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
            let json = measurements_to_json(&self.results);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            } else {
                println!("wrote {path}");
            }
        }
    }
}

/// Renders measurements as a JSON array.
#[must_use]
pub fn measurements_to_json(results: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": {:?}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
            m.id,
            m.median_ns,
            m.min_ns,
            m.max_ns,
            m.samples,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a function under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let m = run_benchmark(format!("{}/{}", self.name, id), self.sample_size, f);
        self.criterion.results.push(m);
        self
    }

    /// Benchmarks a function taking an input under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    #[must_use]
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, recording wall
    /// time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: String, sample_size: usize, mut f: F) -> Measurement {
    // Calibration: start at one iteration, grow until a sample costs
    // ~TARGET_SAMPLE_NANOS.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        if b.elapsed_ns >= TARGET_SAMPLE_NANOS || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        per_iter.push(b.elapsed_ns / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let m = Measurement {
        id,
        median_ns: median,
        min_ns: per_iter[0],
        max_ns: *per_iter.last().expect("non-empty"),
        samples: sample_size,
    };
    println!(
        "  {:<50} median {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} samples × {} iters)",
        m.id, m.median_ns, m.min_ns, m.max_ns, m.samples, iters
    );
    m
}

/// Groups benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements().iter().all(|m| m.median_ns > 0.0));
        let json = measurements_to_json(c.measurements());
        assert!(json.contains("g/sum") && json.contains("g/param/42"));
    }
}
