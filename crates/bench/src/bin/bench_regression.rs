//! `bench_regression` — the CI gate over benchmark snapshots.
//!
//! Compares a fresh snapshot (`BENCH_strategies.json`,
//! `BENCH_adversary.json`, `BENCH_adversary_parallel.json`, … — both
//! schemas are understood) against the committed baseline and exits
//! non-zero when any family's mean time regressed beyond the threshold
//! (default 25%), or when a family vanished from the fresh snapshot:
//!
//! ```text
//! bench_regression crates/bench/BENCH_strategies.json fresh.json --threshold 25
//! bench_regression crates/bench/BENCH_adversary.json fresh-adv.json --threshold 25
//! ```
//!
//! Snapshot paths that don't exist as written are re-anchored at this
//! crate's manifest directory (and the workspace root) before the gate
//! gives up — benches resolve their default output the same way, so a
//! gate invoked from the wrong directory still finds the real files
//! instead of silently comparing nothing. A baseline that cannot be
//! found anywhere is a hard error: a vacuous gate must not pass.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wcp_bench::regression::compare;

/// Resolves a snapshot argument to an existing file: the path as
/// written, else (for relative paths) re-anchored at the bench crate's
/// manifest directory, the workspace root, or — as a last resort — the
/// bare file name inside the manifest directory, where every committed
/// `BENCH_*.json` baseline lives.
fn resolve(path: &str) -> Result<PathBuf, String> {
    let direct = Path::new(path);
    if direct.exists() {
        return Ok(direct.to_path_buf());
    }
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut candidates = Vec::new();
    if direct.is_relative() {
        candidates.push(manifest.join(direct));
        candidates.push(manifest.join("..").join("..").join(direct));
        if let Some(name) = direct.file_name() {
            candidates.push(manifest.join(name));
        }
    }
    for cand in &candidates {
        if cand.exists() {
            println!("note: resolved '{path}' to {}", cand.display());
            return Ok(cand.clone());
        }
    }
    let tried: Vec<String> = std::iter::once(direct.display().to_string())
        .chain(candidates.iter().map(|c| c.display().to_string()))
        .collect();
    Err(format!(
        "snapshot '{path}' is absent (tried: {}) — a gate without its \
         baseline is vacuous; commit the snapshot or fix the path",
        tried.join(", ")
    ))
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut threshold_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--threshold needs a percentage".to_string())?;
                threshold_pct = raw
                    .parse()
                    .map_err(|_| format!("invalid threshold '{raw}'"))?;
                if threshold_pct <= 0.0 {
                    return Err("threshold must be positive".to_string());
                }
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err(
            "usage: bench_regression <baseline.json> <current.json> [--threshold PCT]".to_string(),
        );
    };
    let read = |path: &str| {
        let resolved = resolve(path)?;
        std::fs::read_to_string(&resolved)
            .map_err(|e| format!("cannot read {}: {e}", resolved.display()))
    };
    let deltas = compare(&read(baseline_path)?, &read(current_path)?)?;
    let threshold = threshold_pct / 100.0;
    let mut failed = false;
    println!(
        "{:<12} {:>14} {:>14} {:>9}  gate(±{threshold_pct}%)",
        "family", "baseline_ns", "current_ns", "change"
    );
    for d in &deltas {
        let regressed = d.regressed(threshold);
        failed |= regressed;
        let (current, change) = match (d.current_ns, d.change) {
            (Some(c), Some(ch)) => (format!("{c:.0}"), format!("{:+.1}%", ch * 100.0)),
            _ => ("missing".to_string(), "—".to_string()),
        };
        println!(
            "{:<12} {:>14.0} {:>14} {:>9}  {}",
            d.family,
            d.baseline_ns,
            current,
            change,
            if regressed { "FAIL" } else { "ok" }
        );
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(false) => {
            println!("no benchmark regressions");
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!("benchmark regression gate FAILED");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(name: &str) -> String {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(name)
            .display()
            .to_string()
    }

    #[test]
    fn gate_accepts_a_snapshot_against_itself() {
        let base = committed("BENCH_adversary.json");
        assert_eq!(run(&[base.clone(), base]), Ok(false));
    }

    #[test]
    fn missing_baseline_is_a_loud_error_not_a_pass() {
        let err = run(&[
            "no/such/dir/BENCH_definitely_absent.json".to_string(),
            committed("BENCH_adversary.json"),
        ])
        .unwrap_err();
        assert!(err.contains("absent"), "error must name the problem: {err}");
        assert!(
            err.contains("vacuous"),
            "error must explain the risk: {err}"
        );
        assert!(
            err.contains("BENCH_definitely_absent.json"),
            "error must echo the path: {err}"
        );
    }

    #[test]
    fn relative_paths_reanchor_at_the_manifest_dir() {
        // The ci.yml idiom: a workspace-root-relative path works no
        // matter which directory the gate binary runs from, because the
        // bare file name re-anchors at the crate's manifest directory.
        let resolved = resolve("crates/bench/BENCH_adversary.json").expect("resolves");
        assert!(resolved.exists());
        let fallback = resolve("some/stale/cwd/BENCH_adversary.json").expect("resolves");
        assert!(fallback.ends_with("BENCH_adversary.json") && fallback.exists());
    }

    #[test]
    fn threshold_validation() {
        let base = committed("BENCH_adversary.json");
        assert!(run(&[base.clone(), base.clone(), "--threshold".into(), "0".into()]).is_err());
        assert!(run(&[base.clone(), base.clone(), "--threshold".into(), "x".into()]).is_err());
        assert!(run(&["--threshold".into(), "25".into(), base.clone()]).is_err());
        assert_eq!(
            run(&[base.clone(), base, "--threshold".into(), "25".into()]),
            Ok(false)
        );
    }
}
