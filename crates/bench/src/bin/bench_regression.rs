//! `bench_regression` — the CI gate over benchmark snapshots.
//!
//! Compares a fresh snapshot (`BENCH_strategies.json` or
//! `BENCH_adversary.json` — both schemas are understood) against the
//! committed baseline and exits non-zero when any family's mean time
//! regressed beyond the threshold (default 25%), or when a family
//! vanished from the fresh snapshot:
//!
//! ```text
//! bench_regression crates/bench/BENCH_strategies.json fresh.json --threshold 25
//! bench_regression crates/bench/BENCH_adversary.json fresh-adv.json --threshold 25
//! ```

use std::process::ExitCode;
use wcp_bench::regression::compare;

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut threshold_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--threshold needs a percentage".to_string())?;
                threshold_pct = raw
                    .parse()
                    .map_err(|_| format!("invalid threshold '{raw}'"))?;
                if threshold_pct <= 0.0 {
                    return Err("threshold must be positive".to_string());
                }
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err(
            "usage: bench_regression <baseline.json> <current.json> [--threshold PCT]".to_string(),
        );
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let deltas = compare(&read(baseline_path)?, &read(current_path)?)?;
    let threshold = threshold_pct / 100.0;
    let mut failed = false;
    println!(
        "{:<12} {:>14} {:>14} {:>9}  gate(±{threshold_pct}%)",
        "family", "baseline_ns", "current_ns", "change"
    );
    for d in &deltas {
        let regressed = d.regressed(threshold);
        failed |= regressed;
        let (current, change) = match (d.current_ns, d.change) {
            (Some(c), Some(ch)) => (format!("{c:.0}"), format!("{:+.1}%", ch * 100.0)),
            _ => ("missing".to_string(), "—".to_string()),
        };
        println!(
            "{:<12} {:>14.0} {:>14} {:>9}  {}",
            d.family,
            d.baseline_ns,
            current,
            change,
            if regressed { "FAIL" } else { "ok" }
        );
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(false) => {
            println!("no benchmark regressions");
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!("benchmark regression gate FAILED");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
