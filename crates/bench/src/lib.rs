//! Shared fixtures for the criterion benchmarks, plus the
//! [`regression`] analysis CI uses to gate on benchmark snapshots.
//!
//! The benchmarks measure the computational pieces behind the paper's
//! experiments: the Combo DP (Sec. III-B1), the design constructions of
//! Sec. III-C, the worst-case adversary behind Definition 1, the
//! Theorem-2 analysis, the unified strategy sweep through the `Engine`
//! facade, and the parallel sweep subsystem's throughput.
//! `cargo bench --workspace` runs them all.

#![forbid(unsafe_code)]

pub mod regression;

use wcp_core::{Placement, PlannerContext, RandomVariant, StrategyKind, SystemParams};

/// A deterministic mid-size random placement for adversary benchmarks,
/// drawn through the unified strategy API.
///
/// # Panics
///
/// Panics only on invalid hard-coded parameters (i.e. never).
#[must_use]
pub fn fixture_placement(n: u16, b: u64, r: u16) -> Placement {
    let params = SystemParams::new(n, b, r, 1, 1).expect("fixture parameters are valid");
    StrategyKind::Random {
        seed: 0x000b_e9c4,
        variant: RandomVariant::LoadBalanced,
    }
    .plan(&params, &PlannerContext::default())
    .expect("random strategies always plan")
    .build(&params)
    .expect("fixture placement samples")
}

/// Resolves the output path for a `BENCH_*.json` snapshot: the
/// `env_key` override verbatim when set (and non-empty), otherwise
/// `default_name` anchored at this crate's manifest directory. Snapshot
/// benches must resolve through this — a bare relative default lands
/// the file in whatever directory `cargo bench` happened to run from,
/// and the CI gate then diffs against a stale committed baseline.
#[must_use]
pub fn snapshot_out(env_key: &str, default_name: &str) -> std::path::PathBuf {
    match std::env::var(env_key) {
        Ok(path) if !path.is_empty() => std::path::PathBuf::from(path),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(default_name),
    }
}

/// Peak resident set size of the current process in bytes, parsed from
/// the `VmHWM` line of `/proc/self/status` (kernel high-water mark, so
/// it is monotone over the process lifetime — sample it right after the
/// workload whose footprint you want to attribute, largest workload
/// last). `None` on non-Linux platforms or if the file is unreadable.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Measures one evaluation series for a `BENCH_*.json` snapshot: the
/// median over batched samples, each batch long enough (~400 µs) to
/// amortize timer and scheduler noise — run-to-run stability is what
/// the CI regression gate needs. Every snapshot-writing bench must use
/// this (not its own scheme) so the gate compares like with like.
pub fn median_ns(mut one: impl FnMut() -> u64) -> u128 {
    use std::hint::black_box;
    use std::time::Instant;
    const SAMPLES: usize = 9;
    const TARGET_SAMPLE_NS: u128 = 400_000;
    // Warmup + calibration.
    let est = {
        let t = Instant::now();
        black_box(one());
        t.elapsed().as_nanos().max(1)
    };
    let iters = (TARGET_SAMPLE_NS / est).clamp(1, 10_000) as u32;
    let mut samples: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(one());
            }
            t.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    samples.sort_unstable();
    samples[SAMPLES / 2]
}
