//! Shared fixtures for the criterion benchmarks, plus the
//! [`regression`] analysis CI uses to gate on benchmark snapshots.
//!
//! The benchmarks measure the computational pieces behind the paper's
//! experiments: the Combo DP (Sec. III-B1), the design constructions of
//! Sec. III-C, the worst-case adversary behind Definition 1, the
//! Theorem-2 analysis, the unified strategy sweep through the `Engine`
//! facade, and the parallel sweep subsystem's throughput.
//! `cargo bench --workspace` runs them all.

pub mod regression;

use wcp_core::{Placement, PlannerContext, RandomVariant, StrategyKind, SystemParams};

/// A deterministic mid-size random placement for adversary benchmarks,
/// drawn through the unified strategy API.
///
/// # Panics
///
/// Panics only on invalid hard-coded parameters (i.e. never).
#[must_use]
pub fn fixture_placement(n: u16, b: u64, r: u16) -> Placement {
    let params = SystemParams::new(n, b, r, 1, 1).expect("fixture parameters are valid");
    StrategyKind::Random {
        seed: 0x000b_e9c4,
        variant: RandomVariant::LoadBalanced,
    }
    .plan(&params, &PlannerContext::default())
    .expect("random strategies always plan")
    .build(&params)
    .expect("fixture placement samples")
}
