//! Shared fixtures for the criterion benchmarks.
//!
//! The benchmarks measure the computational pieces behind the paper's
//! experiments: the Combo DP (Sec. III-B1), the design constructions of
//! Sec. III-C, the worst-case adversary behind Definition 1, and the
//! Theorem-2 analysis. `cargo bench --workspace` runs them all.

use wcp_core::{Placement, RandomStrategy, RandomVariant, SystemParams};

/// A deterministic mid-size random placement for adversary benchmarks.
///
/// # Panics
///
/// Panics only on invalid hard-coded parameters (i.e. never).
#[must_use]
pub fn fixture_placement(n: u16, b: u64, r: u16) -> Placement {
    let params = SystemParams::new(n, b, r, 1, 1).expect("fixture parameters are valid");
    RandomStrategy::new(0x000b_e9c4, RandomVariant::LoadBalanced)
        .place(&params)
        .expect("fixture placement samples")
}
