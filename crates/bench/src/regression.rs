//! Benchmark-snapshot regression analysis.
//!
//! CI records fresh `BENCH_strategies.json` / `BENCH_adversary.json` /
//! `BENCH_domains.json` snapshots on every run and compares each
//! against its committed baseline with [`compare`]: per *family* (the name up to its
//! parameter list — `simple(x=0, λ=60)` and `simple(x=1, λ=10)` are
//! both family `simple`; adversary series names are their own
//! families), the mean of the median times must not regress by more
//! than the threshold. Four snapshot schemas are accepted:
//! `strategies[].{strategy, median_pipeline_ns}` (the engine sweep),
//! `series[].{name, median_ns}` (the adversary kernel-vs-scalar bench),
//! `certified[].{name, median_ns, certificate}` (ladder timings
//! that carry their availability certificates along; the gate reads
//! the timings and ignores the certificates — `wcp-verify` owns
//! those), `scale[].{name, b, median_ns, evals_per_second,
//! peak_rss_bytes}` (the million-object regime; the gate reads the
//! timings, the committed-snapshot pin test enforces the RSS budget)
//! and `service[].{name, threads, median_ns, lookups_per_second,
//! p99_staleness_epochs, peak_rss_bytes}` (the serving-layer closed
//! loop; the gate reads the per-lookup timings, the committed-snapshot
//! pin test enforces the single-threaded lookup-rate floor). The
//! `bench_regression` binary wraps this as a CI-friendly exit code.

use wcp_sim::json::Value;

/// Mean measured cost of one strategy family in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyTime {
    /// Family label (strategy name up to the first `(`).
    pub family: String,
    /// Mean of the family's `median_pipeline_ns` entries.
    pub mean_ns: f64,
    /// Number of strategies aggregated.
    pub strategies: usize,
}

/// The strategy family of a snapshot strategy name.
#[must_use]
pub fn family_of(strategy: &str) -> &str {
    strategy.split('(').next().unwrap_or(strategy).trim()
}

/// Parses a benchmark snapshot (either schema, see the module docs)
/// into per-family mean times, preserving first-appearance order.
///
/// # Errors
///
/// A message when the document is not JSON or matches none of the
/// `strategies[].{strategy, median_pipeline_ns}`,
/// `series[].{name, median_ns}`, `certified[].{name, median_ns}` and
/// `scale[].{name, median_ns, peak_rss_bytes}` shapes.
pub fn family_means(snapshot: &str) -> Result<Vec<FamilyTime>, String> {
    let doc = Value::parse(snapshot).map_err(|e| e.to_string())?;
    let (entries, name_key, ns_key) =
        if let Some(arr) = doc.get("strategies").and_then(Value::as_array) {
            (arr, "strategy", "median_pipeline_ns")
        } else if let Some(arr) = doc.get("series").and_then(Value::as_array) {
            (arr, "name", "median_ns")
        } else if let Some(arr) = doc.get("certified").and_then(Value::as_array) {
            (arr, "name", "median_ns")
        } else if let Some(arr) = doc.get("scale").and_then(Value::as_array) {
            // The scale-regime snapshot: entries additionally carry `b` and
            // `peak_rss_bytes`; the gate reads only the timings.
            (arr, "name", "median_ns")
        } else if let Some(arr) = doc.get("service").and_then(Value::as_array) {
            // The serving-layer snapshot: entries additionally carry
            // `threads`, `lookups_per_second`, `p99_staleness_epochs`
            // and `peak_rss_bytes`; the gate reads only the per-lookup
            // timings.
            (arr, "name", "median_ns")
        } else {
            return Err(
                "snapshot has none of the \"strategies\"/\"series\"/\"certified\"/\"scale\"/\
                 \"service\" arrays"
                    .to_string(),
            );
        };
    let mut families: Vec<FamilyTime> = Vec::new();
    for entry in entries {
        let name = entry
            .get(name_key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("snapshot entry without a \"{name_key}\" name"))?;
        let ns = entry
            .get(ns_key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("entry '{name}' lacks \"{ns_key}\""))?;
        let family = family_of(name);
        match families.iter_mut().find(|f| f.family == family) {
            Some(f) => {
                // Running mean keeps one pass over the entries.
                f.mean_ns += (ns - f.mean_ns) / (f.strategies as f64 + 1.0);
                f.strategies += 1;
            }
            None => families.push(FamilyTime {
                family: family.to_string(),
                mean_ns: ns,
                strategies: 1,
            }),
        }
    }
    if families.is_empty() {
        return Err("snapshot contains no entries".to_string());
    }
    Ok(families)
}

/// One family's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyDelta {
    /// Family label.
    pub family: String,
    /// Baseline mean, nanoseconds.
    pub baseline_ns: f64,
    /// Current mean, nanoseconds (`None` when the family vanished).
    pub current_ns: Option<f64>,
    /// `current / baseline − 1` (positive = slower).
    pub change: Option<f64>,
}

impl FamilyDelta {
    /// Whether this family fails the gate at `threshold` (fractional,
    /// e.g. `0.25`): a mean-time regression beyond it, or a family
    /// missing from the current snapshot.
    #[must_use]
    pub fn regressed(&self, threshold: f64) -> bool {
        match self.change {
            Some(change) => change > threshold,
            None => true,
        }
    }
}

/// Compares two snapshots family by family.
///
/// Families only present in the current snapshot are ignored (new
/// strategies are not regressions); families only present in the
/// baseline count as regressed — a strategy silently dropping out of
/// the benchmark must not pass the gate.
///
/// # Errors
///
/// Parse errors from either snapshot (see [`family_means`]).
pub fn compare(baseline: &str, current: &str) -> Result<Vec<FamilyDelta>, String> {
    let base = family_means(baseline)?;
    let cur = family_means(current)?;
    Ok(base
        .into_iter()
        .map(|b| {
            let current_ns = cur.iter().find(|c| c.family == b.family).map(|c| c.mean_ns);
            FamilyDelta {
                change: current_ns.map(|c| c / b.mean_ns - 1.0),
                family: b.family,
                baseline_ns: b.mean_ns,
                current_ns,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(entries: &[(&str, u64)]) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|(name, ns)| format!("  {{\"strategy\": {name:?}, \"median_pipeline_ns\": {ns}}}"))
            .collect();
        format!("{{\n\"strategies\": [\n{}\n]\n}}\n", body.join(",\n"))
    }

    #[test]
    fn families_aggregate_parameterized_strategies() {
        let fams = family_means(&snapshot(&[
            ("simple(x=0, λ=60)", 100),
            ("simple(x=1, λ=10)", 300),
            ("ring", 50),
            ("random(load-balanced)", 70),
        ]))
        .unwrap();
        assert_eq!(fams.len(), 3);
        assert_eq!(fams[0].family, "simple");
        assert_eq!(fams[0].strategies, 2);
        assert!((fams[0].mean_ns - 200.0).abs() < 1e-9);
        assert_eq!(fams[1].family, "ring");
        assert_eq!(fams[2].family, "random");
    }

    #[test]
    fn within_threshold_passes() {
        let base = snapshot(&[("ring", 100), ("combo", 200)]);
        let cur = snapshot(&[("ring", 120), ("combo", 190)]);
        let deltas = compare(&base, &cur).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed(0.25)));
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        // The acceptance scenario: one family 60% slower than baseline
        // must trip the 25% gate while the others stay green.
        let base = snapshot(&[
            ("simple(x=0, λ=60)", 100_000),
            ("simple(x=1, λ=10)", 100_000),
            ("combo", 200_000),
            ("ring", 50_000),
        ]);
        let cur = snapshot(&[
            ("simple(x=0, λ=60)", 160_000),
            ("simple(x=1, λ=10)", 160_000),
            ("combo", 210_000),
            ("ring", 49_000),
        ]);
        let deltas = compare(&base, &cur).unwrap();
        let simple = deltas.iter().find(|d| d.family == "simple").unwrap();
        assert!(simple.regressed(0.25));
        assert!((simple.change.unwrap() - 0.6).abs() < 1e-9);
        assert!(!deltas
            .iter()
            .find(|d| d.family == "combo")
            .unwrap()
            .regressed(0.25));
        assert!(!deltas
            .iter()
            .find(|d| d.family == "ring")
            .unwrap()
            .regressed(0.25));
    }

    #[test]
    fn vanished_family_counts_as_regressed() {
        let base = snapshot(&[("ring", 100), ("combo", 200)]);
        let cur = snapshot(&[("ring", 100)]);
        let deltas = compare(&base, &cur).unwrap();
        let combo = deltas.iter().find(|d| d.family == "combo").unwrap();
        assert_eq!(combo.current_ns, None);
        assert!(combo.regressed(0.25));
    }

    #[test]
    fn new_family_is_not_a_regression() {
        let base = snapshot(&[("ring", 100)]);
        let cur = snapshot(&[("ring", 100), ("teleport", 999_999)]);
        let deltas = compare(&base, &cur).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].regressed(0.25));
    }

    #[test]
    fn committed_baseline_parses() {
        let text = include_str!("../BENCH_strategies.json");
        let fams = family_means(text).unwrap();
        assert!(fams.iter().any(|f| f.family == "simple"));
        assert!(fams.iter().any(|f| f.family == "combo"));
        assert!(fams.iter().all(|f| f.mean_ns > 0.0));
    }

    #[test]
    fn series_schema_parses_and_gates() {
        let snap = concat!(
            "{\"shape\": {\"n\": 71}, \"series\": [\n",
            "  {\"name\": \"scalar_ladder\", \"median_ns\": 1000},\n",
            "  {\"name\": \"packed_ladder\", \"median_ns\": 100}\n",
            "]}"
        );
        let fams = family_means(snap).unwrap();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].family, "scalar_ladder");
        let regressed = concat!(
            "{\"series\": [\n",
            "  {\"name\": \"scalar_ladder\", \"median_ns\": 1000},\n",
            "  {\"name\": \"packed_ladder\", \"median_ns\": 200}\n",
            "]}"
        );
        let deltas = compare(snap, regressed).unwrap();
        assert!(deltas
            .iter()
            .find(|d| d.family == "packed_ladder")
            .unwrap()
            .regressed(0.25));
        assert!(!deltas
            .iter()
            .find(|d| d.family == "scalar_ladder")
            .unwrap()
            .regressed(0.25));
    }

    #[test]
    fn committed_adversary_snapshot_records_the_kernel_speedup() {
        // The acceptance artifact: both series present, word-parallel
        // ladder ≥ 5× over the scalar baseline on the acceptance shape.
        let text = include_str!("../BENCH_adversary.json");
        let fams = family_means(text).unwrap();
        let ns_of = |name: &str| {
            fams.iter()
                .find(|f| f.family == name)
                .unwrap_or_else(|| panic!("series {name} missing"))
                .mean_ns
        };
        assert!(ns_of("packed_local_search") > 0.0);
        assert!(ns_of("scalar_local_search") > 0.0);
        let speedup = ns_of("scalar_ladder") / ns_of("packed_ladder");
        assert!(
            speedup >= 5.0,
            "committed ladder speedup {speedup:.2}x below the 5x acceptance bar"
        );
    }

    #[test]
    fn committed_parallel_snapshot_beats_the_pr4_kernel_twofold() {
        // The tentpole acceptance pin, asserted on the *committed*
        // snapshot because the CI box exposes a single core: the full
        // ladder at 4 threads must run ≥2× faster than the PR 4 serial
        // kernel's committed 2,394,682 ns on the n=71, b=1200, r=3,
        // s=2, k=3 acceptance shape.
        const PR4_PACKED_LADDER_NS: f64 = 2_394_682.0;
        let text = include_str!("../BENCH_adversary_parallel.json");
        let fams = family_means(text).unwrap();
        let ns_of = |name: &str| {
            fams.iter()
                .find(|f| f.family == name)
                .unwrap_or_else(|| panic!("series {name} missing"))
                .mean_ns
        };
        for name in ["ladder_t1", "ladder_t_half", "ladder_t_all", "exact_k5_t4"] {
            assert!(ns_of(name) > 0.0, "series {name} must be positive");
        }
        let speedup = PR4_PACKED_LADDER_NS / ns_of("ladder_t4");
        assert!(
            speedup >= 2.0,
            "committed 4-thread ladder {speedup:.2}x below the 2x acceptance bar"
        );
        // And the gate itself accepts the snapshot against itself.
        let deltas = compare(text, text).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed(0.25)));
    }

    #[test]
    fn committed_parallel_one_thread_column_matches_the_serial_kernel() {
        // The lane rework must not regress the serial path: the
        // 1-thread ladder column of the parallel snapshot stays within
        // the 25% gate envelope of BENCH_adversary.json's packed
        // ladder (both committed from the same benching run).
        let parallel = family_means(include_str!("../BENCH_adversary_parallel.json")).unwrap();
        let serial = family_means(include_str!("../BENCH_adversary.json")).unwrap();
        let ns_of = |fams: &[FamilyTime], name: &str| {
            fams.iter()
                .find(|f| f.family == name)
                .unwrap_or_else(|| panic!("series {name} missing"))
                .mean_ns
        };
        let t1 = ns_of(&parallel, "ladder_t1");
        let packed = ns_of(&serial, "packed_ladder");
        assert!(
            t1 <= packed * 1.25,
            "1-thread parallel ladder {t1:.0} ns regresses the serial \
             kernel's {packed:.0} ns beyond the 25% gate"
        );
    }

    #[test]
    fn committed_domains_snapshot_records_all_three_ladders() {
        // The failure-domain gate's baseline: node ladder, flat domain
        // ladder and rack domain ladder all present with positive
        // medians, and the flat indirection within a sane envelope of
        // the node ladder (it shares the same kernel; 2x would mean the
        // unit layer regressed badly).
        let text = include_str!("../BENCH_domains.json");
        let fams = family_means(text).unwrap();
        let ns_of = |name: &str| {
            fams.iter()
                .find(|f| f.family == name)
                .unwrap_or_else(|| panic!("series {name} missing"))
                .mean_ns
        };
        assert!(ns_of("rack_domain_ladder") > 0.0);
        let overhead = ns_of("flat_domain_ladder") / ns_of("node_ladder");
        assert!(
            overhead < 2.0,
            "flat domain ladder {overhead:.2}x over the node ladder"
        );
        // And the gate itself accepts the snapshot against itself.
        let deltas = compare(text, text).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed(0.25)));
    }

    #[test]
    fn certified_schema_parses_and_gates() {
        // Regression: snapshots whose entries carry availability
        // certificates used to be rejected as an unknown schema,
        // silently disabling the gate for certified ladder timings.
        let snap = concat!(
            "{\"certified\": [\n",
            "  {\"name\": \"ladder_k3\", \"median_ns\": 1000, ",
            "\"certificate\": {\"v\": 1, \"kind\": \"node\"}},\n",
            "  {\"name\": \"ladder_k5\", \"median_ns\": 4000, \"certificate\": null}\n",
            "]}"
        );
        let fams = family_means(snap).unwrap();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].family, "ladder_k3");
        let slower = snap.replace("\"median_ns\": 1000", "\"median_ns\": 1500");
        let deltas = compare(snap, &slower).unwrap();
        assert!(deltas
            .iter()
            .find(|d| d.family == "ladder_k3")
            .unwrap()
            .regressed(0.25));
        assert!(!deltas
            .iter()
            .find(|d| d.family == "ladder_k5")
            .unwrap()
            .regressed(0.25));
    }

    #[test]
    fn scale_schema_parses_and_gates() {
        let snap = concat!(
            "{\"shape\": {\"n\": 71, \"r\": 3, \"s\": 2, \"k\": 3}, \"scale\": [\n",
            "  {\"name\": \"ladder_b100k\", \"b\": 100000, \"median_ns\": 81250000, ",
            "\"evals_per_second\": 12.5, \"peak_rss_bytes\": 11534336},\n",
            "  {\"name\": \"ladder_b1m\", \"b\": 1000000, \"median_ns\": 800000000, ",
            "\"evals_per_second\": 1.25, \"peak_rss_bytes\": 91226112}\n",
            "]}"
        );
        let fams = family_means(snap).unwrap();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].family, "ladder_b100k");
        let slower = snap.replace("\"median_ns\": 81250000", "\"median_ns\": 120000000");
        let deltas = compare(snap, &slower).unwrap();
        assert!(deltas
            .iter()
            .find(|d| d.family == "ladder_b100k")
            .unwrap()
            .regressed(0.25));
        assert!(!deltas
            .iter()
            .find(|d| d.family == "ladder_b1m")
            .unwrap()
            .regressed(0.25));
    }

    #[test]
    fn committed_scale_snapshot_fits_the_memory_budget() {
        // The scale acceptance pin: both shapes present with positive
        // medians, and the committed peak RSS at b = 10⁶ within the
        // 2 GiB acceptance budget. The RSS is read from the raw JSON
        // because family_means only carries timings.
        let text = include_str!("../BENCH_scale.json");
        let fams = family_means(text).unwrap();
        let ns_of = |name: &str| {
            fams.iter()
                .find(|f| f.family == name)
                .unwrap_or_else(|| panic!("series {name} missing"))
                .mean_ns
        };
        assert!(ns_of("ladder_b100k") > 0.0);
        assert!(ns_of("ladder_b1m") > 0.0);
        let doc = wcp_sim::json::Value::parse(text).unwrap();
        let entries = doc.get("scale").and_then(Value::as_array).unwrap();
        for entry in entries {
            let name = entry.get("name").and_then(Value::as_str).unwrap();
            let rss = entry.get("peak_rss_bytes").and_then(Value::as_f64).unwrap();
            assert!(
                rss > 0.0 && rss <= (2u64 << 30) as f64,
                "{name}: committed peak RSS {rss} outside (0, 2 GiB]"
            );
        }
        // And the gate itself accepts the snapshot against itself.
        let deltas = compare(text, text).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed(0.25)));
    }

    #[test]
    fn service_schema_parses_and_gates() {
        let snap = concat!(
            "{\"shape\": {\"n\": 71, \"b\": 1000000, \"r\": 3}, \"service\": [\n",
            "  {\"name\": \"closed_loop_t1\", \"threads\": 1, \"median_ns\": 4, ",
            "\"lookups_per_second\": 250000000, \"p99_staleness_epochs\": 0, ",
            "\"peak_rss_bytes\": 134217728},\n",
            "  {\"name\": \"closed_loop_t_all\", \"threads\": 8, \"median_ns\": 5, ",
            "\"lookups_per_second\": 1600000000, \"p99_staleness_epochs\": 1, ",
            "\"peak_rss_bytes\": 134217728}\n",
            "]}"
        );
        let fams = family_means(snap).unwrap();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].family, "closed_loop_t1");
        let slower = snap.replace("\"median_ns\": 4", "\"median_ns\": 6");
        let deltas = compare(snap, &slower).unwrap();
        assert!(deltas
            .iter()
            .find(|d| d.family == "closed_loop_t1")
            .unwrap()
            .regressed(0.25));
        assert!(!deltas
            .iter()
            .find(|d| d.family == "closed_loop_t_all")
            .unwrap()
            .regressed(0.25));
    }

    #[test]
    fn committed_service_snapshot_sustains_the_lookup_rate() {
        // The serving acceptance pin, on the *committed* snapshot: the
        // closed-loop zipf load test at one reader thread sustains at
        // least 1M lookups/s against the b = 10⁶ snapshot shape, and
        // every entry carries a positive timing and a sane RSS.
        let text = include_str!("../BENCH_service.json");
        let fams = family_means(text).unwrap();
        assert!(fams.iter().any(|f| f.family == "closed_loop_t1"));
        assert!(fams.iter().all(|f| f.mean_ns > 0.0));
        let doc = wcp_sim::json::Value::parse(text).unwrap();
        let entries = doc.get("service").and_then(Value::as_array).unwrap();
        for entry in entries {
            let name = entry.get("name").and_then(Value::as_str).unwrap();
            let rss = entry.get("peak_rss_bytes").and_then(Value::as_f64).unwrap();
            assert!(rss > 0.0, "{name}: committed peak RSS must be positive");
            let rate = entry
                .get("lookups_per_second")
                .and_then(Value::as_f64)
                .unwrap();
            if name == "closed_loop_t1" {
                assert!(
                    rate >= 1e6,
                    "committed single-threaded rate {rate:.0}/s below the 1M lookups/s bar"
                );
            }
        }
        // And the gate itself accepts the snapshot against itself.
        let deltas = compare(text, text).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed(0.25)));
    }

    #[test]
    fn malformed_snapshots_error() {
        assert!(family_means("{}").is_err());
        assert!(family_means("{\"strategies\": []}").is_err());
        assert!(family_means("{\"series\": []}").is_err());
        assert!(family_means("{\"certified\": []}").is_err());
        assert!(family_means("{\"scale\": []}").is_err());
        assert!(family_means("{\"service\": []}").is_err());
        assert!(family_means("{\"scale\": [{\"name\": \"x\"}]}").is_err());
        assert!(family_means("{\"strategies\": [{\"strategy\": \"x\"}]}").is_err());
        assert!(family_means("{\"series\": [{\"name\": \"x\"}]}").is_err());
        assert!(family_means("{\"certified\": [{\"name\": \"x\"}]}").is_err());
        assert!(family_means("{\"service\": [{\"name\": \"x\"}]}").is_err());
        assert!(family_means("nope").is_err());
    }
}
