//! Serving-layer throughput: zipf-skewed lookups against the epoch
//! snapshot, closed-loop against a churning [`wcp_service`] cluster at
//! the million-object acceptance shape.
//!
//! Besides the criterion measurement (static b = 10⁵ snapshot — the
//! b = 10⁶ closed loop dominates criterion's warmup budget), the run
//! writes a `BENCH_service.json` snapshot (override the path with the
//! `BENCH_SERVICE_OUT` environment variable) in the
//! `service[].{name, threads, median_ns, lookups_per_second,
//! p99_staleness_epochs, peak_rss_bytes}` schema `bench_regression`
//! parses, so CI's 25% gate covers the serving layer and the committed
//! snapshot pins the ≥ 1M lookups/s single-threaded acceptance floor
//! (asserted by a unit test in `wcp_bench::regression`).
//!
//! The closed-loop rows (`closed_loop_t1` / `_t_half` / `_t_all`) run
//! that many reader threads over YCSB-style zipf request tables while
//! one writer paces a `Fail`/`Recover` pair through the repair thread —
//! lookups/s is sustained across the whole run including the epoch
//! publishes, and `p99_staleness_epochs` is measured from the readers'
//! pinned snapshots against the live published epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use wcp_bench::{fixture_placement, peak_rss_bytes, snapshot_out};
use wcp_core::engine::ExhaustiveAttacker;
use wcp_core::{
    ClusterEvent, DynamicConfig, DynamicEngine, RandomVariant, StrategyKind, SystemParams,
};
use wcp_service::runtime::{fan_out, serve, snapshot_of};
use wcp_service::{ServiceConfig, ServiceEvent};
use wcp_sim::workload::ZipfSpec;

/// The acceptance shape: the n = 71 cluster at one million objects.
const N: u16 = 71;
const B: u64 = 1_000_000;
const R: u16 = 3;

fn bench_service_lookup(c: &mut Criterion) {
    let placement = fixture_placement(N, 100_000, R);
    let snapshot = snapshot_of(&placement);
    let table = ZipfSpec::ycsb(100_000, 0xBE_EF).sampler(0).table(8192);

    let mut group = c.benchmark_group("service_n71");
    group.bench_function("snapshot_lookup_b100k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &object in &table {
                hits += u64::from(snapshot.lookup(black_box(object)).is_some());
            }
            hits
        });
    });
    group.finish();

    write_snapshot();
}

/// One closed-loop run at `threads` readers over the b = 10⁶ engine:
/// returns (total lookups, slowest reader's seconds, p99 staleness).
fn closed_loop(threads: usize) -> (u64, f64, u64) {
    let params = SystemParams::new(N, B, R, 2, 2).expect("acceptance shape is valid");
    let kind = StrategyKind::Random {
        seed: 0x000b_e9c4,
        variant: RandomVariant::LoadBalanced,
    };
    // Capacity counts node *slots*; a few spares beyond the initial
    // membership keep Join legal without bloating the probe space.
    let capacity = N + 4;
    // A budget-capped attacker: the bench measures serving, not attack
    // quality, and the default exhaustive sweep (two attacks per event,
    // each over C(71,2) subsets of a million-object placement) would
    // dominate the closed loop by minutes.
    let attacker = ExhaustiveAttacker { budget: 64 };
    let engine =
        DynamicEngine::with_attacker(params, kind, capacity, DynamicConfig::default(), attacker)
            .expect("engine builds at the acceptance shape");
    let zipf = ZipfSpec::ycsb(B, 0xC0FFEE);
    let stop = AtomicBool::new(false);
    let config = ServiceConfig {
        queue_capacity: 16,
        max_batch: 4,
    };
    let (stats, _, _) = serve(engine, &config, |handle| {
        fan_out(threads + 1, |worker| {
            if worker == 0 {
                handle.enqueue(ServiceEvent::Churn(ClusterEvent::Fail { node: 3 }));
                std::thread::sleep(Duration::from_millis(30));
                handle.enqueue(ServiceEvent::Churn(ClusterEvent::Recover { node: 3 }));
                handle.quiesce();
                std::thread::sleep(Duration::from_millis(30));
                stop.store(true, Ordering::SeqCst);
                (0u64, 0.0f64, Vec::new())
            } else {
                let table = zipf.sampler(worker as u64).table(8192);
                let mut lookups = 0u64;
                let mut hits = 0u64;
                let mut staleness = Vec::new();
                let t = Instant::now();
                while !stop.load(Ordering::SeqCst) {
                    let snap = handle.snapshot();
                    staleness.push(handle.published_epoch().saturating_sub(snap.epoch()));
                    for &object in &table {
                        hits += u64::from(snap.lookup(object).is_some());
                    }
                    lookups += table.len() as u64;
                }
                black_box(hits);
                (lookups, t.elapsed().as_secs_f64(), staleness)
            }
        })
    });
    let lookups: u64 = stats.iter().map(|(l, _, _)| l).sum();
    let secs = stats.iter().map(|(_, s, _)| *s).fold(0.0f64, f64::max);
    let mut staleness: Vec<u64> = stats.iter().flat_map(|(_, _, st)| st.clone()).collect();
    staleness.sort_unstable();
    let p99 = staleness
        .get((staleness.len().saturating_sub(1)) * 99 / 100)
        .copied()
        .unwrap_or(0);
    (lookups, secs, p99)
}

/// Records the reader-ladder medians and peak RSS into the JSON
/// snapshot the CI gate consumes. Three samples per row, median by
/// rate — each sample is a full serve lifetime, so criterion-style
/// batching does not apply.
fn write_snapshot() {
    let all = std::thread::available_parallelism().map_or(4, usize::from);
    let ladder = [
        ("closed_loop_t1", 1),
        ("closed_loop_t_half", (all / 2).max(2)),
        ("closed_loop_t_all", all.max(3)),
    ];
    let mut entries: Vec<String> = Vec::new();
    for (name, threads) in ladder {
        let mut samples: Vec<(u64, f64, u64)> = (0..3).map(|_| closed_loop(threads)).collect();
        samples.sort_by(|a, b| {
            let ra = a.0 as f64 / a.1.max(1e-9);
            let rb = b.0 as f64 / b.1.max(1e-9);
            ra.partial_cmp(&rb).expect("rates are finite")
        });
        let (lookups, secs, p99) = samples[1];
        let rate = lookups as f64 / secs.max(1e-9);
        // Per-lookup cost on one reader thread: the gate's timing.
        let ns = 1e9 * threads as f64 / rate.max(1e-9);
        let rss = peak_rss_bytes().unwrap_or(0);
        entries.push(format!(
            "  {{\"name\": {name:?}, \"threads\": {threads}, \"median_ns\": {ns:.3}, \
             \"lookups_per_second\": {rate:.0}, \"p99_staleness_epochs\": {p99}, \
             \"peak_rss_bytes\": {rss}}}"
        ));
    }
    let json = format!(
        concat!(
            "{{\n\"shape\": {{\"n\": {n}, \"b\": {b}, \"r\": {r}}},\n",
            "\"service\": [\n{entries}\n]\n}}\n"
        ),
        n = N,
        b = B,
        r = R,
        entries = entries.join(",\n"),
    );
    let path = snapshot_out("BENCH_SERVICE_OUT", "BENCH_service.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_service_lookup);
criterion_main!(benches);
