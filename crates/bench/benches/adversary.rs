//! Worst-case adversary cost: the greedy / local-search / exact ladder on
//! a Fig. 7-scale instance, plus the quality ablation DESIGN.md calls out
//! (how close the heuristics get to exact).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wcp_adversary::{exact_worst, greedy_worst, local_search_worst, AdversaryConfig};
use wcp_bench::fixture_placement;

fn bench_adversary(c: &mut Criterion) {
    let placement = fixture_placement(31, 2400, 5);
    let (s, k) = (3u16, 4u16);

    let mut group = c.benchmark_group("adversary_n31_b2400");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| greedy_worst(black_box(&placement), s, k).failed);
    });
    group.bench_function("local_search", |b| {
        b.iter(|| {
            local_search_worst(black_box(&placement), s, k, &AdversaryConfig::default()).failed
        });
    });
    group.bench_function("exact_seeded", |b| {
        b.iter(|| {
            let seed = local_search_worst(&placement, s, k, &AdversaryConfig::default());
            exact_worst(black_box(&placement), s, k, u64::MAX, seed.failed)
                .expect("completes")
                .failed
                .max(seed.failed)
        });
    });
    group.finish();

    // Quality ablation printed once: greedy and LS vs exact.
    let exact = {
        let seed = local_search_worst(&placement, s, k, &AdversaryConfig::default());
        exact_worst(&placement, s, k, u64::MAX, seed.failed)
            .expect("completes")
            .failed
            .max(seed.failed)
    };
    let g = greedy_worst(&placement, s, k).failed;
    let ls = local_search_worst(&placement, s, k, &AdversaryConfig::default()).failed;
    println!("adversary quality (n=31, b=2400, s=3, k=4): greedy={g} local={ls} exact={exact}");
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
