//! Adversary-evaluation throughput: the word-parallel kernel ladder vs
//! the scalar reference ladder on the churn acceptance shape
//! (n=71, b=1200, r=3, s=2, k=3), plus the historical Fig. 7-scale
//! ladder group and the quality ablation.
//!
//! Besides the criterion measurements, the run writes a
//! `BENCH_adversary.json` snapshot (override the path with the
//! `BENCH_ADVERSARY_OUT` environment variable) recording median
//! evaluation times for both the scalar and packed series — so the
//! kernel's speedup is committed alongside the code and CI's
//! `bench_regression` gate can hold the line on it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wcp_adversary::{
    exact_worst_with, greedy_worst_with, local_search_worst_with, reference, AdversaryConfig,
    AdversaryScratch, Ladder,
};
use wcp_bench::{fixture_placement, median_ns};
use wcp_core::Placement;

/// The churn acceptance shape from ROADMAP/PR 3: n=71, b=1200, r=3.
fn acceptance_placement() -> Placement {
    fixture_placement(71, 1200, 3)
}

/// The scalar baseline for the full auto evaluation: reference local
/// search seeding the reference exact DFS (what `Ladder::run`
/// did before the kernel).
fn scalar_ladder(
    placement: &Placement,
    s: u16,
    k: u16,
    cfg: &AdversaryConfig,
    scratch: &mut AdversaryScratch,
) -> u64 {
    let seed = reference::local_search_worst_with(placement, s, k, cfg, scratch);
    reference::exact_worst(placement, s, k, u64::MAX, seed.failed)
        .expect("completes within budget")
        .failed
        .max(seed.failed)
}

fn bench_kernel_vs_scalar(c: &mut Criterion) {
    let placement = acceptance_placement();
    let (s, k) = (2u16, 3u16);
    let cfg = AdversaryConfig::default();
    let mut scratch = AdversaryScratch::new();

    let mut group = c.benchmark_group("adversary_n71_b1200_s2_k3");
    group.sample_size(20);
    group.bench_function("scalar_greedy", |b| {
        b.iter(|| reference::greedy_worst_with(black_box(&placement), s, k, &mut scratch).failed);
    });
    group.bench_function("packed_greedy", |b| {
        b.iter(|| greedy_worst_with(black_box(&placement), s, k, &mut scratch).failed);
    });
    group.bench_function("scalar_local_search", |b| {
        b.iter(|| {
            reference::local_search_worst_with(black_box(&placement), s, k, &cfg, &mut scratch)
                .failed
        });
    });
    group.bench_function("packed_local_search", |b| {
        b.iter(|| local_search_worst_with(black_box(&placement), s, k, &cfg, &mut scratch).failed);
    });
    group.bench_function("scalar_ladder", |b| {
        b.iter(|| scalar_ladder(black_box(&placement), s, k, &cfg, &mut scratch));
    });
    group.bench_function("packed_ladder", |b| {
        b.iter(|| {
            Ladder::new(&cfg)
                .scratch(&mut scratch)
                .run(black_box(&placement), s, k)
                .worst
                .failed
        });
    });
    group.finish();

    write_snapshot(&placement, s, k, &cfg);
}

fn bench_fig7_scale_ladder(c: &mut Criterion) {
    // The historical mid-size group kept for continuity with earlier
    // PRs' bench output.
    let placement = fixture_placement(31, 2400, 5);
    let (s, k) = (3u16, 4u16);
    let cfg = AdversaryConfig::default();
    let mut scratch = AdversaryScratch::new();

    let mut group = c.benchmark_group("adversary_n31_b2400");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| greedy_worst_with(black_box(&placement), s, k, &mut scratch).failed);
    });
    group.bench_function("local_search", |b| {
        b.iter(|| local_search_worst_with(black_box(&placement), s, k, &cfg, &mut scratch).failed);
    });
    group.bench_function("exact_seeded", |b| {
        b.iter(|| {
            let seed = local_search_worst_with(&placement, s, k, &cfg, &mut scratch);
            exact_worst_with(
                black_box(&placement),
                s,
                k,
                u64::MAX,
                seed.failed,
                &mut scratch,
            )
            .expect("completes")
            .failed
            .max(seed.failed)
        });
    });
    group.finish();

    // Quality ablation printed once: greedy and LS vs exact.
    let exact = {
        let seed = local_search_worst_with(&placement, s, k, &cfg, &mut scratch);
        exact_worst_with(&placement, s, k, u64::MAX, seed.failed, &mut scratch)
            .expect("completes")
            .failed
            .max(seed.failed)
    };
    let g = greedy_worst_with(&placement, s, k, &mut scratch).failed;
    let ls = local_search_worst_with(&placement, s, k, &cfg, &mut scratch).failed;
    println!("adversary quality (n=31, b=2400, s=3, k=4): greedy={g} local={ls} exact={exact}");
}

/// Records median scalar vs packed evaluation times into the JSON
/// snapshot the CI regression gate consumes.
fn write_snapshot(placement: &Placement, s: u16, k: u16, cfg: &AdversaryConfig) {
    let mut scratch = AdversaryScratch::new();
    let series: Vec<(&str, u128)> = vec![
        (
            "scalar_greedy",
            median_ns(|| reference::greedy_worst_with(placement, s, k, &mut scratch).failed),
        ),
        (
            "packed_greedy",
            median_ns(|| greedy_worst_with(placement, s, k, &mut scratch).failed),
        ),
        (
            "scalar_local_search",
            median_ns(|| {
                reference::local_search_worst_with(placement, s, k, cfg, &mut scratch).failed
            }),
        ),
        (
            "packed_local_search",
            median_ns(|| local_search_worst_with(placement, s, k, cfg, &mut scratch).failed),
        ),
        (
            "scalar_ladder",
            median_ns(|| scalar_ladder(placement, s, k, cfg, &mut scratch)),
        ),
        (
            "packed_ladder",
            median_ns(|| {
                Ladder::new(cfg)
                    .scratch(&mut scratch)
                    .run(placement, s, k)
                    .worst
                    .failed
            }),
        ),
    ];
    let lookup = |name: &str| {
        series
            .iter()
            .find(|(nm, _)| *nm == name)
            .map(|&(_, ns)| ns as f64)
            .expect("series present")
    };
    let speedup_ladder = lookup("scalar_ladder") / lookup("packed_ladder").max(1.0);
    let speedup_local = lookup("scalar_local_search") / lookup("packed_local_search").max(1.0);
    let speedup_greedy = lookup("scalar_greedy") / lookup("packed_greedy").max(1.0);
    let entries: Vec<String> = series
        .iter()
        .map(|(name, ns)| {
            format!(
                "  {{\"name\": {name:?}, \"median_ns\": {ns}, \"evals_per_second\": {:.1}}}",
                1e9 / (*ns as f64).max(1.0)
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n\"shape\": {{\"n\": {}, \"b\": {}, \"r\": {}, \"s\": {s}, \"k\": {k}}},\n",
            "\"series\": [\n{}\n],\n",
            "\"speedup_ladder\": {:.2},\n",
            "\"speedup_local_search\": {:.2},\n",
            "\"speedup_greedy\": {:.2}\n}}\n"
        ),
        placement.num_nodes(),
        placement.num_objects(),
        placement.replicas_per_object(),
        entries.join(",\n"),
        speedup_ladder,
        speedup_local,
        speedup_greedy,
        s = s,
        k = k,
    );
    let path = wcp_bench::snapshot_out("BENCH_ADVERSARY_OUT", "BENCH_adversary.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (ladder speedup {speedup_ladder:.2}x, \
             local-search {speedup_local:.2}x, greedy {speedup_greedy:.2}x)",
            path.display()
        ),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_kernel_vs_scalar, bench_fig7_scale_ladder);
criterion_main!(benches);
