//! Domain-adversary throughput: the failure-domain ladder vs the flat
//! per-node ladder on the acceptance shape (n=71, b=1200, r=3, s=2,
//! k=3).
//!
//! Three series: the plain node ladder (the baseline every earlier PR
//! tracked), the domain ladder on the *flat* topology (what the unit
//! indirection costs when every unit is one leaf), and the domain
//! ladder on a 12-rack topology (the correlated-failure workload this
//! bench exists to gate). Besides the criterion measurements, the run
//! writes a `BENCH_domains.json` snapshot (override the path with the
//! `BENCH_DOMAINS_OUT` environment variable) that CI's
//! `bench_regression` gate compares against the committed baseline at
//! the 25% threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wcp_adversary::{AdversaryConfig, Ladder};
use wcp_bench::{fixture_placement, median_ns};
use wcp_core::{Placement, Topology};

/// The churn/adversary acceptance shape: n=71, b=1200, r=3.
fn acceptance_placement() -> Placement {
    fixture_placement(71, 1200, 3)
}

fn bench_domain_vs_flat(c: &mut Criterion) {
    let placement = acceptance_placement();
    let (s, k) = (2u16, 3u16);
    let cfg = AdversaryConfig::default();
    let flat = Topology::flat(71);
    let racks = Topology::split(71, &[12]).expect("12 racks over 71 nodes");

    let mut group = c.benchmark_group("domains_n71_b1200_s2_k3");
    group.sample_size(10);
    group.bench_function("node_ladder", |b| {
        b.iter(|| {
            Ladder::new(&cfg)
                .run(black_box(&placement), s, k)
                .worst
                .failed
        });
    });
    group.bench_function("flat_domain_ladder", |b| {
        b.iter(|| {
            Ladder::new(&cfg)
                .run_domain(black_box(&placement), &flat, s, k)
                .worst
                .failed
        });
    });
    group.bench_function("rack_domain_ladder", |b| {
        b.iter(|| {
            Ladder::new(&cfg)
                .run_domain(black_box(&placement), &racks, s, k)
                .worst
                .failed
        });
    });
    group.finish();

    write_snapshot(&placement, &flat, &racks, s, k, &cfg);
}

/// Records the three ladder series into the JSON snapshot the CI
/// regression gate consumes.
fn write_snapshot(
    placement: &Placement,
    flat: &Topology,
    racks: &Topology,
    s: u16,
    k: u16,
    cfg: &AdversaryConfig,
) {
    let series: Vec<(&str, u128)> = vec![
        (
            "node_ladder",
            median_ns(|| Ladder::new(cfg).run(placement, s, k).worst.failed),
        ),
        (
            "flat_domain_ladder",
            median_ns(|| {
                Ladder::new(cfg)
                    .run_domain(placement, flat, s, k)
                    .worst
                    .failed
            }),
        ),
        (
            "rack_domain_ladder",
            median_ns(|| {
                Ladder::new(cfg)
                    .run_domain(placement, racks, s, k)
                    .worst
                    .failed
            }),
        ),
    ];
    let lookup = |name: &str| {
        series
            .iter()
            .find(|(nm, _)| *nm == name)
            .map(|&(_, ns)| ns as f64)
            .expect("series present")
    };
    // The unit indirection's cost on the flat topology, and how much a
    // real rack tree costs relative to flat — the two ratios the README
    // documents.
    let flat_overhead = lookup("flat_domain_ladder") / lookup("node_ladder").max(1.0);
    let rack_vs_flat = lookup("rack_domain_ladder") / lookup("flat_domain_ladder").max(1.0);
    let entries: Vec<String> = series
        .iter()
        .map(|(name, ns)| {
            format!(
                "  {{\"name\": {name:?}, \"median_ns\": {ns}, \"evals_per_second\": {:.1}}}",
                1e9 / (*ns as f64).max(1.0)
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n\"shape\": {{\"n\": {}, \"b\": {}, \"r\": {}, \"s\": {s}, \"k\": {k}, ",
            "\"racks\": {}}},\n",
            "\"series\": [\n{}\n],\n",
            "\"flat_overhead\": {:.2},\n",
            "\"rack_vs_flat\": {:.2}\n}}\n"
        ),
        placement.num_nodes(),
        placement.num_objects(),
        placement.replicas_per_object(),
        racks.domains_at(1),
        entries.join(",\n"),
        flat_overhead,
        rack_vs_flat,
        s = s,
        k = k,
    );
    let path = wcp_bench::snapshot_out("BENCH_DOMAINS_OUT", "BENCH_domains.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (flat overhead {flat_overhead:.2}x, rack vs flat {rack_vs_flat:.2}x)",
            path.display()
        ),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_domain_vs_flat);
criterion_main!(benches);
