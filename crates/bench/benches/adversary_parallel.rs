//! Thread-parallel adversary ladder throughput on the churn acceptance
//! shape (n=71, b=1200, r=3, s=2, k=3): the full ladder at 1, half and
//! all threads plus a fixed 4-thread column, and exact-rung feasibility
//! at k=5 under the frontier-parallel branch-and-bound.
//!
//! Besides the criterion measurements, the run writes a
//! `BENCH_adversary_parallel.json` snapshot (override the path with the
//! `BENCH_ADVERSARY_PARALLEL_OUT` environment variable) in the same
//! `series[].{name, median_ns}` schema `bench_regression` parses, so
//! CI's 25% gate covers the parallel path and the committed snapshot
//! pins the ≥2× four-thread target against the PR 4 serial kernel
//! (asserted by a unit test in `wcp_bench::regression`, not in CI —
//! the CI box exposes a single core).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use wcp_adversary::{
    exact_worst_parallel, local_search_worst_with, AdversaryConfig, AdversaryScratch, Ladder,
};
use wcp_bench::{fixture_placement, median_ns, snapshot_out};
use wcp_core::{Parallelism, Placement};

/// The churn acceptance shape from ROADMAP/PR 3: n=71, b=1200, r=3.
fn acceptance_placement() -> Placement {
    fixture_placement(71, 1200, 3)
}

/// The default config with the parallel ladder pinned to `threads`.
fn ladder_cfg(threads: usize) -> AdversaryConfig {
    AdversaryConfig {
        parallelism: Some(Parallelism::new(threads)),
        ..AdversaryConfig::default()
    }
}

fn bench_parallel_ladder(c: &mut Criterion) {
    let placement = acceptance_placement();
    let (s, k) = (2u16, 3u16);
    let mut scratch = AdversaryScratch::new();
    let available = Parallelism::default().threads();

    let mut group = c.benchmark_group("adversary_parallel_n71_b1200_s2_k3");
    group.sample_size(20);
    for threads in [1, available.div_ceil(2).max(1), 4] {
        let cfg = ladder_cfg(threads);
        group.bench_function(format!("ladder_{threads}_threads"), |b| {
            b.iter(|| {
                Ladder::new(&cfg)
                    .scratch(&mut scratch)
                    .run(black_box(&placement), s, k)
                    .worst
                    .failed
            });
        });
    }
    group.finish();

    write_snapshot(&placement, s, k);
}

/// Median of three timed runs — for the seconds-scale exact k=5 series,
/// where `median_ns`'s nine batched samples would dominate the bench's
/// wall time without improving a measurement this long.
fn median3_ns(mut one: impl FnMut() -> u64) -> u128 {
    let mut samples: Vec<u128> = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(one());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[1]
}

/// Records the ladder medians at 1/half/all/4 threads and the exact
/// k=5 feasibility run into the JSON snapshot the CI gate consumes.
fn write_snapshot(placement: &Placement, s: u16, k: u16) {
    let mut scratch = AdversaryScratch::new();
    let available = Parallelism::default().threads();
    let half = available.div_ceil(2).max(1);
    let mut series: Vec<(String, u128)> = Vec::new();
    for (label, threads) in [
        ("ladder_t1", 1),
        ("ladder_t_half", half),
        ("ladder_t_all", available),
        ("ladder_t4", 4),
    ] {
        let cfg = ladder_cfg(threads);
        let ns = median_ns(|| {
            Ladder::new(&cfg)
                .scratch(&mut scratch)
                .run(placement, s, k)
                .worst
                .failed
        });
        series.push((format!("{label} (threads={threads})"), ns));
    }

    // Exact-rung feasibility at k=5 on the acceptance shape: LS seeds
    // the incumbent, then the frontier-parallel exact rung proves the
    // optimum with an unbounded budget.
    let k5 = 5u16;
    let cfg5 = ladder_cfg(4);
    let seed = local_search_worst_with(placement, s, k5, &cfg5, &mut scratch).failed;
    let mut exact_k5_failed = 0u64;
    let exact_k5_ns = median3_ns(|| {
        let wc = exact_worst_parallel(placement, s, k5, u64::MAX, seed, Parallelism::new(4))
            .expect("unbounded budget always completes");
        exact_k5_failed = wc.failed.max(seed);
        exact_k5_failed
    });
    series.push(("exact_k5_t4 (threads=4)".to_string(), exact_k5_ns));

    let entries: Vec<String> = series
        .iter()
        .map(|(name, ns)| {
            format!(
                "  {{\"name\": {name:?}, \"median_ns\": {ns}, \"evals_per_second\": {:.1}}}",
                1e9 / (*ns as f64).max(1.0)
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n\"shape\": {{\"n\": {}, \"b\": {}, \"r\": {}, \"s\": {s}, \"k\": {k}}},\n",
            "\"threads_available\": {},\n",
            "\"exact_k5_failed\": {},\n",
            "\"series\": [\n{}\n]\n}}\n"
        ),
        placement.num_nodes(),
        placement.num_objects(),
        placement.replicas_per_object(),
        available,
        exact_k5_failed,
        entries.join(",\n"),
        s = s,
        k = k,
    );
    let path = snapshot_out(
        "BENCH_ADVERSARY_PARALLEL_OUT",
        "BENCH_adversary_parallel.json",
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (threads available: {available}, exact k=5 failed: {exact_k5_failed})",
            path.display()
        ),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_parallel_ladder);
criterion_main!(benches);
