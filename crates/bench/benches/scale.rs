//! Million-object regime throughput: the full auto adversary ladder
//! (histogram heuristic rungs + packed exact rung) on the n = 71-derived
//! shape at b = 10⁵ and b = 10⁶, with peak RSS recorded per shape.
//!
//! Besides the criterion measurement (b = 10⁵ only — a b = 10⁶ build
//! dominates criterion's warmup budget), the run writes a
//! `BENCH_scale.json` snapshot (override the path with the
//! `BENCH_SCALE_OUT` environment variable) in the
//! `scale[].{name, b, median_ns, evals_per_second, peak_rss_bytes}`
//! schema `bench_regression` parses, so CI's 25% gate covers the scale
//! regime and the committed snapshot pins the ≤ 2 GiB peak-RSS
//! acceptance budget (asserted by a unit test in
//! `wcp_bench::regression`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use wcp_adversary::{AdversaryConfig, AdversaryScratch, Ladder};
use wcp_bench::{fixture_placement, median_ns, peak_rss_bytes, snapshot_out};

fn bench_scale_ladder(c: &mut Criterion) {
    let placement = fixture_placement(71, 100_000, 3);
    let (s, k) = (2u16, 3u16);
    let config = AdversaryConfig::default();
    let mut scratch = AdversaryScratch::new();

    let mut group = c.benchmark_group("scale_n71_s2_k3");
    group.sample_size(10);
    group.bench_function("ladder_b100k", |b| {
        b.iter(|| {
            Ladder::new(&config)
                .scratch(&mut scratch)
                .run(black_box(&placement), s, k)
                .worst
                .failed
        });
    });
    group.finish();

    write_snapshot(s, k, &config);
}

/// Median of three timed runs — for the seconds-scale b = 10⁶ series,
/// where `median_ns`'s nine batched samples would dominate the bench's
/// wall time without improving a measurement this long.
fn median3_ns(mut one: impl FnMut() -> u64) -> u128 {
    let mut samples: Vec<u128> = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(one());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[1]
}

/// Records the ladder medians and peak RSS at both scale shapes into the
/// JSON snapshot the CI gate consumes. Shapes run in ascending `b`:
/// `VmHWM` is a process-lifetime high-water mark, so each reading is
/// dominated by the largest shape run so far.
fn write_snapshot(s: u16, k: u16, config: &AdversaryConfig) {
    let mut scratch = AdversaryScratch::new();
    let mut entries: Vec<String> = Vec::new();
    for (name, b, seconds_scale) in [
        ("ladder_b100k", 100_000u64, false),
        ("ladder_b1m", 1_000_000, true),
    ] {
        let placement = fixture_placement(71, b, 3);
        let one = || {
            Ladder::new(config)
                .scratch(&mut scratch)
                .run(&placement, s, k)
                .worst
                .failed
        };
        let ns = if seconds_scale {
            median3_ns(one)
        } else {
            median_ns(one)
        };
        let rss = peak_rss_bytes().unwrap_or(0);
        entries.push(format!(
            "  {{\"name\": {name:?}, \"b\": {b}, \"median_ns\": {ns}, \
             \"evals_per_second\": {:.3}, \"peak_rss_bytes\": {rss}}}",
            1e9 / (ns as f64).max(1.0)
        ));
    }
    let json = format!(
        concat!(
            "{{\n\"shape\": {{\"n\": 71, \"r\": 3, \"s\": {s}, \"k\": {k}}},\n",
            "\"hist_threshold\": {},\n",
            "\"scale\": [\n{}\n]\n}}\n"
        ),
        config.hist_threshold,
        entries.join(",\n"),
        s = s,
        k = k,
    );
    let path = snapshot_out("BENCH_SCALE_OUT", "BENCH_scale.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_scale_ladder);
criterion_main!(benches);
