//! Combo DP (Eqns. 5–7) planning cost as the object count grows — the
//! paper claims `O(s·b)` treating other parameters as constants; the
//! scaling here confirms near-linearity in `b`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wcp_core::{combo_plan, PackingProfile, SystemParams};

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("combo_dp");
    for &b in &[600u64, 2400, 9600, 38_400] {
        // The heaviest paper configuration: n = 257, r = 5, s = 3.
        let params = SystemParams::new(257, b, 5, 3, 6).expect("valid");
        let profile = PackingProfile::paper(&params).expect("paper grid");
        group.bench_with_input(BenchmarkId::new("n257_r5_s3", b), &b, |bench, _| {
            bench.iter(|| {
                let plan = combo_plan(black_box(&profile), black_box(&params)).expect("DP");
                black_box(plan.lb_avail)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("combo_dp_by_s");
    for &s in &[2u16, 3, 4, 5] {
        let params = SystemParams::new(257, 9600, 5, s, 8).expect("valid");
        let profile = PackingProfile::paper(&params).expect("paper grid");
        group.bench_with_input(BenchmarkId::new("n257_b9600", s), &s, |bench, _| {
            bench.iter(|| {
                combo_plan(black_box(&profile), black_box(&params))
                    .expect("DP")
                    .lb_avail
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
