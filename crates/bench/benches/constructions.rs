//! Design construction throughput: every family used by the paper's
//! Fig. 4 slots, at its largest evaluation size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wcp_designs::greedy::{greedy_packing, GreedyConfig};
use wcp_designs::{lines, sqs, sts, subline, unital};

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructions");
    group.sample_size(10);

    group.bench_function("sts_255", |b| {
        b.iter(|| sts::steiner_triple_system(black_box(255)).expect("STS"));
    });
    group.bench_function("ag_lines_4_4 (2-(256,4,1))", |b| {
        b.iter(|| lines::ag_line_design(black_box(4), black_box(4)).expect("AG"));
    });
    group.bench_function("pg_lines_4_3 (2-(85,5,1))", |b| {
        b.iter(|| lines::pg_line_design(black_box(4), black_box(3)).expect("PG"));
    });
    group.bench_function("hermitian_unital_4 (2-(65,5,1))", |b| {
        b.iter(|| unital::hermitian_unital(black_box(4)).expect("unital"));
    });
    group.bench_function("boolean_sqs_256", |b| {
        b.iter(|| sqs::boolean_sqs(black_box(8)).expect("SQS"));
    });
    group.bench_function("moebius_65 (3-(65,5,1))", |b| {
        b.iter(|| subline::subline_design(4, 3, usize::MAX).expect("subline"));
    });
    group.bench_function("moebius_257_prefix_9600", |b| {
        b.iter(|| subline::subline_design(4, 4, black_box(9600)).expect("subline"));
    });
    group.bench_function("greedy_4_23_5 (4-(23,5,1) slot)", |b| {
        b.iter(|| greedy_packing(23, 5, 4, 1, &GreedyConfig::default()).expect("greedy"));
    });
    group.bench_function("transversal_td_5_49", |b| {
        b.iter(|| wcp_designs::mols::transversal_design(5, 49).expect("TD"));
    });
    group.finish();

    let mut group = c.benchmark_group("registry_and_chunking");
    group.sample_size(10);
    group.bench_function("best_unit_packing_2_5_257", |b| {
        let cfg = wcp_designs::registry::RegistryConfig {
            allow_greedy: false,
            ..wcp_designs::registry::RegistryConfig::default()
        };
        b.iter(|| {
            wcp_designs::registry::best_unit_packing(2, 5, 257, 10_000, &cfg)
                .expect("constructible")
                .capacity()
        });
    });
    group.bench_function("chunking_profile_800_r5_t2", |b| {
        let sizes = wcp_designs::catalog::steiner_sizes(2, 5, 5, 800);
        b.iter(|| {
            wcp_designs::chunking::capacity_profile(800, 5, 2, 3, &sizes, 1)
                .last()
                .copied()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_constructions);
criterion_main!(benches);
