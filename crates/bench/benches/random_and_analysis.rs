//! Random placement sampling throughput and Theorem-2 analysis cost at
//! the paper's largest scale (`b = 38 400`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wcp_analysis::theorem2::VulnTable;
use wcp_core::{PlannerContext, RandomVariant, StrategyKind, SystemParams};

fn bench_random(c: &mut Criterion) {
    let ctx = PlannerContext::default();
    let mut group = c.benchmark_group("random_placement");
    group.sample_size(10);
    for &(n, b, r) in &[(71u16, 2400u64, 3u16), (257, 9600, 5)] {
        let params = SystemParams::new(n, b, r, 1, 1).expect("valid");
        group.bench_function(format!("balanced_n{n}_b{b}_r{r}"), |bench| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                StrategyKind::Random {
                    seed,
                    variant: RandomVariant::LoadBalanced,
                }
                .plan(black_box(&params), &ctx)
                .expect("plans")
                .build(&params)
                .expect("sample")
                .num_objects()
            });
        });
    }
    group.finish();
}

fn bench_theorem2(c: &mut Criterion) {
    let table = VulnTable::new(38_400);
    let mut group = c.benchmark_group("theorem2");
    group.bench_function("pr_avail_b38400", |b| {
        b.iter(|| table.pr_avail(black_box(257), 8, 5, 3, 38_400));
    });
    group.bench_function("ln_vuln_single", |b| {
        b.iter(|| table.ln_vuln(black_box(257), 8, 5, 3, 38_400, 100));
    });
    group.bench_function("table_build_38400", |b| {
        b.iter(|| VulnTable::new(black_box(38_400)));
    });
    group.finish();
}

criterion_group!(benches, bench_random, bench_theorem2);
criterion_main!(benches);
