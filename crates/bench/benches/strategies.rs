//! Apples-to-apples strategy sweep through the unified `Engine` facade:
//! every `StrategyKind` family runs the identical plan → build → attack
//! pipeline on one parameter set, so future PRs have a perf baseline for
//! the whole surface, not just individual hot paths.
//!
//! Besides the criterion measurements, the run writes a
//! `BENCH_strategies.json` snapshot (override the path with the
//! `BENCH_OUT` environment variable) recording, per strategy: the
//! claimed lower bound, the measured worst-case availability, whether
//! the adversary was exact, and the median end-to-end pipeline cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use wcp_core::{Engine, StrategyKind, SystemParams};

/// One parameter set, small enough that the engine's exhaustive
/// attacker is exact (C(13, 3) = 286 failure sets), so the sweep
/// measures every family end to end in comparable conditions.
fn sweep_params() -> SystemParams {
    SystemParams::new(13, 260, 3, 2, 3).expect("valid sweep parameters")
}

fn bench_strategy_sweep(c: &mut Criterion) {
    let params = sweep_params();
    let engine = Engine::new(params);
    let mut group = c.benchmark_group("engine_sweep_n13_b260");
    group.sample_size(10);
    for kind in StrategyKind::all(&params) {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                engine
                    .evaluate(black_box(&kind))
                    .expect("evaluates")
                    .measured_availability
            });
        });
    }
    group.finish();

    write_snapshot(&engine, &params);
}

/// Records one medianized evaluation per strategy into the JSON
/// snapshot.
fn write_snapshot(engine: &Engine, params: &SystemParams) {
    const RUNS: usize = 5;
    let mut entries = Vec::new();
    for kind in StrategyKind::all(params) {
        let mut costs: Vec<u128> = (0..RUNS)
            .map(|_| {
                let t = Instant::now();
                let _ = engine.evaluate(&kind).expect("evaluates");
                t.elapsed().as_nanos()
            })
            .collect();
        costs.sort_unstable();
        let report = engine.evaluate(&kind).expect("evaluates");
        entries.push(format!(
            concat!(
                "  {{\"strategy\": {:?}, \"lower_bound\": {}, ",
                "\"measured_availability\": {}, \"exact\": {}, ",
                "\"median_pipeline_ns\": {}}}"
            ),
            report.strategy,
            report.lower_bound,
            report.measured_availability,
            report.exact,
            costs[RUNS / 2]
        ));
    }
    let json = format!(
        "{{\n\"params\": {{\"n\": {}, \"b\": {}, \"r\": {}, \"s\": {}, \"k\": {}}},\n\"strategies\": [\n{}\n]\n}}\n",
        params.n(),
        params.b(),
        params.r(),
        params.s(),
        params.k(),
        entries.join(",\n")
    );
    let path = wcp_bench::snapshot_out("BENCH_OUT", "BENCH_strategies.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_strategy_sweep);
criterion_main!(benches);
