//! Throughput of the parallel sweep subsystem: cells per second at 1,
//! half, and all cores, over a fixed mid-size grid driven through the
//! full adversary ladder (`SweepAdversary`, scratch reuse on).
//!
//! Besides the criterion measurements, the run writes a
//! `BENCH_sweep.json` snapshot (override the path with the
//! `BENCH_SWEEP_OUT` environment variable) so future PRs can track
//! sweep throughput the same way `BENCH_strategies.json` tracks the
//! per-strategy pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use wcp_adversary::SweepAdversary;
use wcp_core::sweep::{sweep_with, SweepOptions, SweepSpec};
use wcp_core::StrategyKind;

/// The benchmark grid: every strategy family over a small n so each
/// cell stays cheap and the cell count (not one giant cell) dominates.
fn bench_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("bench-sweep");
    spec.grid.n = vec![13];
    spec.grid.b = vec![26, 52, 104, 208];
    spec.grid.r = vec![3];
    spec.grid.s = vec![2];
    spec.grid.k = vec![3, 4];
    spec.strategies = vec![
        StrategyKind::Simple { x: 0 },
        StrategyKind::Simple { x: 1 },
        StrategyKind::Combo,
        StrategyKind::parse_spec("random").expect("builtin spec"),
        StrategyKind::Ring,
        StrategyKind::Group,
        StrategyKind::Adaptive,
    ];
    spec
}

/// Deduplicated, sorted `{1, cores/2, cores}`.
fn thread_points() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut points = vec![1, (cores / 2).max(1), cores];
    points.sort_unstable();
    points.dedup();
    points
}

fn options(threads: usize) -> SweepOptions {
    SweepOptions {
        threads,
        ..SweepOptions::default()
    }
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let spec = bench_spec();
    let cells = spec.cells().len();
    let mut group = c.benchmark_group(format!("sweep_{cells}_cells"));
    group.sample_size(10);
    for threads in thread_points() {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| sweep_with(black_box(&spec), &options(threads), SweepAdversary::new).len());
        });
    }
    group.finish();

    write_snapshot(&spec);
}

/// Records median cells/second per thread count into the JSON snapshot.
fn write_snapshot(spec: &SweepSpec) {
    const RUNS: usize = 5;
    let cells = spec.cells().len();
    let mut entries = Vec::new();
    for threads in thread_points() {
        let mut secs: Vec<f64> = (0..RUNS)
            .map(|_| {
                let t = Instant::now();
                let records = sweep_with(spec, &options(threads), SweepAdversary::new);
                assert_eq!(records.len(), cells);
                t.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        let median = secs[RUNS / 2];
        entries.push(format!(
            "  {{\"threads\": {threads}, \"median_seconds\": {median:.6}, \"cells_per_second\": {:.1}}}",
            cells as f64 / median.max(1e-12),
        ));
    }
    let json = format!(
        "{{\n\"label\": {:?},\n\"cells\": {cells},\n\"throughput\": [\n{}\n]\n}}\n",
        spec.label,
        entries.join(",\n"),
    );
    let path = wcp_bench::snapshot_out("BENCH_SWEEP_OUT", "BENCH_sweep.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
