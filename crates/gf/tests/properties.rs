//! Property-based tests for finite fields and geometries.

use proptest::prelude::*;
use wcp_gf::{geometry, projline::Moebius, Gf};

/// The prime powers ≤ 128 (field sizes the constructions use).
const PRIME_POWERS: &[u32] = &[
    2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32, 49, 64, 81, 121, 125, 128,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Field axioms on random element triples of random fields.
    #[test]
    fn field_axioms(qi in 0usize..PRIME_POWERS.len(), seed in any::<u64>()) {
        let q = PRIME_POWERS[qi];
        let gf = Gf::new(q).expect("prime power");
        let a = (seed % u64::from(q)) as u32;
        let b = ((seed >> 16) % u64::from(q)) as u32;
        let c = ((seed >> 32) % u64::from(q)) as u32;
        prop_assert_eq!(gf.add(a, b), gf.add(b, a));
        prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        prop_assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
        prop_assert_eq!(gf.sub(gf.add(a, b), b), a);
        if b != 0 {
            prop_assert_eq!(gf.mul(gf.div(a, b), b), a);
        }
        // Frobenius is a field automorphism: (a+b)^p = a^p + b^p.
        let p = u64::from(gf.characteristic());
        prop_assert_eq!(
            gf.pow(gf.add(a, b), p),
            gf.add(gf.pow(a, p), gf.pow(b, p))
        );
    }

    /// Fermat: a^q = a for every element.
    #[test]
    fn fermat(qi in 0usize..PRIME_POWERS.len(), seed in any::<u64>()) {
        let q = PRIME_POWERS[qi];
        let gf = Gf::new(q).expect("prime power");
        let a = (seed % u64::from(q)) as u32;
        prop_assert_eq!(gf.pow(a, u64::from(q)), a);
    }

    /// Möbius maps compose consistently with their defining triples: the
    /// map through the images of (0, 1, ∞) under m is m itself.
    #[test]
    fn moebius_reconstruction(qi in 0usize..8, seed in any::<u64>()) {
        let q = PRIME_POWERS[qi];
        let gf = Gf::new(q).expect("prime power");
        let npts = u64::from(q) + 1;
        let a = (seed % npts) as u32;
        let b = ((seed >> 20) % npts) as u32;
        let c = ((seed >> 40) % npts) as u32;
        prop_assume!(a != b && b != c && a != c);
        let m = Moebius::through_images(&gf, [a, b, c]).expect("distinct");
        let images = [m.apply(&gf, 0), m.apply(&gf, 1), m.apply(&gf, q)];
        let m2 = Moebius::through_images(&gf, images).expect("distinct images");
        for p in 0..=q {
            prop_assert_eq!(m.apply(&gf, p), m2.apply(&gf, p));
        }
    }
}

/// Line designs have the right block counts for a sample of geometries
/// (full pair-balance is covered by unit tests; this checks the formulas
/// across more parameters).
#[test]
fn line_counts_match_formulas() {
    for (q, d) in [(2u32, 2u32), (2, 4), (3, 2), (3, 3), (4, 2), (5, 2), (7, 2)] {
        let gf = Gf::new(q).unwrap();
        let ag = geometry::ag_lines(&gf, d);
        let v = geometry::ag_point_count(q, d);
        let expect = v * (v - 1) / (u64::from(q) * (u64::from(q) - 1));
        assert_eq!(ag.len() as u64, expect, "AG({d},{q})");
        if d >= 2 {
            let pg = geometry::pg_lines(&gf, d);
            let vp = geometry::pg_point_count(q, d);
            let expect = vp * (vp - 1) / (u64::from(q + 1) * u64::from(q));
            assert_eq!(pg.len() as u64, expect, "PG({d},{q})");
        }
    }
}
