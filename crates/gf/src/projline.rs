//! The projective line `PG(1, q)` and Möbius transformations (`PGL(2, q)`).
//!
//! Subline designs — the `3-(q^d + 1, q + 1, 1)` family that provides the
//! inversive planes (`d = 2`), the paper's `3-(65,5,1)`, `3-(257,5,1)` and
//! `3-(28,4,1)` — are orbits of the standard subline
//! `PG(1, q) ⊂ PG(1, q^d)` under `PGL(2, q^d)`. This module provides the
//! point encoding and the Möbius map through three prescribed points, which
//! together let callers enumerate the orbit triple-by-triple.

use crate::Gf;

/// The point at infinity of `PG(1, q)` is encoded as index `q`; finite
/// points `x ∈ GF(q)` are encoded as their field index. The projective line
/// therefore has points `0 ..= q`.
#[must_use]
pub fn infinity(gf: &Gf) -> u32 {
    gf.order()
}

/// Number of points of `PG(1, q)`, i.e. `q + 1`.
#[must_use]
pub fn point_count(gf: &Gf) -> u32 {
    gf.order() + 1
}

/// Homogeneous coordinates `(u : v)` of an encoded point.
fn homogeneous(gf: &Gf, pt: u32) -> (u32, u32) {
    if pt == gf.order() {
        (1, 0)
    } else {
        (pt, 1)
    }
}

/// A Möbius transformation `t ↦ (a·t + b)/(c·t + d)` over `GF(q)`,
/// represented by an invertible 2×2 matrix.
///
/// # Examples
///
/// ```
/// use wcp_gf::{projline::Moebius, Gf};
///
/// let f = Gf::new(5)?;
/// let inf = f.order(); // encoded point at infinity
/// let m = Moebius::through_images(&f, [2, 3, inf]).unwrap();
/// assert_eq!(m.apply(&f, 0), 2);       // 0 ↦ first target
/// assert_eq!(m.apply(&f, 1), 3);       // 1 ↦ second target
/// assert_eq!(m.apply(&f, inf), inf);   // ∞ ↦ third target
/// # Ok::<(), wcp_gf::GfError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Moebius {
    a: u32,
    b: u32,
    c: u32,
    d: u32,
}

impl Moebius {
    /// The unique map sending `(0, 1, ∞)` to the three distinct points
    /// `targets = [p0, p1, p∞]` (encoded form). Returns `None` if the
    /// targets are not pairwise distinct.
    ///
    /// `PGL(2, q)` is sharply 3-transitive, so every Möbius map arises this
    /// way for exactly one ordered triple.
    #[must_use]
    pub fn through_images(gf: &Gf, targets: [u32; 3]) -> Option<Self> {
        let [p0, p1, pinf] = targets;
        if p0 == p1 || p0 == pinf || p1 == pinf {
            return None;
        }
        let (x0, x1) = homogeneous(gf, p0); // image of 0 ~ column 2
        let (y0, y1) = homogeneous(gf, p1); // image of 1 ~ col1 + col2
        let (z0, z1) = homogeneous(gf, pinf); // image of ∞ ~ column 1
                                              // Solve [z | x] · (α, β)^T = y for α, β ∈ GF(q)*.
        let det = gf.sub(gf.mul(z0, x1), gf.mul(z1, x0));
        debug_assert_ne!(det, 0, "distinct projective points are independent");
        let det_inv = gf.inv(det)?;
        let alpha = gf.mul(gf.sub(gf.mul(y0, x1), gf.mul(y1, x0)), det_inv);
        let beta = gf.mul(gf.sub(gf.mul(z0, y1), gf.mul(z1, y0)), det_inv);
        debug_assert_ne!(alpha, 0);
        debug_assert_ne!(beta, 0);
        Some(Self {
            a: gf.mul(alpha, z0),
            b: gf.mul(beta, x0),
            c: gf.mul(alpha, z1),
            d: gf.mul(beta, x1),
        })
    }

    /// Applies the map to an encoded point.
    #[must_use]
    pub fn apply(&self, gf: &Gf, pt: u32) -> u32 {
        let (u, v) = homogeneous(gf, pt);
        let nu = gf.add(gf.mul(self.a, u), gf.mul(self.b, v));
        let nv = gf.add(gf.mul(self.c, u), gf.mul(self.d, v));
        if nv == 0 {
            gf.order()
        } else {
            gf.div(nu, nv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharply_three_transitive() {
        let gf = Gf::new(7).unwrap();
        let pts: Vec<u32> = (0..point_count(&gf)).collect();
        // Every ordered triple of distinct points is hit by exactly one map
        // of the (0,1,∞) parametrization, and the map indeed sends 0,1,∞
        // there.
        let mut count = 0;
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    let Some(m) = Moebius::through_images(&gf, [a, b, c]) else {
                        continue;
                    };
                    count += 1;
                    assert_eq!(m.apply(&gf, 0), a);
                    assert_eq!(m.apply(&gf, 1), b);
                    assert_eq!(m.apply(&gf, infinity(&gf)), c);
                }
            }
        }
        // |PGL(2,7)| = 8·7·6 = 336 ordered triples.
        assert_eq!(count, 336);
    }

    #[test]
    fn maps_are_bijections() {
        let gf = Gf::new(9).unwrap();
        let inf = infinity(&gf);
        for targets in [[0u32, 1, 2], [3, inf, 5], [inf, 0, 8], [7, 2, 0]] {
            let m = Moebius::through_images(&gf, targets).unwrap();
            let mut seen = vec![false; point_count(&gf) as usize];
            for p in 0..point_count(&gf) {
                let img = m.apply(&gf, p) as usize;
                assert!(!seen[img], "not injective at {p}");
                seen[img] = true;
            }
            assert!(seen.iter().all(|&s| s), "not surjective");
        }
    }

    #[test]
    fn degenerate_triples_rejected() {
        let gf = Gf::new(5).unwrap();
        assert!(Moebius::through_images(&gf, [1, 1, 2]).is_none());
        assert!(Moebius::through_images(&gf, [1, 2, 1]).is_none());
        assert!(Moebius::through_images(&gf, [2, 1, 1]).is_none());
    }

    #[test]
    fn composition_preserves_cross_ratio_structure() {
        // The image of the standard subline GF(2) ∪ {∞} = {0, 1, ∞} under
        // any map is a 3-point set; with q = 2 the "circles" are just all
        // triples — sanity check that all C(5,3)=10 triples of PG(1,4) arise.
        let gf = Gf::new(4).unwrap();
        let inf = infinity(&gf);
        let mut circles = std::collections::HashSet::new();
        let pts: Vec<u32> = (0..point_count(&gf)).collect();
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    if let Some(m) = Moebius::through_images(&gf, [a, b, c]) {
                        let mut circle: Vec<u32> =
                            [0u32, 1, inf].iter().map(|&p| m.apply(&gf, p)).collect();
                        circle.sort_unstable();
                        circles.insert(circle);
                    }
                }
            }
        }
        assert_eq!(circles.len(), 10);
    }
}
