//! Finite fields and finite geometries.
//!
//! The combinatorial designs behind `Simple(x, λ)` placements are classical
//! geometric objects: lines of affine and projective spaces, Hermitian
//! unitals, and Möbius (subline) 3-designs on the projective line. All of
//! them need arithmetic in `GF(p^k)`; this crate builds such fields from
//! scratch (irreducible polynomial search + log/antilog tables) and exposes
//! the geometry on top:
//!
//! * [`Gf`] — a finite field with `q = p^k ≤ 4096` elements; constant-time
//!   add/mul/inv via precomputed tables;
//! * [`geometry`] — points and lines of `AG(d, q)` and `PG(d, q)`;
//! * [`projline`] — the projective line `PG(1, q)` and Möbius maps
//!   (`PGL(2, q)`), including the map through three prescribed points used
//!   to enumerate subline designs.
//!
//! # Examples
//!
//! ```
//! use wcp_gf::Gf;
//!
//! let f = Gf::new(9)?; // GF(3^2)
//! let a = 5u32;
//! assert_eq!(f.mul(a, f.inv(a).unwrap()), f.one());
//! assert_eq!(f.add(a, f.neg(a)), f.zero());
//! # Ok::<(), wcp_gf::GfError>(())
//! ```

#![forbid(unsafe_code)]

mod field;
pub mod geometry;
pub mod projline;

pub use field::{Gf, GfError};
