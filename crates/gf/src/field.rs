//! Construction of `GF(p^k)` with table-based arithmetic.
//!
//! Elements are represented by their index in `0..q`: the index is the
//! evaluation at `p` of the element's polynomial coordinate vector over
//! `GF(p)` (so `0` is the additive identity and `1` the multiplicative
//! identity regardless of `q`). Multiplication uses discrete log/antilog
//! tables with respect to a primitive element found at construction time;
//! addition uses a `q × q` table (fields here are small — at most 4096
//! elements — since block sizes in the paper are `r ≤ 5` and system sizes
//! `n ≤ 800`).

use std::fmt;

/// Error building a finite field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GfError {
    /// The requested order is not a prime power (or is `< 2`).
    NotPrimePower(u32),
    /// The requested order exceeds the supported table size.
    TooLarge(u32),
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::NotPrimePower(q) => write!(f, "{q} is not a prime power"),
            GfError::TooLarge(q) => write!(f, "field order {q} exceeds supported maximum 1024"),
        }
    }
}

impl std::error::Error for GfError {}

/// Decomposes `q` into `(p, k)` with `q = p^k`, `p` prime, if possible.
#[must_use]
pub(crate) fn prime_power(q: u32) -> Option<(u32, u32)> {
    if q < 2 {
        return None;
    }
    let mut p = 2u32;
    while p * p <= q {
        if q.is_multiple_of(p) {
            let mut rem = q;
            let mut k = 0;
            while rem.is_multiple_of(p) {
                rem /= p;
                k += 1;
            }
            return (rem == 1).then_some((p, k));
        }
        p += 1;
    }
    Some((q, 1)) // q itself is prime
}

/// A finite field `GF(p^k)` with `q = p^k` elements.
///
/// Elements are `u32` indices in `0..q`; `0` and `1` are the additive and
/// multiplicative identities. All operations are total over valid indices
/// (except [`Gf::inv`] at zero) and panic on out-of-range input in debug
/// builds.
///
/// # Examples
///
/// ```
/// use wcp_gf::Gf;
///
/// let f = Gf::new(16)?;
/// assert_eq!(f.order(), 16);
/// assert_eq!(f.characteristic(), 2);
/// // Frobenius x -> x^4 fixes exactly the GF(4) subfield.
/// let fixed: Vec<u32> = (0..16).filter(|&x| f.pow(x, 4) == x).collect();
/// assert_eq!(fixed.len(), 4);
/// # Ok::<(), wcp_gf::GfError>(())
/// ```
#[derive(Clone)]
pub struct Gf {
    p: u32,
    k: u32,
    q: u32,
    add: Vec<u32>, // q*q addition table
    exp: Vec<u32>, // exp[i] = g^i for i in 0..q-1 (period q-1)
    log: Vec<u32>, // log[x] for x in 1..q
    neg: Vec<u32>, // additive inverses
    generator: u32,
}

impl fmt::Debug for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gf")
            .field("p", &self.p)
            .field("k", &self.k)
            .field("q", &self.q)
            .field("generator", &self.generator)
            .finish()
    }
}

/// Maximum supported field order (tables are `O(q²)`).
pub const MAX_ORDER: u32 = 1024;

impl Gf {
    /// Builds `GF(q)`.
    ///
    /// # Errors
    ///
    /// [`GfError::NotPrimePower`] if `q` is not a prime power;
    /// [`GfError::TooLarge`] if `q > 4096`.
    pub fn new(q: u32) -> Result<Self, GfError> {
        let (p, k) = prime_power(q).ok_or(GfError::NotPrimePower(q))?;
        if q > MAX_ORDER {
            return Err(GfError::TooLarge(q));
        }
        let qi = q as usize;

        // --- polynomial coordinate helpers (index <-> base-p digit vector) ---
        let decode = |x: u32| -> Vec<u32> {
            let mut v = vec![0u32; k as usize];
            let mut x = x;
            for d in v.iter_mut() {
                *d = x % p;
                x /= p;
            }
            v
        };
        let encode = |v: &[u32]| -> u32 {
            let mut x = 0u32;
            for &d in v.iter().rev() {
                x = x * p + d;
            }
            x
        };

        // --- addition and negation tables (coefficient-wise mod p) ---
        let mut add = vec![0u32; qi * qi];
        let mut neg = vec![0u32; qi];
        for a in 0..q {
            let va = decode(a);
            let vneg: Vec<u32> = va.iter().map(|&d| (p - d) % p).collect();
            neg[a as usize] = encode(&vneg);
            for b in a..q {
                let vb = decode(b);
                let vs: Vec<u32> = va.iter().zip(&vb).map(|(&x, &y)| (x + y) % p).collect();
                let s = encode(&vs);
                add[a as usize * qi + b as usize] = s;
                add[b as usize * qi + a as usize] = s;
            }
        }

        // --- multiplication: reduce polynomial products modulo an
        //     irreducible monic polynomial of degree k over GF(p) ---
        let modulus = find_irreducible(p, k);
        let polymul = |a: u32, b: u32| -> u32 {
            // Schoolbook product of the coordinate vectors, reduced by the
            // modulus via repeated x^k = -(modulus tail).
            let va = decode(a);
            let vb = decode(b);
            let deg = 2 * k as usize - 1;
            let mut prod = vec![0u32; deg];
            for (i, &x) in va.iter().enumerate() {
                if x == 0 {
                    continue;
                }
                for (j, &y) in vb.iter().enumerate() {
                    prod[i + j] = (prod[i + j] + x * y) % p;
                }
            }
            // Reduce: while degree >= k, subtract coeff * x^(d-k) * modulus.
            for d in (k as usize..deg).rev() {
                let c = prod[d];
                if c == 0 {
                    continue;
                }
                prod[d] = 0;
                for (j, &m) in modulus.iter().enumerate().take(k as usize) {
                    let idx = d - k as usize + j;
                    prod[idx] = (prod[idx] + c * (p - m)) % p;
                }
            }
            encode(&prod[..k as usize])
        };

        // --- find a primitive element and fill log/antilog tables ---
        let factors = distinct_prime_factors(q - 1);
        let mut generator = 0u32;
        'search: for cand in 2..q {
            for &f in &factors {
                if pow_with(cand, (q - 1) / f, polymul) == 1 {
                    continue 'search;
                }
            }
            generator = cand;
            break;
        }
        assert!(
            generator != 0 || q == 2,
            "no primitive element found for q={q} (irreducible search bug)"
        );
        if q == 2 {
            generator = 1;
        }

        let mut exp = vec![0u32; (q - 1) as usize];
        let mut log = vec![0u32; qi];
        let mut cur = 1u32;
        for (i, e) in exp.iter_mut().enumerate() {
            *e = cur;
            log[cur as usize] = i as u32;
            cur = polymul(cur, generator);
        }
        assert_eq!(cur, 1, "generator order != q-1 for q={q}");

        Ok(Self {
            p,
            k,
            q,
            add,
            exp,
            log,
            neg,
            generator,
        })
    }

    /// Field order `q`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.q
    }

    /// Characteristic `p`.
    #[must_use]
    pub fn characteristic(&self) -> u32 {
        self.p
    }

    /// Extension degree `k` (so `q = p^k`).
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.k
    }

    /// The additive identity (always `0`).
    #[must_use]
    pub fn zero(&self) -> u32 {
        0
    }

    /// The multiplicative identity (always `1`).
    #[must_use]
    pub fn one(&self) -> u32 {
        1
    }

    /// A fixed primitive element (multiplicative generator).
    #[must_use]
    pub fn generator(&self) -> u32 {
        self.generator
    }

    /// `a + b`.
    #[must_use]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        self.add[a as usize * self.q as usize + b as usize]
    }

    /// `-a`.
    #[must_use]
    pub fn neg(&self, a: u32) -> u32 {
        self.neg[a as usize]
    }

    /// `a - b`.
    #[must_use]
    pub fn sub(&self, a: u32, b: u32) -> u32 {
        self.add(a, self.neg(b))
    }

    /// `a · b`.
    #[must_use]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        let l = self.log[a as usize] + self.log[b as usize];
        self.exp[(l % (self.q - 1)) as usize]
    }

    /// `a⁻¹`, or `None` for `a = 0`.
    #[must_use]
    pub fn inv(&self, a: u32) -> Option<u32> {
        if a == 0 {
            return None;
        }
        let l = self.log[a as usize];
        Some(self.exp[((self.q - 1 - l) % (self.q - 1)) as usize])
    }

    /// `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b = 0`.
    #[must_use]
    pub fn div(&self, a: u32, b: u32) -> u32 {
        self.mul(a, self.inv(b).expect("division by zero"))
    }

    /// `a^e` (with `0^0 = 1`).
    #[must_use]
    pub fn pow(&self, a: u32, e: u64) -> u32 {
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let l = u64::from(self.log[a as usize]);
        let m = u64::from(self.q - 1);
        self.exp[((l * (e % m)) % m) as usize]
    }

    /// The elements of the subfield of order `q_sub` (including 0 and 1).
    ///
    /// The subfield of order `p^e` exists iff `e` divides `k`; its nonzero
    /// elements are exactly the powers `g^(j·(q−1)/(q_sub−1))`.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `q_sub` is not the order of a subfield of this field.
    pub fn subfield_elements(&self, q_sub: u32) -> Result<Vec<u32>, GfError> {
        let (p, e) = prime_power(q_sub).ok_or(GfError::NotPrimePower(q_sub))?;
        if p != self.p || !self.k.is_multiple_of(e) {
            return Err(GfError::NotPrimePower(q_sub));
        }
        let step = (self.q - 1) / (q_sub - 1);
        let mut out = Vec::with_capacity(q_sub as usize);
        out.push(0);
        for j in 0..q_sub - 1 {
            out.push(self.exp[(j * step % (self.q - 1)) as usize]);
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Iterates over all elements `0..q`.
    pub fn elements(&self) -> impl Iterator<Item = u32> + use<> {
        0..self.q
    }
}

/// Returns the coefficient vector (little-endian, length `k+1`, monic) of an
/// irreducible degree-`k` polynomial over `GF(p)`, found by exhaustive
/// search with trial division.
fn find_irreducible(p: u32, k: u32) -> Vec<u32> {
    if k == 1 {
        return vec![0, 1]; // x (unused: degree-1 reduction never triggers)
    }
    // Iterate over the p^k possible non-leading coefficient vectors.
    let total = (p as u64).pow(k);
    for idx in 0..total {
        let mut coeffs = Vec::with_capacity(k as usize + 1);
        let mut x = idx;
        for _ in 0..k {
            coeffs.push((x % u64::from(p)) as u32);
            x /= u64::from(p);
        }
        coeffs.push(1); // monic
        if coeffs[0] == 0 {
            continue; // divisible by x
        }
        if is_irreducible(&coeffs, p) {
            return coeffs;
        }
    }
    unreachable!("an irreducible polynomial of degree {k} over GF({p}) always exists")
}

/// Deterministic irreducibility test by trial division with every monic
/// polynomial of degree `1 ..= deg/2`.
fn is_irreducible(poly: &[u32], p: u32) -> bool {
    let deg = poly.len() - 1;
    for d in 1..=deg / 2 {
        let total = (p as u64).pow(d as u32);
        for idx in 0..total {
            let mut div = Vec::with_capacity(d + 1);
            let mut x = idx;
            for _ in 0..d {
                div.push((x % u64::from(p)) as u32);
                x /= u64::from(p);
            }
            div.push(1);
            if poly_rem_is_zero(poly, &div, p) {
                return false;
            }
        }
    }
    true
}

/// True iff `divisor` (monic) divides `poly` over `GF(p)`.
fn poly_rem_is_zero(poly: &[u32], divisor: &[u32], p: u32) -> bool {
    let mut rem: Vec<u32> = poly.to_vec();
    let dd = divisor.len() - 1;
    while rem.len() > dd {
        let lead = *rem.last().expect("nonempty");
        let shift = rem.len() - 1 - dd;
        if lead != 0 {
            for (j, &m) in divisor.iter().enumerate() {
                let idx = shift + j;
                rem[idx] = (rem[idx] + lead * (p - m) % p) % p;
            }
        }
        rem.pop();
    }
    rem.iter().all(|&c| c == 0)
}

/// Distinct prime factors of `n` by trial division.
fn distinct_prime_factors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 2u32;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Modular exponentiation with a custom multiplication (used before tables
/// exist).
fn pow_with(a: u32, mut e: u32, mul: impl Fn(u32, u32) -> u32) -> u32 {
    let mut base = a;
    let mut acc = 1u32;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        e >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_power_decomposition() {
        assert_eq!(prime_power(2), Some((2, 1)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(16), Some((2, 4)));
        assert_eq!(prime_power(243), Some((3, 5)));
        assert_eq!(prime_power(6), None);
        assert_eq!(prime_power(1), None);
        assert_eq!(prime_power(257), Some((257, 1)));
    }

    fn check_field_axioms(q: u32) {
        let f = Gf::new(q).unwrap();
        assert_eq!(f.order(), q);
        // identities
        for a in 0..q {
            assert_eq!(f.add(a, 0), a);
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.add(a, f.neg(a)), 0);
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
            }
        }
        // commutativity + associativity + distributivity (sampled fully for
        // small q, else on a stride)
        let stride = if q <= 32 { 1 } else { q / 17 + 1 };
        let pts: Vec<u32> = (0..q).step_by(stride as usize).collect();
        for &a in &pts {
            for &b in &pts {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for &c in &pts {
                    assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(
                        f.mul(a, f.add(b, c)),
                        f.add(f.mul(a, b), f.mul(a, c)),
                        "distributivity a={a} b={b} c={c} q={q}"
                    );
                }
            }
        }
        // generator has full order: exp table covered all nonzero elements
        let mut seen = vec![false; q as usize];
        let mut cur = 1u32;
        for _ in 0..q - 1 {
            assert!(!seen[cur as usize], "generator order too small");
            seen[cur as usize] = true;
            cur = f.mul(cur, f.generator());
        }
        assert_eq!(cur, 1);
    }

    #[test]
    fn prime_fields() {
        for q in [2u32, 3, 5, 7, 11, 13, 17, 19, 23] {
            check_field_axioms(q);
        }
    }

    #[test]
    fn extension_fields() {
        for q in [4u32, 8, 9, 16, 25, 27, 32, 49, 64, 81] {
            check_field_axioms(q);
        }
    }

    #[test]
    fn large_extension_fields() {
        for q in [128u32, 243, 256, 625] {
            check_field_axioms(q);
        }
    }

    #[test]
    fn non_prime_power_rejected() {
        assert_eq!(Gf::new(6).unwrap_err(), GfError::NotPrimePower(6));
        assert_eq!(Gf::new(12).unwrap_err(), GfError::NotPrimePower(12));
        assert_eq!(Gf::new(0).unwrap_err(), GfError::NotPrimePower(0));
        assert!(Gf::new(5041 * 2).is_err());
    }

    #[test]
    fn too_large_rejected() {
        assert_eq!(Gf::new(2048).unwrap_err(), GfError::TooLarge(2048));
    }

    #[test]
    fn characteristic_addition() {
        // In GF(2^k), every element is its own negative.
        let f = Gf::new(16).unwrap();
        for a in 0..16 {
            assert_eq!(f.add(a, a), 0);
            assert_eq!(f.neg(a), a);
        }
        // In GF(3^k), a + a + a = 0.
        let f = Gf::new(27).unwrap();
        for a in 0..27 {
            assert_eq!(f.add(f.add(a, a), a), 0);
        }
    }

    #[test]
    fn subfields() {
        let f = Gf::new(256).unwrap(); // GF(2^8) ⊇ GF(16) ⊇ GF(4) ⊇ GF(2)
        for q_sub in [2u32, 4, 16, 256] {
            let sub = f.subfield_elements(q_sub).unwrap();
            assert_eq!(sub.len(), q_sub as usize);
            // closure under add and mul
            for &a in &sub {
                for &b in &sub {
                    assert!(sub.binary_search(&f.add(a, b)).is_ok(), "add closure");
                    assert!(sub.binary_search(&f.mul(a, b)).is_ok(), "mul closure");
                }
            }
            // fixed by Frobenius x -> x^q_sub
            for &a in &sub {
                assert_eq!(f.pow(a, u64::from(q_sub)), a);
            }
        }
        // GF(8) is *not* a subfield of GF(256) (3 does not divide 8).
        assert!(f.subfield_elements(8).is_err());
        // Wrong characteristic.
        assert!(f.subfield_elements(9).is_err());
    }

    #[test]
    fn pow_agrees_with_repeated_mul() {
        let f = Gf::new(27).unwrap();
        for a in 0..27u32 {
            let mut acc = 1u32;
            for e in 0..=30u64 {
                assert_eq!(f.pow(a, e), acc, "a={a} e={e}");
                acc = f.mul(acc, a);
            }
        }
    }

    #[test]
    fn frobenius_is_additive() {
        // (a+b)^p = a^p + b^p in characteristic p.
        let f = Gf::new(81).unwrap();
        for a in 0..81 {
            for b in 0..81 {
                assert_eq!(f.pow(f.add(a, b), 3), f.add(f.pow(a, 3), f.pow(b, 3)));
            }
        }
    }
}
