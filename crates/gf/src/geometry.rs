//! Points and lines of affine and projective spaces over `GF(q)`.
//!
//! * The lines of `AG(d, q)` form a `2-(q^d, q, 1)` design — every pair of
//!   points lies on exactly one line. Used for e.g. `2-(25,5,1)`
//!   (the affine plane of order 5, the paper's `n_1` for `n = 31`, `r = 5`)
//!   and `2-(64,4,1)`.
//! * The lines of `PG(d, q)` form a `2-((q^{d+1}−1)/(q−1), q+1, 1)` design,
//!   e.g. `2-(85,5,1)` from `PG(3,4)`.
//!
//! Points are plain `u16` indices; the coordinate encodings are internal.

use crate::Gf;
use std::collections::HashSet;

/// Number of points of `AG(d, q)`, i.e. `q^d`.
#[must_use]
pub fn ag_point_count(q: u32, d: u32) -> u64 {
    u64::from(q).pow(d)
}

/// Number of points of `PG(d, q)`, i.e. `(q^{d+1} − 1)/(q − 1)`.
#[must_use]
pub fn pg_point_count(q: u32, d: u32) -> u64 {
    (u64::from(q).pow(d + 1) - 1) / (u64::from(q) - 1)
}

/// Encodes an affine coordinate vector as a point index (base-`q` digits).
fn ag_encode(q: u32, coords: &[u32]) -> u64 {
    coords
        .iter()
        .rev()
        .fold(0u64, |acc, &c| acc * u64::from(q) + u64::from(c))
}

/// Decodes a point index into affine coordinates.
fn ag_decode(q: u32, d: u32, mut idx: u64) -> Vec<u32> {
    let mut out = vec![0u32; d as usize];
    for c in out.iter_mut() {
        *c = (idx % u64::from(q)) as u32;
        idx /= u64::from(q);
    }
    out
}

/// All lines of the affine space `AG(d, q)`, each as a sorted vector of
/// point indices in `0..q^d`.
///
/// The lines form a `2-(q^d, q, 1)` design with
/// `q^{d−1}(q^d − 1)/(q − 1)` blocks.
///
/// # Panics
///
/// Panics if `d = 0` or the point count exceeds `u16` range (the placement
/// library never needs more than 800 points).
///
/// # Examples
///
/// ```
/// use wcp_gf::{geometry, Gf};
///
/// let f = Gf::new(3)?;
/// let lines = geometry::ag_lines(&f, 2); // AG(2,3): 12 lines of 3 points
/// assert_eq!(lines.len(), 12);
/// assert!(lines.iter().all(|l| l.len() == 3));
/// # Ok::<(), wcp_gf::GfError>(())
/// ```
#[must_use]
pub fn ag_lines(gf: &Gf, d: u32) -> Vec<Vec<u16>> {
    assert!(d >= 1, "dimension must be positive");
    let q = gf.order();
    let n_points = ag_point_count(q, d);
    assert!(n_points <= u64::from(u16::MAX), "too many points for u16");

    // One direction representative per point of PG(d-1, q): the first
    // nonzero coordinate is 1.
    let directions = pg_normalized_vectors(gf, d - 1);

    let mut seen: HashSet<Vec<u16>> = HashSet::new();
    let mut lines = Vec::new();
    for base_idx in 0..n_points {
        let base = ag_decode(q, d, base_idx);
        for dir in &directions {
            let mut line: Vec<u16> = Vec::with_capacity(q as usize);
            for t in gf.elements() {
                let pt: Vec<u32> = base
                    .iter()
                    .zip(dir)
                    .map(|(&b, &v)| gf.add(b, gf.mul(t, v)))
                    .collect();
                line.push(ag_encode(q, &pt) as u16);
            }
            line.sort_unstable();
            if seen.insert(line.clone()) {
                lines.push(line);
            }
        }
    }
    lines
}

/// Normalized representatives of the 1-dimensional subspaces of
/// `GF(q)^{d+1}` (i.e. the points of `PG(d, q)`), each a coordinate vector
/// whose first nonzero entry is 1.
fn pg_normalized_vectors(gf: &Gf, d: u32) -> Vec<Vec<u32>> {
    let q = gf.order();
    let dim = d as usize + 1;
    let mut out = Vec::new();
    // Enumerate by position of the leading 1: coordinates before it are 0,
    // coordinates after it range over all of GF(q).
    for lead in 0..dim {
        let free = dim - lead - 1;
        let total = u64::from(q).pow(free as u32);
        for idx in 0..total {
            let mut v = vec![0u32; dim];
            v[lead] = 1;
            let mut x = idx;
            for c in v.iter_mut().skip(lead + 1) {
                *c = (x % u64::from(q)) as u32;
                x /= u64::from(q);
            }
            out.push(v);
        }
    }
    out
}

/// All lines of the projective space `PG(d, q)`, each as a sorted vector of
/// point indices in `0..pg_point_count(q, d)`.
///
/// The lines form a `2-((q^{d+1}−1)/(q−1), q+1, 1)` design. Point `i`
/// corresponds to the `i`-th normalized vector in the order produced by
/// leading-coordinate enumeration.
///
/// # Panics
///
/// Panics if `d < 1` or the point count exceeds `u16` range.
///
/// # Examples
///
/// ```
/// use wcp_gf::{geometry, Gf};
///
/// let f = Gf::new(2)?;
/// let lines = geometry::pg_lines(&f, 2); // Fano plane: 7 lines of 3 points
/// assert_eq!(lines.len(), 7);
/// # Ok::<(), wcp_gf::GfError>(())
/// ```
#[must_use]
pub fn pg_lines(gf: &Gf, d: u32) -> Vec<Vec<u16>> {
    assert!(d >= 1, "dimension must be positive");
    let q = gf.order();
    let n_points = pg_point_count(q, d);
    assert!(n_points <= u64::from(u16::MAX), "too many points for u16");

    let points = pg_normalized_vectors(gf, d);
    assert_eq!(points.len() as u64, n_points);

    // Index lookup: normalize an arbitrary nonzero vector and find it.
    let normalize = |v: &[u32]| -> Vec<u32> {
        let lead = v.iter().position(|&c| c != 0).expect("nonzero vector");
        let inv = gf.inv(v[lead]).expect("nonzero leading coordinate");
        v.iter().map(|&c| gf.mul(c, inv)).collect()
    };
    let index_of: std::collections::HashMap<Vec<u32>, u16> = points
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), i as u16))
        .collect();

    let mut seen: HashSet<Vec<u16>> = HashSet::new();
    let mut lines = Vec::new();
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            let a = &points[i];
            let b = &points[j];
            // Line through a and b: a, and a·t + b for all t (includes b at
            // t = 0); in homogeneous form: all nonzero combinations αa + βb
            // up to scaling, represented by β=0 (a itself) plus α ranging
            // with β=1.
            let mut line: Vec<u16> = Vec::with_capacity(q as usize + 1);
            line.push(i as u16);
            for t in gf.elements() {
                let v: Vec<u32> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| gf.add(gf.mul(t, x), y))
                    .collect();
                line.push(index_of[&normalize(&v)]);
            }
            line.sort_unstable();
            line.dedup();
            if seen.insert(line.clone()) {
                lines.push(line);
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks that `blocks` forms a 2-(v, block_size, 1) design: every pair
    /// of points is covered exactly once.
    fn assert_pairwise_balanced(v: usize, block_size: usize, blocks: &[Vec<u16>]) {
        let mut pair_count = vec![0u32; v * v];
        for b in blocks {
            assert_eq!(b.len(), block_size, "block size");
            for i in 0..b.len() {
                for j in i + 1..b.len() {
                    pair_count[b[i] as usize * v + b[j] as usize] += 1;
                }
            }
        }
        for i in 0..v {
            for j in i + 1..v {
                assert_eq!(
                    pair_count[i * v + j],
                    1,
                    "pair ({i},{j}) covered wrong number of times"
                );
            }
        }
    }

    #[test]
    fn ag23_is_sts9() {
        let f = Gf::new(3).unwrap();
        let lines = ag_lines(&f, 2);
        assert_eq!(lines.len(), 12);
        assert_pairwise_balanced(9, 3, &lines);
    }

    #[test]
    fn ag25_is_affine_plane_order5() {
        // 2-(25,5,1): the paper's n_1 = 25 entry for n = 31, r = 5.
        let f = Gf::new(5).unwrap();
        let lines = ag_lines(&f, 2);
        assert_eq!(lines.len(), 30);
        assert_pairwise_balanced(25, 5, &lines);
    }

    #[test]
    fn ag34_lines() {
        // 2-(64,4,1): our substitute for the paper's n_1 entry at n = 71, r = 4.
        let f = Gf::new(4).unwrap();
        let lines = ag_lines(&f, 3);
        assert_eq!(lines.len(), 64 * 63 / (4 * 3)); // 336
        assert_pairwise_balanced(64, 4, &lines);
    }

    #[test]
    fn ag44_lines() {
        // 2-(256,4,1): the paper's n_1 = 256 entry for n = 257, r = 4.
        let f = Gf::new(4).unwrap();
        let lines = ag_lines(&f, 4);
        assert_eq!(lines.len(), 256 * 255 / 12); // 5440
        assert_pairwise_balanced(256, 4, &lines);
    }

    #[test]
    fn fano_plane() {
        let f = Gf::new(2).unwrap();
        let lines = pg_lines(&f, 2);
        assert_eq!(lines.len(), 7);
        assert_pairwise_balanced(7, 3, &lines);
    }

    #[test]
    fn pg24_projective_plane_order4() {
        // 2-(21,5,1).
        let f = Gf::new(4).unwrap();
        let lines = pg_lines(&f, 2);
        assert_eq!(lines.len(), 21);
        assert_pairwise_balanced(21, 5, &lines);
    }

    #[test]
    fn pg34_lines() {
        // 2-(85,5,1).
        let f = Gf::new(4).unwrap();
        let lines = pg_lines(&f, 3);
        assert_eq!(pg_point_count(4, 3), 85);
        assert_eq!(lines.len(), 357); // 85·84/(5·4)
        assert_pairwise_balanced(85, 5, &lines);
    }

    #[test]
    fn pg33_lines() {
        // 2-(40,4,1).
        let f = Gf::new(3).unwrap();
        let lines = pg_lines(&f, 3);
        assert_eq!(lines.len(), 130); // 40·39/12
        assert_pairwise_balanced(40, 4, &lines);
    }

    #[test]
    fn counts() {
        assert_eq!(ag_point_count(5, 3), 125);
        assert_eq!(pg_point_count(2, 2), 7);
        assert_eq!(pg_point_count(4, 4), 341);
    }
}
