//! Property-based tests over the design constructions: every family must
//! deliver what it claims for arbitrary in-range parameters.

use proptest::prelude::*;
use wcp_designs::greedy::{greedy_packing, GreedyConfig};
use wcp_designs::registry::{best_unit_packing, RegistryConfig};
use wcp_designs::{catalog, chunking, complete, mols, sts, verify};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every admissible STS size yields a verified Steiner triple system.
    #[test]
    fn sts_always_verifies(t in 1u16..20) {
        for v in [6 * t + 1, 6 * t + 3] {
            let d = sts::steiner_triple_system(v).expect("admissible");
            prop_assert_eq!(d.num_blocks() as u64, u64::from(v) * u64::from(v - 1) / 6);
            // Full pair balance is O(v²) — affordable to v ≈ 123 here.
            if v <= 75 {
                prop_assert!(verify::is_t_design(&d, 2, 1), "STS({})", v);
            } else {
                prop_assert!(verify::is_t_packing(&d, 2, 1), "STS({}) packing", v);
            }
        }
    }

    /// Greedy packings respect their λ for arbitrary parameters.
    #[test]
    fn greedy_respects_lambda(v in 6u16..24, r in 3u16..=5, t in 2u16..=4, lambda in 1u64..4, seed in any::<u64>()) {
        prop_assume!(t < r && r < v);
        let cfg = GreedyConfig { seed, max_blocks: 400, ..GreedyConfig::default() };
        let d = greedy_packing(v, r, t, lambda, &cfg).expect("valid params");
        prop_assert!(verify::is_t_packing(&d, t, lambda));
    }

    /// Chunking never exceeds the ideal capacity and never returns an
    /// infeasible plan.
    #[test]
    fn chunking_sound(n in 20u16..200, r in 3u16..=5, t in 2u16..=3, m in 1usize..4) {
        let sizes = catalog::steiner_sizes(t, r, r, n);
        let plan = chunking::best_chunking(n, r, t, m, &sizes, 1);
        prop_assert!(plan.capacity <= chunking::ideal_capacity(t, r, n, 1));
        prop_assert!(plan.sizes.len() <= m);
        let total: u64 = plan.sizes.iter().map(|&v| u64::from(v)).sum();
        prop_assert!(total <= u64::from(n));
        for &v in &plan.sizes {
            prop_assert!(catalog::steiner_exists(t, r, v), "size {} not admissible", v);
        }
    }

    /// Complete-design prefixes are always packings of every strength.
    #[test]
    fn complete_prefix_packs(v in 6u16..40, r in 2u16..=5, limit in 1usize..200) {
        prop_assume!(r <= v);
        let d = complete::complete_prefix(v, r, limit).expect("valid");
        for t in 1..=r {
            // Strength-t multiplicity of distinct r-sets is ≤ C(v−t, r−t);
            // at t = r it is exactly ≤ 1.
            prop_assert!(verify::packing_index(&d, t) <= wcp_combin::binomial(u64::from(v - t), u64::from(r - t)).unwrap() as u64);
        }
        prop_assert!(verify::is_t_packing(&d, r, 1));
    }

    /// MOLS from fields are always pairwise orthogonal; transversal
    /// designs always verify as 2-packings.
    #[test]
    fn mols_and_tds(mi in 0usize..6, k in 3u16..=5) {
        let m = [4u16, 5, 7, 8, 9, 11][mi];
        prop_assume!(usize::from(k) - 2 <= mols::mols_count(m));
        let td = mols::transversal_design(k, m).expect("enough MOLS");
        prop_assert_eq!(td.num_blocks(), usize::from(m) * usize::from(m));
        prop_assert!(verify::is_t_packing(&td, 2, 1));
    }

    /// The registry's promises hold for arbitrary small slots.
    #[test]
    fn registry_capacity_honest(t in 1u16..=4, r in 2u16..=5, v_max in 6u16..50, seed in any::<u64>()) {
        prop_assume!(t <= r && r <= v_max);
        let cfg = RegistryConfig { seed, ..RegistryConfig::default() };
        if let Some(unit) = best_unit_packing(t, r, v_max, 150, &cfg) {
            prop_assert!(unit.v() <= v_max);
            let want = unit.capacity().min(150);
            let d = unit.materialize(150).expect("materialize");
            prop_assert!(d.num_blocks() as u64 >= want,
                "{} promised {want} got {}", unit.provenance(), d.num_blocks());
            prop_assert!(verify::is_t_packing(&d, t, 1), "{}", unit.provenance());
        }
    }
}
