//! Core block-design types.

use std::fmt;

/// Errors constructing or validating a block design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// A block contains a point `≥ v`, a duplicate point, or is unsorted.
    MalformedBlock {
        /// Index of the offending block.
        index: usize,
    },
    /// A block has the wrong size.
    WrongBlockSize {
        /// Index of the offending block.
        index: usize,
        /// Size found.
        found: usize,
        /// Size required.
        expected: usize,
    },
    /// The requested parameters admit no construction in this family.
    Unsupported(String),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::MalformedBlock { index } => {
                write!(f, "block {index} is unsorted, duplicated or out of range")
            }
            DesignError::WrongBlockSize {
                index,
                found,
                expected,
            } => write!(f, "block {index} has size {found}, expected {expected}"),
            DesignError::Unsupported(msg) => write!(f, "unsupported parameters: {msg}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// A collection of equally-sized blocks (sorted `u16` point sets) over the
/// point set `{0, …, v−1}`.
///
/// `BlockDesign` is a plain container: whether it is a `t`-design or
/// `t`-packing is established by the checkers in [`crate::verify`] (and by
/// the constructions, which are tested to produce what they claim).
///
/// # Examples
///
/// ```
/// use wcp_designs::BlockDesign;
///
/// let fano = BlockDesign::new(7, 3, vec![
///     vec![0, 1, 2], vec![0, 3, 4], vec![0, 5, 6], vec![1, 3, 5],
///     vec![1, 4, 6], vec![2, 3, 6], vec![2, 4, 5],
/// ])?;
/// assert_eq!(fano.num_blocks(), 7);
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDesign {
    v: u16,
    block_size: u16,
    blocks: Vec<Vec<u16>>,
}

impl BlockDesign {
    /// Wraps validated blocks: each must be sorted, duplicate-free, within
    /// `0..v`, and of size `block_size`.
    ///
    /// # Errors
    ///
    /// [`DesignError::WrongBlockSize`] / [`DesignError::MalformedBlock`] on
    /// the first offending block.
    pub fn new(v: u16, block_size: u16, blocks: Vec<Vec<u16>>) -> Result<Self, DesignError> {
        for (index, b) in blocks.iter().enumerate() {
            if b.len() != block_size as usize {
                return Err(DesignError::WrongBlockSize {
                    index,
                    found: b.len(),
                    expected: block_size as usize,
                });
            }
            let sorted_distinct = b.windows(2).all(|w| w[0] < w[1]);
            let in_range = b.last().is_none_or(|&last| last < v);
            if !sorted_distinct || !in_range {
                return Err(DesignError::MalformedBlock { index });
            }
        }
        Ok(Self {
            v,
            block_size,
            blocks,
        })
    }

    /// Number of points `v`.
    #[must_use]
    pub fn num_points(&self) -> u16 {
        self.v
    }

    /// Block size (the paper's `r`).
    #[must_use]
    pub fn block_size(&self) -> u16 {
        self.block_size
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks, each sorted.
    #[must_use]
    pub fn blocks(&self) -> &[Vec<u16>] {
        &self.blocks
    }

    /// Consumes the design and returns its blocks.
    #[must_use]
    pub fn into_blocks(self) -> Vec<Vec<u16>> {
        self.blocks
    }

    /// Returns a new design whose points are shifted by `offset` and whose
    /// point count is `new_v` (used to lay chunks side by side).
    ///
    /// # Panics
    ///
    /// Panics if `offset + v > new_v`.
    #[must_use]
    pub fn translated(&self, offset: u16, new_v: u16) -> Self {
        assert!(offset + self.v <= new_v, "translation out of range");
        let blocks = self
            .blocks
            .iter()
            .map(|b| b.iter().map(|&p| p + offset).collect())
            .collect();
        Self {
            v: new_v,
            block_size: self.block_size,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_wrong_size() {
        let err = BlockDesign::new(5, 3, vec![vec![0, 1]]).unwrap_err();
        assert!(matches!(err, DesignError::WrongBlockSize { index: 0, .. }));
    }

    #[test]
    fn rejects_unsorted() {
        let err = BlockDesign::new(5, 3, vec![vec![2, 1, 0]]).unwrap_err();
        assert!(matches!(err, DesignError::MalformedBlock { index: 0 }));
    }

    #[test]
    fn rejects_duplicate_points() {
        let err = BlockDesign::new(5, 3, vec![vec![1, 1, 2]]).unwrap_err();
        assert!(matches!(err, DesignError::MalformedBlock { index: 0 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = BlockDesign::new(5, 3, vec![vec![1, 2, 5]]).unwrap_err();
        assert!(matches!(err, DesignError::MalformedBlock { index: 0 }));
    }

    #[test]
    fn translation() {
        let d = BlockDesign::new(3, 2, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let t = d.translated(10, 13);
        assert_eq!(t.num_points(), 13);
        assert_eq!(t.blocks(), &[vec![10, 11], vec![11, 12]]);
    }

    #[test]
    #[should_panic(expected = "translation out of range")]
    fn translation_overflow_panics() {
        let d = BlockDesign::new(3, 2, vec![vec![0, 1]]).unwrap();
        let _ = d.translated(11, 13);
    }
}
