//! Subline (Möbius) designs: `3-(q^d + 1, q + 1, 1)` for any prime power
//! `q` and `d ≥ 2`.
//!
//! This is the "spherical geometry" family the paper cites among the known
//! infinite Steiner systems ("x+1 = 3, r = q+1, and n_x = q^d + 1"). The
//! point set is the projective line `PG(1, Q)` with `Q = q^d`; the blocks
//! are the images of the standard subline `PG(1, q) ⊂ PG(1, Q)` under
//! `PGL(2, Q)`. Because `PGL(2, Q)` is sharply 3-transitive and the subline
//! family is 3-homogeneous, every 3 points lie on exactly one block.
//!
//! Instances used by the paper's evaluation:
//!
//! * `d = 2`: the inversive planes, e.g. `3-(10,4,1)` (q=3), `3-(17,5,1)` (q=4);
//! * `3-(28,4,1)` (q=3, d=3) — the paper's `n_2` for `n = 31, r = 4`;
//! * `3-(65,5,1)` (q=4, d=3) — its `n_2` for `n = 71, r = 5`;
//! * `3-(257,5,1)` (q=4, d=4) — its `n_2` for `n = 257, r = 5`.
//!
//! Enumeration is triple-driven: for every point triple `{a, b, c}` the
//! Möbius map sending `(0, 1, ∞) ↦ (a, b, c)` carries the subline onto the
//! unique block through the triple. Each block arises from `C(q+1, 3)`
//! triples, so generation with a deduplication set costs
//! `O(C(v,3) · (q+1))` — a few seconds even at `v = 257`. A `limit`
//! parameter stops early once enough blocks have been produced (placements
//! rarely need the full design).

use crate::{BlockDesign, DesignError};
use std::collections::HashSet;
use wcp_gf::{projline::Moebius, Gf};

/// Number of blocks of the full `3-(q^d+1, q+1, 1)` design:
/// `(q^d + 1)·q^d·(q^d − 1) / ((q+1)·q·(q−1)) · … ` simplified to
/// `C(v,3)/C(q+1,3)` with `v = q^d + 1`.
#[must_use]
pub fn block_count(q: u64, d: u32) -> u64 {
    let v = q.pow(d) + 1;
    let num = v * (v - 1) * (v - 2) / 6;
    let den = (q + 1) * q * (q - 1) / 6;
    num / den
}

/// Builds the subline design `3-(q^d + 1, q + 1, 1)`, stopping after
/// `limit` blocks (`usize::MAX` for the complete design).
///
/// Point `i < Q` is the field element with index `i`; point `Q` is `∞`.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `q` is not a prime power, `d < 2`, or
/// `q^d` exceeds the supported field size (1024).
///
/// # Examples
///
/// ```
/// use wcp_designs::{subline, verify};
///
/// // The inversive plane of order 3 = SQS(10).
/// let d = subline::subline_design(3, 2, usize::MAX)?;
/// assert_eq!(d.num_points(), 10);
/// assert_eq!(d.num_blocks(), 30);
/// assert!(verify::is_t_design(&d, 3, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn subline_design(q: u32, d: u32, limit: usize) -> Result<BlockDesign, DesignError> {
    if d < 2 {
        return Err(DesignError::Unsupported(
            "subline designs need d ≥ 2 (d = 1 degenerates to a single block)".into(),
        ));
    }
    let big_q = q
        .checked_pow(d)
        .filter(|&bq| bq <= 1024)
        .ok_or_else(|| DesignError::Unsupported(format!("q^d = {q}^{d} too large")))?;
    let gf = Gf::new(big_q).map_err(|e| DesignError::Unsupported(format!("GF({big_q}): {e}")))?;
    if gf.characteristic()
        != Gf::new(q)
            .map_err(|e| DesignError::Unsupported(e.to_string()))?
            .characteristic()
    {
        return Err(DesignError::Unsupported(format!(
            "{q}^{d} is not a power of a prime"
        )));
    }
    let v = big_q + 1; // points of PG(1, Q)
    let infinity = big_q;

    // The standard subline: the subfield GF(q) plus ∞.
    let mut subline: Vec<u32> = gf
        .subfield_elements(q)
        .map_err(|e| DesignError::Unsupported(format!("GF({q}) ⊄ GF({big_q}): {e}")))?;
    subline.push(infinity);

    let target = usize::try_from(block_count(u64::from(q), d)).unwrap_or(usize::MAX);
    let want = target.min(limit);
    let mut seen: HashSet<Vec<u16>> = HashSet::with_capacity(want.saturating_mul(2));
    let mut blocks: Vec<Vec<u16>> = Vec::with_capacity(want);

    'outer: for a in 0..v {
        for b in a + 1..v {
            for c in b + 1..v {
                let map = Moebius::through_images(&gf, [a, b, c])
                    .expect("distinct points admit a Möbius map");
                let mut block: Vec<u16> =
                    subline.iter().map(|&p| map.apply(&gf, p) as u16).collect();
                block.sort_unstable();
                debug_assert!(block.windows(2).all(|w| w[0] < w[1]));
                if seen.insert(block.clone()) {
                    blocks.push(block);
                    if blocks.len() >= want {
                        break 'outer;
                    }
                }
            }
        }
    }
    BlockDesign::new(v as u16, (q + 1) as u16, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn inversive_plane_order3_is_sqs10() {
        let d = subline_design(3, 2, usize::MAX).unwrap();
        assert_eq!(d.num_points(), 10);
        assert_eq!(d.block_size(), 4);
        assert_eq!(d.num_blocks() as u64, block_count(3, 2));
        assert!(verify::is_t_design(&d, 3, 1));
    }

    #[test]
    fn inversive_plane_order4() {
        // 3-(17,5,1): substitute for the paper's 3-(26,5,1) at n = 31, r = 5.
        let d = subline_design(4, 2, usize::MAX).unwrap();
        assert_eq!(d.num_points(), 17);
        assert_eq!(d.num_blocks(), 68);
        assert!(verify::is_t_design(&d, 3, 1));
    }

    #[test]
    fn moebius_28() {
        // 3-(28,4,1): the paper's n_2 for n = 31, r = 4 (SQS(28)).
        let d = subline_design(3, 3, usize::MAX).unwrap();
        assert_eq!(d.num_points(), 28);
        assert_eq!(d.num_blocks() as u64, block_count(3, 3)); // 819
        assert_eq!(d.num_blocks(), 819);
        assert!(verify::is_t_design(&d, 3, 1));
    }

    #[test]
    fn moebius_65() {
        // 3-(65,5,1): the paper's n_2 for n = 71, r = 5.
        let d = subline_design(4, 3, usize::MAX).unwrap();
        assert_eq!(d.num_points(), 65);
        assert_eq!(d.num_blocks(), 4368);
        assert!(verify::is_t_design(&d, 3, 1));
    }

    #[test]
    fn prefix_is_packing() {
        let d = subline_design(4, 3, 500).unwrap();
        assert_eq!(d.num_blocks(), 500);
        assert!(verify::is_t_packing(&d, 3, 1));
    }

    #[test]
    fn block_counts() {
        assert_eq!(block_count(3, 2), 30);
        assert_eq!(block_count(4, 2), 68);
        assert_eq!(block_count(3, 3), 819);
        assert_eq!(block_count(4, 3), 4368);
        assert_eq!(block_count(4, 4), 279_616);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(subline_design(6, 2, 10).is_err()); // not a prime power
        assert!(subline_design(3, 1, 10).is_err()); // d too small
        assert!(subline_design(11, 3, 10).is_err()); // 1331 > 1024
    }
}
