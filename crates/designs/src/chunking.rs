//! Chunk decomposition (the paper's Observation 2).
//!
//! When no single design fits `n_x ≈ n`, the node set can be split into
//! chunks `n_{x1}, …, n_{xm}` with `Σ n_{xi} ≤ n`, each carrying its own
//! `Simple(x, μ)` placement; capacities add. The paper's Figs. 5 and 6
//! study how close such decompositions come to the *ideal* capacity
//! `⌊μ·C(n, x+1)/C(r, x+1)⌋` as a "capacity gap"; this module computes the
//! optimal decomposition by dynamic programming.

use wcp_combin::binomial;

/// An optimal chunk decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Chosen chunk sizes (descending); empty when no admissible size fits.
    pub sizes: Vec<u16>,
    /// Total capacity `Σ λ·C(v_i, t)/C(r, t)` in blocks.
    pub capacity: u64,
}

/// Capacity (block count) of a maximum `t-(v, r, λ)` packing realized as a
/// design: `⌊λ·C(v, t)/C(r, t)⌋`.
#[must_use]
pub fn design_capacity(t: u16, r: u16, v: u16, lambda: u64) -> u64 {
    let num = binomial(u64::from(v), u64::from(t)).expect("v small");
    let den = binomial(u64::from(r), u64::from(t)).expect("r small");
    u64::try_from(u128::from(lambda) * num / den).expect("capacity fits u64")
}

/// The ideal capacity against which decompositions are measured:
/// `⌊λ·C(n, t)/C(r, t)⌋` (Lemma 1 with all `n` nodes).
#[must_use]
pub fn ideal_capacity(t: u16, r: u16, n: u16, lambda: u64) -> u64 {
    design_capacity(t, r, n, lambda)
}

/// Finds the decomposition of at most `m` chunks, drawn (with repetition)
/// from `admissible_sizes`, with total size `≤ n`, maximizing total design
/// capacity at index `lambda`.
///
/// Runs the classic bounded-knapsack DP in `O(m · n · |sizes|)`.
///
/// # Examples
///
/// ```
/// use wcp_designs::chunking::best_chunking;
///
/// // r = 5, t = 2, Steiner sizes near 257: two AG(3,5) chunks beat any
/// // single constructible design (775 + 775 blocks vs 775).
/// let plan = best_chunking(257, 5, 2, 3, &[21, 25, 65, 85, 125], 1);
/// assert_eq!(plan.sizes, vec![125, 125]);
/// ```
#[must_use]
pub fn best_chunking(
    n: u16,
    r: u16,
    t: u16,
    m: usize,
    admissible_sizes: &[u16],
    lambda: u64,
) -> ChunkPlan {
    let n = n as usize;
    let sizes: Vec<u16> = admissible_sizes
        .iter()
        .copied()
        .filter(|&v| v >= r && (v as usize) <= n)
        .collect();
    // dp[j][budget] = best capacity using exactly ≤ j chunks within budget.
    // Store choice for reconstruction.
    let mut dp = vec![vec![0u64; n + 1]; m + 1];
    let mut choice = vec![vec![0u16; n + 1]; m + 1];
    for j in 1..=m {
        for budget in 0..=n {
            // default: don't add a j-th chunk
            dp[j][budget] = dp[j - 1][budget];
            choice[j][budget] = 0;
            for &v in &sizes {
                if (v as usize) <= budget {
                    let cand = dp[j - 1][budget - v as usize] + design_capacity(t, r, v, lambda);
                    if cand > dp[j][budget] {
                        dp[j][budget] = cand;
                        choice[j][budget] = v;
                    }
                }
            }
        }
    }
    // Reconstruct.
    let mut plan_sizes = Vec::new();
    let mut j = m;
    let mut budget = n;
    while j > 0 {
        let v = choice[j][budget];
        if v > 0 {
            plan_sizes.push(v);
            budget -= v as usize;
        }
        j -= 1;
    }
    plan_sizes.sort_unstable_by(|a, b| b.cmp(a));
    ChunkPlan {
        capacity: dp[m][n],
        sizes: plan_sizes,
    }
}

/// The best achievable capacity for *every* budget `0 ..= n_max` at once
/// (one knapsack DP): `result[n]` equals
/// `best_chunking(n, …).capacity`. Used by the Fig. 5/6 sweeps, which
/// evaluate hundreds of system sizes against the same size list.
#[must_use]
pub fn capacity_profile(
    n_max: u16,
    r: u16,
    t: u16,
    m: usize,
    admissible_sizes: &[u16],
    lambda: u64,
) -> Vec<u64> {
    let n = n_max as usize;
    let sizes: Vec<u16> = admissible_sizes
        .iter()
        .copied()
        .filter(|&v| v >= r && (v as usize) <= n)
        .collect();
    let caps: Vec<u64> = sizes
        .iter()
        .map(|&v| design_capacity(t, r, v, lambda))
        .collect();
    let mut prev = vec![0u64; n + 1];
    for _ in 0..m {
        let mut cur = prev.clone();
        for budget in 0..=n {
            for (i, &v) in sizes.iter().enumerate() {
                if (v as usize) <= budget {
                    let cand = prev[budget - v as usize] + caps[i];
                    if cand > cur[budget] {
                        cur[budget] = cand;
                    }
                }
            }
        }
        prev = cur;
    }
    prev
}

/// The capacity gap of the best `≤ m`-chunk decomposition: the difference
/// between ideal and achievable capacity as a fraction of ideal, i.e.
/// `0.0` = perfect, `1.0` = nothing constructible.
///
/// This is exactly the horizontal axis of the paper's Figs. 5 and 6.
#[must_use]
pub fn capacity_gap(
    n: u16,
    r: u16,
    t: u16,
    m: usize,
    admissible_sizes: &[u16],
    lambda: u64,
) -> f64 {
    let ideal = ideal_capacity(t, r, n, lambda);
    if ideal == 0 {
        return 0.0;
    }
    let achieved = best_chunking(n, r, t, m, admissible_sizes, lambda).capacity;
    1.0 - achieved as f64 / ideal as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn capacity_formula() {
        assert_eq!(design_capacity(2, 3, 9, 1), 12); // STS(9)
        assert_eq!(design_capacity(2, 3, 69, 1), 782);
        assert_eq!(design_capacity(3, 5, 65, 1), 4368);
        assert_eq!(design_capacity(2, 5, 25, 2), 60);
    }

    #[test]
    fn single_chunk_when_exact_size_exists() {
        // n = 69, r = 3, t = 2: STS(69) exists, so one chunk of 69 is
        // optimal and the gap is 0.
        let sizes = catalog::steiner_sizes(2, 3, 3, 69);
        let plan = best_chunking(69, 3, 2, 3, &sizes, 1);
        assert_eq!(plan.sizes, vec![69]);
        assert_eq!(plan.capacity, 782);
        assert_eq!(capacity_gap(69, 3, 2, 3, &sizes, 1), 0.0);
    }

    #[test]
    fn multi_chunk_beats_single() {
        // n = 71, r = 3: STS(69) alone (782) vs 69 is best single; but the
        // DP may split. Whatever it picks must be at least the single-chunk
        // capacity and within the ideal.
        let sizes = catalog::steiner_sizes(2, 3, 3, 71);
        let plan = best_chunking(71, 3, 2, 3, &sizes, 1);
        assert!(plan.capacity >= 782);
        assert!(plan.capacity <= ideal_capacity(2, 3, 71, 1));
        let total: u64 = plan.sizes.iter().map(|&v| u64::from(v)).sum();
        assert!(total <= 71);
    }

    #[test]
    fn paper_example_257_r5() {
        // t = 2, r = 5, n = 257: constructible Steiner sizes include 25
        // (AG(2,5)), 65 (unital), 85 (PG(3,4)), 125 (AG(3,5)), 245
        // (Hanani spectrum).
        let sizes = catalog::steiner_sizes(2, 5, 5, 257);
        assert!(sizes.contains(&245));
        let plan = best_chunking(257, 5, 2, 3, &sizes, 1);
        // 245 (2989 blocks) plus two single-block chunks of 5 points.
        assert_eq!(plan.capacity, 2991);
        assert_eq!(plan.sizes[0], 245);
    }

    #[test]
    fn empty_sizes_give_full_gap() {
        assert_eq!(capacity_gap(100, 5, 3, 3, &[], 1), 1.0);
        let plan = best_chunking(100, 5, 3, 3, &[], 1);
        assert!(plan.sizes.is_empty());
        assert_eq!(plan.capacity, 0);
    }

    #[test]
    fn more_chunks_never_hurt() {
        let sizes = catalog::steiner_sizes(2, 4, 4, 300);
        for n in [50u16, 137, 222, 300] {
            let c1 = best_chunking(n, 4, 2, 1, &sizes, 1).capacity;
            let c2 = best_chunking(n, 4, 2, 2, &sizes, 1).capacity;
            let c3 = best_chunking(n, 4, 2, 3, &sizes, 1).capacity;
            assert!(c2 >= c1 && c3 >= c2, "n={n}: {c1} {c2} {c3}");
        }
    }

    #[test]
    fn profile_matches_pointwise_dp() {
        let sizes = catalog::steiner_sizes(2, 3, 3, 120);
        let profile = capacity_profile(120, 3, 2, 3, &sizes, 1);
        for n in [3u16, 17, 50, 99, 120] {
            assert_eq!(
                profile[n as usize],
                best_chunking(n, 3, 2, 3, &sizes, 1).capacity,
                "n={n}"
            );
        }
    }

    #[test]
    fn doc_example_sizes() {
        let plan = best_chunking(257, 5, 2, 3, &[21, 25, 65, 85, 125], 1);
        assert_eq!(plan.sizes, vec![125, 125]);
        assert_eq!(plan.capacity, 775 + 775);
    }
}
