//! Randomized greedy maximal `t-(v, r, λ)` packings.
//!
//! The constructive families cover every design the paper's Fig. 4 relies
//! on except the `4-(v, 5, 1)` Steiner systems (v = 23, 71, 243), whose
//! known constructions are deep (PSL(2,q) orbit stabilizer arguments). A
//! packing need not be maximum to be useful — `Simple(x, λ)` placements
//! only require the packing property, and a smaller block count merely
//! reduces capacity — so this module provides a seeded greedy packer used
//! as the universal fallback:
//!
//! * for small candidate spaces (`C(v, r)` bounded) it shuffles the
//!   complete candidate list and inserts greedily — deterministic given the
//!   seed and usually within a few percent of optimal for `t = 2`;
//! * for large spaces it samples random `r`-subsets, stopping after a
//!   configurable run of consecutive rejections or when `max_blocks` is
//!   reached.

use crate::verify::{for_each_t_subset, key};
use crate::{BlockDesign, DesignError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use wcp_combin::binomial;

/// Configuration for the greedy packer.
#[derive(Debug, Clone)]
pub struct GreedyConfig {
    /// RNG seed (the packer is deterministic given the seed).
    pub seed: u64,
    /// Stop once this many blocks have been accepted.
    pub max_blocks: usize,
    /// In sampling mode, stop after this many consecutive rejections.
    pub stall_limit: usize,
    /// Candidate spaces of at most this size are fully enumerated and
    /// shuffled rather than sampled.
    pub enumerate_threshold: u64,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_cafe,
            max_blocks: usize::MAX,
            stall_limit: 30_000,
            enumerate_threshold: 2_000_000,
        }
    }
}

/// Builds a greedy `t-(v, r, λ)` packing.
///
/// The result is always a valid packing (every `t`-subset in at most
/// `lambda` blocks); it is *maximal* (no candidate can be added) when the
/// candidate space was fully enumerated, and heuristically close to
/// maximal otherwise.
///
/// # Errors
///
/// [`DesignError::Unsupported`] for degenerate parameters
/// (`t = 0`, `t > r`, `r > v`, `λ = 0`).
///
/// # Examples
///
/// ```
/// use wcp_designs::{greedy::{greedy_packing, GreedyConfig}, verify};
///
/// let d = greedy_packing(13, 4, 2, 1, &GreedyConfig::default())?;
/// assert!(verify::is_t_packing(&d, 2, 1));
/// // The maximum 2-(13,4,1) packing is the PG(2,3) design with 13 blocks;
/// // a maximal greedy packing is guaranteed at least 7 on this instance.
/// assert!(d.num_blocks() >= 7);
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn greedy_packing(
    v: u16,
    r: u16,
    t: u16,
    lambda: u64,
    config: &GreedyConfig,
) -> Result<BlockDesign, DesignError> {
    if t == 0 || t > r || r > v || lambda == 0 {
        return Err(DesignError::Unsupported(format!(
            "greedy packing needs 0 < t ≤ r ≤ v and λ ≥ 1, got t={t}, r={r}, v={v}, λ={lambda}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut blocks: Vec<Vec<u16>> = Vec::new();

    let try_insert =
        |cand: &[u16], counts: &mut HashMap<u64, u64>, blocks: &mut Vec<Vec<u16>>| -> bool {
            let mut ok = true;
            for_each_t_subset(cand, t as usize, &mut |s| {
                if counts.get(&key(s)).copied().unwrap_or(0) >= lambda {
                    ok = false;
                }
            });
            if !ok {
                return false;
            }
            for_each_t_subset(cand, t as usize, &mut |s| {
                *counts.entry(key(s)).or_insert(0) += 1;
            });
            blocks.push(cand.to_vec());
            true
        };

    let space = binomial(u64::from(v), u64::from(r)).unwrap_or(u128::MAX);
    if space <= u128::from(config.enumerate_threshold) {
        // Exhaustive mode: shuffle all candidates, insert greedily. The
        // result is a maximal packing.
        let mut candidates: Vec<Vec<u16>> = wcp_combin::KSubsets::new(v, r).collect();
        candidates.shuffle(&mut rng);
        for cand in &candidates {
            if blocks.len() >= config.max_blocks {
                break;
            }
            try_insert(cand, &mut counts, &mut blocks);
        }
    } else {
        // Sampling mode.
        let mut stall = 0usize;
        let mut cand = vec![0u16; r as usize];
        while blocks.len() < config.max_blocks && stall < config.stall_limit {
            // Sample r distinct points (Floyd's algorithm would also work;
            // rejection is fine for r ≪ v).
            cand.clear();
            while cand.len() < r as usize {
                let p = rng.gen_range(0..v);
                if !cand.contains(&p) {
                    cand.push(p);
                }
            }
            cand.sort_unstable();
            if try_insert(&cand, &mut counts, &mut blocks) {
                stall = 0;
            } else {
                stall += 1;
            }
        }
    }
    BlockDesign::new(v, r, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn produces_valid_packings() {
        for (v, r, t, lambda) in [(10u16, 3u16, 2u16, 1u64), (15, 4, 2, 1), (12, 4, 3, 2)] {
            let d = greedy_packing(v, r, t, lambda, &GreedyConfig::default()).unwrap();
            assert!(
                verify::is_t_packing(&d, t, lambda),
                "({v},{r},{t},{lambda})"
            );
            assert!(d.num_blocks() > 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GreedyConfig {
            seed: 42,
            ..GreedyConfig::default()
        };
        let a = greedy_packing(20, 5, 2, 1, &cfg).unwrap();
        let b = greedy_packing(20, 5, 2, 1, &cfg).unwrap();
        assert_eq!(a.blocks(), b.blocks());
    }

    #[test]
    fn respects_max_blocks() {
        let cfg = GreedyConfig {
            max_blocks: 7,
            ..GreedyConfig::default()
        };
        let d = greedy_packing(50, 5, 2, 1, &cfg).unwrap();
        assert_eq!(d.num_blocks(), 7);
    }

    #[test]
    fn near_optimal_on_steiner_instance() {
        // Maximum 2-(9,3,1) packing = STS(9) with 12 blocks; exhaustive
        // greedy should find at least 8 (typically 10–12).
        let d = greedy_packing(9, 3, 2, 1, &GreedyConfig::default()).unwrap();
        assert!(verify::is_t_packing(&d, 2, 1));
        assert!(d.num_blocks() >= 8, "got {}", d.num_blocks());
    }

    #[test]
    fn quadruple_steiner_4_23_5() {
        // The paper's 4-(23,5,1) slot: maximum is 1771 blocks; greedy gets
        // a valid 4-packing with a substantial fraction.
        let d = greedy_packing(23, 5, 4, 1, &GreedyConfig::default()).unwrap();
        assert!(verify::is_t_packing(&d, 4, 1));
        assert!(d.num_blocks() >= 900, "got {}", d.num_blocks());
    }

    #[test]
    fn lambda_two_doubles_capacity_roughly() {
        let d1 = greedy_packing(12, 3, 2, 1, &GreedyConfig::default()).unwrap();
        let d2 = greedy_packing(12, 3, 2, 2, &GreedyConfig::default()).unwrap();
        assert!(verify::is_t_packing(&d2, 2, 2));
        assert!(d2.num_blocks() > d1.num_blocks());
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(greedy_packing(5, 3, 0, 1, &GreedyConfig::default()).is_err());
        assert!(greedy_packing(5, 3, 4, 1, &GreedyConfig::default()).is_err());
        assert!(greedy_packing(5, 6, 2, 1, &GreedyConfig::default()).is_err());
        assert!(greedy_packing(5, 3, 2, 0, &GreedyConfig::default()).is_err());
    }
}
