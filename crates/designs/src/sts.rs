//! Steiner triple systems `2-(v, 3, 1)` for every admissible `v`.
//!
//! STS(v) exists iff `v ≡ 1 or 3 (mod 6)` (Kirkman). Both residue classes
//! have classical constructions from quasigroups:
//!
//! * **Bose** (`v = 6t + 3`): an idempotent commutative quasigroup of odd
//!   order `m = 2t + 1` (`x ∘ y = (x + y)·(m+1)/2 mod m`) on
//!   `Z_m × {0,1,2}`.
//! * **Skolem** (`v = 6t + 1`): a half-idempotent commutative quasigroup of
//!   order `2t` on `Z_{2t} × {0,1,2}` plus one extra point `∞`.
//!
//! The paper's evaluations use STS(69) (Bose, the `n_1` entry for `n = 71`,
//! `r = 3`), STS(31) and STS(255).

use crate::{BlockDesign, DesignError};

/// Point encoding for the quasigroup constructions: `(x, group)` with
/// `group ∈ {0,1,2}` maps to `3x + group`; `∞` (Skolem only) is `v − 1`.
fn enc(x: u32, group: u32) -> u16 {
    (3 * x + group) as u16
}

/// Builds a Steiner triple system on `v` points.
///
/// # Errors
///
/// [`DesignError::Unsupported`] unless `v ≡ 1 or 3 (mod 6)` and `v ≥ 7`
/// (`v = 3` is the degenerate single block and is allowed; `v = 1` has no
/// triples).
///
/// # Examples
///
/// ```
/// use wcp_designs::{sts, verify};
///
/// let d = sts::steiner_triple_system(69)?;
/// assert_eq!(d.num_blocks(), 782); // C(69,2)/C(3,2)
/// assert!(verify::is_t_design(&d, 2, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn steiner_triple_system(v: u16) -> Result<BlockDesign, DesignError> {
    match v % 6 {
        3 => bose(v),
        1 if v >= 7 => skolem(v),
        _ => Err(DesignError::Unsupported(format!(
            "STS({v}) does not exist: v must be ≡ 1 or 3 (mod 6)"
        ))),
    }
}

/// Bose construction for `v ≡ 3 (mod 6)`.
fn bose(v: u16) -> Result<BlockDesign, DesignError> {
    let m = u32::from(v) / 3; // odd
    debug_assert_eq!(m % 2, 1);
    let half = m.div_ceil(2); // multiplicative inverse of 2 mod m
    let qg = |x: u32, y: u32| -> u32 { ((x + y) * half) % m };
    let mut blocks = Vec::new();
    for x in 0..m {
        let mut b = vec![enc(x, 0), enc(x, 1), enc(x, 2)];
        b.sort_unstable();
        blocks.push(b);
    }
    for x in 0..m {
        for y in x + 1..m {
            let z = qg(x, y);
            for g in 0..3u32 {
                let mut b = vec![enc(x, g), enc(y, g), enc(z, (g + 1) % 3)];
                b.sort_unstable();
                blocks.push(b);
            }
        }
    }
    BlockDesign::new(v, 3, blocks)
}

/// Skolem construction for `v ≡ 1 (mod 6)`, `v ≥ 7`.
fn skolem(v: u16) -> Result<BlockDesign, DesignError> {
    let m = (u32::from(v) - 1) / 3; // m = 2t, even
    let t = m / 2;
    let infinity = v - 1;
    // Half-idempotent commutative quasigroup on Z_m: x ∘ y = σ(x + y) where
    // σ(2i) = i and σ(2i+1) = t + i.
    let sigma = |e: u32| -> u32 {
        let e = e % m;
        if e.is_multiple_of(2) {
            e / 2
        } else {
            t + (e - 1) / 2
        }
    };
    let qg = |x: u32, y: u32| -> u32 { sigma(x + y) };
    let mut blocks = Vec::new();
    // Type 1: {(i,0),(i,1),(i,2)} for i < t.
    for i in 0..t {
        let mut b = vec![enc(i, 0), enc(i, 1), enc(i, 2)];
        b.sort_unstable();
        blocks.push(b);
    }
    // Type 2: {∞, (t+i, g), (i, g+1)} for 0 ≤ i < t, g ∈ {0,1,2}.
    for i in 0..t {
        for g in 0..3u32 {
            let mut b = vec![infinity, enc(t + i, g), enc(i, (g + 1) % 3)];
            b.sort_unstable();
            blocks.push(b);
        }
    }
    // Type 3: {(x,g),(y,g),(x∘y, g+1)} for x < y.
    for x in 0..m {
        for y in x + 1..m {
            let z = qg(x, y);
            for g in 0..3u32 {
                let mut b = vec![enc(x, g), enc(y, g), enc(z, (g + 1) % 3)];
                b.sort_unstable();
                blocks.push(b);
            }
        }
    }
    BlockDesign::new(v, 3, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn bose_small() {
        for v in [9u16, 15, 21, 27, 33] {
            let d = steiner_triple_system(v).unwrap();
            let expect = u64::from(v) * (u64::from(v) - 1) / 6;
            assert_eq!(d.num_blocks() as u64, expect, "block count v={v}");
            assert!(verify::is_t_design(&d, 2, 1), "STS({v}) pair balance");
        }
    }

    #[test]
    fn skolem_small() {
        for v in [7u16, 13, 19, 25, 31, 37] {
            let d = steiner_triple_system(v).unwrap();
            let expect = u64::from(v) * (u64::from(v) - 1) / 6;
            assert_eq!(d.num_blocks() as u64, expect, "block count v={v}");
            assert!(verify::is_t_design(&d, 2, 1), "STS({v}) pair balance");
        }
    }

    #[test]
    fn paper_sizes() {
        // STS(69): the paper's design for n = 71, r = 3, x = 1.
        let d = steiner_triple_system(69).unwrap();
        assert_eq!(d.num_blocks(), 782);
        assert!(verify::is_t_design(&d, 2, 1));
        // STS(255): n = 257, r = 3, x = 1.
        let d = steiner_triple_system(255).unwrap();
        assert_eq!(d.num_blocks(), 10_795);
        assert!(verify::is_t_design(&d, 2, 1));
    }

    #[test]
    fn inadmissible_rejected() {
        for v in [5u16, 6, 8, 11, 14, 17, 20, 23] {
            assert!(steiner_triple_system(v).is_err(), "STS({v}) must not exist");
        }
    }

    #[test]
    fn degenerate_cases() {
        // v = 3: a single block.
        let d = steiner_triple_system(3).unwrap();
        assert_eq!(d.num_blocks(), 1);
        // v = 1 (≡ 1 mod 6 but too small for the construction): rejected.
        assert!(steiner_triple_system(1).is_err());
    }
}
