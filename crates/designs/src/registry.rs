//! Construction registry: the best constructible `t-(v, r, 1)` packing
//! with `v ≤ v_max`.
//!
//! The placement layer asks one question of design theory: *"I need a
//! `(x+1)`-packing of `r`-sets over at most `n` points with at least `b`
//! blocks per index unit — give me the best you can actually build."* This
//! module answers it by ranking, for each `(t, r)`:
//!
//! 1. every constructive family instance with `v ≤ v_max`
//!    (Steiner triple systems, AG/PG lines, unitals, Boolean and doubled
//!    quadruple systems, Möbius subline designs, complete designs,
//!    partitions);
//! 2. chunked combinations of those instances (Observation 2), found by
//!    the knapsack DP in [`crate::chunking`];
//! 3. a seeded greedy packing fallback (only when the families cannot meet
//!    the requested block count — e.g. the `4-(v,5,1)` slots, where the
//!    known Steiner systems have no simple construction; see DESIGN.md §3).
//!
//! Each result carries provenance so experiment output can show exactly
//! which design backs which placement (the paper's Fig. 4).

use crate::greedy::{greedy_packing, GreedyConfig};
use crate::{catalog, chunking, complete, lines, mols, sqs, sts, subline, unital};
use crate::{BlockDesign, DesignError};

/// Options controlling registry selection.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Seed for the greedy fallback.
    pub seed: u64,
    /// Maximum number of chunks for Observation-2 decompositions.
    pub max_chunks: usize,
    /// Whether the greedy fallback may be used at all.
    pub allow_greedy: bool,
    /// Stall limit handed to the greedy packer.
    pub greedy_stall_limit: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            seed: 0x9e37_79b9,
            max_chunks: 3,
            allow_greedy: true,
            greedy_stall_limit: 30_000,
        }
    }
}

/// How a unit packing is materialized.
#[derive(Debug, Clone)]
enum Source {
    Partition,
    Complete,
    AllPairs,
    Sts,
    AgLines { q: u32, d: u32 },
    PgLines { q: u32, d: u32 },
    Unital { q: u32 },
    Sqs { recipe: SqsRecipe },
    Subline { q: u32, d: u32 },
    Transversal { m: u16 },
    Greedy { design: BlockDesign },
    Chunked { parts: Vec<UnitPacking> },
}

/// A quadruple system recipe: a constructible root doubled `doublings`
/// times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqsRecipe {
    root: SqsRoot,
    doublings: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SqsRoot {
    Boolean { d: u32 },
    Subline3 { d: u32 },
}

impl SqsRoot {
    fn v(self) -> u32 {
        match self {
            SqsRoot::Boolean { d } => 1 << d,
            SqsRoot::Subline3 { d } => 3u32.pow(d) + 1,
        }
    }
}

/// A concrete `t-(v, r, 1)` packing the registry can build on demand.
///
/// `capacity` is the number of blocks one copy provides; `Simple(x, λ)`
/// placements replicate copies to reach higher indices (Observation 1).
#[derive(Debug, Clone)]
pub struct UnitPacking {
    t: u16,
    r: u16,
    v: u16,
    capacity: u64,
    maximal: bool,
    provenance: String,
    source: Source,
}

impl UnitPacking {
    /// Packing strength `t = x + 1`.
    #[must_use]
    pub fn t(&self) -> u16 {
        self.t
    }

    /// Block size `r`.
    #[must_use]
    pub fn r(&self) -> u16 {
        self.r
    }

    /// Points used (`n_x` in the paper; `≤ v_max` requested).
    #[must_use]
    pub fn v(&self) -> u16 {
        self.v
    }

    /// Blocks available from one copy of this packing.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// True when `capacity` is the design-theoretic maximum
    /// `⌊C(v,t)/C(r,t)⌋` (or a verified-maximal greedy result).
    #[must_use]
    pub fn is_maximal(&self) -> bool {
        self.maximal
    }

    /// Human-readable provenance ("which design is this").
    #[must_use]
    pub fn provenance(&self) -> &str {
        &self.provenance
    }

    /// Materializes up to `limit` blocks.
    ///
    /// Any prefix of a packing is a packing, so requesting fewer blocks
    /// than `capacity` is always sound.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (none occur for registry-produced
    /// instances; the interface is fallible for forward compatibility).
    pub fn materialize(&self, limit: usize) -> Result<BlockDesign, DesignError> {
        let design = match &self.source {
            Source::Partition => complete::partition(self.v, self.r)?,
            Source::Complete => complete::complete_prefix(self.v, self.r, limit)?,
            Source::AllPairs => complete::complete_prefix(self.v, 2, limit)?,
            Source::Sts => sts::steiner_triple_system(self.v)?,
            Source::AgLines { q, d } => lines::ag_line_design(*q, *d)?,
            Source::PgLines { q, d } => lines::pg_line_design(*q, *d)?,
            Source::Unital { q } => unital::hermitian_unital(*q)?,
            Source::Sqs { recipe } => materialize_sqs(*recipe, limit)?,
            Source::Subline { q, d } => subline::subline_design(*q, *d, limit)?,
            Source::Transversal { m } => mols::transversal_design(self.r, *m)?,
            Source::Greedy { design } => design.clone(),
            Source::Chunked { parts } => {
                let mut blocks: Vec<Vec<u16>> = Vec::new();
                let mut offset = 0u16;
                for part in parts {
                    let remaining = limit.saturating_sub(blocks.len());
                    if remaining == 0 {
                        break;
                    }
                    let d = part.materialize(remaining)?;
                    blocks.extend(d.translated(offset, self.v).into_blocks());
                    offset += part.v;
                }
                return BlockDesign::new(self.v, self.r, blocks);
            }
        };
        let mut blocks = design.into_blocks();
        blocks.truncate(limit);
        BlockDesign::new(self.v, self.r, blocks)
    }
}

fn materialize_sqs(recipe: SqsRecipe, limit: usize) -> Result<BlockDesign, DesignError> {
    let mut design = match recipe.root {
        SqsRoot::Boolean { d } => sqs::boolean_sqs(d)?,
        SqsRoot::Subline3 { d } => subline::subline_design(3, d, limit.max(1))?,
    };
    for _ in 0..recipe.doublings {
        // Truncating the base before doubling keeps intermediate systems
        // bounded: a doubled partial SQS is still a 3-packing, and the
        // type-2 (cross) blocks alone cover any truncation we request.
        let v = design.num_points();
        let mut blocks = design.into_blocks();
        blocks.truncate(limit.max(1));
        design = sqs::double(&BlockDesign::new(v, 4, blocks)?)?;
    }
    let v = design.num_points();
    let mut blocks = design.into_blocks();
    blocks.truncate(limit);
    BlockDesign::new(v, 4, blocks)
}

/// Maximum-capacity formula `⌊C(v,t)/C(r,t)⌋`.
fn max_capacity(t: u16, r: u16, v: u16) -> u64 {
    chunking::design_capacity(t, r, v, 1)
}

/// All constructive single-design candidates for `(t, r)` with `v ≤ v_max`,
/// as (instance, capacity is design-maximum).
fn family_candidates(t: u16, r: u16, v_max: u16) -> Vec<UnitPacking> {
    let mut out: Vec<UnitPacking> = Vec::new();
    let mut push = |v: u16, provenance: String, source: Source| {
        out.push(UnitPacking {
            t,
            r,
            v,
            capacity: max_capacity(t, r, v),
            maximal: true,
            provenance,
            source,
        });
    };
    if r > v_max || t == 0 || t > r {
        return out;
    }
    if t == 1 {
        push(
            v_max,
            format!("partition of {v_max} into {r}-sets"),
            Source::Partition,
        );
        return out;
    }
    if t == r {
        push(
            v_max,
            format!("complete {r}-subset design on {v_max} points (vacuous Steiner)"),
            Source::Complete,
        );
        return out;
    }
    match (t, r) {
        (2, 2) => push(
            v_max,
            format!("all pairs on {v_max} points"),
            Source::AllPairs,
        ),
        (2, 3) => {
            for v in catalog::steiner_sizes(2, 3, 3, v_max) {
                push(v, format!("STS({v})"), Source::Sts);
            }
        }
        (2, 4) => {
            for d in 1..=8u32 {
                let v = 4u64.pow(d);
                if v <= u64::from(v_max) {
                    push(
                        v as u16,
                        format!("AG({d},4) lines 2-({v},4,1)"),
                        Source::AgLines { q: 4, d },
                    );
                }
            }
            for d in 2..=6u32 {
                let v = wcp_gf::geometry::pg_point_count(3, d);
                if v <= u64::from(v_max) {
                    push(
                        v as u16,
                        format!("PG({d},3) lines 2-({v},4,1)"),
                        Source::PgLines { q: 3, d },
                    );
                }
            }
            if 28 <= v_max {
                push(
                    28,
                    "Hermitian unital 2-(28,4,1)".into(),
                    Source::Unital { q: 3 },
                );
            }
        }
        (2, 5) => {
            for d in 1..=4u32 {
                let v = 5u64.pow(d);
                if v <= u64::from(v_max) {
                    push(
                        v as u16,
                        format!("AG({d},5) lines 2-({v},5,1)"),
                        Source::AgLines { q: 5, d },
                    );
                }
            }
            for d in 2..=5u32 {
                let v = wcp_gf::geometry::pg_point_count(4, d);
                if v <= u64::from(v_max) {
                    push(
                        v as u16,
                        format!("PG({d},4) lines 2-({v},5,1)"),
                        Source::PgLines { q: 4, d },
                    );
                }
            }
            if 65 <= v_max {
                push(
                    65,
                    "Hermitian unital 2-(65,5,1)".into(),
                    Source::Unital { q: 4 },
                );
            }
        }
        (3, 4) => {
            // Boolean roots and Möbius roots, plus their doubling closures.
            let mut recipes: Vec<(u16, SqsRecipe)> = Vec::new();
            for d in 2..=9u32 {
                let root = SqsRoot::Boolean { d };
                if root.v() <= u32::from(v_max) {
                    recipes.push((root.v() as u16, SqsRecipe { root, doublings: 0 }));
                }
            }
            for d in 2..=6u32 {
                let root = SqsRoot::Subline3 { d };
                let mut v = root.v();
                let mut doublings = 0;
                while v <= u32::from(v_max) {
                    recipes.push((v as u16, SqsRecipe { root, doublings }));
                    v *= 2;
                    doublings += 1;
                }
            }
            recipes.sort_by_key(|&(v, r)| (v, r.doublings));
            recipes.dedup_by_key(|&mut (v, _)| v);
            for (v, recipe) in recipes {
                let name = match recipe.root {
                    SqsRoot::Boolean { d } => format!("Boolean SQS(2^{d})"),
                    SqsRoot::Subline3 { d } => format!("Möbius 3-(3^{d}+1,4,1)"),
                };
                let prov = if recipe.doublings == 0 {
                    format!("SQS({v}) = {name}")
                } else {
                    format!("SQS({v}) = {name} doubled ×{}", recipe.doublings)
                };
                push(v, prov, Source::Sqs { recipe });
            }
        }
        (3, 5) => {
            for d in 2..=4u32 {
                let v = 4u64.pow(d) + 1;
                if v <= u64::from(v_max) {
                    push(
                        v as u16,
                        format!("Möbius 3-({v},5,1)"),
                        Source::Subline { q: 4, d },
                    );
                }
            }
        }
        _ => {}
    }
    // Transversal designs: 2-(r·m, r, 1) packings with m² blocks (groups
    // leave within-group pairs uncovered, so they are not maximal), for
    // the largest orders with r − 2 MOLS. They often beat chunked unions
    // in the gaps of the Steiner spectra.
    if t == 2 && r >= 3 {
        let mut added = 0;
        let mut m = v_max / r;
        while m >= r && added < 3 {
            if mols::mols_count(m) >= usize::from(r) - 2 {
                out.push(UnitPacking {
                    t,
                    r,
                    v: r * m,
                    capacity: u64::from(m) * u64::from(m),
                    maximal: false,
                    provenance: format!(
                        "transversal design TD({r},{m}) 2-({}, {r}, 1) packing",
                        r * m
                    ),
                    source: Source::Transversal { m },
                });
                added += 1;
            }
            m -= 1;
        }
    }
    out
}

/// Selects the best constructible unit packing for `(t, r)` with
/// `v ≤ v_max`, aiming for at least `needed_blocks` blocks.
///
/// Preference order: the largest-capacity exact family or chunked
/// combination; the greedy fallback is consulted only when those cannot
/// reach `needed_blocks` and is kept only if it actually achieves more.
///
/// Returns `None` when nothing is constructible (e.g. `r > v_max`).
///
/// # Examples
///
/// ```
/// use wcp_designs::registry::{best_unit_packing, RegistryConfig};
///
/// // The paper's n = 71, r = 5, x = 2 slot: Möbius 3-(65,5,1).
/// let unit = best_unit_packing(3, 5, 71, 1000, &RegistryConfig::default()).unwrap();
/// assert_eq!(unit.v(), 65);
/// assert_eq!(unit.capacity(), 4368);
/// ```
#[must_use]
pub fn best_unit_packing(
    t: u16,
    r: u16,
    v_max: u16,
    needed_blocks: u64,
    config: &RegistryConfig,
) -> Option<UnitPacking> {
    let singles = family_candidates(t, r, v_max);
    let mut best: Option<UnitPacking> = singles.iter().max_by_key(|u| u.capacity).cloned();

    // Observation 2: chunked combinations (only helpful for t ≥ 2 families
    // with multiple sizes; partitions/complete designs already use all
    // nodes).
    if config.max_chunks >= 2 && !singles.is_empty() && t >= 2 && t < r {
        // Only maximal candidates enter the knapsack: its capacity model
        // is the Lemma-1 design maximum, which non-maximal packings
        // (transversal designs) do not reach.
        let sizes: Vec<u16> = singles.iter().filter(|u| u.maximal).map(|u| u.v).collect();
        let plan = chunking::best_chunking(v_max, r, t, config.max_chunks, &sizes, 1);
        let single_best = best.as_ref().map_or(0, |u| u.capacity);
        if plan.sizes.len() > 1 && plan.capacity > single_best {
            let parts: Vec<UnitPacking> = plan
                .sizes
                .iter()
                .map(|&v| {
                    singles
                        .iter()
                        .find(|u| u.maximal && u.v == v)
                        .expect("chunk size came from candidate list")
                        .clone()
                })
                .collect();
            let total_v: u16 = plan.sizes.iter().sum();
            let provenance = format!(
                "chunks [{}] (Observation 2)",
                parts
                    .iter()
                    .map(|p| p.provenance.clone())
                    .collect::<Vec<_>>()
                    .join(" + ")
            );
            best = Some(UnitPacking {
                t,
                r,
                v: total_v,
                capacity: plan.capacity,
                maximal: true,
                provenance,
                source: Source::Chunked { parts },
            });
        }
    }

    // Greedy fallback.
    let have = best.as_ref().map_or(0, |u| u.capacity);
    if config.allow_greedy && have < needed_blocks && t >= 2 && r >= t && v_max >= r {
        let greedy_cfg = GreedyConfig {
            seed: config.seed,
            max_blocks: usize::try_from(needed_blocks).unwrap_or(usize::MAX),
            stall_limit: config.greedy_stall_limit,
            ..GreedyConfig::default()
        };
        if let Ok(design) = greedy_packing(v_max, r, t, 1, &greedy_cfg) {
            let achieved = design.num_blocks() as u64;
            if achieved > have {
                let saturated = achieved < needed_blocks; // stopped by stall ⇒ maximal-ish
                best = Some(UnitPacking {
                    t,
                    r,
                    v: v_max,
                    capacity: achieved,
                    maximal: false,
                    provenance: format!(
                        "greedy {t}-({v_max},{r},1) packing, {achieved} blocks{}",
                        if saturated { " (saturated)" } else { "" }
                    ),
                    source: Source::Greedy { design },
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn sts_slot_matches_paper() {
        // n = 71, r = 3, x = 1 → STS(69), 782 blocks (paper Fig. 4).
        let u = best_unit_packing(2, 3, 71, 100, &RegistryConfig::default()).unwrap();
        assert_eq!(u.v(), 69);
        assert_eq!(u.capacity(), 782);
        assert!(u.provenance().contains("STS(69)"));
        let d = u.materialize(usize::MAX).unwrap();
        assert_eq!(d.num_blocks(), 782);
        assert!(verify::is_t_design(&d, 2, 1));
    }

    #[test]
    fn sqs_slot_matches_paper() {
        // n = 31, r = 4, x = 2 → SQS(28) via the Möbius construction
        // (the paper's n_2 = 28 entry).
        let u = best_unit_packing(3, 4, 31, 100, &RegistryConfig::default()).unwrap();
        assert_eq!(u.v(), 28);
        assert_eq!(u.capacity(), 819);
        let d = u.materialize(200).unwrap();
        assert_eq!(d.num_blocks(), 200);
        assert!(verify::is_t_packing(&d, 3, 1));
    }

    #[test]
    fn unital_slot_matches_paper() {
        // n = 71, r = 5, x = 1 → Hermitian unital 2-(65,5,1) (paper n_1 = 65)
        // when restricted to one chunk; with chunking enabled the registry
        // squeezes out one more block by appending a trivial 5-point chunk.
        let single = RegistryConfig {
            max_chunks: 1,
            ..RegistryConfig::default()
        };
        let u = best_unit_packing(2, 5, 71, 100, &single).unwrap();
        assert_eq!(u.v(), 65);
        assert_eq!(u.capacity(), 208);
        assert!(u.is_maximal());

        let chunked = best_unit_packing(2, 5, 71, 100, &RegistryConfig::default()).unwrap();
        assert_eq!(chunked.v(), 70);
        assert_eq!(chunked.capacity(), 209);
    }

    #[test]
    fn greedy_beats_families_when_more_blocks_needed() {
        // Same slot but demanding more blocks than the unital offers: the
        // greedy fallback on all 71 points can exceed 208 (max is 248).
        let u = best_unit_packing(2, 5, 71, 240, &RegistryConfig::default()).unwrap();
        assert!(u.capacity() >= 208, "capacity {}", u.capacity());
        let d = u.materialize(usize::MAX).unwrap();
        assert!(verify::is_t_packing(&d, 2, 1));
        assert_eq!(d.num_blocks() as u64, u.capacity());
    }

    #[test]
    fn td_wins_at_257_r5() {
        // n = 257, r = 5, x = 1 with greedy disabled: the transversal
        // design TD(5,49) on 245 points (2401 blocks) beats both the best
        // single Steiner family (AG(3,5), 775) and the best chunked union
        // ([125,125,5], 1551) — and lands close to the paper's
        // 2-(245,5,1) slot (2989 max) with a real construction.
        let cfg = RegistryConfig {
            allow_greedy: false,
            ..RegistryConfig::default()
        };
        let u = best_unit_packing(2, 5, 257, 10_000, &cfg).unwrap();
        assert_eq!(u.capacity(), 2401);
        assert_eq!(u.v(), 245);
        assert!(u.provenance().contains("TD(5,49)"));
        let d = u.materialize(usize::MAX).unwrap();
        assert_eq!(d.num_blocks(), 2401);
        assert!(verify::is_t_packing(&d, 2, 1));
    }

    #[test]
    fn chunked_wins_when_tds_disabled_by_size() {
        // Same slot restricted to v ≤ 130: chunk unions still matter when
        // the TD orders do not fit.
        let cfg = RegistryConfig {
            allow_greedy: false,
            ..RegistryConfig::default()
        };
        let u = best_unit_packing(2, 5, 130, 10_000, &cfg).unwrap();
        // Best single: AG(3,5) = 775; TD(5, 26) = 676; chunks [125, 5]
        // give 776.
        assert!(u.capacity() >= 776, "got {}", u.capacity());
        let d = u.materialize(usize::MAX).unwrap();
        assert!(verify::is_t_packing(&d, 2, 1));
    }

    #[test]
    fn quadruple_steiner_falls_back_to_greedy() {
        // t = 4, r = 5 has no constructive family; greedy must carry it.
        let u = best_unit_packing(4, 5, 23, 500, &RegistryConfig::default()).unwrap();
        assert_eq!(u.v(), 23);
        assert_eq!(u.capacity(), 500); // capped by needed_blocks
        assert!(!u.is_maximal());
        let d = u.materialize(usize::MAX).unwrap();
        assert!(verify::is_t_packing(&d, 4, 1));
    }

    #[test]
    fn subline_slot_at_257() {
        // n = 257, r = 5, x = 2 → Möbius 3-(257,5,1) (paper n_2 = 257).
        let u = best_unit_packing(3, 5, 257, 1000, &RegistryConfig::default()).unwrap();
        assert_eq!(u.v(), 257);
        assert_eq!(u.capacity(), 279_616);
        let d = u.materialize(1500).unwrap();
        assert_eq!(d.num_blocks(), 1500);
        assert!(verify::is_t_packing(&d, 3, 1));
    }

    #[test]
    fn vacuous_and_partition_slots() {
        let u = best_unit_packing(5, 5, 257, 10, &RegistryConfig::default()).unwrap();
        assert_eq!(u.v(), 257);
        let d = u.materialize(10).unwrap();
        assert_eq!(d.num_blocks(), 10);
        assert!(verify::is_t_packing(&d, 5, 1));

        let u = best_unit_packing(1, 5, 31, 10, &RegistryConfig::default()).unwrap();
        assert_eq!(u.capacity(), 6);
        let d = u.materialize(usize::MAX).unwrap();
        assert_eq!(verify::packing_index(&d, 1), 1);
    }

    #[test]
    fn doubled_sqs_materializes() {
        // SQS(56) = Möbius 3-(28,4,1) doubled once: only reachable when
        // v_max ∈ [56, 63] (single-chunk mode).
        let cfg = RegistryConfig {
            max_chunks: 1,
            ..RegistryConfig::default()
        };
        let u = best_unit_packing(3, 4, 60, 100, &cfg).unwrap();
        assert_eq!(u.v(), 56);
        assert_eq!(u.capacity(), 6930);
        let d = u.materialize(usize::MAX).unwrap();
        assert_eq!(d.num_blocks() as u64, u.capacity());
        assert!(verify::is_t_design(&d, 3, 1));
        // Truncated materialization is still a packing.
        let d = u.materialize(300).unwrap();
        assert_eq!(d.num_blocks(), 300);
        assert!(verify::is_t_packing(&d, 3, 1));
    }

    #[test]
    fn nothing_constructible() {
        assert!(best_unit_packing(2, 5, 4, 10, &RegistryConfig::default()).is_none());
    }
}
