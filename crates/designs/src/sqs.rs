//! Steiner quadruple systems — `3-(v, 4, 1)` designs.
//!
//! SQS(v) exists iff `v ≡ 2 or 4 (mod 6)` (Hanani). This module implements
//! two constructive families that, combined with the Möbius designs of
//! [`crate::subline`] (`3-(3^d+1, 4, 1)`), cover every size the placement
//! library needs:
//!
//! * [`boolean_sqs`] — points `GF(2)^d`, blocks the 4-sets with zero XOR
//!   (the planes of the Boolean affine geometry): `3-(2^d, 4, 1)`.
//! * [`double`] — the classical doubling construction building `SQS(2v)`
//!   from `SQS(v)` and a one-factorization of `K_v` ([`one_factorization`],
//!   the circle method).

use crate::{BlockDesign, DesignError};

/// The Boolean quadruple system `3-(2^d, 4, 1)`: blocks are all 4-subsets
/// `{a, b, c, e}` of `GF(2)^d` with `a ⊕ b ⊕ c ⊕ e = 0`.
///
/// # Errors
///
/// [`DesignError::Unsupported`] unless `2 ≤ d ≤ 15`.
///
/// # Examples
///
/// ```
/// use wcp_designs::{sqs, verify};
///
/// let d = sqs::boolean_sqs(3)?; // SQS(8): 14 blocks
/// assert_eq!(d.num_blocks(), 14);
/// assert!(verify::is_t_design(&d, 3, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn boolean_sqs(d: u32) -> Result<BlockDesign, DesignError> {
    if !(2..=15).contains(&d) {
        return Err(DesignError::Unsupported(format!(
            "boolean SQS needs 2 ≤ d ≤ 15, got {d}"
        )));
    }
    let v = 1u32 << d;
    let mut blocks = Vec::new();
    // Enumerate a < b < c, set e = a ^ b ^ c; keep when e > c so each block
    // is generated exactly once and all four points are distinct.
    for a in 0..v {
        for b in a + 1..v {
            for c in b + 1..v {
                let e = a ^ b ^ c;
                if e > c {
                    blocks.push(vec![a as u16, b as u16, c as u16, e as u16]);
                }
            }
        }
    }
    BlockDesign::new(v as u16, 4, blocks)
}

/// A one-factorization of the complete graph `K_v` (`v` even): `v − 1`
/// perfect matchings partitioning the edge set, via the circle method.
///
/// Returned as `factors[i]` = list of disjoint pairs covering all `v`
/// points.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `v` is odd or `< 2`.
///
/// # Examples
///
/// ```
/// use wcp_designs::sqs::one_factorization;
///
/// let f = one_factorization(8)?;
/// assert_eq!(f.len(), 7);
/// assert!(f.iter().all(|m| m.len() == 4));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn one_factorization(v: u16) -> Result<Vec<Vec<(u16, u16)>>, DesignError> {
    if v < 2 || !v.is_multiple_of(2) {
        return Err(DesignError::Unsupported(format!(
            "one-factorization needs even v ≥ 2, got {v}"
        )));
    }
    let m = v - 1; // circle size (odd); point v-1 is the hub
    let mut factors = Vec::with_capacity(m as usize);
    for round in 0..m {
        let mut pairs = Vec::with_capacity(v as usize / 2);
        pairs.push((round, v - 1));
        for j in 1..=(m - 1) / 2 {
            // pair (round + j, round − j) mod m
            let a = (round + j) % m;
            let b = (round + m - j) % m;
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            pairs.push((lo, hi));
        }
        pairs.sort_unstable();
        factors.push(pairs);
    }
    Ok(factors)
}

/// Doubling construction: given `SQS(v)` builds `SQS(2v)`.
///
/// Points of the result are `x` (copy 0) and `x + v` (copy 1) for each
/// original point `x`. Blocks:
///
/// 1. each base block within each copy;
/// 2. `{a₀, b₀, c₁, d₁}` for every pair of edges `{a,b}`, `{c,d}` lying in
///    the *same* factor of a one-factorization of `K_v`.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if the base has odd `v` or block size ≠ 4.
///
/// # Examples
///
/// ```
/// use wcp_designs::{sqs, verify};
///
/// let base = sqs::boolean_sqs(3)?;       // SQS(8)
/// let doubled = sqs::double(&base)?;     // SQS(16)
/// assert_eq!(doubled.num_points(), 16);
/// assert!(verify::is_t_design(&doubled, 3, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn double(base: &BlockDesign) -> Result<BlockDesign, DesignError> {
    if base.block_size() != 4 {
        return Err(DesignError::Unsupported(
            "doubling requires a quadruple system".into(),
        ));
    }
    let v = base.num_points();
    let factors = one_factorization(v)?;
    let mut blocks: Vec<Vec<u16>> = Vec::new();
    // Type 1: both copies of the base system.
    for copy in 0..2u16 {
        let off = copy * v;
        for b in base.blocks() {
            blocks.push(b.iter().map(|&p| p + off).collect());
        }
    }
    // Type 2: same-factor cross edges. The two copies are distinguishable,
    // so every ordered pair (copy-0 edge, copy-1 edge) within a factor is a
    // distinct block — including an edge paired with itself, which covers
    // the triples {a₀, b₀, a₁}.
    for factor in &factors {
        for &(a, b) in factor {
            for &(c, d) in factor {
                let mut blk = vec![a, b, c + v, d + v];
                blk.sort_unstable();
                blocks.push(blk);
            }
        }
    }
    BlockDesign::new(2 * v, 4, blocks)
}

/// SQS sizes reachable by this module alone (Boolean + doubling closure of
/// Boolean roots), within `≤ max_v`. The registry extends this with Möbius
/// `3-(3^d+1, 4, 1)` roots.
#[must_use]
pub fn boolean_doubling_sizes(max_v: u16) -> Vec<u16> {
    let mut out: Vec<u16> = Vec::new();
    let mut p = 4u32;
    while p <= u32::from(max_v) {
        out.push(p as u16);
        p *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn boolean_sqs_small() {
        for d in [2u32, 3, 4, 5] {
            let des = boolean_sqs(d).unwrap();
            let v = 1u64 << d;
            let expect = v * (v - 1) * (v - 2) / 24;
            assert_eq!(des.num_blocks() as u64, expect, "SQS({v}) block count");
            assert!(verify::is_t_design(&des, 3, 1), "SQS({v})");
        }
    }

    #[test]
    fn boolean_sqs_64() {
        // Our substitute for the paper's SQS(70) at n = 71, r = 4, x = 2.
        let des = boolean_sqs(6).unwrap();
        assert_eq!(des.num_blocks(), 64 * 63 * 62 / 24);
        assert!(verify::is_t_design(&des, 3, 1));
    }

    #[test]
    fn one_factorization_covers_all_edges() {
        for v in [2u16, 4, 6, 8, 10, 14, 20] {
            let f = one_factorization(v).unwrap();
            assert_eq!(f.len(), (v - 1) as usize);
            let mut seen = std::collections::HashSet::new();
            for matching in &f {
                assert_eq!(matching.len(), (v / 2) as usize);
                let mut touched = vec![false; v as usize];
                for &(a, b) in matching {
                    assert!(a < b && b < v);
                    assert!(
                        !touched[a as usize] && !touched[b as usize],
                        "not a matching"
                    );
                    touched[a as usize] = true;
                    touched[b as usize] = true;
                    assert!(seen.insert((a, b)), "edge repeated across factors");
                }
            }
            assert_eq!(seen.len() as u16, v * (v - 1) / 2, "all edges covered");
        }
    }

    #[test]
    fn doubling_produces_design() {
        let sqs8 = boolean_sqs(3).unwrap();
        let sqs16 = double(&sqs8).unwrap();
        assert!(verify::is_t_design(&sqs16, 3, 1));
        let sqs32 = double(&sqs16).unwrap();
        assert!(verify::is_t_design(&sqs32, 3, 1));
    }

    #[test]
    fn doubling_rejects_odd_or_non_quadruple() {
        let sts = crate::sts::steiner_triple_system(9).unwrap();
        assert!(double(&sts).is_err());
    }

    #[test]
    fn odd_one_factorization_rejected() {
        assert!(one_factorization(7).is_err());
        assert!(one_factorization(0).is_err());
    }
}
