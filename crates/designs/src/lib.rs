//! Combinatorial block designs and `t`-packings.
//!
//! A `Simple(x, λ)` replica placement (Li, Gao & Reiter, ICDCS 2015,
//! Definition 2) *is* a `(x+1)-(n, r, λ)` packing: a collection of `r`-sized
//! blocks over `n` points in which no `(x+1)`-subset of points appears in
//! more than `λ` blocks. Maximum packings are `t`-designs; this crate
//! constructs every design family the placement strategies need, entirely
//! from scratch:
//!
//! | family | parameters | module |
//! |---|---|---|
//! | partitions (x = 0) | `1-(v, r, 1)` | [`complete`] |
//! | complete designs (x + 1 = r) | `r-(v, r, 1)` (lazy) | [`complete`] |
//! | all pairs | `2-(v, 2, 1)` | [`complete`] |
//! | Steiner triple systems (Bose, Skolem) | `2-(v, 3, 1)`, `v ≡ 1, 3 (mod 6)` | [`sts`] |
//! | affine-geometry lines | `2-(q^d, q, 1)` | [`lines`] |
//! | projective-geometry lines | `2-((q^{d+1}−1)/(q−1), q+1, 1)` | [`lines`] |
//! | Hermitian unitals | `2-(q³+1, q+1, 1)` | [`unital`] |
//! | Boolean quadruple systems | `3-(2^d, 4, 1)` | [`sqs`] |
//! | doubled quadruple systems | `3-(2v, 4, 1)` from `3-(v, 4, 1)` | [`sqs`] |
//! | subline (Möbius) designs | `3-(q^d+1, q+1, 1)` | [`subline`] |
//! | greedy maximal packings | any `t-(v, r, λ)` | [`greedy`] |
//!
//! On top of the families sit:
//!
//! * [`verify`] — exhaustive packing/design property checkers used in tests
//!   and by downstream invariants;
//! * [`catalog`] — the design-existence oracle behind the paper's
//!   parameter-selection study (Figs. 5 and 6);
//! * [`chunking`] — Observation 2: decomposing `n` nodes into chunks that
//!   each carry their own design;
//! * [`registry`] — "give me the best constructible `t`-packing with
//!   `v ≤ v_max`", with provenance, used to build concrete placements.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod chunking;
pub mod complete;
pub mod derived;
pub mod greedy;
pub mod lines;
pub mod mols;
pub mod registry;
pub mod sqs;
pub mod sts;
pub mod subline;
pub mod types;
pub mod unital;
pub mod verify;

pub use types::{BlockDesign, DesignError};
