//! Trivial design families: partitions, all pairs, and complete `r`-subset
//! designs.
//!
//! Three degenerate corners of the parameter space have trivial optimal
//! constructions, all used by the paper:
//!
//! * `x = 0` (`t = 1`): a `1-(v, r, 1)` packing is a partial partition —
//!   `⌊v/r⌋` disjoint blocks ([`partition`]);
//! * `r = 2`, `t = 2`: all pairs of points form a `2-(v, 2, 1)` design
//!   ([`all_pairs`]);
//! * `t = r`: *any* set of distinct `r`-subsets is an `r-(v, r, 1)` packing,
//!   and all `C(v, r)` of them form the complete design. The paper: "when
//!   `x + 1 = r`, the constraints for a Steiner system are vacuously
//!   satisfied by sets of size `r`". [`complete_prefix`] materializes the
//!   first `limit` of them lazily (the full complete design on 257 points
//!   with `r = 5` has ~9 billion blocks).

use crate::{BlockDesign, DesignError};
use wcp_combin::KSubsets;

/// `⌊v/r⌋` pairwise-disjoint blocks: a maximum `1-(v, r, 1)` packing.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `r = 0`.
///
/// # Examples
///
/// ```
/// use wcp_designs::{complete, verify};
///
/// let d = complete::partition(10, 3)?;
/// assert_eq!(d.num_blocks(), 3);
/// assert_eq!(verify::packing_index(&d, 1), 1);
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn partition(v: u16, r: u16) -> Result<BlockDesign, DesignError> {
    if r == 0 {
        return Err(DesignError::Unsupported("r = 0".into()));
    }
    let blocks = (0..v / r).map(|i| (i * r..(i + 1) * r).collect()).collect();
    BlockDesign::new(v, r, blocks)
}

/// All `C(v, 2)` pairs: the (unique) `2-(v, 2, 1)` design.
///
/// # Examples
///
/// ```
/// use wcp_designs::{complete, verify};
///
/// let d = complete::all_pairs(6)?;
/// assert_eq!(d.num_blocks(), 15);
/// assert!(verify::is_t_design(&d, 2, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn all_pairs(v: u16) -> Result<BlockDesign, DesignError> {
    complete_prefix(v, 2, usize::MAX)
}

/// The first `limit` blocks (in lexicographic order) of the complete design
/// of all `r`-subsets of `v` points.
///
/// Any prefix is an `r-(v, r, 1)` packing (all blocks distinct), which is
/// exactly what a `Simple(r−1, 1)` placement requires. `limit = usize::MAX`
/// materializes the whole design — only sensible for small `v`.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `r = 0` or `r > v`.
///
/// # Examples
///
/// ```
/// use wcp_designs::complete;
///
/// let d = complete::complete_prefix(257, 5, 100)?;
/// assert_eq!(d.num_blocks(), 100);
/// assert_eq!(d.blocks()[0], vec![0, 1, 2, 3, 4]);
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn complete_prefix(v: u16, r: u16, limit: usize) -> Result<BlockDesign, DesignError> {
    if r == 0 || r > v {
        return Err(DesignError::Unsupported(format!(
            "complete design needs 0 < r ≤ v, got r={r}, v={v}"
        )));
    }
    let blocks: Vec<Vec<u16>> = KSubsets::new(v, r).take(limit).collect();
    BlockDesign::new(v, r, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn partition_is_disjoint() {
        let d = partition(31, 5).unwrap();
        assert_eq!(d.num_blocks(), 6);
        assert_eq!(verify::packing_index(&d, 1), 1);
        // Leftover points 30 not covered.
        let covered: usize = d.blocks().iter().map(Vec::len).sum();
        assert_eq!(covered, 30);
    }

    #[test]
    fn partition_exact_fit() {
        let d = partition(12, 4).unwrap();
        assert_eq!(d.num_blocks(), 3);
        assert!(verify::is_t_design(&d, 1, 1));
    }

    #[test]
    fn all_pairs_is_design() {
        for v in [3u16, 5, 8, 12] {
            let d = all_pairs(v).unwrap();
            assert_eq!(d.num_blocks() as u64, u64::from(v) * u64::from(v - 1) / 2);
            assert!(verify::is_t_design(&d, 2, 1));
        }
    }

    #[test]
    fn complete_design_full() {
        let d = complete_prefix(7, 3, usize::MAX).unwrap();
        assert_eq!(d.num_blocks(), 35);
        assert!(verify::is_t_design(&d, 3, 1));
        // As a 2-design its index is v - 2 = 5.
        assert!(verify::is_t_design(&d, 2, 5));
    }

    #[test]
    fn prefix_is_packing() {
        let d = complete_prefix(31, 5, 1000).unwrap();
        assert_eq!(d.num_blocks(), 1000);
        assert_eq!(verify::packing_index(&d, 5), 1);
    }

    #[test]
    fn bad_parameters() {
        assert!(complete_prefix(5, 0, 10).is_err());
        assert!(complete_prefix(5, 6, 10).is_err());
        assert!(partition(5, 0).is_err());
    }
}
