//! Derived and residual designs — classical transformations used both as
//! constructions and as cross-validation of the other families.
//!
//! From a `t-(v, k, λ)` design and a point `p`:
//!
//! * the **derived** design (blocks through `p`, with `p` removed) is a
//!   `(t−1)-(v−1, k−1, λ)` design;
//! * the **residual** design (blocks avoiding `p`) is a
//!   `(t−1)-(v−1, k, λ_{t−1} − λ)` design, where
//!   `λ_{t−1} = λ·(v−t+1)/(k−t+1)` is the design's `(t−1)`-level index.
//!
//! Examples that double as consistency checks of our families: deriving
//! the Möbius `3-(q²+1, q+1, 1)` at any point yields the affine plane
//! `2-(q², q, 1)`, and deriving a `SQS(2v)` yields a Steiner triple
//! system `STS(2v−1)`.

use crate::{BlockDesign, DesignError};

/// The derived design at `point`: blocks containing it, point removed,
/// remaining points renumbered to `0..v−1` (ids above `point` shift down
/// by one).
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `point` is out of range or blocks are
/// too small to lose a point.
///
/// # Examples
///
/// ```
/// use wcp_designs::{derived::derived_design, subline, verify};
///
/// // Deriving the inversive plane 3-(26,5,1) gives the affine plane
/// // 2-(25,5,1).
/// let moebius = subline::subline_design(5, 2, usize::MAX)?;
/// let affine = derived_design(&moebius, 0)?;
/// assert_eq!(affine.num_points(), 25);
/// assert!(verify::is_t_design(&affine, 2, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn derived_design(design: &BlockDesign, point: u16) -> Result<BlockDesign, DesignError> {
    if point >= design.num_points() {
        return Err(DesignError::Unsupported(format!(
            "point {point} out of range 0..{}",
            design.num_points()
        )));
    }
    if design.block_size() < 2 {
        return Err(DesignError::Unsupported(
            "blocks too small to derive".into(),
        ));
    }
    let renumber = |p: u16| if p > point { p - 1 } else { p };
    let blocks: Vec<Vec<u16>> = design
        .blocks()
        .iter()
        .filter(|b| b.binary_search(&point).is_ok())
        .map(|b| {
            b.iter()
                .filter(|&&p| p != point)
                .map(|&p| renumber(p))
                .collect()
        })
        .collect();
    BlockDesign::new(design.num_points() - 1, design.block_size() - 1, blocks)
}

/// The residual design at `point`: blocks avoiding it, remaining points
/// renumbered.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `point` is out of range.
///
/// # Examples
///
/// ```
/// use wcp_designs::{derived::residual_design, subline, verify};
///
/// // Residual of the inversive plane 3-(10,4,1): λ₂ = 8/2·1 = 4, so a
/// // 2-(9,4,3) design with 18 blocks.
/// let m = subline::subline_design(3, 2, usize::MAX)?;
/// let res = residual_design(&m, 0)?;
/// assert_eq!(res.num_points(), 9);
/// assert_eq!(res.num_blocks(), 18);
/// assert!(verify::is_t_design(&res, 2, 3));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn residual_design(design: &BlockDesign, point: u16) -> Result<BlockDesign, DesignError> {
    if point >= design.num_points() {
        return Err(DesignError::Unsupported(format!(
            "point {point} out of range 0..{}",
            design.num_points()
        )));
    }
    let renumber = |p: u16| if p > point { p - 1 } else { p };
    let blocks: Vec<Vec<u16>> = design
        .blocks()
        .iter()
        .filter(|b| b.binary_search(&point).is_err())
        .map(|b| b.iter().map(|&p| renumber(p)).collect())
        .collect();
    BlockDesign::new(design.num_points() - 1, design.block_size(), blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sqs, sts, subline, unital, verify};

    #[test]
    fn derived_moebius_is_affine_plane() {
        // 3-(10,4,1) derived → 2-(9,3,1) = AG(2,3); check at every point.
        let m = subline::subline_design(3, 2, usize::MAX).unwrap();
        for p in [0u16, 4, 9] {
            let d = derived_design(&m, p).unwrap();
            assert_eq!(d.num_points(), 9);
            assert_eq!(d.num_blocks(), 12);
            assert!(verify::is_t_design(&d, 2, 1), "point {p}");
        }
    }

    #[test]
    fn derived_sqs_is_sts() {
        // SQS(16) derived → STS(15).
        let q = sqs::boolean_sqs(4).unwrap();
        let d = derived_design(&q, 7).unwrap();
        assert_eq!(d.num_points(), 15);
        assert_eq!(d.num_blocks(), 35);
        assert!(verify::is_t_design(&d, 2, 1));
    }

    #[test]
    fn derived_big_moebius_matches_our_sts_substitute() {
        // 3-(28,4,1) derived → 2-(27,3,1) = STS(27); both constructions
        // agree on parameters (not necessarily isomorphic).
        let m = subline::subline_design(3, 3, usize::MAX).unwrap();
        let d = derived_design(&m, 0).unwrap();
        let direct = sts::steiner_triple_system(27).unwrap();
        assert_eq!(d.num_points(), direct.num_points());
        assert_eq!(d.num_blocks(), direct.num_blocks());
        assert!(verify::is_t_design(&d, 2, 1));
    }

    #[test]
    fn residual_unital() {
        // Residual of the 2-(28,4,1) unital: 2-(27,4,λ′)… λ′ is not 1
        // (residuals of 2-designs keep t = 1 balance only in general);
        // verify the 1-design property instead: every point appears in
        // the same number of blocks.
        let u = unital::hermitian_unital(3).unwrap();
        let res = residual_design(&u, 5).unwrap();
        assert_eq!(res.num_points(), 27);
        // 63 blocks total, 9 through each point → 54 remain.
        assert_eq!(res.num_blocks(), 54);
        assert!(verify::is_t_packing(&res, 2, 1));
    }

    #[test]
    fn out_of_range_points_rejected() {
        let s = sts::steiner_triple_system(7).unwrap();
        assert!(derived_design(&s, 7).is_err());
        assert!(residual_design(&s, 9).is_err());
    }
}
