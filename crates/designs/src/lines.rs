//! Line designs of affine and projective geometries, as [`BlockDesign`]s.
//!
//! * [`ag_line_design`] — `2-(q^d, q, 1)` from `AG(d, q)`; the paper uses
//!   `AG(2,5)` (`2-(25,5,1)`, its `n_1` for `n = 31, r = 5`) and we use
//!   `AG(3,4)` / `AG(4,4)` for `r = 4`.
//! * [`pg_line_design`] — `2-((q^{d+1}−1)/(q−1), q+1, 1)` from `PG(d, q)`,
//!   e.g. `2-(85,5,1)` from `PG(3,4)` (a chunking candidate for `r = 5`).

use crate::{BlockDesign, DesignError};
use wcp_gf::{geometry, Gf};

/// The lines of `AG(d, q)` as a `2-(q^d, q, 1)` design.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `q` is not a prime power, `d = 0`, or
/// the point count exceeds `u16`.
///
/// # Examples
///
/// ```
/// use wcp_designs::{lines, verify};
///
/// let d = lines::ag_line_design(5, 2)?; // affine plane of order 5
/// assert_eq!(d.num_points(), 25);
/// assert_eq!(d.num_blocks(), 30);
/// assert!(verify::is_t_design(&d, 2, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn ag_line_design(q: u32, d: u32) -> Result<BlockDesign, DesignError> {
    if d == 0 {
        return Err(DesignError::Unsupported("AG dimension must be ≥ 1".into()));
    }
    let points = geometry::ag_point_count(q, d);
    if points > u64::from(u16::MAX) {
        return Err(DesignError::Unsupported(format!(
            "AG({d},{q}) has {points} points, exceeding u16"
        )));
    }
    let gf = Gf::new(q).map_err(|e| DesignError::Unsupported(format!("AG({d},{q}): {e}")))?;
    let blocks = geometry::ag_lines(&gf, d);
    BlockDesign::new(points as u16, q as u16, blocks)
}

/// The lines of `PG(d, q)` as a `2-((q^{d+1}−1)/(q−1), q+1, 1)` design.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `q` is not a prime power, `d = 0`, or
/// the point count exceeds `u16`.
///
/// # Examples
///
/// ```
/// use wcp_designs::{lines, verify};
///
/// let d = lines::pg_line_design(4, 3)?; // 2-(85,5,1)
/// assert_eq!(d.num_points(), 85);
/// assert!(verify::is_t_design(&d, 2, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn pg_line_design(q: u32, d: u32) -> Result<BlockDesign, DesignError> {
    if d == 0 {
        return Err(DesignError::Unsupported("PG dimension must be ≥ 1".into()));
    }
    let points = geometry::pg_point_count(q, d);
    if points > u64::from(u16::MAX) {
        return Err(DesignError::Unsupported(format!(
            "PG({d},{q}) has {points} points, exceeding u16"
        )));
    }
    let gf = Gf::new(q).map_err(|e| DesignError::Unsupported(format!("PG({d},{q}): {e}")))?;
    let blocks = geometry::pg_lines(&gf, d);
    BlockDesign::new(points as u16, (q + 1) as u16, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn ag_designs() {
        // (q, d, expected blocks)
        for (q, d, blocks) in [(2u32, 3u32, 28usize), (3, 2, 12), (5, 2, 30), (4, 3, 336)] {
            let des = ag_line_design(q, d).unwrap();
            assert_eq!(des.num_blocks(), blocks, "AG({d},{q})");
            assert!(verify::is_t_design(&des, 2, 1), "AG({d},{q})");
            assert_eq!(des.block_size(), q as u16);
        }
    }

    #[test]
    fn ag35_design() {
        // 2-(125,5,1): chunking candidate for n = 257, r = 5.
        let des = ag_line_design(5, 3).unwrap();
        assert_eq!(des.num_points(), 125);
        assert_eq!(des.num_blocks(), 125 * 124 / 20);
        assert!(verify::is_t_design(&des, 2, 1));
    }

    #[test]
    fn pg_designs() {
        for (q, d, v, blocks) in [
            (2u32, 2u32, 7u16, 7usize),
            (3, 2, 13, 13),
            (4, 2, 21, 21),
            (3, 3, 40, 130),
            (4, 3, 85, 357),
        ] {
            let des = pg_line_design(q, d).unwrap();
            assert_eq!(des.num_points(), v, "PG({d},{q})");
            assert_eq!(des.num_blocks(), blocks, "PG({d},{q})");
            assert!(verify::is_t_design(&des, 2, 1), "PG({d},{q})");
        }
    }

    #[test]
    fn invalid_parameters() {
        assert!(ag_line_design(6, 2).is_err()); // not a prime power
        assert!(ag_line_design(5, 0).is_err());
        assert!(pg_line_design(10, 2).is_err());
    }
}
