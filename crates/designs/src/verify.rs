//! Exhaustive verification of packing and design properties.
//!
//! A `t-(v, r, λ)` **packing** covers every `t`-subset of points *at most*
//! `λ` times; a `t-(v, r, λ)` **design** covers every `t`-subset *exactly*
//! `λ` times (designs are maximum packings). These checkers are used
//! throughout the test suite — every construction in this crate must pass
//! them — and by downstream code that wants to validate third-party block
//! sets before using them as placements.

use crate::BlockDesign;
use std::collections::HashMap;

/// Packs a sorted `t`-subset (`t ≤ 5`, points `< 2^12`) into a `u64` key.
/// All keys in one coverage map share the same subset length, so plain
/// digit-packing is collision-free.
pub(crate) fn key(subset: &[u16]) -> u64 {
    debug_assert!(subset.len() <= 5);
    let mut k = 0u64;
    for &p in subset {
        debug_assert!(p < (1 << 12));
        k = (k << 12) | u64::from(p);
    }
    k
}

/// Calls `f` with every `t`-subset of the (sorted) block.
pub(crate) fn for_each_t_subset(block: &[u16], t: usize, f: &mut impl FnMut(&[u16])) {
    fn rec(
        block: &[u16],
        start: usize,
        depth: usize,
        t: usize,
        buf: &mut [u16],
        f: &mut impl FnMut(&[u16]),
    ) {
        if depth == t {
            f(&buf[..t]);
            return;
        }
        for i in start..=block.len() - (t - depth) {
            buf[depth] = block[i];
            rec(block, i + 1, depth + 1, t, buf, f);
        }
    }
    if t > block.len() {
        return;
    }
    let mut buf = [0u16; 8];
    rec(block, 0, 0, t, &mut buf, f);
}

/// Counts, for every `t`-subset of points that occurs in at least one
/// block, how many blocks contain it. Returns the map keyed by packed
/// subsets.
fn coverage_counts(design: &BlockDesign, t: u16) -> HashMap<u64, u64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for block in design.blocks() {
        for_each_t_subset(block, t as usize, &mut |subset| {
            *counts.entry(key(subset)).or_insert(0) += 1;
        });
    }
    counts
}

/// The packing index of the design at strength `t`: the maximum number of
/// blocks containing any single `t`-subset (0 for an empty design).
///
/// A design is a `t-(v, r, λ)` packing iff `packing_index(d, t) ≤ λ`.
///
/// # Examples
///
/// ```
/// use wcp_designs::{verify, BlockDesign};
///
/// let d = BlockDesign::new(4, 2, vec![vec![0, 1], vec![0, 1], vec![2, 3]])?;
/// assert_eq!(verify::packing_index(&d, 2), 2); // pair {0,1} twice
/// assert_eq!(verify::packing_index(&d, 1), 2);
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
#[must_use]
pub fn packing_index(design: &BlockDesign, t: u16) -> u64 {
    coverage_counts(design, t)
        .values()
        .copied()
        .max()
        .unwrap_or(0)
}

/// True iff the design is a `t-(v, r, λ)` **packing**: no `t`-subset lies
/// in more than `λ` blocks.
#[must_use]
pub fn is_t_packing(design: &BlockDesign, t: u16, lambda: u64) -> bool {
    packing_index(design, t) <= lambda
}

/// True iff the design is a `t-(v, r, λ)` **design**: every `t`-subset of
/// the `v` points lies in exactly `λ` blocks.
///
/// # Examples
///
/// ```
/// use wcp_designs::{verify, BlockDesign};
///
/// let fano = BlockDesign::new(7, 3, vec![
///     vec![0, 1, 2], vec![0, 3, 4], vec![0, 5, 6], vec![1, 3, 5],
///     vec![1, 4, 6], vec![2, 3, 6], vec![2, 4, 5],
/// ])?;
/// assert!(verify::is_t_design(&fano, 2, 1));
/// assert!(!verify::is_t_design(&fano, 2, 2));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
#[must_use]
pub fn is_t_design(design: &BlockDesign, t: u16, lambda: u64) -> bool {
    let counts = coverage_counts(design, t);
    // Every observed count must be λ, and the number of distinct covered
    // t-subsets must equal C(v, t).
    if counts.values().any(|&c| c != lambda) {
        return false;
    }
    let expect = wcp_combin::binomial(u64::from(design.num_points()), u64::from(t))
        .expect("subset count overflow");
    counts.len() as u128 == expect
}

/// Replication balance: the number of blocks containing each point,
/// returned as `(min, max)`; `(0, 0)` for an empty design.
///
/// Load-balanced placements want this spread to be small.
#[must_use]
pub fn replication_range(design: &BlockDesign) -> (u64, u64) {
    let mut per_point = vec![0u64; design.num_points() as usize];
    for b in design.blocks() {
        for &p in b {
            per_point[p as usize] += 1;
        }
    }
    match (per_point.iter().min(), per_point.iter().max()) {
        (Some(&lo), Some(&hi)) => (lo, hi),
        _ => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fano() -> BlockDesign {
        BlockDesign::new(
            7,
            3,
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![0, 5, 6],
                vec![1, 3, 5],
                vec![1, 4, 6],
                vec![2, 3, 6],
                vec![2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn fano_is_steiner() {
        let d = fano();
        assert!(is_t_design(&d, 2, 1));
        assert!(is_t_packing(&d, 2, 1));
        assert!(is_t_packing(&d, 2, 5));
        assert!(!is_t_packing(&d, 2, 0));
        // Each point lies in 3 blocks.
        assert_eq!(replication_range(&d), (3, 3));
        // As a 1-design: every point in exactly 3 blocks.
        assert!(is_t_design(&d, 1, 3));
    }

    #[test]
    fn missing_subset_fails_design_check() {
        // Remove one block from the Fano plane: pairs in it become
        // uncovered, so it is no longer a 2-design but still a packing.
        let mut blocks = fano().into_blocks();
        blocks.pop();
        let d = BlockDesign::new(7, 3, blocks).unwrap();
        assert!(!is_t_design(&d, 2, 1));
        assert!(is_t_packing(&d, 2, 1));
    }

    #[test]
    fn empty_design() {
        let d = BlockDesign::new(5, 3, vec![]).unwrap();
        assert_eq!(packing_index(&d, 2), 0);
        assert!(is_t_packing(&d, 2, 0));
        assert!(!is_t_design(&d, 2, 1));
        assert_eq!(replication_range(&d), (0, 0));
    }

    #[test]
    fn t_larger_than_block_size() {
        let d = BlockDesign::new(5, 2, vec![vec![0, 1]]).unwrap();
        assert_eq!(packing_index(&d, 3), 0);
    }

    #[test]
    fn duplicate_blocks_raise_index() {
        let d = BlockDesign::new(6, 3, vec![vec![0, 1, 2]; 4]).unwrap();
        assert_eq!(packing_index(&d, 2), 4);
        assert_eq!(packing_index(&d, 3), 4);
        assert_eq!(packing_index(&d, 1), 4);
    }

    #[test]
    fn strength_one_counts_replication() {
        let d = BlockDesign::new(4, 2, vec![vec![0, 1], vec![0, 2], vec![0, 3]]).unwrap();
        assert_eq!(packing_index(&d, 1), 3);
        assert_eq!(replication_range(&d), (1, 3));
    }
}
