//! Mutually orthogonal Latin squares (MOLS) and transversal designs.
//!
//! A set of `k − 2` MOLS of order `m` is equivalent to a transversal
//! design `TD(k, m)`: `k` disjoint groups of `m` points and `m²` blocks,
//! each meeting every group once, with every cross-group pair in exactly
//! one block. Viewed over all `k·m` points a `TD(k, m)` is therefore a
//! `2-(k·m, k, 1)` *packing* (within-group pairs are simply never
//! covered) with `m²` blocks — a constructive option for block sizes and
//! point counts where no Steiner design is available, sitting between
//! chunked unions and the greedy fallback.
//!
//! Constructions:
//! * prime powers: the classical complete set of `q − 1` MOLS over
//!   `GF(q)` (`L_a(x, y) = a·x + y`);
//! * composite `m = m₁·m₂`: the MacNeish/Kronecker product, giving
//!   `min(N(m₁), N(m₂))` squares.

use crate::{BlockDesign, DesignError};
use wcp_gf::Gf;

/// A Latin square of order `m`: an `m × m` array over symbols `0..m` with
/// every symbol exactly once per row and per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatinSquare {
    m: u16,
    cells: Vec<u16>, // row-major
}

impl LatinSquare {
    /// Wraps and validates a row-major cell array.
    ///
    /// # Errors
    ///
    /// [`DesignError::Unsupported`] if the array is not a Latin square.
    pub fn new(m: u16, cells: Vec<u16>) -> Result<Self, DesignError> {
        if cells.len() != usize::from(m) * usize::from(m) {
            return Err(DesignError::Unsupported(format!(
                "cell array has {} entries, need {}",
                cells.len(),
                usize::from(m) * usize::from(m)
            )));
        }
        let sq = Self { m, cells };
        if !sq.is_latin() {
            return Err(DesignError::Unsupported("not a Latin square".into()));
        }
        Ok(sq)
    }

    /// Order `m`.
    #[must_use]
    pub fn order(&self) -> u16 {
        self.m
    }

    /// The symbol at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, row: u16, col: u16) -> u16 {
        self.cells[usize::from(row) * usize::from(self.m) + usize::from(col)]
    }

    fn is_latin(&self) -> bool {
        let m = usize::from(self.m);
        for i in 0..m {
            let mut row_seen = vec![false; m];
            let mut col_seen = vec![false; m];
            for j in 0..m {
                let r = usize::from(self.cells[i * m + j]);
                let c = usize::from(self.cells[j * m + i]);
                if r >= m || c >= m || row_seen[r] || col_seen[c] {
                    return false;
                }
                row_seen[r] = true;
                col_seen[c] = true;
            }
        }
        true
    }

    /// True iff `self` and `other` are orthogonal: superimposing them
    /// yields every ordered symbol pair exactly once.
    #[must_use]
    pub fn orthogonal_to(&self, other: &LatinSquare) -> bool {
        if self.m != other.m {
            return false;
        }
        let m = usize::from(self.m);
        let mut seen = vec![false; m * m];
        for i in 0..m as u16 {
            for j in 0..m as u16 {
                let key = usize::from(self.get(i, j)) * m + usize::from(other.get(i, j));
                if seen[key] {
                    return false;
                }
                seen[key] = true;
            }
        }
        true
    }
}

/// A complete set of `q − 1` MOLS of prime-power order `q`:
/// `L_a(x, y) = a·x + y` over `GF(q)` for each `a ≠ 0`.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `q` is not a prime power (or too
/// large for the field tables).
///
/// # Examples
///
/// ```
/// use wcp_designs::mols::field_mols;
///
/// let set = field_mols(5)?;
/// assert_eq!(set.len(), 4);
/// for (i, a) in set.iter().enumerate() {
///     for b in &set[i + 1..] {
///         assert!(a.orthogonal_to(b));
///     }
/// }
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn field_mols(q: u16) -> Result<Vec<LatinSquare>, DesignError> {
    let gf =
        Gf::new(u32::from(q)).map_err(|e| DesignError::Unsupported(format!("GF({q}): {e}")))?;
    let mut out = Vec::with_capacity(usize::from(q) - 1);
    for a in 1..u32::from(q) {
        let mut cells = Vec::with_capacity(usize::from(q) * usize::from(q));
        for x in 0..u32::from(q) {
            for y in 0..u32::from(q) {
                cells.push(gf.add(gf.mul(a, x), y) as u16);
            }
        }
        out.push(LatinSquare::new(q, cells)?);
    }
    Ok(out)
}

/// Kronecker (MacNeish) product of two Latin squares: a square of order
/// `m₁·m₂`; products of pairwise-orthogonal sets stay pairwise
/// orthogonal.
#[must_use]
pub fn kronecker(a: &LatinSquare, b: &LatinSquare) -> LatinSquare {
    let (ma, mb) = (usize::from(a.order()), usize::from(b.order()));
    let m = ma * mb;
    let mut cells = vec![0u16; m * m];
    for i in 0..m {
        for j in 0..m {
            let sym = usize::from(a.get((i / mb) as u16, (j / mb) as u16)) * mb
                + usize::from(b.get((i % mb) as u16, (j % mb) as u16));
            cells[i * m + j] = sym as u16;
        }
    }
    LatinSquare { m: m as u16, cells }
}

/// As many MOLS of order `m` as this module can build: `q − 1` for prime
/// powers, `min` over the prime-power factorization via MacNeish
/// otherwise (`N(6) = 0` here — the Euler case — though one square always
/// exists).
///
/// # Errors
///
/// [`DesignError::Unsupported`] for `m < 2`.
pub fn best_mols(m: u16) -> Result<Vec<LatinSquare>, DesignError> {
    if m < 2 {
        return Err(DesignError::Unsupported("order must be ≥ 2".into()));
    }
    if let Ok(set) = field_mols(m) {
        return Ok(set);
    }
    // Factor into prime powers and combine.
    let mut rest = u32::from(m);
    let mut parts: Vec<u16> = Vec::new();
    let mut p = 2u32;
    while p * p <= rest {
        if rest % p == 0 {
            let mut pk = 1u32;
            while rest % p == 0 {
                pk *= p;
                rest /= p;
            }
            parts.push(pk as u16);
        }
        p += 1;
    }
    if rest > 1 {
        parts.push(rest as u16);
    }
    let mut sets: Vec<Vec<LatinSquare>> = parts
        .iter()
        .map(|&pk| field_mols(pk))
        .collect::<Result<_, _>>()?;
    let count = sets.iter().map(Vec::len).min().unwrap_or(0);
    let mut combined: Vec<LatinSquare> = sets.pop().expect("m ≥ 2 has a factor");
    combined.truncate(count);
    for set in sets {
        combined = combined
            .iter()
            .zip(set.iter().take(count))
            .map(|(a, b)| kronecker(b, a))
            .collect();
    }
    Ok(combined)
}

/// How many MOLS of order `m` this module can build, without building
/// them: `m − 1` for prime powers, the MacNeish minimum otherwise.
///
/// # Examples
///
/// ```
/// use wcp_designs::mols::mols_count;
///
/// assert_eq!(mols_count(9), 8);
/// assert_eq!(mols_count(12), 2); // min(N(4), N(3)) = min(3, 2)
/// assert_eq!(mols_count(6), 1);  // Euler: no orthogonal pair here
/// ```
#[must_use]
pub fn mols_count(m: u16) -> usize {
    if m < 2 {
        return 0;
    }
    let mut rest = u32::from(m);
    let mut min_count = usize::MAX;
    let mut p = 2u32;
    while p * p <= rest {
        if rest % p == 0 {
            let mut pk = 1u32;
            while rest % p == 0 {
                pk *= p;
                rest /= p;
            }
            min_count = min_count.min(pk as usize - 1);
        }
        p += 1;
    }
    if rest > 1 {
        min_count = min_count.min(rest as usize - 1);
    }
    min_count
}

/// The transversal design `TD(k, m)` as a `2-(k·m, k, 1)` packing:
/// groups are `{g·m .. (g+1)·m}`; block `(x, y)` takes row `x`/column `y`
/// of each square plus the two coordinate groups.
///
/// Requires `k − 2` MOLS of order `m` (so `k ≤ N(m) + 2`).
///
/// # Errors
///
/// [`DesignError::Unsupported`] when not enough MOLS exist or `k < 2`.
///
/// # Examples
///
/// ```
/// use wcp_designs::{mols::transversal_design, verify};
///
/// let td = transversal_design(4, 9)?; // 2-(36,4,1) packing, 81 blocks
/// assert_eq!(td.num_points(), 36);
/// assert_eq!(td.num_blocks(), 81);
/// assert!(verify::is_t_packing(&td, 2, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn transversal_design(k: u16, m: u16) -> Result<BlockDesign, DesignError> {
    if k < 2 {
        return Err(DesignError::Unsupported("TD needs k ≥ 2".into()));
    }
    let squares = best_mols(m)?;
    if usize::from(k) - 2 > squares.len() {
        return Err(DesignError::Unsupported(format!(
            "TD({k},{m}) needs {} MOLS, have {}",
            k - 2,
            squares.len()
        )));
    }
    let mut blocks = Vec::with_capacity(usize::from(m) * usize::from(m));
    for x in 0..m {
        for y in 0..m {
            let mut block = Vec::with_capacity(usize::from(k));
            block.push(x); // group 0: rows
            block.push(m + y); // group 1: columns
            for (g, sq) in squares.iter().take(usize::from(k) - 2).enumerate() {
                block.push((g as u16 + 2) * m + sq.get(x, y));
            }
            block.sort_unstable();
            blocks.push(block);
        }
    }
    BlockDesign::new(k * m, k, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn field_mols_complete_sets() {
        for q in [3u16, 4, 5, 7, 8, 9] {
            let set = field_mols(q).unwrap();
            assert_eq!(set.len(), usize::from(q) - 1, "q={q}");
            for (i, a) in set.iter().enumerate() {
                for b in &set[i + 1..] {
                    assert!(a.orthogonal_to(b), "q={q}");
                }
            }
        }
    }

    #[test]
    fn macneish_composite() {
        // m = 12 = 4·3: min(3, 2) = 2 MOLS.
        let set = best_mols(12).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set[0].orthogonal_to(&set[1]));
        assert_eq!(set[0].order(), 12);
        // m = 15 = 5·3: min(4, 2) = 2 MOLS.
        let set = best_mols(15).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set[0].orthogonal_to(&set[1]));
    }

    #[test]
    fn euler_case() {
        // N(6): MacNeish gives min over {2, 3} − 1 = 1, i.e. no orthogonal
        // pair (correct — Euler's 36-officer problem has no solution).
        let set = best_mols(6).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn transversal_designs_verify() {
        for (k, m) in [(3u16, 4u16), (4, 5), (5, 7), (4, 9), (5, 8)] {
            let td = transversal_design(k, m).unwrap();
            assert_eq!(td.num_blocks(), usize::from(m) * usize::from(m));
            assert!(verify::is_t_packing(&td, 2, 1), "TD({k},{m})");
            // Every block meets every group exactly once.
            for b in td.blocks() {
                for g in 0..k {
                    let in_group = b.iter().filter(|&&p| p / m == g).count();
                    assert_eq!(in_group, 1, "TD({k},{m}) group {g}");
                }
            }
        }
    }

    #[test]
    fn td_composite_order() {
        // TD(4, 12) via MacNeish (needs 2 MOLS of order 12).
        let td = transversal_design(4, 12).unwrap();
        assert_eq!(td.num_points(), 48);
        assert_eq!(td.num_blocks(), 144);
        assert!(verify::is_t_packing(&td, 2, 1));
    }

    #[test]
    fn insufficient_mols_rejected() {
        assert!(transversal_design(4, 6).is_err()); // needs 2 MOLS of order 6
        assert!(transversal_design(12, 9).is_err()); // needs 10 MOLS of order 9
        assert!(transversal_design(1, 5).is_err());
    }

    #[test]
    fn latin_square_validation() {
        assert!(LatinSquare::new(2, vec![0, 1, 1, 0]).is_ok());
        assert!(LatinSquare::new(2, vec![0, 1, 0, 1]).is_err());
        assert!(LatinSquare::new(2, vec![0, 1, 1]).is_err());
    }
}
