//! Design-existence oracle.
//!
//! The paper's parameter-selection study (Sec. III-C, Figs. 5–6) asks: for
//! which point counts `v` does a `(x+1)-(v, r, μ)` design exist? This
//! module encodes the answer for the block sizes the paper covers
//! (`r ≤ 5`), combining:
//!
//! * **resolved spectra** — classes where existence is settled for every
//!   admissible `v`: Steiner triple systems (`v ≡ 1,3 mod 6`, Kirkman),
//!   `2-(v,4,1)` (`v ≡ 1,4 mod 12`, Hanani), `2-(v,5,1)` (`v ≡ 1,5 mod
//!   20`, Hanani), quadruple systems (`v ≡ 2,4 mod 6`, Hanani);
//! * **known families and sporadic designs** — the `3-(q^d+1, q+1, 1)`
//!   subline family, the `2-(q³+1, q+1, 1)` unitals, finite-geometry line
//!   designs, and the short known list of `4-(v,5,1)` / `3-(v,5,1)`
//!   Steiner systems from the Colbourn–Mathon survey;
//! * **divisibility admissibility** for `μ > 1` — the necessary conditions
//!   `μ·C(v−i, t−i) ≡ 0 (mod C(r−i, t−i))`. Used as the (mildly
//!   optimistic) oracle for the paper's Fig. 6, as recorded in
//!   EXPERIMENTS.md.

use wcp_combin::binomial;

/// Known `3-(v,5,1)` Steiner systems (subline family `4^d + 1` plus the
/// sporadic `26` of Hanani–Hartman–Kramer).
const STEINER_3_5: &[u16] = &[17, 26, 65, 257, 1025];

/// Known `4-(v,5,1)` Steiner systems (Colbourn–Mathon, Handbook of
/// Combinatorial Designs, Table 5.25; the paper's Fig. 4 draws its 23, 71
/// and 243 entries from this list).
const STEINER_4_5: &[u16] = &[11, 23, 35, 47, 71, 83, 107, 131, 167, 243];

/// Is a `t-(v, r, 1)` (Steiner) design known to exist?
///
/// Only block sizes `2 ≤ r ≤ 5` are supported (the paper's scope — see its
/// Sec. I: current design-theory knowledge limits practical instantiations
/// to `r ≤ 5`). `t = 1` asks for a partition (`r` divides `v`); `t = r`
/// (the "vacuous" case) always exists.
///
/// # Examples
///
/// ```
/// use wcp_designs::catalog::steiner_exists;
///
/// assert!(steiner_exists(2, 3, 69));   // STS(69)
/// assert!(!steiner_exists(2, 3, 71));  // 71 ≢ 1,3 (mod 6)
/// assert!(steiner_exists(3, 5, 257));  // Möbius 3-(257,5,1)
/// assert!(steiner_exists(4, 5, 23));   // S(4,5,23)
/// assert!(!steiner_exists(4, 5, 17));  // Östergård–Pottonen nonexistence
/// ```
#[must_use]
pub fn steiner_exists(t: u16, r: u16, v: u16) -> bool {
    if v < r || t > r || t == 0 {
        return false;
    }
    if t == r {
        return true; // distinct r-subsets, vacuously a Steiner system
    }
    if v == r {
        return true; // single block covers every t-subset exactly once
    }
    match (t, r) {
        (1, _) => v.is_multiple_of(r),
        (2, 2) => true,
        (2, 3) => v % 6 == 1 || v % 6 == 3,
        (2, 4) => v % 12 == 1 || v % 12 == 4,
        (2, 5) => v % 20 == 1 || v % 20 == 5,
        (3, 4) => v % 6 == 2 || v % 6 == 4,
        (3, 5) => STEINER_3_5.contains(&v),
        (4, 5) => STEINER_4_5.contains(&v),
        _ => false,
    }
}

/// All `v` in `lo..=hi` with a known `t-(v, r, 1)` design.
#[must_use]
pub fn steiner_sizes(t: u16, r: u16, lo: u16, hi: u16) -> Vec<u16> {
    (lo..=hi).filter(|&v| steiner_exists(t, r, v)).collect()
}

/// Divisibility admissibility: does `λ` satisfy the necessary conditions
/// for a `t-(v, r, λ)` design, i.e. `λ·C(v−i, t−i) ≡ 0 (mod C(r−i, t−i))`
/// for every `0 ≤ i ≤ t`?
///
/// Necessary but not sufficient in general; used as the `μ > 1` oracle for
/// the paper's Fig. 6 (documented substitution).
///
/// # Examples
///
/// ```
/// use wcp_designs::catalog::lambda_admissible;
///
/// assert!(lambda_admissible(2, 3, 7, 1));  // STS(7)
/// assert!(!lambda_admissible(2, 3, 8, 1)); // no STS(8) …
/// assert!(lambda_admissible(2, 3, 8, 6));  // … but λ=6 is admissible
/// ```
#[must_use]
pub fn lambda_admissible(t: u16, r: u16, v: u16, lambda: u64) -> bool {
    if v < r || t > r || t == 0 || lambda == 0 {
        return false;
    }
    for i in 0..=u64::from(t) {
        let need = binomial(u64::from(r) - i, u64::from(t) - i).expect("small");
        let have = binomial(u64::from(v) - i, u64::from(t) - i).expect("v ≤ 65535 fits");
        let need_u64 = u64::try_from(need).expect("small");
        if !(u128::from(lambda) * have).is_multiple_of(u128::from(need_u64)) {
            return false;
        }
    }
    true
}

/// The smallest `μ ≤ max_mu` that is admissible for a `t-(v, r, μ)`
/// design, treating `μ = 1` as requiring *known existence* and `μ > 1` as
/// requiring divisibility admissibility.
#[must_use]
pub fn smallest_admissible_mu(t: u16, r: u16, v: u16, max_mu: u64) -> Option<u64> {
    if max_mu >= 1 && steiner_exists(t, r, v) {
        return Some(1);
    }
    (2..=max_mu).find(|&mu| lambda_admissible(t, r, v, mu))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sts_spectrum() {
        let sizes = steiner_sizes(2, 3, 3, 40);
        assert_eq!(sizes, vec![3, 7, 9, 13, 15, 19, 21, 25, 27, 31, 33, 37, 39]);
    }

    #[test]
    fn paper_fig4_entries() {
        // Every μ=1 design in the paper's Fig. 4 table is recognized.
        for (t, r, v) in [
            (2u16, 2u16, 31u16),
            (2, 3, 31),
            (2, 4, 28),
            (3, 4, 28),
            (2, 5, 25),
            (3, 5, 26),
            (4, 5, 23),
            (2, 3, 69),
            (2, 5, 65),
            (3, 5, 65),
            (4, 5, 71),
            (2, 3, 255),
            (2, 4, 256),
            (3, 4, 256),
            (2, 5, 245),
            (3, 5, 257),
            (4, 5, 243),
        ] {
            assert!(steiner_exists(t, r, v), "paper uses {t}-({v},{r},1)");
        }
        // The one Fig. 4 entry violating divisibility (likely a typo in the
        // paper): 2-(70,4,1) requires 70·69/12 blocks, non-integral.
        assert!(!steiner_exists(2, 4, 70));
        assert!(!lambda_admissible(2, 4, 70, 1));
    }

    #[test]
    fn vacuous_cases() {
        assert!(steiner_exists(5, 5, 257));
        assert!(steiner_exists(4, 4, 71));
        assert!(steiner_exists(3, 3, 9));
        assert!(steiner_exists(2, 5, 5)); // single block
    }

    #[test]
    fn partitions() {
        assert!(steiner_exists(1, 5, 30));
        assert!(!steiner_exists(1, 5, 31));
    }

    #[test]
    fn out_of_scope() {
        assert!(!steiner_exists(0, 3, 9));
        assert!(!steiner_exists(4, 3, 9));
        assert!(!steiner_exists(2, 6, 100)); // r > 5 unsupported (returns false)
        assert!(!steiner_exists(2, 3, 2)); // v < r
    }

    #[test]
    fn admissibility_matches_existence_for_resolved_classes() {
        // For t = 2, r ∈ {3,4,5} and t = 3, r = 4, admissible ⟺ exists
        // (Hanani's theorems), so the oracle agrees with the spectrum.
        for v in 6u16..200 {
            assert_eq!(
                lambda_admissible(2, 3, v, 1),
                steiner_exists(2, 3, v),
                "t=2 r=3 v={v}"
            );
            assert_eq!(
                lambda_admissible(2, 4, v, 1),
                steiner_exists(2, 4, v),
                "t=2 r=4 v={v}"
            );
            assert_eq!(
                lambda_admissible(2, 5, v, 1),
                steiner_exists(2, 5, v),
                "t=2 r=5 v={v}"
            );
            assert_eq!(
                lambda_admissible(3, 4, v, 1),
                steiner_exists(3, 4, v),
                "t=3 r=4 v={v}"
            );
        }
    }

    #[test]
    fn mu_greater_than_one_unlocks_sizes() {
        // 3-(v,5,λ): with μ ≤ 10 far more sizes are admissible than the
        // sparse μ = 1 spectrum — the effect the paper's Fig. 6 shows.
        let mu1: Vec<u16> = (50..=800).filter(|&v| steiner_exists(3, 5, v)).collect();
        let mu10: Vec<u16> = (50..=800)
            .filter(|&v| smallest_admissible_mu(3, 5, v, 10).is_some())
            .collect();
        assert!(mu1.len() < 5);
        assert!(mu10.len() > 100, "got {}", mu10.len());
    }
}
