//! Hermitian unitals: `2-(q³ + 1, q + 1, 1)` designs.
//!
//! The absolute points of a unitary polarity of `PG(2, q²)` — the Hermitian
//! curve `x₀^{q+1} + x₁^{q+1} + x₂^{q+1} = 0` — number `q³ + 1`; every line
//! of the plane meets the curve in either 1 point (tangent) or `q + 1`
//! points (secant), and the secant sections form a `2-(q³+1, q+1, 1)`
//! design. The paper's Fig. 4 uses two of these: `2-(28,4,1)` (q = 3, its
//! `n_1` for `n = 31, r = 4`) and `2-(65,5,1)` (q = 4, its `n_1` for
//! `n = 71, r = 5`).

use crate::{BlockDesign, DesignError};
use std::collections::HashMap;
use wcp_gf::Gf;

/// Builds the Hermitian unital `2-(q³ + 1, q + 1, 1)`.
///
/// # Errors
///
/// [`DesignError::Unsupported`] if `q` is not a prime power or `q²`
/// exceeds the supported field size.
///
/// # Examples
///
/// ```
/// use wcp_designs::{unital, verify};
///
/// let d = unital::hermitian_unital(3)?; // 2-(28,4,1)
/// assert_eq!(d.num_points(), 28);
/// assert!(verify::is_t_design(&d, 2, 1));
/// # Ok::<(), wcp_designs::DesignError>(())
/// ```
pub fn hermitian_unital(q: u32) -> Result<BlockDesign, DesignError> {
    let q2 = q
        .checked_mul(q)
        .filter(|&x| x <= 1024)
        .ok_or_else(|| DesignError::Unsupported(format!("q² = {q}² too large")))?;
    let gf = Gf::new(q2).map_err(|e| DesignError::Unsupported(format!("GF({q2}): {e}")))?;

    // Conjugation in GF(q²) over GF(q) is the Frobenius x ↦ x^q; the
    // Hermitian norm form is H(x) = Σ xᵢ^{q+1}.
    let herm = |x: &[u32; 3]| -> u32 {
        let mut acc = 0u32;
        for &c in x {
            acc = gf.add(acc, gf.pow(c, u64::from(q) + 1));
        }
        acc
    };

    // Enumerate the points of PG(2, q²) as normalized triples (first
    // nonzero coordinate = 1) and keep the absolute ones.
    let mut absolute: Vec<[u32; 3]> = Vec::new();
    let mut index: HashMap<[u32; 3], u16> = HashMap::new();
    let mut all_points: Vec<[u32; 3]> = Vec::new();
    for lead in 0..3usize {
        let free = 2 - lead;
        let total = u64::from(q2).pow(free as u32);
        for idx in 0..total {
            let mut v = [0u32; 3];
            v[lead] = 1;
            let mut x = idx;
            for c in v.iter_mut().skip(lead + 1) {
                *c = (x % u64::from(q2)) as u32;
                x /= u64::from(q2);
            }
            all_points.push(v);
            if herm(&v) == 0 {
                index.insert(v, absolute.len() as u16);
                absolute.push(v);
            }
        }
    }
    let expected_points = u64::from(q).pow(3) + 1;
    debug_assert_eq!(absolute.len() as u64, expected_points);

    // Lines of PG(2, q²) are the points of the dual plane: for each
    // normalized coefficient triple [a,b,c], the line is
    // {P : a·p₀ + b·p₁ + c·p₂ = 0}. Intersect each with the curve; keep the
    // (q+1)-point sections.
    let mut blocks = Vec::new();
    for coef in &all_points {
        let mut section: Vec<u16> = Vec::new();
        for (i, p) in absolute.iter().enumerate() {
            let dot = gf.add(
                gf.add(gf.mul(coef[0], p[0]), gf.mul(coef[1], p[1])),
                gf.mul(coef[2], p[2]),
            );
            if dot == 0 {
                section.push(i as u16);
            }
        }
        match section.len() as u32 {
            1 => {} // tangent line
            len if len == q + 1 => {
                section.sort_unstable();
                blocks.push(section);
            }
            other => {
                return Err(DesignError::Unsupported(format!(
                    "unexpected section size {other} on the Hermitian curve (q = {q})"
                )))
            }
        }
    }
    BlockDesign::new(absolute.len() as u16, (q + 1) as u16, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn unital_q2() {
        // 2-(9,3,1) = AG(2,3) (the affine plane of order 3).
        let d = hermitian_unital(2).unwrap();
        assert_eq!(d.num_points(), 9);
        assert_eq!(d.num_blocks(), 12);
        assert!(verify::is_t_design(&d, 2, 1));
    }

    #[test]
    fn unital_q3() {
        // 2-(28,4,1): the paper's n_1 for n = 31, r = 4.
        let d = hermitian_unital(3).unwrap();
        assert_eq!(d.num_points(), 28);
        assert_eq!(d.num_blocks(), 63); // 28·27/(4·3)
        assert!(verify::is_t_design(&d, 2, 1));
    }

    #[test]
    fn unital_q4() {
        // 2-(65,5,1): the paper's n_1 for n = 71, r = 5.
        let d = hermitian_unital(4).unwrap();
        assert_eq!(d.num_points(), 65);
        assert_eq!(d.num_blocks(), 208); // 65·64/(5·4)
        assert!(verify::is_t_design(&d, 2, 1));
    }

    #[test]
    fn rejects_bad_q() {
        assert!(hermitian_unital(6).is_err());
        assert!(hermitian_unital(100).is_err());
    }
}
