//! End-to-end properties of the prover/verifier split: every
//! certificate the certified ladder emits — across adversary models,
//! random shapes and thread counts — must pass verification after a
//! JSON round trip; every tampered variant must be rejected (at the
//! digest seal when the body is edited in place, at the semantic
//! checks when the attacker re-seals); and exact claims must equal
//! brute-force enumeration on shapes small enough to enumerate.

use proptest::prelude::*;
use wcp_adversary::{AdversaryConfig, Ladder};
use wcp_combin::KSubsets;
use wcp_core::{
    Certificate, Parallelism, Placement, RandomStrategy, RandomVariant, SystemParams, Topology,
};
use wcp_verify::{verify_domain, verify_node};

fn placement(n: u16, b: u64, r: u16, seed: u64) -> Placement {
    let params = SystemParams::new(n, b, r, 1, 1).expect("valid");
    RandomStrategy::new(seed, RandomVariant::LoadBalanced)
        .place(&params)
        .expect("sample")
}

/// The thread matrix every property walks: the legacy serial schedule
/// plus the deterministic parallel one on 1, 2 and 8 workers.
fn thread_matrix(seed: u64) -> Vec<AdversaryConfig> {
    [None, Some(1), Some(2), Some(8)]
        .into_iter()
        .map(|threads| AdversaryConfig {
            seed,
            parallelism: threads.map(Parallelism::new),
            ..AdversaryConfig::default()
        })
        .collect()
}

/// Round-trips a certificate through its sealed JSON form — what the
/// experiment binaries persist and `wcp-verify` reads back.
fn roundtrip(cert: &Certificate) -> Certificate {
    Certificate::from_json(&cert.to_json()).expect("sealed JSON round-trips")
}

fn brute_force_node(p: &Placement, s: u16, k: u16) -> u64 {
    let mut worst = 0;
    KSubsets::new(p.num_nodes(), k.min(p.num_nodes())).for_each(|set| {
        worst = worst.max(p.failed_objects(set, s));
        true
    });
    worst
}

fn brute_force_domain(p: &Placement, topo: &Topology, s: u16, k: u16) -> u64 {
    let units: Vec<Vec<u16>> = topo.failure_units().into_iter().map(|u| u.nodes).collect();
    let mut worst = 0;
    KSubsets::new(units.len() as u16, k.min(units.len() as u16)).for_each(|set| {
        let mut nodes: Vec<u16> = set
            .iter()
            .flat_map(|&u| units[usize::from(u)].iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        worst = worst.max(p.failed_objects(&nodes, s));
        true
    });
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Node-adversary certificates from random shapes verify on every
    /// thread count, agree across the matrix, and — being exact on
    /// these small shapes within the default budget — match the
    /// brute-force enumeration of all k-subsets.
    #[test]
    fn node_certificates_verify_across_threads(
        n in 6u16..=13,
        b_per_n in 2u64..=4,
        seed in 0u64..1 << 20,
        s in 1u16..=2,
        k_off in 0u16..=2,
    ) {
        let r = 3.min(n);
        let s = s.min(r);
        let k = (s + k_off).min(n);
        let p = placement(n, b_per_n * u64::from(n), r, seed);
        let brute = brute_force_node(&p, s, k);
        for config in thread_matrix(seed) {
            let out = Ladder::new(&config).certified().run(&p, s, k);
            let (wc, cert) = (out.worst, out.certificate.unwrap());
            let cert = roundtrip(&cert);
            let report = verify_node(&cert, &p).map_err(TestCaseError::fail)?;
            prop_assert_eq!(report.claimed_failed, wc.failed);
            prop_assert_eq!(report.exact, wc.exact);
            if wc.exact {
                prop_assert_eq!(wc.failed, brute, "exact claim vs brute force");
            } else {
                prop_assert!(wc.failed <= brute);
            }
        }
    }

    /// Domain-adversary certificates (one- and two-level topologies)
    /// verify on every thread count and exact claims match brute force
    /// over unit k-subsets.
    #[test]
    fn domain_certificates_verify_across_threads(
        n in 6u16..=12,
        b_per_n in 2u64..=3,
        seed in 0u64..1 << 20,
        racks in 2u16..=4,
        two_level in 0u16..=1,
        k in 0u16..=3,
    ) {
        let r = 3.min(n);
        let s = 2.min(r);
        let counts: Vec<u16> = if two_level == 1 && racks >= 4 {
            vec![racks, 2]
        } else {
            vec![racks]
        };
        let topo = Topology::split(n, &counts).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let units = topo.failure_units().len() as u16;
        let k = k.min(units);
        let p = placement(n, b_per_n * u64::from(n), r, seed);
        let brute = brute_force_domain(&p, &topo, s, k);
        for config in thread_matrix(seed) {
            let out = Ladder::new(&config).certified().run_domain(&p, &topo, s, k);
            let (wc, cert) = (out.worst, out.certificate.unwrap());
            let cert = roundtrip(&cert);
            let report = verify_domain(&cert, &p, &topo).map_err(TestCaseError::fail)?;
            prop_assert_eq!(report.claimed_failed, wc.failed);
            if wc.exact {
                prop_assert_eq!(wc.failed, brute, "exact claim vs brute force");
            }
        }
    }
}

/// In-place body edits (no reseal) die on the digest before any
/// semantic check runs: the serialized form is self-sealing.
#[test]
fn serialized_tampering_breaks_the_seal() {
    let p = placement(14, 50, 3, 0x7a3);
    let out = Ladder::new(&AdversaryConfig::default())
        .certified()
        .run(&p, 2, 3);
    let (wc, cert) = (out.worst, out.certificate.unwrap());
    assert!(wc.failed > 0, "shape must have a non-trivial worst case");
    let json = cert.to_json();
    let tampered = json.replacen(
        &format!("\"claimed_failed\": {}", cert.claimed_failed),
        &format!("\"claimed_failed\": {}", cert.claimed_failed + 1),
        1,
    );
    assert_ne!(json, tampered, "tamper site must exist");
    let err = Certificate::from_json(&tampered).unwrap_err();
    assert!(err.contains("digest mismatch"), "{err}");
}

/// An attacker who re-seals (recomputes the digest over the edited
/// body, here by re-serializing the mutated certificate) gets past the
/// seal but dies on the semantic re-scoring: the swapped witness no
/// longer fails the claimed count.
#[test]
fn resealed_witness_swap_is_rejected_semantically() {
    let p = placement(14, 50, 3, 0x7a4);
    let out = Ladder::new(&AdversaryConfig::default())
        .certified()
        .run(&p, 2, 3);
    let (wc, mut cert) = (out.worst, out.certificate.unwrap());
    assert!(wc.failed > 0);
    // Claim the worst case is achieved by attacking nothing at all.
    cert.rungs.last_mut().unwrap().witness.clear();
    let resealed = roundtrip(&cert);
    let err = verify_node(&resealed, &p).unwrap_err();
    assert!(err.contains("re-scores"), "{err}");
}

/// A re-sealed ledger truncation — hiding part of the root frontier so
/// a pruned subtree is never accounted for — is caught by the frontier
/// coverage check.
#[test]
fn resealed_ledger_truncation_is_rejected() {
    let p = placement(14, 50, 3, 0x7a5);
    let out = Ladder::new(&AdversaryConfig::default())
        .certified()
        .run(&p, 2, 3);
    let (wc, mut cert) = (out.worst, out.certificate.unwrap());
    assert!(wc.exact && !cert.ledger.is_empty());
    cert.ledger.pop();
    let resealed = roundtrip(&cert);
    let err = verify_node(&resealed, &p).unwrap_err();
    assert!(err.contains("frontier"), "{err}");
}

/// The domain tamper surface: re-sealed unit swaps must fail the
/// witness/leaf-union consistency check.
#[test]
fn resealed_domain_unit_swap_is_rejected() {
    let p = placement(12, 40, 3, 0x7a6);
    let topo = Topology::split(12, &[4]).unwrap();
    let out = Ladder::new(&AdversaryConfig::default())
        .certified()
        .run_domain(&p, &topo, 2, 2);
    let (wc, mut cert) = (out.worst, out.certificate.unwrap());
    assert!(wc.failed > 0 && !wc.units.is_empty());
    // Point the last rung at different units (rotating within the
    // 16-unit universe: 12 leaves + 4 racks) while keeping the now
    // inconsistent leaf witness and its score.
    let unit_count = topo.failure_units().len() as u32;
    let last = cert.rungs.last_mut().unwrap();
    for u in &mut last.units {
        *u = (*u + 1) % unit_count;
    }
    last.units.sort_unstable();
    last.units.dedup();
    let resealed = roundtrip(&cert);
    let err = verify_domain(&resealed, &p, &topo).unwrap_err();
    assert!(
        err.contains("leaf union") || err.contains("unit") || err.contains("re-scores"),
        "{err}"
    );
}

/// The acceptance shape (n=71, b=1200, r=3, s=2, k ≤ 5): the full
/// ladder's certificate for every budget verifies in O(witness) after
/// a JSON round trip, and the canonical tamper moves are all rejected.
/// The exact budget is trimmed so the debug-mode DFS either closes
/// fast or falls back to a (still verifiable) heuristic certificate.
#[test]
fn acceptance_shape_certificates_verify_and_tampering_fails() {
    let p = placement(71, 1200, 3, 0x5ea1);
    let config = AdversaryConfig {
        exact_budget: 300_000,
        ..AdversaryConfig::default()
    };
    for k in 1u16..=5 {
        let out = Ladder::new(&config).certified().run(&p, 2, k);
        let (wc, cert) = (out.worst, out.certificate.unwrap());
        let cert = roundtrip(&cert);
        let report = verify_node(&cert, &p)
            .unwrap_or_else(|e| panic!("k={k}: fresh certificate rejected: {e}"));
        assert_eq!(report.claimed_failed, wc.failed, "k={k}");
        assert_eq!(report.exact, wc.exact, "k={k}");
        // k = 1 under s = 2 legitimately fails nothing on a
        // collision-free placement; from k = 2 on, objects must fall.
        assert!(k < 2 || wc.failed > 0, "k={k}: some objects must fall");

        // Tamper 1: in-place body edit → digest seal.
        let json = cert.to_json();
        let tampered = json.replacen(
            &format!("\"claimed_failed\": {}", cert.claimed_failed),
            &format!("\"claimed_failed\": {}", cert.claimed_failed + 1),
            1,
        );
        assert!(
            Certificate::from_json(&tampered)
                .unwrap_err()
                .contains("digest"),
            "k={k}: body edit must break the seal"
        );

        // Tamper 2: re-sealed inflated claim → witness re-scoring.
        let mut inflated = cert.clone();
        inflated.claimed_failed += 1;
        inflated.rungs.last_mut().unwrap().failed += 1;
        assert!(
            verify_node(&roundtrip(&inflated), &p)
                .unwrap_err()
                .contains("re-scores"),
            "k={k}: inflated claim must fail re-scoring"
        );

        // Tamper 3: re-sealed witness swap → re-scoring (an emptied
        // witness only scores differently when the claim is positive).
        if wc.failed > 0 {
            let mut swapped = cert.clone();
            swapped.rungs.last_mut().unwrap().witness.clear();
            assert!(
                verify_node(&roundtrip(&swapped), &p)
                    .unwrap_err()
                    .contains("re-scores"),
                "k={k}: emptied witness must fail re-scoring"
            );
        }

        // Tamper 4: re-sealed ledger truncation → frontier coverage
        // (exact certificates only; heuristic ones carry no ledger).
        if wc.exact && !cert.ledger.is_empty() {
            let mut cut = cert.clone();
            cut.ledger.pop();
            assert!(
                verify_node(&roundtrip(&cut), &p)
                    .unwrap_err()
                    .contains("frontier"),
                "k={k}: truncated ledger must fail frontier coverage"
            );
        }

        // Tamper 5: certificate presented against the wrong placement.
        let other = placement(71, 1200, 3, 0x5ea2);
        assert!(
            verify_node(&cert, &other).unwrap_err().contains("digest"),
            "k={k}: wrong placement must fail the binding"
        );
    }

    // The domain ladder on the same shape (12 racks, as the adversary
    // acceptance suite splits it).
    let topo = Topology::split(71, &[12]).unwrap();
    let out = Ladder::new(&config).certified().run_domain(&p, &topo, 2, 3);
    let (wc, cert) = (out.worst, out.certificate.unwrap());
    let cert = roundtrip(&cert);
    let report = verify_domain(&cert, &p, &topo).expect("domain certificate verifies");
    assert_eq!(report.claimed_failed, wc.failed);
}
