//! `wcp-verify`: re-check availability certificates persisted in
//! experiment JSONL records, without re-running any search.
//!
//! Usage: `wcp-verify <records.jsonl>...`
//!
//! Each line is one [`wcp_sim::record::Record`] — the single envelope
//! every experiment binary (`sweep`, `churn`, `domains`, `service`)
//! emits, so this tool needs exactly one parser. For every record
//! carrying a certificate (wherever the envelope put it — embedded in
//! the report or top-level, [`Record::certificate`] finds it) the tool
//! re-parses it (the self-sealing digest catches bit-level tampering),
//! then — when the record names a rebuildable strategy via its `spec`
//! field — replans the placement and runs the full scalar verification
//! ([`wcp_verify::verify_node`] / [`wcp_verify::verify_domain`], the
//! latter when the record embeds an exact topology). Records whose
//! placement cannot be reconstructed (e.g. mid-churn snapshots) fall
//! back to the placement-free structural checks.
//!
//! Exits non-zero on any rejected certificate, and also when no
//! certificate was found at all — a run that verifies nothing must not
//! look like a pass.

use std::process::ExitCode;
use wcp_core::{
    Certificate, CertificateKind, PlannerContext, StrategyKind, SystemParams, Topology,
};
use wcp_sim::json::Value;
use wcp_sim::record::Record;
use wcp_verify::{verify_domain, verify_node, verify_structure};

#[derive(Debug, Default)]
struct Tally {
    records: usize,
    full: usize,
    proven: usize,
    structural: usize,
    certless: usize,
    failures: usize,
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: wcp-verify <records.jsonl>...");
        return ExitCode::from(2);
    }
    let mut total = Tally::default();
    let mut ok = true;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut tally = Tally::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            tally.records += 1;
            if let Err(msg) = check_record(line, &mut tally) {
                tally.failures += 1;
                eprintln!("{file}:{}: {msg}", lineno + 1);
            }
        }
        println!(
            "{file}: {} records, {} verified ({} proven optimal), {} structural, \
             {} without certificates, {} failures",
            tally.records,
            tally.full,
            tally.proven,
            tally.structural,
            tally.certless,
            tally.failures
        );
        ok &= tally.failures == 0;
        total.records += tally.records;
        total.full += tally.full;
        total.proven += tally.proven;
        total.structural += tally.structural;
        total.certless += tally.certless;
        total.failures += tally.failures;
    }
    if total.full + total.structural == 0 {
        eprintln!(
            "wcp-verify: no certificates found in {} records",
            total.records
        );
        return ExitCode::from(1);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Verifies one JSONL record; bumps the matching tally bucket on
/// success, returns the rejection reason otherwise.
fn check_record(line: &str, tally: &mut Tally) -> Result<(), String> {
    let record = Record::parse(line)?;
    let Some(cert_value) = record.certificate() else {
        tally.certless += 1;
        return Ok(());
    };
    let cert = Certificate::from_value(cert_value).map_err(|e| format!("certificate: {e}"))?;
    // A `{"racks": …, "zones": …}` display label parses to `None` —
    // only exact `maps`/`split` encodings support domain verification.
    let topology = match &record.topology {
        Some(t) => parse_topology(t, cert.n)?,
        None => None,
    };
    let Some(placement) = rebuild_placement(&record, &cert, topology.as_ref())? else {
        verify_structure(&cert).map_err(|e| format!("structural check: {e}"))?;
        tally.structural += 1;
        return Ok(());
    };
    let verdict = match cert.kind {
        CertificateKind::Node => verify_node(&cert, &placement),
        CertificateKind::Domain => match &topology {
            Some(topo) => verify_domain(&cert, &placement, topo),
            None => {
                // A domain certificate without its topology cannot be
                // fully checked; keep the structural guarantees.
                verify_structure(&cert).map_err(|e| format!("structural check: {e}"))?;
                tally.structural += 1;
                return Ok(());
            }
        },
    };
    let report = verdict?;
    tally.full += 1;
    if report.proven_optimal {
        tally.proven += 1;
    }
    Ok(())
}

/// Rebuilds the record's placement from its `spec` field and the
/// report's `params`, `Ok(None)` when the record does not name a
/// rebuildable strategy.
fn rebuild_placement(
    record: &Record,
    cert: &Certificate,
    topology: Option<&Topology>,
) -> Result<Option<wcp_core::Placement>, String> {
    let Some(spec) = record.spec.as_deref() else {
        return Ok(None);
    };
    let params = record
        .report
        .as_ref()
        .and_then(|r| r.get("params"))
        .ok_or("record names a spec but carries no report params")?;
    let field = |key: &str| -> Result<u64, String> {
        params
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("params.{key} missing or not an integer"))
    };
    let narrow = |key: &str| -> Result<u16, String> {
        u16::try_from(field(key)?).map_err(|_| format!("params.{key} exceeds u16"))
    };
    let params = SystemParams::new(
        narrow("n")?,
        field("b")?,
        narrow("r")?,
        narrow("s")?,
        narrow("k")?,
    )
    .map_err(|e| e.to_string())?;
    let kind = StrategyKind::parse_spec(spec).map_err(|e| e.to_string())?;
    let ctx = PlannerContext {
        topology: topology.cloned(),
        ..PlannerContext::default()
    };
    let placement = kind
        .plan(&params, &ctx)
        .and_then(|strategy| strategy.build(&params))
        .map_err(|e| format!("rebuilding '{spec}': {e}"))?;
    if wcp_core::placement_digest(&placement) != cert.placement {
        return Err(format!(
            "rebuilt '{spec}' placement does not match the certificate's digest \
             (differing planner context?)"
        ));
    }
    Ok(Some(placement))
}

/// Reads a record's embedded topology: `{"maps": [[...], ...]}` (the
/// exact bottom-up parent maps, as the `domains` binary emits) or
/// `{"split": [d1, d2, ...]}` (the balanced contiguous splits of
/// [`Topology::split`]). A `{"racks": …, "zones": …}` display label —
/// what axis sweeps attach — carries no exact tree and parses to
/// `None`.
fn parse_topology(value: &Value, n: u16) -> Result<Option<Topology>, String> {
    if let Some(levels) = value.get("maps").and_then(Value::as_array) {
        let maps: Vec<Vec<u16>> = levels
            .iter()
            .map(|level| {
                level
                    .as_array()
                    .ok_or("topology map levels must be arrays")?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .and_then(|d| u16::try_from(d).ok())
                            .ok_or("topology map entries must be u16 integers")
                    })
                    .collect()
            })
            .collect::<Result<_, _>>()?;
        return Topology::new(n, maps).map(Some).map_err(|e| e.to_string());
    }
    if let Some(counts) = value.get("split").and_then(Value::as_array) {
        let counts: Vec<u16> = counts
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|d| u16::try_from(d).ok())
                    .ok_or("topology split entries must be u16 integers")
            })
            .collect::<Result<_, _>>()?;
        return Topology::split(n, &counts)
            .map(Some)
            .map_err(|e| e.to_string());
    }
    if value.get("racks").is_some() {
        return Ok(None);
    }
    Err("topology must carry a \"maps\", \"split\", or \"racks\" field".into())
}
