//! The verifier side of the availability-certificate split.
//!
//! `wcp-adversary`'s certified ladder entry points emit a compact
//! [`Certificate`] alongside every worst-case verdict; this crate
//! re-checks such a certificate **without re-running the search**, in
//! time linear in the certificate itself (`O(n)` for the bound ledger,
//! `O(witness)` per rung — never the exponential search the prover
//! paid for).
//!
//! # What is proven, and what is trusted
//!
//! Deliberately, nothing here touches the word-parallel
//! [`PackedCounts`](wcp_adversary::PackedCounts) kernel the prover ran
//! on. Every witness is re-scored through
//! [`Placement::failed_objects`] — the definitional scalar path — and
//! every ledger bound is recomputed on the scalar
//! [`FailureCounts`] oracle. A kernel bug that skewed a count, a gain
//! or a histogram bound therefore surfaces as a certificate
//! *rejection* here instead of a silently wrong verdict; the
//! prover/verifier split is only worth having because the two sides do
//! not share the fast path.
//!
//! A certificate passing [`verify_node`] / [`verify_domain`]
//! establishes, unconditionally:
//!
//! * every rung's witness really fails its claimed object count
//!   against this placement (so the final claim is **achievable**);
//! * the rung claims are monotone up the ladder and the certificate's
//!   headline claim is the last rung's;
//! * when the exact rung is present, the bound ledger covers the full
//!   canonical root frontier of the branch-and-bound tree and each
//!   recorded bound equals its recomputation from scratch.
//!
//! When additionally every ledger bound is ≤ the claim, optimality is
//! **proven outright** ([`VerifyReport::proven_optimal`]): each entry
//! is an admissible upper bound for every failure set starting at that
//! root (first element in canonical order), the frontier covers all
//! `k`-sets, and the claim is achievable — so no set can beat it. When
//! some root's bound exceeds the claim, closing that subtree relied on
//! the prover's deeper exploration; such roots are counted in
//! [`VerifyReport::trusted_roots`] rather than re-searched (that would
//! defeat the `O(witness)` contract). The heuristic rungs' `trace`
//! hashes are replay anchors for a determinism audit, not something a
//! linear-time verifier can recompute; they are carried, not checked.

#![forbid(unsafe_code)]

use wcp_adversary::FailureCounts;
use wcp_core::{placement_digest, Certificate, CertificateKind, Placement, RungKind, Topology};

/// What a successful verification established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The certificate's adversary model.
    pub kind: CertificateKind,
    /// The headline worst-case claim that was re-checked.
    pub claimed_failed: u64,
    /// Whether the certificate claims exactness.
    pub exact: bool,
    /// Exactness was proven outright: every recomputed ledger bound is
    /// ≤ the (re-scored, achievable) claim. Always `false` for
    /// heuristic certificates.
    pub proven_optimal: bool,
    /// Ledger roots whose bound exceeds the claim — their subtrees'
    /// exclusion rests on the prover's search, not on this
    /// verification.
    pub trusted_roots: usize,
    /// Rungs checked.
    pub rungs: usize,
}

fn fail(msg: impl Into<String>) -> Result<(), String> {
    Err(msg.into())
}

/// Placement-free sanity of a certificate: parameter ranges, rung
/// ordering and monotonicity, witness well-formedness, ledger/exactness
/// consistency. Both full verifiers run this first; callers without a
/// rebuildable placement (e.g. mid-churn snapshots read back from
/// JSONL) can still run it alone.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn verify_structure(cert: &Certificate) -> Result<(), String> {
    if cert.s == 0 || cert.s > cert.r {
        return fail(format!("threshold s={} outside 1..=r={}", cert.s, cert.r));
    }
    if cert.r > cert.n {
        return fail(format!("replication r={} exceeds n={}", cert.r, cert.n));
    }
    if cert.kind == CertificateKind::Node && cert.k > cert.n {
        return fail(format!("node budget k={} exceeds n={}", cert.k, cert.n));
    }
    if cert.rungs.is_empty() {
        return fail("certificate has no rungs");
    }
    if cert.claimed_failed > cert.b {
        return fail(format!(
            "claims {} failed objects of {}",
            cert.claimed_failed, cert.b
        ));
    }
    let rank = |kind: RungKind| match kind {
        RungKind::Greedy => 0u8,
        RungKind::LocalSearch => 1,
        RungKind::Exact => 2,
    };
    let mut prev: Option<&wcp_core::Rung> = None;
    for (i, rung) in cert.rungs.iter().enumerate() {
        if rung.failed > cert.b {
            return fail(format!(
                "rung {i} claims {} of {} objects",
                rung.failed, cert.b
            ));
        }
        if let Some(p) = prev {
            if rank(rung.kind) <= rank(p.kind) {
                return fail(format!("rung {i} breaks the ladder order"));
            }
            if rung.failed < p.failed {
                return fail(format!(
                    "rung {i} claims {} < previous rung's {}",
                    rung.failed, p.failed
                ));
            }
        }
        let mut seen = vec![false; usize::from(cert.n)];
        for &nd in &rung.witness {
            if nd >= cert.n {
                return fail(format!("rung {i} witness node {nd} outside 0..{}", cert.n));
            }
            if std::mem::replace(&mut seen[usize::from(nd)], true) {
                return fail(format!("rung {i} witness repeats node {nd}"));
            }
        }
        if cert.kind == CertificateKind::Node && !rung.units.is_empty() {
            return fail(format!(
                "rung {i} of a node certificate names failure units"
            ));
        }
        prev = Some(rung);
    }
    let last = cert.rungs.last().expect("non-empty above");
    if last.failed != cert.claimed_failed {
        return fail(format!(
            "headline claim {} is not the last rung's {}",
            cert.claimed_failed, last.failed
        ));
    }
    if cert.exact != (last.kind == RungKind::Exact) {
        return fail("exactness flag disagrees with the final rung's kind");
    }
    if !cert.exact && !cert.ledger.is_empty() {
        return fail("heuristic certificate carries a bound ledger");
    }
    Ok(())
}

/// Binds a certificate to the placement it claims to describe.
fn check_binding(cert: &Certificate, placement: &Placement) -> Result<(), String> {
    if cert.n != placement.num_nodes()
        || cert.b != placement.num_objects() as u64
        || cert.r != placement.replicas_per_object()
    {
        return fail(format!(
            "certificate shape (n={}, b={}, r={}) does not match the placement \
             (n={}, b={}, r={})",
            cert.n,
            cert.b,
            cert.r,
            placement.num_nodes(),
            placement.num_objects(),
            placement.replicas_per_object()
        ));
    }
    let digest = placement_digest(placement);
    if cert.placement != digest {
        return fail(format!(
            "placement digest {:#018x} does not match the certificate's {:#018x}",
            digest, cert.placement
        ));
    }
    Ok(())
}

/// Re-scores every rung witness through the definitional scalar path.
fn check_rung_scores(cert: &Certificate, placement: &Placement) -> Result<(), String> {
    for (i, rung) in cert.rungs.iter().enumerate() {
        let scored = placement.failed_objects(&rung.witness, cert.s);
        if scored != rung.failed {
            return fail(format!(
                "rung {i} witness re-scores to {scored}, certificate claims {}",
                rung.failed
            ));
        }
    }
    Ok(())
}

/// Verifies a node-adversary certificate against the placement it was
/// issued for, in `O(n + witness)` time.
///
/// # Errors
///
/// A description of the first check that failed: structural invariants,
/// placement binding, a witness re-scoring to a different count, or a
/// ledger whose roots or bounds disagree with their scalar
/// recomputation.
pub fn verify_node(cert: &Certificate, placement: &Placement) -> Result<VerifyReport, String> {
    verify_structure(cert)?;
    if cert.kind != CertificateKind::Node {
        return Err("expected a node certificate".into());
    }
    check_binding(cert, placement)?;
    check_rung_scores(cert, placement)?;
    let n = cert.n;
    let k = cert.k;
    for (i, rung) in cert.rungs.iter().enumerate() {
        if rung.witness.len() > usize::from(k) {
            return Err(format!(
                "rung {i} witness uses {} nodes, budget is {k}",
                rung.witness.len()
            ));
        }
    }
    let mut report = VerifyReport {
        kind: CertificateKind::Node,
        claimed_failed: cert.claimed_failed,
        exact: cert.exact,
        proven_optimal: false,
        trusted_roots: 0,
        rungs: cert.rungs.len(),
    };
    if !cert.exact {
        return Ok(report);
    }
    // Degenerate budgets prove themselves: k = 0 admits only the empty
    // set, and failing every node dominates any other choice (failure
    // is monotone in the failed set).
    if k == 0 {
        if cert.claimed_failed != 0 || !cert.rungs[0].witness.is_empty() {
            return Err("k = 0 certificate must claim the empty attack".into());
        }
        if !cert.ledger.is_empty() {
            return Err("k = 0 certificate needs no ledger".into());
        }
        report.proven_optimal = true;
        return Ok(report);
    }
    if k >= n {
        let last = cert.rungs.last().expect("structure checked");
        if last.witness.len() != usize::from(n) {
            return Err(format!(
                "k = {k} ≥ n = {n} certificate must witness all nodes down"
            ));
        }
        if !cert.ledger.is_empty() {
            return Err("all-nodes certificate needs no ledger".into());
        }
        report.proven_optimal = true;
        return Ok(report);
    }
    // The canonical root frontier: every k-set's first element (in
    // (gain, load, node) descending order at the empty set) lies within
    // the first n − k + 1 positions, so these entries cover all
    // attacks. Order and bounds are recomputed from scratch on the
    // scalar oracle — equality with the recorded ledger is the
    // cross-kernel check.
    let roots = usize::from(n - k) + 1;
    if cert.ledger.len() != roots {
        return Err(format!(
            "ledger covers {} roots, the frontier has {roots}",
            cert.ledger.len()
        ));
    }
    let mut fc = FailureCounts::new(placement, cert.s);
    let loads = placement.cached_loads();
    let mut keys: Vec<(u64, u32, u16)> = (0..n)
        .map(|nd| (fc.gain(nd), loads[usize::from(nd)], nd))
        .collect();
    keys.sort_unstable_by(|a, b| b.cmp(a));
    for (i, (&(_, _, nd), entry)) in keys.iter().take(roots).zip(&cert.ledger).enumerate() {
        if entry.root != u32::from(nd) {
            return Err(format!(
                "ledger entry {i} roots at node {}, canonical order expects {nd}",
                entry.root
            ));
        }
        fc.add_node(nd);
        let bound = fc.failed() + fc.failable_within(k - 1);
        fc.remove_node(nd);
        if bound != entry.bound {
            return Err(format!(
                "ledger bound for root {nd} recomputes to {bound}, certificate \
                 records {} (kernel divergence or tampering)",
                entry.bound
            ));
        }
        if bound > cert.claimed_failed {
            report.trusted_roots += 1;
        }
    }
    report.proven_optimal = report.trusted_roots == 0;
    Ok(report)
}

/// Verifies a domain-adversary certificate against the placement *and*
/// the topology it was issued for, in `O(units · leaves + witness)`
/// time.
///
/// # Errors
///
/// As for [`verify_node`], plus unit-specific checks: every rung's
/// witness must be exactly the leaf union of its chosen units, and the
/// ledger's canonical order and bounds are recomputed over the
/// topology's failure units.
pub fn verify_domain(
    cert: &Certificate,
    placement: &Placement,
    topology: &Topology,
) -> Result<VerifyReport, String> {
    verify_structure(cert)?;
    if cert.kind != CertificateKind::Domain {
        return Err("expected a domain certificate".into());
    }
    if topology.num_nodes() != placement.num_nodes() {
        return Err(format!(
            "topology spans {} nodes, placement has {}",
            topology.num_nodes(),
            placement.num_nodes()
        ));
    }
    check_binding(cert, placement)?;
    check_rung_scores(cert, placement)?;
    let units: Vec<Vec<u16>> = topology
        .failure_units()
        .into_iter()
        .map(|u| u.nodes)
        .collect();
    let u_count = units.len();
    let k = cert.k;
    if usize::from(k) > u_count {
        return Err(format!(
            "unit budget k={k} exceeds the topology's {u_count} failure units"
        ));
    }
    for (i, rung) in cert.rungs.iter().enumerate() {
        if rung.units.len() > usize::from(k) {
            return Err(format!(
                "rung {i} fails {} units, budget is {k}",
                rung.units.len()
            ));
        }
        let mut seen = vec![false; u_count];
        let mut union: Vec<u16> = Vec::new();
        for &u in &rung.units {
            let Some(slot) = seen.get_mut(u as usize) else {
                return Err(format!("rung {i} names unit {u} outside 0..{u_count}"));
            };
            if std::mem::replace(slot, true) {
                return Err(format!("rung {i} repeats unit {u}"));
            }
            union.extend_from_slice(&units[u as usize]);
        }
        union.sort_unstable();
        union.dedup();
        if union != rung.witness {
            return Err(format!(
                "rung {i} witness is not the leaf union of its units"
            ));
        }
    }
    let mut report = VerifyReport {
        kind: CertificateKind::Domain,
        claimed_failed: cert.claimed_failed,
        exact: cert.exact,
        proven_optimal: false,
        trusted_roots: 0,
        rungs: cert.rungs.len(),
    };
    if !cert.exact {
        return Ok(report);
    }
    if k == 0 {
        if cert.claimed_failed != 0 || !cert.rungs[0].units.is_empty() {
            return Err("k = 0 certificate must claim the empty attack".into());
        }
        if !cert.ledger.is_empty() {
            return Err("k = 0 certificate needs no ledger".into());
        }
        report.proven_optimal = true;
        return Ok(report);
    }
    if usize::from(k) >= u_count {
        let last = cert.rungs.last().expect("structure checked");
        if last.units.len() != u_count {
            return Err(format!(
                "k = {k} ≥ {u_count} units: certificate must witness all units down"
            ));
        }
        if !cert.ledger.is_empty() {
            return Err("all-units certificate needs no ledger".into());
        }
        report.proven_optimal = true;
        return Ok(report);
    }
    let roots = u_count - usize::from(k) + 1;
    if cert.ledger.len() != roots {
        return Err(format!(
            "ledger covers {} roots, the unit frontier has {roots}",
            cert.ledger.len()
        ));
    }
    // Scalar mirror of the prover's unit index: weights are leaf-load
    // sums, the admissible per-unit hit cap is max_u min(|leaves|, r),
    // and a unit's gain/damage at the empty set is the plain failure
    // delta of downing its leaves.
    let loads = placement.cached_loads();
    let weights: Vec<u64> = units
        .iter()
        .map(|leaves| {
            leaves
                .iter()
                .map(|&nd| u64::from(loads[usize::from(nd)]))
                .sum()
        })
        .collect();
    let r = usize::from(cert.r);
    let c_max = units.iter().map(|u| u.len().min(r)).max().unwrap_or(0) as u16;
    let hits = (u32::from(k - 1) * u32::from(c_max)).min(u32::from(u16::MAX)) as u16;
    fn down(fc: &mut FailureCounts, leaves: &[u16]) {
        for &nd in leaves {
            fc.add_node(nd);
        }
    }
    fn up(fc: &mut FailureCounts, leaves: &[u16]) {
        for &nd in leaves.iter().rev() {
            fc.remove_node(nd);
        }
    }
    let mut fc = FailureCounts::new(placement, cert.s);
    let mut keys: Vec<(u64, u64, u32)> = Vec::with_capacity(u_count);
    for (u, leaves) in units.iter().enumerate() {
        down(&mut fc, leaves);
        let gain = fc.failed();
        up(&mut fc, leaves);
        keys.push((gain, weights[u], u as u32));
    }
    keys.sort_unstable_by(|a, b| b.cmp(a));
    for (i, (&(_, _, u), entry)) in keys.iter().take(roots).zip(&cert.ledger).enumerate() {
        if entry.root != u {
            return Err(format!(
                "ledger entry {i} roots at unit {}, canonical order expects {u}",
                entry.root
            ));
        }
        let leaves = &units[u as usize];
        down(&mut fc, leaves);
        let bound = fc.failed() + fc.failable_within(hits);
        up(&mut fc, leaves);
        if bound != entry.bound {
            return Err(format!(
                "ledger bound for unit {u} recomputes to {bound}, certificate \
                 records {} (kernel divergence or tampering)",
                entry.bound
            ));
        }
        if bound > cert.claimed_failed {
            report.trusted_roots += 1;
        }
    }
    report.proven_optimal = report.trusted_roots == 0;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_adversary::{AdversaryConfig, Ladder};
    use wcp_core::{RandomStrategy, RandomVariant, SystemParams};

    fn random_placement(n: u16, b: u64, r: u16, seed: u64) -> Placement {
        let params = SystemParams::new(n, b, r, 1, 1).unwrap();
        RandomStrategy::new(seed, RandomVariant::LoadBalanced)
            .place(&params)
            .unwrap()
    }

    #[test]
    fn accepts_fresh_node_certificates() {
        for seed in 0..3u64 {
            let p = random_placement(16, 70, 3, seed);
            for (s, k) in [(1u16, 0u16), (1, 3), (2, 4), (3, 5), (2, 16)] {
                let out = Ladder::new(&AdversaryConfig::default())
                    .certified()
                    .run(&p, s, k);
                let (wc, cert) = (out.worst, out.certificate.unwrap());
                let report = verify_node(&cert, &p).expect("fresh certificate verifies");
                assert_eq!(report.claimed_failed, wc.failed);
                assert_eq!(report.exact, wc.exact);
                if wc.exact {
                    assert!(
                        report.proven_optimal || report.trusted_roots > 0,
                        "exactness must be proven or explicitly trusted"
                    );
                }
            }
        }
    }

    #[test]
    fn accepts_fresh_domain_certificates() {
        let p = random_placement(12, 40, 3, 5);
        let topo = Topology::split(12, &[4, 2]).unwrap();
        for k in [0u16, 1, 2, 3] {
            let out = Ladder::new(&AdversaryConfig::default())
                .certified()
                .run_domain(&p, &topo, 2, k);
            let (wc, cert) = (out.worst, out.certificate.unwrap());
            let report = verify_domain(&cert, &p, &topo).expect("fresh certificate verifies");
            assert_eq!(report.claimed_failed, wc.failed);
        }
    }

    #[test]
    fn rejects_wrong_placement() {
        let p = random_placement(14, 50, 3, 1);
        let other = random_placement(14, 50, 3, 2);
        let cert = Ladder::new(&AdversaryConfig::default())
            .certified()
            .run(&p, 2, 3)
            .certificate
            .unwrap();
        let err = verify_node(&cert, &other).unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn rejects_inflated_claim_with_reseal() {
        // Tampering that re-seals the digest must still die on the
        // semantic checks: the witness no longer re-scores to the claim.
        let p = random_placement(14, 50, 3, 3);
        let mut cert = Ladder::new(&AdversaryConfig::default())
            .certified()
            .run(&p, 2, 3)
            .certificate
            .unwrap();
        cert.claimed_failed += 1;
        cert.rungs.last_mut().unwrap().failed += 1;
        let err = verify_node(&cert, &p).unwrap_err();
        assert!(err.contains("re-scores"), "{err}");
    }

    #[test]
    fn rejects_truncated_ledger() {
        let p = random_placement(14, 50, 3, 4);
        let out = Ladder::new(&AdversaryConfig::default())
            .certified()
            .run(&p, 2, 3);
        let (wc, mut cert) = (out.worst, out.certificate.unwrap());
        assert!(wc.exact);
        cert.ledger.pop();
        let err = verify_node(&cert, &p).unwrap_err();
        assert!(err.contains("frontier"), "{err}");
    }

    #[test]
    fn rejects_edited_ledger_bound() {
        let p = random_placement(14, 50, 3, 6);
        let out = Ladder::new(&AdversaryConfig::default())
            .certified()
            .run(&p, 2, 3);
        let (wc, mut cert) = (out.worst, out.certificate.unwrap());
        assert!(wc.exact);
        cert.ledger[0].bound = cert.claimed_failed.saturating_sub(1);
        let err = verify_node(&cert, &p).unwrap_err();
        assert!(err.contains("recomputes"), "{err}");
    }

    #[test]
    fn structure_rejects_non_monotone_rungs() {
        let p = random_placement(14, 50, 3, 8);
        let mut cert = Ladder::new(&AdversaryConfig::default())
            .certified()
            .run(&p, 2, 3)
            .certificate
            .unwrap();
        assert!(cert.rungs.len() >= 2);
        cert.rungs[0].failed = cert.claimed_failed + 1;
        let err = verify_structure(&cert).unwrap_err();
        assert!(err.contains("claims"), "{err}");
    }
}
