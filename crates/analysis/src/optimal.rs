//! A placement-independent upper bound on worst-case availability.
//!
//! Averaging over all `k`-subsets `K` of nodes, the probability that a
//! *fixed* `r`-subset has at least `s` elements in `K` is exactly
//! `p = α(n,k,r,s)/C(n,r)` — independent of which `r`-subset it is. So
//! for **every** placement `π`,
//!
//! ```text
//! E_K[failed(K)] = b·p   ⇒   max_K failed(K) ≥ ⌈b·p⌉
//! ⇒   Avail(π) ≤ b − ⌈b·p⌉
//! ```
//!
//! This gives a yardstick for optimality that the paper's c-competitive
//! result (Theorem 1) complements: comparing `lbAvail_co` against this
//! bound shows how much of the achievable range a Combo placement
//! provably captures (the `optimality` experiment binary prints it).

use crate::theorem2::alpha;
use wcp_combin::binomial;

/// The universal availability upper bound `b − ⌈b·α/C(n,r)⌉`, valid for
/// every placement of `b` objects with `r` replicas on `n` nodes against
/// the worst `k` failures at threshold `s`.
///
/// # Examples
///
/// ```
/// use wcp_analysis::optimal::avail_upper_bound;
///
/// // No placement of 600 pair-replicated objects on 71 nodes survives
/// // 2 worst-case failures untouched once b·p ≥ 1.
/// let ub = avail_upper_bound(71, 2, 2, 2, 600);
/// assert!(ub < 600);
/// ```
#[must_use]
pub fn avail_upper_bound(n: u16, k: u16, r: u16, s: u16, b: u64) -> u64 {
    let a = alpha(n, k, r, s);
    let cnr = binomial(u64::from(n), u64::from(r)).expect("C(n,r) fits u128");
    // ⌈b·a/cnr⌉ in exact integer arithmetic.
    let killed = (u128::from(b) * a).div_ceil(cnr);
    b.saturating_sub(u64::try_from(killed).expect("≤ b"))
}

/// The fraction of the *provably achievable* improvement over Random that
/// a bound `lb` captures: `(lb − prAvail)/(upper − prAvail)`, or `None`
/// when Random already meets the universal bound.
#[must_use]
pub fn optimality_fraction(lb: u64, pr_avail: u64, upper: u64) -> Option<f64> {
    if upper <= pr_avail {
        return None;
    }
    Some((lb as f64 - pr_avail as f64) / (upper as f64 - pr_avail as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_combin::KSubsets;

    /// Exhaustively confirm the averaging bound on small systems against
    /// *every* placement of a few objects (all assignments of distinct
    /// r-sets, sampled lexicographically).
    #[test]
    fn bound_holds_for_sampled_placements() {
        let (n, k, r, s) = (7u16, 3u16, 2u16, 2u16);
        let rsets: Vec<Vec<u16>> = KSubsets::new(n, r).collect();
        // Build placements by taking every (i, j, l) triple of r-sets.
        let b = 3u64;
        let ub = avail_upper_bound(n, k, r, s, b);
        for i in 0..rsets.len() {
            for j in 0..rsets.len() {
                for l in 0..rsets.len() {
                    let placement = [&rsets[i], &rsets[j], &rsets[l]];
                    // worst-case failures over all k-subsets
                    let mut worst = 0u64;
                    for kset in KSubsets::new(n, k) {
                        let failed = placement
                            .iter()
                            .filter(|obj| {
                                obj.iter().filter(|&&p| kset.contains(&p)).count() >= usize::from(s)
                            })
                            .count() as u64;
                        worst = worst.max(failed);
                    }
                    assert!(
                        b - worst <= ub,
                        "placement ({i},{j},{l}) availability {} exceeds bound {ub}",
                        b - worst
                    );
                }
            }
        }
    }

    #[test]
    fn bound_tightens_with_k() {
        let mut prev = u64::MAX;
        for k in 2..=10u16 {
            let ub = avail_upper_bound(71, k, 3, 2, 2400);
            assert!(ub <= prev);
            prev = ub;
        }
    }

    #[test]
    fn combo_bound_below_universal_bound() {
        // Internal consistency at paper scales: lbAvail_co ≤ upper bound.
        // (Computed values cross-checked in the optimality experiment.)
        for (n, k, r, s, b) in [
            (71u16, 3u16, 3u16, 2u16, 2400u64),
            (257, 6, 5, 3, 9600),
            (71, 5, 2, 2, 600),
        ] {
            let ub = avail_upper_bound(n, k, r, s, b);
            assert!(ub <= b);
            // prAvail (a specific strategy's estimate) also respects it
            // only loosely (it is probabilistic), but the exact-adversary
            // lower bounds must: checked in integration tests with real
            // placements; here we sanity-check magnitude.
            assert!(ub > b / 2, "bound should not be vacuous at these scales");
        }
    }

    #[test]
    fn optimality_fraction_edges() {
        assert_eq!(optimality_fraction(90, 80, 100), Some(0.5));
        assert_eq!(optimality_fraction(80, 80, 80), None);
        let f = optimality_fraction(70, 80, 100).unwrap();
        assert!(f < 0.0);
    }
}
