//! Closed-form availability analysis from the paper.
//!
//! * [`theorem1`] — the competitive-ratio constants `c` and `α` showing
//!   `Simple(x, λ)` placements are c-competitive with optimal;
//! * [`theorem2`] — the limit of the vulnerability `Vuln^rnd(f)` of
//!   load-balanced random placement under a worst-case adversary, and the
//!   derived "probably available" object count `prAvail^rnd`
//!   (Definitions 5–6);
//! * [`lemma4`] — the `s = 1` upper bound
//!   `prAvail^rnd ≤ b·(1−1/b)^{k·⌊ℓ⌋}` and its limiting form.
//!
//! Everything is evaluated in log space via [`wcp_combin`], so the
//! formulas remain stable at the paper's largest scales
//! (`b = 38 400`, `C(257,5)^b`-sized state spaces).

#![forbid(unsafe_code)]

pub mod lemma4;
pub mod optimal;
pub mod theorem1;
pub mod theorem2;

pub use lemma4::pr_avail_upper_s1;
pub use optimal::avail_upper_bound;
pub use theorem1::{competitive_constants, CompetitiveBound};
pub use theorem2::{alpha, ln_vuln, pr_avail, pr_avail_fraction};
