//! Theorem 1: `Simple(x, λ)` placements are c-competitive with optimal.
//!
//! For any placement `π′` and any `Simple(x, λ)` placement `π`,
//! `Avail(π′) < c·Avail(π) + α` where
//!
//! ```text
//! c = [1 − (C(r,x+1)·C(k,x+1)) / (C(n_x,x+1)·C(s,x+1))]⁻¹
//! α = c·μ_x·C(k,x+1)/C(s,x+1)
//! ```
//!
//! provided `C(r,x+1)·C(k,x+1) < C(n_x,x+1)·C(s,x+1)` (so `c > 1`).

use wcp_combin::binomial;

/// The competitive-ratio constants of Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompetitiveBound {
    /// The multiplicative factor `c > 1`.
    pub c: f64,
    /// The additive slack `α`.
    pub alpha: f64,
}

/// Computes `(c, α)` for a `Simple(x, λ)` placement built from a
/// `(x+1)-(n_x, r, μ_x)` design, against `k` failures at threshold `s`.
///
/// Returns `None` when the theorem's premise fails
/// (`C(r,x+1)·C(k,x+1) ≥ C(n_x,x+1)·C(s,x+1)`), in which case the bound
/// is vacuous.
///
/// # Examples
///
/// ```
/// use wcp_analysis::competitive_constants;
///
/// // s = r: the paper's illustration — c ≈ (1 − (k/n_x)^{x+1})⁻¹.
/// let bound = competitive_constants(65, 5, 5, 2, 6, 1).unwrap();
/// assert!(bound.c > 1.0 && bound.c < 1.02);
///
/// // Small s relative to r can void the premise.
/// assert!(competitive_constants(10, 5, 1, 1, 8, 1).is_none());
/// ```
#[must_use]
pub fn competitive_constants(
    nx: u16,
    r: u16,
    s: u16,
    x: u16,
    k: u16,
    mu: u64,
) -> Option<CompetitiveBound> {
    let t = u64::from(x) + 1;
    let crx = binomial(u64::from(r), t).expect("small");
    let ckx = binomial(u64::from(k), t).expect("small");
    let cnx = binomial(u64::from(nx), t).expect("fits");
    let csx = binomial(u64::from(s), t).expect("small");
    if csx == 0 {
        return None; // x + 1 > s: penalty term undefined in the bound
    }
    if crx * ckx >= cnx * csx {
        return None;
    }
    let ratio = (crx * ckx) as f64 / (cnx * csx) as f64;
    let c = 1.0 / (1.0 - ratio);
    let alpha = c * mu as f64 * ckx as f64 / csx as f64;
    Some(CompetitiveBound { c, alpha })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_equals_r_simplification() {
        // With s = r the binomials cancel: c = (1 − C(k,x+1)/C(n_x,x+1))⁻¹.
        for (nx, r, x, k) in [(69u16, 3u16, 1u16, 5u16), (65, 5, 2, 6), (255, 3, 1, 8)] {
            let bound = competitive_constants(nx, r, r, x, k, 1).unwrap();
            let t = u64::from(x) + 1;
            let expect = 1.0
                / (1.0
                    - binomial(u64::from(k), t).unwrap() as f64
                        / binomial(u64::from(nx), t).unwrap() as f64);
            assert!((bound.c - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_illustration_80_percent() {
        // The paper: if (k/n_x)^{x+1} ≈ 0.2 under s = r, availability
        // converges to ≈ 80% of optimal, i.e. c ≈ 1.25.
        // Choose x = 0 and k/n_x = 0.2: n_x = 30, k = 6.
        let bound = competitive_constants(30, 3, 3, 0, 6, 1).unwrap();
        assert!((bound.c - 1.25).abs() < 1e-9, "c = {}", bound.c);
    }

    #[test]
    fn c_grows_with_k() {
        let mut prev = 1.0;
        for k in 2..=20u16 {
            let bound = competitive_constants(71, 3, 2, 1, k, 1).unwrap();
            assert!(bound.c > prev);
            prev = bound.c;
        }
    }

    #[test]
    fn premise_violation_detected() {
        // Huge k: C(k,2) outgrows C(n_x,2)·C(s,2)/C(r,2).
        assert!(competitive_constants(20, 5, 2, 1, 19, 1).is_none());
    }

    #[test]
    fn alpha_scales_with_mu() {
        let b1 = competitive_constants(69, 3, 2, 1, 4, 1).unwrap();
        let b2 = competitive_constants(69, 3, 2, 1, 4, 3).unwrap();
        assert!((b2.alpha - 3.0 * b1.alpha).abs() < 1e-9);
        assert_eq!(b1.c, b2.c);
    }
}
