//! Lemma 4 / Appendix A: the `s = 1` case.
//!
//! When a single replica failure kills an object, random placement fares
//! poorly: `prAvail^rnd ≤ b·(1−1/b)^{k·⌊ℓ⌋}` with `ℓ = rb/n` the average
//! load. As `b → ∞` this approaches `b·e^{−kr/n}` — availability decays
//! essentially linearly in `k` with slope `r/n` (the paper's Fig. 11).

/// The Lemma-4 upper bound on `prAvail^rnd` for `s = 1`, as an absolute
/// object count.
///
/// # Examples
///
/// ```
/// use wcp_analysis::pr_avail_upper_s1;
///
/// let bound = pr_avail_upper_s1(71, 3, 3, 38_400);
/// // ≈ b·e^{−kr/n} = 38400·e^{−9/71}
/// let approx = 38_400.0 * (-9.0f64 / 71.0).exp();
/// assert!((bound - approx).abs() / approx < 1e-3);
/// ```
#[must_use]
pub fn pr_avail_upper_s1(n: u16, k: u16, r: u16, b: u64) -> f64 {
    let load = (u64::from(r) * b / u64::from(n)) as f64; // ⌊ℓ⌋
    let b_f = b as f64;
    b_f * ((1.0 - 1.0 / b_f).ln() * f64::from(k) * load).exp()
}

/// The same bound as a fraction of `b` (the paper's Fig. 11 y-axis).
#[must_use]
pub fn fraction_upper_s1(n: u16, k: u16, r: u16, b: u64) -> f64 {
    pr_avail_upper_s1(n, k, r, b) / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_with_k() {
        let mut prev = f64::INFINITY;
        for k in 1..=10u16 {
            let v = pr_avail_upper_s1(71, k, 3, 38_400);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn slope_shrinks_with_n() {
        // Larger n ⇒ each node hosts fewer replicas ⇒ flatter decay.
        let v71 = fraction_upper_s1(71, 5, 3, 38_400);
        let v257 = fraction_upper_s1(257, 5, 3, 38_400);
        assert!(v257 > v71);
    }

    #[test]
    fn slope_grows_with_r() {
        let v3 = fraction_upper_s1(71, 5, 3, 38_400);
        let v5 = fraction_upper_s1(71, 5, 5, 38_400);
        assert!(v5 < v3);
    }

    #[test]
    fn b_insensitive_at_scale() {
        // The paper notes the curves for b = 2400 and b = 38400 are
        // virtually indistinguishable.
        let a = fraction_upper_s1(71, 5, 3, 2400);
        let b = fraction_upper_s1(71, 5, 3, 38_400);
        assert!((a - b).abs() < 1e-3);
    }

    #[test]
    fn no_failures_edge() {
        // k ≥ 1 is required by the model, but the formula itself is sane
        // at k = 1 with tiny load.
        let v = pr_avail_upper_s1(257, 1, 2, 600);
        assert!(v > 595.0 && v <= 600.0);
    }
}
