//! Theorem 2: the worst-case vulnerability of random placement.
//!
//! For the unconstrained random process `Random′` (which load-balanced
//! `Random` approaches as `ℓ → ∞`), the expected number of pairs `(K, F)`
//! — `K` a `k`-set of nodes whose failure kills the object set `F`,
//! `|F| ≥ f` — converges to
//!
//! ```text
//! Vuln(f) = C(n,k) · Σ_{f'=f}^{b} C(b,f') p^{f'} (1−p)^{b−f'},
//!           p = α(n,k,r,s)/C(n,r),
//!           α  = Σ_{s'=s}^{min(r,k)} C(k,s')·C(n−k, r−s')
//! ```
//!
//! i.e. `C(n,k)` times a binomial tail: each object independently lands
//! `≥ s` replicas inside a fixed `K` with probability `p`. The number of
//! objects *probably available* is `prAvail = b − max{f : Vuln(f) ≥ 1}`
//! (Definition 6).

use wcp_combin::{binomial, ln_binomial_tail, LnFact};

/// `α(n, k, r, s)`: the number of `r`-subsets of nodes with at least `s`
/// elements inside a fixed `k`-subset.
///
/// # Panics
///
/// Panics if the binomials overflow `u128` (they cannot for `n ≤ 65535`,
/// `r ≤ 5`).
///
/// # Examples
///
/// ```
/// use wcp_analysis::alpha;
///
/// // n=5, k=2, r=2, s=2: only the set equal to K itself.
/// assert_eq!(alpha(5, 2, 2, 2), 1);
/// // s=1: any pair touching K: C(5,2) − C(3,2) = 7.
/// assert_eq!(alpha(5, 2, 2, 1), 7);
/// ```
#[must_use]
pub fn alpha(n: u16, k: u16, r: u16, s: u16) -> u128 {
    let (n, k, r, s) = (u64::from(n), u64::from(k), u64::from(r), u64::from(s));
    let mut acc = 0u128;
    for s_prime in s..=r.min(k) {
        let a = binomial(k, s_prime).expect("small binomial");
        let b = binomial(n - k, r - s_prime).expect("binomial fits u128");
        acc += a * b;
    }
    acc
}

/// Workspace for repeated Theorem-2 evaluations over the same `b` (holds
/// the `ln i!` table).
#[derive(Debug, Clone)]
pub struct VulnTable {
    table: LnFact,
}

impl VulnTable {
    /// Builds the factorial table for object counts up to `b_max`.
    #[must_use]
    pub fn new(b_max: u64) -> Self {
        Self {
            table: LnFact::new(b_max),
        }
    }

    /// `ln Vuln(f)` in the Theorem-2 limit.
    #[must_use]
    pub fn ln_vuln(&self, n: u16, k: u16, r: u16, s: u16, b: u64, f: u64) -> f64 {
        let a = alpha(n, k, r, s);
        let cnr = binomial(u64::from(n), u64::from(r)).expect("C(n,r) fits u128");
        debug_assert!(a <= cnr);
        // ln p and ln (1−p) from exact integers (avoids catastrophic
        // cancellation at either extreme).
        let ln_cnr = (cnr as f64).ln();
        let ln_p = if a == 0 {
            f64::NEG_INFINITY
        } else {
            (a as f64).ln() - ln_cnr
        };
        let ln_1mp = if a == cnr {
            f64::NEG_INFINITY
        } else {
            ((cnr - a) as f64).ln() - ln_cnr
        };
        let ln_cnk = wcp_combin::ln_binomial(u64::from(n), u64::from(k));
        ln_cnk + ln_binomial_tail(&self.table, b, ln_p, ln_1mp, f)
    }

    /// `prAvail^rnd = b − max{f : Vuln(f) ≥ 1}` (Definition 6, literally),
    /// using the Theorem-2 limit for `Vuln`.
    ///
    /// `Vuln` is non-increasing in `f` and `Vuln(0) = C(n,k) ≥ 1`, so the
    /// maximizing `f` is found by binary search.
    #[must_use]
    pub fn pr_avail(&self, n: u16, k: u16, r: u16, s: u16, b: u64) -> u64 {
        b - self.max_vulnerable(n, k, r, s, b)
    }

    /// The paper's tables (Figs. 7–10) are numerically consistent with the
    /// off-by-one variant `prAvail = b − min{f : Vuln(f) < 1}` — e.g. its
    /// prose anchor "n = 71, r = 2, s = 2, b = 2400, k = 2 ⇒ 85%" requires
    /// `prAvail = 2393` where Definition 6 as written gives 2394. This
    /// method reproduces the published numbers; see EXPERIMENTS.md.
    #[must_use]
    pub fn pr_avail_paper(&self, n: u16, k: u16, r: u16, s: u16, b: u64) -> u64 {
        b.saturating_sub(self.max_vulnerable(n, k, r, s, b) + 1)
    }

    /// Largest `f ∈ [0, b]` with `Vuln(f) ≥ 1`.
    fn max_vulnerable(&self, n: u16, k: u16, r: u16, s: u16, b: u64) -> u64 {
        let (mut lo, mut hi) = (0u64, b);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.ln_vuln(n, k, r, s, b, mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// One-shot `ln Vuln(f)` (builds a table; use [`VulnTable`] for sweeps).
#[must_use]
pub fn ln_vuln(n: u16, k: u16, r: u16, s: u16, b: u64, f: u64) -> f64 {
    VulnTable::new(b).ln_vuln(n, k, r, s, b, f)
}

/// One-shot `prAvail^rnd` (builds a table; use [`VulnTable`] for sweeps).
///
/// # Examples
///
/// ```
/// use wcp_analysis::pr_avail;
///
/// // The paper's running example scale: most objects survive at s = 3.
/// let pa = pr_avail(71, 5, 5, 3, 2400);
/// assert!(pa > 2300 && pa <= 2400);
/// ```
#[must_use]
pub fn pr_avail(n: u16, k: u16, r: u16, s: u16, b: u64) -> u64 {
    VulnTable::new(b).pr_avail(n, k, r, s, b)
}

/// `prAvail^rnd / b` — the fraction plotted in the paper's Fig. 8.
#[must_use]
pub fn pr_avail_fraction(n: u16, k: u16, r: u16, s: u16, b: u64) -> f64 {
    pr_avail(n, k, r, s, b) as f64 / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_sums_hypergeometric_numerators() {
        // Σ_{s'=0..min(r,k)} C(k,s')C(n−k,r−s') = C(n,r) (Vandermonde).
        for (n, k, r) in [(31u16, 5u16, 5u16), (71, 7, 3), (257, 8, 4)] {
            let total: u128 = alpha(n, k, r, 0);
            let cnr = binomial(u64::from(n), u64::from(r)).unwrap();
            assert_eq!(total, cnr, "n={n} k={k} r={r}");
        }
    }

    #[test]
    fn alpha_monotone_in_s() {
        for s in 1..=5u16 {
            assert!(alpha(71, 6, 5, s) >= alpha(71, 6, 5, s + 1).min(alpha(71, 6, 5, s)));
        }
        assert_eq!(alpha(71, 6, 5, 6), 0); // s > r
    }

    #[test]
    fn vuln_decreasing_in_f() {
        let t = VulnTable::new(2400);
        let mut prev = f64::INFINITY;
        for f in 0..100 {
            let v = t.ln_vuln(71, 5, 3, 2, 2400, f);
            assert!(v <= prev + 1e-9, "f={f}");
            prev = v;
        }
    }

    #[test]
    fn vuln_at_zero_is_cnk() {
        let t = VulnTable::new(600);
        let v = t.ln_vuln(31, 4, 3, 2, 600, 0);
        let expect = wcp_combin::ln_binomial(31, 4);
        assert!((v - expect).abs() < 1e-9);
    }

    #[test]
    fn pr_avail_extremes() {
        // s = r = k small, huge n: p is tiny, so nearly everything is
        // probably available.
        let pa = pr_avail(257, 2, 2, 2, 600);
        assert!(pa >= 590, "pa = {pa}");
        // k = n−1 fails everything: prAvail must be ~0.
        let pa = pr_avail(31, 30, 3, 1, 600);
        assert_eq!(pa, 0);
    }

    #[test]
    fn pr_avail_monotonicity() {
        let t = VulnTable::new(4800);
        // More failures → fewer probably-available objects.
        let mut prev = u64::MAX;
        for k in 2..=8u16 {
            let pa = t.pr_avail(71, k, 5, 2, 4800);
            assert!(pa <= prev, "k={k}");
            prev = pa;
        }
        // Larger s (harder to kill) → more available.
        let mut prev = 0u64;
        for s in 1..=5u16 {
            let pa = t.pr_avail(71, 6, 5, s, 4800);
            assert!(pa >= prev, "s={s}");
            prev = pa;
        }
    }

    #[test]
    fn paper_variant_is_one_lower() {
        let t = VulnTable::new(2400);
        // The paper's prose anchor: n = 71, r = 2, s = 2, b = 2400, k = 2.
        assert_eq!(t.pr_avail(71, 2, 2, 2, 2400), 2394);
        assert_eq!(t.pr_avail_paper(71, 2, 2, 2, 2400), 2393);
    }

    #[test]
    fn matches_direct_expectation_small() {
        // Cross-check ln_vuln against a direct O(b) summation in plain
        // f64 for a small instance.
        let (n, k, r, s, b) = (12u16, 3u16, 3u16, 2u16, 40u64);
        let a = alpha(n, k, r, s) as f64;
        let cnr = binomial(u64::from(n), u64::from(r)).unwrap() as f64;
        let p = a / cnr;
        for f in [0u64, 1, 5, 20, 40] {
            let mut tail = 0f64;
            for fp in f..=b {
                let c = binomial(b, fp).unwrap() as f64;
                tail += c * p.powi(fp as i32) * (1.0 - p).powi((b - fp) as i32);
            }
            let direct = (binomial(u64::from(n), u64::from(k)).unwrap() as f64).ln() + tail.ln();
            let got = ln_vuln(n, k, r, s, b, f);
            assert!(
                (got - direct).abs() < 1e-6,
                "f={f}: got {got}, direct {direct}"
            );
        }
    }
}
