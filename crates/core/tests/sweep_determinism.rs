//! Property test: `Engine::sweep` is deterministic in the thread count.
//!
//! The sweep subsystem promises byte-identical records for any worker
//! count (stable per-cell seeds, index-addressed result slots, timings
//! zeroed). This suite drives randomized specs — grids, strategy
//! subsets, explicit cells — through the serial path and several
//! parallel widths and compares cell for cell.

use proptest::prelude::*;
use wcp_core::sweep::{AdversarySpec, SweepOptions, SweepRecord, SweepSpec};
use wcp_core::{Engine, RandomVariant, StrategyKind, SystemParams};

/// All strategy families a random spec may draw from (Simple/Combo need
/// constructible packings, so grids stay on small, designable shapes).
fn strategy_pool() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Ring,
        StrategyKind::Group,
        StrategyKind::Combo,
        StrategyKind::Simple { x: 0 },
        StrategyKind::Random {
            seed: 0xfeed,
            variant: RandomVariant::LoadBalanced,
        },
        StrategyKind::Adaptive,
    ]
}

fn run(spec: &SweepSpec, threads: usize) -> Vec<SweepRecord> {
    Engine::sweep(
        spec,
        &SweepOptions {
            threads,
            ..SweepOptions::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_sweep_equals_serial(
        n in 8u16..15,
        b_lo in 10u64..30,
        r in 2u16..4,
        k_hi in 2u16..5,
        strategy_mask in 1usize..64,
        threads in 2usize..9,
    ) {
        let mut spec = SweepSpec::new("prop-sweep");
        spec.grid.n = vec![n, n + 2];
        spec.grid.b = vec![b_lo, b_lo * 2];
        spec.grid.r = vec![r];
        spec.grid.s = (1..=r).collect();
        spec.grid.k = (2..=k_hi).collect();
        spec.strategies = strategy_pool()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| strategy_mask & (1 << i) != 0)
            .map(|(_, kind)| kind)
            .collect();
        spec.adversaries = vec![AdversarySpec::Exhaustive { budget: 50_000 }];

        let serial = run(&spec, 1);
        let parallel = run(&spec, threads);
        prop_assert_eq!(serial.len(), parallel.len());
        for (s_rec, p_rec) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s_rec, p_rec);
            prop_assert_eq!(s_rec.to_json(), p_rec.to_json());
        }
    }

    #[test]
    fn repeated_runs_are_byte_identical(
        n in 8u16..13,
        b in 12u64..40,
        threads in 2usize..6,
    ) {
        let mut spec = SweepSpec::new("prop-repeat");
        spec.explicit_params =
            vec![SystemParams::new(n, b, 3, 2, 3).expect("valid by construction")];
        spec.strategies = strategy_pool();
        let first = run(&spec, threads);
        let second = run(&spec, threads);
        let first_json: Vec<String> = first.iter().map(SweepRecord::to_json).collect();
        let second_json: Vec<String> = second.iter().map(SweepRecord::to_json).collect();
        prop_assert_eq!(first_json, second_json);
    }
}
