//! Property-based tests for the Combo DP: optimality against brute force
//! and structural invariants of the plans it emits.

use proptest::prelude::*;
use wcp_core::{combo_plan, lb_avail_co, PackingProfile, SystemParams};

/// Exhaustive search over every λ assignment reachable through the DP's
/// decision space for s ≤ 3 paper profiles.
fn brute_force_lb(profile: &PackingProfile, params: &SystemParams) -> i64 {
    let b = params.b();
    let s = profile.s();
    assert!(s <= 3);
    let mut best = i64::MIN;
    let mut eval = |lambdas: &[u64], placed: u64| {
        if placed >= b {
            // capacity may exceed b; penalties use λ as chosen
            let lb = lb_avail_co(lambdas, b, params.k(), params.s());
            best = best.max(lb.max(0));
        }
    };
    match s {
        1 => {
            let sp0 = profile.spec(0);
            let d0 = sp0.units_for(b).unwrap();
            eval(&[d0 * sp0.mu], sp0.capacity(d0));
        }
        2 => {
            let sp0 = profile.spec(0);
            let sp1 = profile.spec(1);
            for d1 in 0..=sp1.units_for(b).unwrap() {
                let placed1 = sp1.capacity(d1).min(b);
                let d0 = sp0.units_for(b - placed1).unwrap();
                eval(&[d0 * sp0.mu, d1 * sp1.mu], placed1 + sp0.capacity(d0));
            }
        }
        _ => {
            let sp0 = profile.spec(0);
            let sp1 = profile.spec(1);
            let sp2 = profile.spec(2);
            for d2 in 0..=sp2.units_for(b).unwrap() {
                let placed2 = sp2.capacity(d2).min(b);
                for d1 in 0..=sp1.units_for(b - placed2).unwrap() {
                    let placed1 = sp1.capacity(d1).min(b - placed2);
                    let d0 = sp0.units_for(b - placed2 - placed1).unwrap();
                    eval(
                        &[d0 * sp0.mu, d1 * sp1.mu, d2 * sp2.mu],
                        placed2 + placed1 + sp0.capacity(d0),
                    );
                }
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DP's maximized bound equals exhaustive search over its whole
    /// decision space, on arbitrary paper-grid instances.
    #[test]
    fn dp_is_optimal(
        ni in 0usize..3,
        b in 50u64..3000,
        r in 2u16..=5,
        s in 1u16..=3,
        k_off in 0u16..4,
    ) {
        let n = [31u16, 71, 257][ni];
        prop_assume!(s <= r);
        let k = s + k_off;
        let params = SystemParams::new(n, b, r, s, k).expect("valid");
        let profile = PackingProfile::paper(&params).expect("paper grid");
        let plan = combo_plan(&profile, &params).expect("DP");
        let brute = brute_force_lb(&profile, &params);
        prop_assert_eq!(plan.lb_avail as i64, brute,
            "DP {:?} vs brute {} at n={} b={} r={} s={} k={}", plan, brute, n, b, r, s, k);
    }

    /// Plans always place exactly b objects within slot capacities, and
    /// the reported bound is consistent with Lemma 3 on the chosen λs.
    #[test]
    fn plans_internally_consistent(
        ni in 0usize..3,
        b in 50u64..20_000,
        r in 2u16..=5,
        s in 1u16..=5,
        k_off in 0u16..3,
    ) {
        let n = [31u16, 71, 257][ni];
        prop_assume!(s <= r);
        let k = s + k_off;
        let params = SystemParams::new(n, b, r, s, k).expect("valid");
        let profile = PackingProfile::paper(&params).expect("paper grid");
        let plan = combo_plan(&profile, &params).expect("DP");
        prop_assert_eq!(plan.objects.iter().sum::<u64>(), b);
        for x in 0..s {
            let spec = profile.spec(x);
            let lam = plan.lambdas[usize::from(x)];
            prop_assert!(lam.is_multiple_of(spec.mu.max(1)));
            prop_assert!(plan.objects[usize::from(x)] <= spec.capacity(lam / spec.mu.max(1)));
        }
        let direct = lb_avail_co(&plan.lambdas, b, k, s).max(0) as u64;
        prop_assert_eq!(plan.lb_avail, direct);
    }
}
