//! The parallel parameter-sweep subsystem.
//!
//! The paper's experiments (Figs. 2–7) are grids over
//! `(n, b, r, s, k, strategy)`; each figure binary used to hand-roll its
//! own nested loops and evaluate one configuration at a time on one
//! core. This module turns "a grid of configurations" into a value —
//! [`SweepSpec`] — and "evaluate them all" into one call —
//! [`Engine::sweep`] / [`sweep_with`] — that fans the cells out across
//! worker threads via [`std::thread::scope`] with work-stealing chunk
//! claiming.
//!
//! # Determinism
//!
//! Cell enumeration order is fixed by the spec, every cell carries a
//! stable seed derived with [`wcp_sim::seed_for`] from the spec label
//! and the cell index, and results are written back by cell index — so
//! a sweep over `N` threads returns *byte-identical* records to the
//! serial run. The only nondeterministic observable, wall-clock
//! timings, is zeroed unless [`SweepOptions::record_timings`] is set.
//!
//! # Attackers
//!
//! Workers evaluate many cells back to back, which is exactly where
//! adversaries win by reusing their scratch buffers instead of
//! reallocating per evaluation. The per-worker state lives behind
//! [`CellAttacker`]: the sweep creates one per worker thread and hands
//! it every cell that worker claims. The built-in
//! [`DefaultCellAttacker`] wraps [`ExhaustiveAttacker`]; the
//! `wcp-adversary` crate provides the full
//! exact-with-heuristic-fallback ladder with buffer reuse.

use crate::engine::{AttackOutcome, Attacker, ExhaustiveAttacker, LoadStats, Timings};
use crate::strategy::{PlannerContext, StrategyKind};
use crate::{Engine, EvaluationReport, SystemParams, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Declarative choice of worst-case adversary for a sweep cell.
///
/// The spec only *names* the adversary; resolution happens in the
/// [`CellAttacker`] driving the sweep, so `wcp-core` stays free of a
/// dependency on the search crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversarySpec {
    /// Plain enumeration of all `C(n, k)` failure sets within `budget`
    /// subsets, deterministic probes beyond it (the engine's built-in
    /// [`ExhaustiveAttacker`]).
    Exhaustive {
        /// Maximum number of `k`-subsets to enumerate exactly.
        budget: u64,
    },
    /// The full ladder: exact branch-and-bound within `exact_budget`
    /// node expansions, greedy + multi-restart local search beyond it.
    /// Resolved by `wcp-adversary`'s sweep attacker; the built-in
    /// [`DefaultCellAttacker`] degrades it to `Exhaustive` with the same
    /// budget.
    Auto {
        /// Node-expansion budget for the exact DFS.
        exact_budget: u64,
        /// Local-search restarts.
        restarts: u32,
        /// Improvement-step cap per restart.
        max_steps: u32,
    },
}

impl Default for AdversarySpec {
    fn default() -> Self {
        AdversarySpec::Auto {
            exact_budget: 20_000_000,
            restarts: 4,
            max_steps: 200,
        }
    }
}

impl AdversarySpec {
    /// Stable display label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AdversarySpec::Exhaustive { budget } => format!("exhaustive({budget})"),
            AdversarySpec::Auto { exact_budget, .. } => format!("auto({exact_budget})"),
        }
    }
}

/// Cartesian value lists for the system parameters of a sweep.
///
/// Combinations that violate the model constraints (`s ≤ r ≤ n`,
/// `s ≤ k < n`, …) are skipped silently during enumeration, so a grid
/// may list e.g. `k = [2, 3, 4]` next to `s = [2, 3]` without guarding
/// `k ≥ s` by hand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamGrid {
    /// Node counts.
    pub n: Vec<u16>,
    /// Object counts.
    pub b: Vec<u64>,
    /// Replication degrees.
    pub r: Vec<u16>,
    /// Fatality thresholds.
    pub s: Vec<u16>,
    /// Failure counts planned for.
    pub k: Vec<u16>,
}

impl ParamGrid {
    /// Expands the grid into every *valid* [`SystemParams`] combination,
    /// in `n → b → r → s → k` nesting order.
    #[must_use]
    pub fn expand(&self) -> Vec<SystemParams> {
        let mut out = Vec::new();
        for &n in &self.n {
            for &b in &self.b {
                for &r in &self.r {
                    for &s in &self.s {
                        for &k in &self.k {
                            if let Ok(p) = SystemParams::new(n, b, r, s, k) {
                                out.push(p);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Rack/zone fan-out axis of a sweep: one seeded zone → rack → node
/// tree (via [`wcp_sim::topo::TopoSpec`]) per listed rack count.
///
/// When a [`SweepSpec`] carries an axis, its cells are enumerated per
/// topology point with `n` taken from the generated tree's leaf count
/// (the grid's `n` list is ignored), each cell carries its
/// [`TopologyPoint`], and the sweep plans topology-aware strategies
/// against it. The `domains` experiment binary drives its whole grid
/// through this instead of hand-rolling rack loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyAxis {
    /// Spec-label prefix: each point's generator label is
    /// `"{label}-{racks}"`, so trees are reproducible per rack count.
    pub label: String,
    /// Rack fan-outs to enumerate (one topology point each).
    pub racks: Vec<u16>,
    /// Nodes per rack (before jitter).
    pub rack_size: u16,
    /// Zone fan-out above the racks; `0` means a single rack level.
    pub zones: u16,
    /// Per-rack size jitter forwarded to the generator.
    pub jitter: u16,
    /// Seed index mixed into the generator's per-label stream.
    pub seed_index: u64,
}

impl TopologyAxis {
    /// A flat single-level axis over `racks` of `rack_size` nodes.
    #[must_use]
    pub fn new(label: impl Into<String>, racks: Vec<u16>, rack_size: u16) -> Self {
        Self {
            label: label.into(),
            racks,
            rack_size,
            zones: 0,
            jitter: 0,
            seed_index: 0,
        }
    }

    /// Generates the axis's topology points, one per rack count, in
    /// listed order. Deterministic: the same axis always expands to the
    /// same trees.
    ///
    /// # Errors
    ///
    /// A message when `rack_size` or a rack count is zero, or when
    /// `zones` does not divide a rack count evenly.
    pub fn expand(&self) -> Result<Vec<TopologyPoint>, String> {
        if self.rack_size == 0 || self.racks.contains(&0) {
            return Err("rack counts and rack size must be positive".to_string());
        }
        let mut out = Vec::with_capacity(self.racks.len());
        for &racks in &self.racks {
            let fanouts = if self.zones > 0 {
                if !racks.is_multiple_of(self.zones) {
                    return Err(format!(
                        "zone fan-out {} does not divide rack count {racks}",
                        self.zones
                    ));
                }
                vec![self.zones, racks / self.zones, self.rack_size]
            } else {
                vec![racks, self.rack_size]
            };
            let layout = wcp_sim::topo::TopoSpec {
                seed_index: self.seed_index,
                ..wcp_sim::topo::TopoSpec::new(format!("{}-{racks}", self.label), fanouts)
            }
            .with_jitter(self.jitter)
            .generate();
            let topology = Topology::new(layout.n, layout.maps).map_err(|e| e.to_string())?;
            out.push(TopologyPoint {
                racks,
                zones: self.zones,
                topology,
            });
        }
        Ok(out)
    }
}

/// One generated point of a [`TopologyAxis`]: the tree plus the axis
/// coordinates it came from (for reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyPoint {
    /// Rack count this point was generated for.
    pub racks: u16,
    /// Zone fan-out of the axis (`0` = no zone level).
    pub zones: u16,
    /// The failure-domain tree.
    pub topology: Topology,
}

/// A declarative sweep: parameter grids times strategies times
/// adversaries, plus fully explicit cells for irregular shapes.
///
/// # Examples
///
/// ```
/// use wcp_core::sweep::{SweepOptions, SweepSpec};
/// use wcp_core::{Engine, StrategyKind};
///
/// let mut spec = SweepSpec::new("doc");
/// spec.grid.n = vec![13];
/// spec.grid.b = vec![26, 52];
/// spec.grid.r = vec![3];
/// spec.grid.s = vec![2];
/// spec.grid.k = vec![3];
/// spec.strategies = vec![StrategyKind::Combo, StrategyKind::Ring];
/// let records = Engine::sweep(&spec, &SweepOptions::default());
/// assert_eq!(records.len(), 4); // 2 b-values × 2 strategies
/// assert!(records.iter().all(|r| r.outcome.is_ok()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Label mixed into every per-cell seed (see [`wcp_sim::seed_for`]).
    pub label: String,
    /// Cartesian parameter grid.
    pub grid: ParamGrid,
    /// Parameter points appended verbatim after the grid expansion.
    pub explicit_params: Vec<SystemParams>,
    /// Strategy kinds evaluated at every parameter point.
    pub strategies: Vec<StrategyKind>,
    /// Adversaries evaluated for every `(params, strategy)` pair.
    pub adversaries: Vec<AdversarySpec>,
    /// Fully explicit cells appended after the grid-generated ones
    /// (irregular shapes such as per-draw random seeds).
    pub explicit_cells: Vec<(SystemParams, StrategyKind, AdversarySpec)>,
    /// Optional rack/zone fan-out axis. When set, grid cells are
    /// enumerated per topology point (outermost) with `n` taken from
    /// each generated tree — the grid's `n` list is ignored — and every
    /// grid cell carries its [`TopologyPoint`]. An axis that fails to
    /// expand (see [`TopologyAxis::expand`]) contributes no cells;
    /// validate it up front when the error message matters.
    pub topology: Option<TopologyAxis>,
}

impl SweepSpec {
    /// An empty spec with the default [`AdversarySpec`] and no grid.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            grid: ParamGrid::default(),
            explicit_params: Vec::new(),
            strategies: Vec::new(),
            adversaries: vec![AdversarySpec::default()],
            explicit_cells: Vec::new(),
            topology: None,
        }
    }

    /// Enumerates the sweep's cells in their canonical order: grid
    /// parameters (topology points outermost when an axis is set, then
    /// explicit parameters) × strategies × adversaries, followed by the
    /// explicit cells. Each cell's seed is `seed_for(label, index)`.
    #[must_use]
    pub fn cells(&self) -> Vec<SweepCell> {
        // Parameter points, each optionally pinned to a topology. With
        // an axis, `n` comes from each generated tree and the grid
        // contributes only (b, r, s, k); invalid combinations are
        // skipped exactly as in `ParamGrid::expand`.
        let mut params: Vec<(SystemParams, Option<TopologyPoint>)> = Vec::new();
        match self.topology.as_ref().map(TopologyAxis::expand) {
            Some(Ok(points)) => {
                for point in points {
                    let n = point.topology.num_nodes();
                    for &b in &self.grid.b {
                        for &r in &self.grid.r {
                            for &s in &self.grid.s {
                                for &k in &self.grid.k {
                                    if let Ok(p) = SystemParams::new(n, b, r, s, k) {
                                        params.push((p, Some(point.clone())));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Some(Err(_)) => {}
            None => params.extend(self.grid.expand().into_iter().map(|p| (p, None))),
        }
        params.extend(self.explicit_params.iter().map(|&p| (p, None)));
        let mut cells = Vec::new();
        for (p, point) in &params {
            for kind in &self.strategies {
                for adversary in &self.adversaries {
                    cells.push((*p, kind.clone(), adversary.clone(), point.clone()));
                }
            }
        }
        cells.extend(
            self.explicit_cells
                .iter()
                .map(|(p, kind, adversary)| (*p, kind.clone(), adversary.clone(), None)),
        );
        cells
            .into_iter()
            .enumerate()
            .map(|(index, (params, kind, adversary, topology))| SweepCell {
                index,
                seed: wcp_sim::seed_for(&self.label, index as u64),
                params,
                kind,
                adversary,
                topology,
            })
            .collect()
    }
}

/// One fully resolved configuration of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in the spec's canonical enumeration.
    pub index: usize,
    /// The system parameters.
    pub params: SystemParams,
    /// The strategy to plan and build.
    pub kind: StrategyKind,
    /// The adversary to attack with.
    pub adversary: AdversarySpec,
    /// Stable per-cell seed (`seed_for(spec.label, index)`), for
    /// heuristic adversaries and any other cell-local randomness.
    pub seed: u64,
    /// The cell's failure-domain tree when the spec carries a
    /// [`TopologyAxis`]; planning uses it as the planner context's
    /// topology.
    pub topology: Option<TopologyPoint>,
}

/// The outcome of one sweep cell: the full [`EvaluationReport`], or the
/// error that stopped the pipeline (e.g. a packing slot that is not
/// constructible at the cell's parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// The evaluated cell.
    pub cell: SweepCell,
    /// Report, or a rendered [`crate::PlacementError`].
    pub outcome: Result<EvaluationReport, String>,
}

impl SweepRecord {
    /// Renders the record as one JSON object (jsonl-friendly), in the
    /// workspace-wide [`wcp_sim::record::Record`] envelope that
    /// `wcp-verify` parses.
    #[must_use]
    pub fn to_json(&self) -> String {
        use wcp_sim::json::Value;
        use wcp_sim::record::Record;
        let mut record = Record::new("sweep")
            .strategy(self.cell.kind.label())
            .spec(self.cell.kind.spec())
            .adversary(self.cell.adversary.label())
            .extra_u64("index", self.cell.index as u64)
            .extra_u64("seed", self.cell.seed);
        // The topology key appears only for axis cells, so sweeps
        // without an axis stay as terse as plain-grid ones.
        if let Some(t) = &self.cell.topology {
            record = record.topology(Value::Object(vec![
                ("racks".into(), Value::Num(f64::from(t.racks))),
                ("zones".into(), Value::Num(f64::from(t.zones))),
            ]));
        }
        match &self.outcome {
            // A report that fails to re-parse as JSON would be a core
            // bug; surface it as an error record rather than panicking
            // (this module is in the panic-discipline lint scope).
            Ok(report) => match record.clone().report_json(&report.to_json()) {
                Ok(with_report) => with_report.to_json(),
                Err(e) => record.error(format!("unrenderable report: {e}")).to_json(),
            },
            Err(e) => record
                .extra(
                    "params",
                    Value::Object(vec![
                        ("n".into(), Value::Num(f64::from(self.cell.params.n()))),
                        ("b".into(), Value::Num(self.cell.params.b() as f64)),
                        ("r".into(), Value::Num(f64::from(self.cell.params.r()))),
                        ("s".into(), Value::Num(f64::from(self.cell.params.s()))),
                        ("k".into(), Value::Num(f64::from(self.cell.params.k()))),
                    ]),
                )
                .error(e.clone())
                .to_json(),
        }
    }
}

/// Execution knobs of a sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` (the default) defers to the ambient
    /// [`Parallelism`](crate::Parallelism) configuration — the
    /// `WCP_THREADS` environment override, else all available cores.
    pub threads: usize,
    /// Keep wall-clock timings in the reports. Off by default so that
    /// repeated runs — serial or parallel — produce byte-identical
    /// records.
    pub record_timings: bool,
    /// Planner context shared by every cell.
    pub ctx: PlannerContext,
}

impl SweepOptions {
    /// The resolved worker count: `threads`, or the ambient
    /// [`Parallelism`](crate::Parallelism) (`WCP_THREADS`, else all
    /// available cores). Records are byte-identical either way.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        crate::Parallelism::from_env().threads()
    }
}

/// Per-worker adversary state for a sweep.
///
/// One instance is created per worker thread and handed every cell that
/// worker claims, so implementations can keep scratch buffers (failure
/// counters, inverted indices) alive across cells instead of
/// reallocating per evaluation.
pub trait CellAttacker {
    /// Finds (an approximation of) the worst `k`-node failure set for
    /// one cell's placement.
    fn attack_cell(
        &mut self,
        cell: &SweepCell,
        placement: &crate::Placement,
        s: u16,
        k: u16,
    ) -> AttackOutcome;
}

/// The built-in per-worker attacker: resolves every [`AdversarySpec`]
/// to the engine's [`ExhaustiveAttacker`] (an [`AdversarySpec::Auto`]
/// cell uses its `exact_budget` as the subset budget).
#[derive(Debug, Clone, Default)]
pub struct DefaultCellAttacker;

impl CellAttacker for DefaultCellAttacker {
    fn attack_cell(
        &mut self,
        cell: &SweepCell,
        placement: &crate::Placement,
        s: u16,
        k: u16,
    ) -> AttackOutcome {
        let budget = match cell.adversary {
            AdversarySpec::Exhaustive { budget } => budget,
            AdversarySpec::Auto { exact_budget, .. } => exact_budget,
        };
        ExhaustiveAttacker { budget }.attack(placement, s, k)
    }
}

/// Runs one cell through plan → build → attack → report with a
/// per-worker attacker.
fn evaluate_cell<C: CellAttacker>(
    cell: &SweepCell,
    opts: &SweepOptions,
    attacker: &mut C,
) -> SweepRecord {
    let outcome = (|| {
        // lint:allow(determinism, wall-clock timings are telemetry; zeroed unless requested and never feed a decision)
        let t = Instant::now();
        // An axis cell plans against its own tree; the shared context
        // supplies everything else.
        let cell_ctx = cell.topology.as_ref().map(|point| PlannerContext {
            topology: Some(point.topology.clone()),
            ..opts.ctx.clone()
        });
        let strategy = cell
            .kind
            .plan(&cell.params, cell_ctx.as_ref().unwrap_or(&opts.ctx))
            .map_err(|e| e.to_string())?;
        let plan_ns = t.elapsed().as_nanos() as u64;
        // lint:allow(determinism, wall-clock timings are telemetry; zeroed unless requested and never feed a decision)
        let t = Instant::now();
        let placement = strategy.build(&cell.params).map_err(|e| e.to_string())?;
        let build_ns = t.elapsed().as_nanos() as u64;
        if placement.num_objects() as u64 != cell.params.b() {
            return Err(format!(
                "strategy '{}' built {} objects, expected {}",
                strategy.name(),
                placement.num_objects(),
                cell.params.b()
            ));
        }
        // lint:allow(determinism, wall-clock timings are telemetry; zeroed unless requested and never feed a decision)
        let t = Instant::now();
        let outcome = attacker.attack_cell(cell, &placement, cell.params.s(), cell.params.k());
        let attack_ns = t.elapsed().as_nanos() as u64;
        Ok(EvaluationReport {
            strategy: strategy.name().to_string(),
            params: cell.params,
            lower_bound: strategy.lower_bound(&cell.params),
            measured_availability: cell.params.b() - outcome.failed,
            worst_failed: outcome.failed,
            witness: outcome.nodes,
            exact: outcome.exact,
            load_stats: LoadStats::of(&placement),
            timings: if opts.record_timings {
                Timings {
                    plan_ns,
                    build_ns,
                    attack_ns,
                }
            } else {
                Timings::default()
            },
            certificate: outcome.certificate,
        })
    })();
    SweepRecord {
        cell: cell.clone(),
        outcome,
    }
}

/// Fans `count` index-addressed tasks across `threads` workers with
/// work-stealing chunk claiming, returning the results in index order.
///
/// This is the one threading primitive of the workspace: the sweep, the
/// parallel adversary ladder and any future fan-out all go through it.
/// Each worker builds its own state once via `make` (scratch buffers
/// survive across the tasks that worker claims), claims indices in
/// chunks off a shared atomic cursor (dynamic work stealing — cheap
/// tasks don't leave a thread idle behind an expensive one), and writes
/// results back by index — so the returned vector is identical for any
/// thread count whenever `work(state, i)` is a pure function of `i`.
///
/// `threads` is clamped to `1..=count`; `threads == 1` runs inline on
/// the calling thread with no pool at all.
pub fn run_indexed<S, T, F, W>(count: usize, threads: usize, make: F, work: W) -> Vec<T>
where
    T: Send,
    F: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.min(count).max(1);
    if threads == 1 {
        let mut state = make();
        return (0..count).map(|index| work(&mut state, index)).collect();
    }
    // Chunked claiming: big enough to amortize the atomic, small enough
    // that stragglers still get stolen from.
    let chunk = (count / (threads * 8)).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = make();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    let end = (start + chunk).min(count);
                    for (index, slot) in (start..end).zip(&slots[start..end]) {
                        let result = work(&mut state, index);
                        *slot.lock().expect("no worker panics holding the slot") = Some(result);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panics holding the slot")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

/// Evaluates every cell of `spec` across worker threads, with one
/// [`CellAttacker`] built per worker by `make`.
///
/// Workers claim cells via [`run_indexed`] and write records back by
/// cell index, so the returned vector is in canonical cell order
/// regardless of scheduling.
pub fn sweep_with<C, F>(spec: &SweepSpec, opts: &SweepOptions, make: F) -> Vec<SweepRecord>
where
    C: CellAttacker,
    F: Fn() -> C + Sync,
{
    let cells = spec.cells();
    run_indexed(
        cells.len(),
        opts.effective_threads(),
        make,
        |attacker, index| evaluate_cell(&cells[index], opts, attacker),
    )
}

impl Engine<ExhaustiveAttacker> {
    /// Evaluates a whole [`SweepSpec`] in parallel with the built-in
    /// attacker ([`DefaultCellAttacker`]); see [`sweep_with`] to plug in
    /// the `wcp-adversary` ladder.
    ///
    /// Deterministic: the records are byte-identical for any thread
    /// count (timings are zeroed unless
    /// [`SweepOptions::record_timings`]).
    #[must_use]
    pub fn sweep(spec: &SweepSpec, opts: &SweepOptions) -> Vec<SweepRecord> {
        sweep_with(spec, opts, || DefaultCellAttacker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("test-sweep");
        spec.grid.n = vec![10, 13];
        spec.grid.b = vec![26];
        spec.grid.r = vec![3];
        spec.grid.s = vec![2, 3];
        spec.grid.k = vec![2, 3];
        spec.strategies = vec![StrategyKind::Ring, StrategyKind::Group];
        spec.adversaries = vec![AdversarySpec::Exhaustive { budget: 1_000_000 }];
        spec
    }

    #[test]
    fn grid_skips_invalid_combinations() {
        let spec = small_spec();
        let cells = spec.cells();
        // Per n: (s=2, k∈{2,3}) valid, (s=3, k=3) valid, (s=3, k=2)
        // invalid (k < s) → 3 params × 2 strategies.
        assert_eq!(cells.len(), 2 * 3 * 2);
        assert!(cells.iter().all(|c| c.params.k() >= c.params.s()));
    }

    #[test]
    fn cell_indices_and_seeds_are_canonical() {
        let cells = small_spec().cells();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, wcp_sim::seed_for("test-sweep", i as u64));
        }
    }

    #[test]
    fn explicit_cells_follow_grid_cells() {
        let mut spec = small_spec();
        let p = SystemParams::new(9, 18, 3, 2, 3).unwrap();
        spec.explicit_cells
            .push((p, StrategyKind::Combo, AdversarySpec::default()));
        let cells = spec.cells();
        let last = cells.last().unwrap();
        assert_eq!(last.params, p);
        assert_eq!(last.kind, StrategyKind::Combo);
        assert_eq!(last.index, cells.len() - 1);
    }

    #[test]
    fn parallel_equals_serial() {
        let spec = small_spec();
        let serial = Engine::sweep(
            &spec,
            &SweepOptions {
                threads: 1,
                ..SweepOptions::default()
            },
        );
        let parallel = Engine::sweep(
            &spec,
            &SweepOptions {
                threads: 4,
                ..SweepOptions::default()
            },
        );
        assert_eq!(serial, parallel);
        let serial_json: Vec<String> = serial.iter().map(SweepRecord::to_json).collect();
        let parallel_json: Vec<String> = parallel.iter().map(SweepRecord::to_json).collect();
        assert_eq!(serial_json, parallel_json);
    }

    #[test]
    fn failed_cells_report_errors_not_panics() {
        let mut spec = SweepSpec::new("err");
        // Simple(x=2) needs x < s = 2 → every cell errors.
        spec.explicit_params = vec![SystemParams::new(13, 26, 3, 2, 3).unwrap()];
        spec.strategies = vec![StrategyKind::Simple { x: 2 }];
        let records = Engine::sweep(&spec, &SweepOptions::default());
        assert_eq!(records.len(), 1);
        let err = records[0].outcome.as_ref().unwrap_err();
        assert!(err.contains("invalid parameters"), "{err}");
        assert!(records[0].to_json().contains("\"error\""));
    }

    #[test]
    fn timings_zeroed_by_default_and_kept_on_request() {
        let mut spec = SweepSpec::new("t");
        spec.explicit_params = vec![SystemParams::new(13, 26, 3, 2, 3).unwrap()];
        spec.strategies = vec![StrategyKind::Ring];
        let plain = Engine::sweep(&spec, &SweepOptions::default());
        assert_eq!(
            plain[0].outcome.as_ref().unwrap().timings,
            Timings::default()
        );
        let timed = Engine::sweep(
            &spec,
            &SweepOptions {
                record_timings: true,
                ..SweepOptions::default()
            },
        );
        assert!(timed[0].outcome.as_ref().unwrap().timings.build_ns > 0);
    }

    #[test]
    fn topology_axis_expands_deterministically() {
        let axis = TopologyAxis::new("ax", vec![3, 4], 5);
        let points = axis.expand().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].racks, 3);
        assert_eq!(points[0].topology.num_nodes(), 15);
        assert_eq!(points[1].topology.num_nodes(), 20);
        assert_eq!(axis.expand().unwrap(), points);
    }

    #[test]
    fn topology_axis_rejects_bad_shapes() {
        let mut axis = TopologyAxis::new("ax", vec![3], 0);
        assert!(axis.expand().is_err());
        axis.rack_size = 4;
        axis.zones = 2;
        assert!(axis.expand().unwrap_err().contains("does not divide"));
        axis.racks = vec![4];
        // Two parent maps: node → rack and rack → zone.
        assert_eq!(axis.expand().unwrap()[0].topology.num_levels(), 2);
    }

    #[test]
    fn axis_cells_carry_their_topology_and_derive_n() {
        let mut spec = SweepSpec::new("topo-sweep");
        spec.topology = Some(TopologyAxis::new("topo-sweep", vec![3, 4], 4));
        // grid.n is ignored under an axis — an absurd value proves it.
        spec.grid.n = vec![9999];
        spec.grid.b = vec![24];
        spec.grid.r = vec![3];
        spec.grid.s = vec![2];
        spec.grid.k = vec![2];
        spec.strategies = vec![StrategyKind::Ring, StrategyKind::Combo];
        spec.adversaries = vec![AdversarySpec::Exhaustive { budget: 100_000 }];
        let cells = spec.cells();
        // 2 topology points (outermost) × 2 strategies.
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].params.n(), 12);
        assert_eq!(cells[2].params.n(), 16);
        for cell in &cells {
            let point = cell.topology.as_ref().unwrap();
            assert_eq!(point.topology.num_nodes(), cell.params.n());
        }
        // The sweep plans each cell against its own tree; the records
        // embed the axis coordinates.
        let records = Engine::sweep(&spec, &SweepOptions::default());
        assert!(records.iter().all(|r| r.outcome.is_ok()));
        assert!(records[0].to_json().contains("\"topology\": {\"racks\": 3"));
    }

    #[test]
    fn sweep_matches_engine_evaluate() {
        let p = SystemParams::new(13, 26, 3, 2, 3).unwrap();
        let mut spec = SweepSpec::new("x");
        spec.explicit_params = vec![p];
        spec.strategies = vec![StrategyKind::Combo];
        spec.adversaries = vec![AdversarySpec::Exhaustive { budget: 2_000_000 }];
        let record = &Engine::sweep(&spec, &SweepOptions::default())[0];
        let report = record.outcome.as_ref().unwrap();
        let direct = Engine::new(p).evaluate(&StrategyKind::Combo).unwrap();
        assert_eq!(report.measured_availability, direct.measured_availability);
        assert_eq!(report.lower_bound, direct.lower_bound);
        assert_eq!(report.witness, direct.witness);
    }
}
