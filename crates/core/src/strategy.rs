//! The unified [`PlacementStrategy`] abstraction.
//!
//! The paper's whole point is comparing placement strategies —
//! `Simple(x, λ)`, `Combo(⟨λ_x⟩)`, load-balanced `Random`, and naive
//! baselines — under one worst-case availability metric (Definition 1).
//! This module gives every strategy family one API:
//!
//! * [`PlacementStrategy`] — an object-safe trait over *planned*
//!   strategies: a [`name`](PlacementStrategy::name), an availability
//!   [`lower_bound`](PlacementStrategy::lower_bound), and a
//!   [`build`](PlacementStrategy::build) that materializes a
//!   [`Placement`]. Implemented by [`SimpleStrategy`], [`ComboStrategy`],
//!   [`RandomStrategy`], the ring/group baselines
//!   ([`crate::RingStrategy`], [`crate::GroupStrategy`]) and adaptive
//!   snapshots ([`crate::AdaptiveSnapshot`]);
//! * [`StrategyKind`] — a declarative registry of the strategy families,
//!   whose [`plan`](StrategyKind::plan) turns `(params, context)` into a
//!   boxed [`PlacementStrategy`];
//! * [`PlannerContext`] — the planning-time knobs shared by every
//!   family (design registry configuration, adaptive re-plan threshold).
//!
//! The [`crate::engine`] module drives the full plan → build → attack →
//! report pipeline on top of this trait.

use crate::adaptive::AdaptiveSnapshot;
use crate::baselines::{GroupStrategy, RingStrategy};
use crate::topology::{DomainSpreadStrategy, Topology};
use crate::{
    ComboStrategy, Placement, PlacementError, RandomStrategy, RandomVariant, SimpleStrategy,
    SystemParams,
};
use wcp_designs::registry::RegistryConfig;

/// A planned replica-placement strategy, ready to materialize and to
/// state its worst-case availability guarantee.
///
/// The trait is object safe; heterogeneous collections of strategies
/// (`Vec<Box<dyn PlacementStrategy>>`) are the intended use, see
/// [`StrategyKind::plan`].
pub trait PlacementStrategy {
    /// Human-readable strategy identifier (stable enough for reports and
    /// benchmark ids).
    fn name(&self) -> &str;

    /// The availability the strategy *guarantees* under the worst
    /// `params.k()` node failures (Lemmas 2–3 for the packing
    /// strategies; exact closed forms for the baselines; 0 — the vacuous
    /// bound — for strategies with only probabilistic guarantees).
    ///
    /// May be negative when the formula's penalty exceeds `b` (the paper
    /// plots such vacuous bounds in Fig. 10).
    fn lower_bound(&self, params: &SystemParams) -> i64;

    /// Materializes the placement for `params.b()` objects.
    ///
    /// # Errors
    ///
    /// [`PlacementError`] when the strategy cannot host `params.b()`
    /// objects or a backing design cannot be materialized.
    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError>;
}

/// Planning-time configuration shared by every strategy family.
#[derive(Debug, Clone)]
pub struct PlannerContext {
    /// Configuration of the constructive design registry.
    pub registry: RegistryConfig,
    /// Tolerated relative regret before an adaptive placer asks for a
    /// re-plan (see [`crate::adaptive::AdaptivePlacer::new`]).
    pub replan_threshold: f64,
    /// The failure-domain tree topology-aware strategies plan against.
    /// `None` — or a topology sized for a different node count than the
    /// planned parameters (e.g. a dynamic replan at churned membership)
    /// — falls back to the flat topology, which reproduces the
    /// topology-oblivious behavior exactly.
    pub topology: Option<Topology>,
}

impl Default for PlannerContext {
    fn default() -> Self {
        Self {
            registry: RegistryConfig::default(),
            replan_threshold: 0.05,
            topology: None,
        }
    }
}

/// The registry of strategy families, i.e. *how to obtain* a
/// [`PlacementStrategy`] for given parameters.
///
/// # Examples
///
/// ```
/// use wcp_core::{PlannerContext, StrategyKind, SystemParams};
///
/// let params = SystemParams::new(71, 600, 3, 2, 3)?;
/// let strategy = StrategyKind::Combo.plan(&params, &PlannerContext::default())?;
/// assert_eq!(strategy.name(), "combo");
/// assert!(strategy.lower_bound(&params) > 500);
/// assert_eq!(strategy.build(&params)?.num_objects(), 600);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyKind {
    /// `Simple(x, λ)` (Definition 2) with minimal `λ`, constructively
    /// backed.
    Simple {
        /// The overlap bound `x < s`.
        x: u16,
    },
    /// `Combo(⟨λ_x⟩)` (Definition 3) planned by the DP of Sec. III-B1.
    Combo,
    /// Load-balanced random placement (Definition 4) or one of its
    /// variants.
    Random {
        /// RNG seed (placements are deterministic given seed and
        /// parameters).
        seed: u64,
        /// The sampling process.
        variant: RandomVariant,
    },
    /// Chained declustering: object `i` on `r` consecutive nodes.
    Ring,
    /// Disjoint replica groups (copyset-style).
    Group,
    /// Snapshot of an [`crate::adaptive::AdaptivePlacer`] filled with
    /// `params.b()` objects.
    Adaptive,
    /// Topology-aware spread: each object's replicas in maximally
    /// separated failure domains ([`DomainSpreadStrategy`], planned
    /// against [`PlannerContext::topology`]).
    DomainSpread,
}

impl StrategyKind {
    /// One representative of every strategy family, for conformance
    /// sweeps and apples-to-apples benchmarks: `Simple(x)` for each
    /// `x < s`, Combo, load-balanced Random, ring, group, and the
    /// adaptive snapshot.
    #[must_use]
    pub fn all(params: &SystemParams) -> Vec<StrategyKind> {
        let mut kinds: Vec<StrategyKind> = (0..params.s())
            .map(|x| StrategyKind::Simple { x })
            .collect();
        kinds.extend([
            StrategyKind::Combo,
            StrategyKind::Random {
                seed: 0x5eed,
                variant: RandomVariant::LoadBalanced,
            },
            StrategyKind::Ring,
            StrategyKind::Group,
            StrategyKind::Adaptive,
            StrategyKind::DomainSpread,
        ]);
        kinds
    }

    /// The kind's display label (matches the planned strategy's
    /// [`PlacementStrategy::name`] up to planned details such as `λ`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Simple { x } => format!("simple(x={x})"),
            StrategyKind::Combo => "combo".into(),
            StrategyKind::Random { variant, .. } => variant.label().into(),
            StrategyKind::Ring => "ring".into(),
            StrategyKind::Group => "group".into(),
            StrategyKind::Adaptive => "adaptive".into(),
            StrategyKind::DomainSpread => "domain-spread".into(),
        }
    }

    /// Parses a compact spec string, the format sweep specs and CLI
    /// flags use: `combo`, `ring`, `group`, `adaptive`, `domain-spread`,
    /// `simple:<x>`, `random[:<seed>]` (load-balanced),
    /// `random-seq[:<seed>]`, `random-unc[:<seed>]`. The default seed is
    /// `0x5eed`.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] on unknown names or malformed
    /// numeric suffixes.
    ///
    /// # Examples
    ///
    /// ```
    /// use wcp_core::StrategyKind;
    ///
    /// assert_eq!(StrategyKind::parse_spec("combo")?, StrategyKind::Combo);
    /// assert_eq!(
    ///     StrategyKind::parse_spec("simple:1")?,
    ///     StrategyKind::Simple { x: 1 }
    /// );
    /// assert!(StrategyKind::parse_spec("frobnicate").is_err());
    /// # Ok::<(), wcp_core::PlacementError>(())
    /// ```
    pub fn parse_spec(spec: &str) -> Result<StrategyKind, PlacementError> {
        let bad = |msg: String| PlacementError::InvalidParams(msg);
        let (name, arg) = match spec.split_once(':') {
            Some((name, arg)) => (name, Some(arg)),
            None => (spec, None),
        };
        let seed = |arg: Option<&str>| -> Result<u64, PlacementError> {
            arg.map_or(Ok(0x5eed), |a| {
                a.parse()
                    .map_err(|_| bad(format!("invalid seed '{a}' in strategy spec '{spec}'")))
            })
        };
        match name {
            "combo" => Ok(StrategyKind::Combo),
            "ring" => Ok(StrategyKind::Ring),
            "group" => Ok(StrategyKind::Group),
            "adaptive" => Ok(StrategyKind::Adaptive),
            "domain-spread" => Ok(StrategyKind::DomainSpread),
            "simple" => {
                let arg = arg.ok_or_else(|| bad(format!("'{spec}' needs an x: simple:<x>")))?;
                let x = arg
                    .parse()
                    .map_err(|_| bad(format!("invalid x '{arg}' in strategy spec '{spec}'")))?;
                Ok(StrategyKind::Simple { x })
            }
            "random" => Ok(StrategyKind::Random {
                seed: seed(arg)?,
                variant: RandomVariant::LoadBalanced,
            }),
            "random-seq" => Ok(StrategyKind::Random {
                seed: seed(arg)?,
                variant: RandomVariant::SequentialUniform,
            }),
            "random-unc" => Ok(StrategyKind::Random {
                seed: seed(arg)?,
                variant: RandomVariant::Unconstrained,
            }),
            _ => Err(bad(format!(
                "unknown strategy spec '{spec}' (expected combo, ring, group, adaptive, \
                 domain-spread, simple:<x>, random[:<seed>], random-seq[:<seed>] or \
                 random-unc[:<seed>])"
            ))),
        }
    }

    /// The kind's spec string: the exact inverse of
    /// [`parse_spec`](Self::parse_spec), so a kind survives a
    /// round-trip through persisted records (unlike
    /// [`label`](Self::label), which drops the random seed). Sweep
    /// JSONL records carry it so `wcp-verify` can rebuild the cell's
    /// placement when re-checking its certificate.
    ///
    /// # Examples
    ///
    /// ```
    /// use wcp_core::{RandomVariant, StrategyKind};
    ///
    /// let kind = StrategyKind::Random {
    ///     seed: 7,
    ///     variant: RandomVariant::SequentialUniform,
    /// };
    /// assert_eq!(kind.spec(), "random-seq:7");
    /// assert_eq!(StrategyKind::parse_spec(&kind.spec()).unwrap(), kind);
    /// ```
    #[must_use]
    pub fn spec(&self) -> String {
        match self {
            StrategyKind::Simple { x } => format!("simple:{x}"),
            StrategyKind::Combo => "combo".into(),
            StrategyKind::Random { seed, variant } => {
                let name = match variant {
                    RandomVariant::LoadBalanced => "random",
                    RandomVariant::SequentialUniform => "random-seq",
                    RandomVariant::Unconstrained => "random-unc",
                };
                format!("{name}:{seed}")
            }
            StrategyKind::Ring => "ring".into(),
            StrategyKind::Group => "group".into(),
            StrategyKind::Adaptive => "adaptive".into(),
            StrategyKind::DomainSpread => "domain-spread".into(),
        }
    }

    /// Plans this kind for `params`, returning the unified strategy
    /// object.
    ///
    /// # Errors
    ///
    /// [`PlacementError::Design`] when a packing slot is not
    /// constructible at these parameters; [`PlacementError::InvalidParams`]
    /// for kind/parameter mismatches (e.g. `Simple { x ≥ s }`).
    pub fn plan(
        &self,
        params: &SystemParams,
        ctx: &PlannerContext,
    ) -> Result<Box<dyn PlacementStrategy>, PlacementError> {
        Ok(match self {
            StrategyKind::Simple { x } => Box::new(SimpleStrategy::plan_constructive(
                *x,
                params,
                &ctx.registry,
            )?),
            StrategyKind::Combo => {
                Box::new(ComboStrategy::plan_constructive(params, &ctx.registry)?)
            }
            StrategyKind::Random { seed, variant } => {
                Box::new(RandomStrategy::new(*seed, *variant))
            }
            StrategyKind::Ring => Box::new(RingStrategy),
            StrategyKind::Group => Box::new(GroupStrategy),
            StrategyKind::Adaptive => Box::new(AdaptiveSnapshot::plan(
                params,
                &ctx.registry,
                ctx.replan_threshold,
            )?),
            StrategyKind::DomainSpread => {
                let topology = ctx
                    .topology
                    .as_ref()
                    .filter(|t| t.num_nodes() == params.n())
                    .cloned()
                    .unwrap_or_else(|| Topology::flat(params.n()));
                Box::new(DomainSpreadStrategy::new(topology))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u16, b: u64, r: u16, s: u16, k: u16) -> SystemParams {
        SystemParams::new(n, b, r, s, k).unwrap()
    }

    #[test]
    fn all_covers_every_family() {
        let p = params(31, 100, 3, 2, 3);
        let kinds = StrategyKind::all(&p);
        assert!(kinds.contains(&StrategyKind::Simple { x: 0 }));
        assert!(kinds.contains(&StrategyKind::Simple { x: 1 }));
        assert!(kinds.contains(&StrategyKind::Combo));
        assert!(kinds.contains(&StrategyKind::Ring));
        assert!(kinds.contains(&StrategyKind::Group));
        assert!(kinds.contains(&StrategyKind::Adaptive));
        assert!(kinds.contains(&StrategyKind::DomainSpread));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, StrategyKind::Random { .. })));
    }

    #[test]
    fn spec_round_trips_every_kind() {
        let p = params(31, 100, 3, 2, 3);
        let mut kinds = StrategyKind::all(&p);
        kinds.push(StrategyKind::Random {
            seed: 0xfeed_beef,
            variant: RandomVariant::Unconstrained,
        });
        kinds.push(StrategyKind::Random {
            seed: 42,
            variant: RandomVariant::SequentialUniform,
        });
        for kind in kinds {
            assert_eq!(
                StrategyKind::parse_spec(&kind.spec()).unwrap(),
                kind,
                "spec '{}' must round-trip",
                kind.spec()
            );
        }
    }

    #[test]
    fn every_kind_plans_and_builds_on_a_small_system() {
        let p = params(13, 26, 3, 2, 3);
        let ctx = PlannerContext::default();
        for kind in StrategyKind::all(&p) {
            let strategy = kind.plan(&p, &ctx).expect("plans");
            let placement = strategy.build(&p).expect("builds");
            assert_eq!(placement.num_objects(), 26, "{}", strategy.name());
            assert_eq!(placement.num_nodes(), 13, "{}", strategy.name());
        }
    }

    #[test]
    fn planned_names_are_distinct() {
        let p = params(13, 26, 3, 2, 3);
        let ctx = PlannerContext::default();
        let names: Vec<String> = StrategyKind::all(&p)
            .iter()
            .map(|k| k.plan(&p, &ctx).expect("plans").name().to_string())
            .collect();
        let distinct: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(distinct.len(), names.len(), "{names:?}");
    }

    #[test]
    fn spec_strings_round_trip() {
        for (spec, kind) in [
            ("combo", StrategyKind::Combo),
            ("ring", StrategyKind::Ring),
            ("group", StrategyKind::Group),
            ("adaptive", StrategyKind::Adaptive),
            ("domain-spread", StrategyKind::DomainSpread),
            ("simple:0", StrategyKind::Simple { x: 0 }),
            ("simple:2", StrategyKind::Simple { x: 2 }),
            (
                "random:7",
                StrategyKind::Random {
                    seed: 7,
                    variant: crate::RandomVariant::LoadBalanced,
                },
            ),
            (
                "random-seq",
                StrategyKind::Random {
                    seed: 0x5eed,
                    variant: crate::RandomVariant::SequentialUniform,
                },
            ),
            (
                "random-unc:3",
                StrategyKind::Random {
                    seed: 3,
                    variant: crate::RandomVariant::Unconstrained,
                },
            ),
        ] {
            assert_eq!(StrategyKind::parse_spec(spec).unwrap(), kind, "{spec}");
        }
        assert!(StrategyKind::parse_spec("simple").is_err());
        assert!(StrategyKind::parse_spec("simple:x").is_err());
        assert!(StrategyKind::parse_spec("random:notanumber").is_err());
        assert!(StrategyKind::parse_spec("bogus").is_err());
    }

    #[test]
    fn simple_x_out_of_range_rejected() {
        let p = params(13, 26, 3, 2, 3);
        assert!(StrategyKind::Simple { x: 2 }
            .plan(&p, &PlannerContext::default())
            .is_err());
    }

    #[test]
    fn trait_bound_matches_inherent_bounds() {
        let p = params(71, 900, 3, 2, 4);
        let ctx = PlannerContext::default();
        let combo = ComboStrategy::plan_constructive(&p, &ctx.registry).unwrap();
        assert_eq!(
            PlacementStrategy::lower_bound(&combo, &p),
            combo.lower_bound() as i64
        );
        let simple = SimpleStrategy::plan_constructive(1, &p, &ctx.registry).unwrap();
        assert_eq!(
            PlacementStrategy::lower_bound(&simple, &p),
            simple.lower_bound(p.b(), p.k(), p.s())
        );
    }
}
