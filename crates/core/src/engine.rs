//! The [`Engine`] facade: plan → build → attack → report in one call.
//!
//! Experiments, benchmarks and serving layers all want the same
//! pipeline: plan a strategy for some [`SystemParams`], materialize the
//! [`Placement`], subject it to a worst-case adversary, and collect the
//! guarantee, the measurement, the witness and the costs in one
//! serializable record. [`Engine::evaluate`] is that pipeline;
//! [`EvaluationReport`] is the record.
//!
//! The adversary is pluggable through the [`Attacker`] trait so this
//! crate stays free of a dependency cycle: `wcp-adversary` implements
//! [`Attacker`] for its `AdversaryConfig` (exact branch-and-bound with
//! heuristic fallback), while the built-in [`ExhaustiveAttacker`]
//! enumerates all `C(n, k)` failure sets when affordable and falls back
//! to deterministic probes (heaviest-loaded nodes, consecutive arcs)
//! otherwise.

use crate::certificate::Certificate;
use crate::strategy::{PlacementStrategy, PlannerContext, StrategyKind};
use crate::{Placement, PlacementError, SystemParams};
use std::time::Instant;
use wcp_combin::KSubsets;

/// The outcome of one adversary run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Objects failed by the chosen node set.
    pub failed: u64,
    /// The failing node set found (sorted, size `k`).
    pub nodes: Vec<u16>,
    /// Whether `failed` is provably the maximum.
    pub exact: bool,
    /// Independently checkable evidence for the claim (the adversary
    /// ladder emits one; probe attackers report `None`).
    pub certificate: Option<Certificate>,
}

/// A worst-case node-failure adversary (Definition 1 made pluggable).
///
/// Implementations *maximize* failed objects; a heuristic attacker can
/// only under-estimate the damage, i.e. over-estimate availability —
/// reports carry the [`AttackOutcome::exact`] flag for this reason.
pub trait Attacker {
    /// Finds (an approximation of) the worst set of `k` failed nodes.
    fn attack(&self, placement: &Placement, s: u16, k: u16) -> AttackOutcome;
}

/// The built-in attacker: exhaustive enumeration within a subset
/// budget, deterministic probes beyond it.
#[derive(Debug, Clone)]
pub struct ExhaustiveAttacker {
    /// Maximum number of `k`-subsets to enumerate exactly.
    pub budget: u64,
}

impl Default for ExhaustiveAttacker {
    fn default() -> Self {
        Self { budget: 2_000_000 }
    }
}

impl Attacker for ExhaustiveAttacker {
    fn attack(&self, placement: &Placement, s: u16, k: u16) -> AttackOutcome {
        let n = placement.num_nodes();
        assert!(k <= n, "k must be ≤ n");
        let space = wcp_combin::binomial(u64::from(n), u64::from(k)).unwrap_or(u128::MAX);
        if space <= u128::from(self.budget) {
            let mut best = AttackOutcome {
                failed: 0,
                nodes: (0..k).collect(),
                exact: true,
                certificate: None,
            };
            for subset in KSubsets::new(n, k) {
                let failed = placement.failed_objects(&subset, s);
                if failed > best.failed {
                    best.failed = failed;
                    best.nodes = subset;
                }
            }
            return best;
        }
        // Probe ladder: k heaviest-loaded nodes, then every k-arc of
        // consecutive nodes (strong against ring-like placements).
        let loads = placement.cached_loads();
        let mut by_load: Vec<u16> = (0..n).collect();
        by_load
            .sort_by_key(|&nd| std::cmp::Reverse(loads.get(usize::from(nd)).copied().unwrap_or(0)));
        let mut heavy: Vec<u16> = by_load.into_iter().take(usize::from(k)).collect();
        heavy.sort_unstable();
        let mut best = AttackOutcome {
            failed: placement.failed_objects(&heavy, s),
            nodes: heavy,
            exact: false,
            certificate: None,
        };
        for start in 0..n {
            // Widened arithmetic: start + j can exceed u16::MAX when
            // n + k > 65536.
            let mut arc: Vec<u16> = (0..k)
                .map(|j| ((u32::from(start) + u32::from(j)) % u32::from(n)) as u16)
                .collect();
            arc.sort_unstable();
            let failed = placement.failed_objects(&arc, s);
            if failed > best.failed {
                best.failed = failed;
                best.nodes = arc;
            }
        }
        best
    }
}

/// Per-node load statistics of a placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Minimum replicas on any node.
    pub min: u32,
    /// Maximum replicas on any node.
    pub max: u32,
    /// Mean replicas per node (`rb/n`).
    pub mean: f64,
}

impl LoadStats {
    /// Computes the statistics of a placement's node loads.
    #[must_use]
    pub fn of(placement: &Placement) -> Self {
        let loads = placement.cached_loads();
        let total: u64 = loads.iter().map(|&l| u64::from(l)).sum();
        Self {
            min: loads.iter().copied().min().unwrap_or(0),
            max: loads.iter().copied().max().unwrap_or(0),
            mean: total as f64 / loads.len().max(1) as f64,
        }
    }
}

/// Wall-clock cost of each pipeline stage, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Strategy planning (0 when a pre-planned strategy was supplied).
    pub plan_ns: u64,
    /// Placement materialization.
    pub build_ns: u64,
    /// Adversary search.
    pub attack_ns: u64,
}

/// The serializable outcome of one full pipeline run.
///
/// Serialization is the hand-rolled [`to_json`](Self::to_json) (the
/// build environment cannot fetch serde; the format is plain JSON and
/// stable).
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// The planned strategy's [`PlacementStrategy::name`].
    pub strategy: String,
    /// The evaluated system parameters.
    pub params: SystemParams,
    /// The strategy's claimed availability lower bound (possibly
    /// negative, i.e. vacuous).
    pub lower_bound: i64,
    /// Objects surviving the attacker's worst failure set.
    pub measured_availability: u64,
    /// Objects killed by that set (`b − measured_availability`).
    pub worst_failed: u64,
    /// The failing node set found.
    pub witness: Vec<u16>,
    /// Whether the attacker proved the worst case.
    pub exact: bool,
    /// Node-load statistics of the built placement.
    pub load_stats: LoadStats,
    /// Stage costs.
    pub timings: Timings,
    /// The attacker's availability certificate, when it emitted one.
    pub certificate: Option<Certificate>,
}

impl EvaluationReport {
    /// Renders the report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let witness: Vec<String> = self.witness.iter().map(u16::to_string).collect();
        format!(
            concat!(
                "{{\"strategy\": {:?}, ",
                "\"params\": {{\"n\": {}, \"b\": {}, \"r\": {}, \"s\": {}, \"k\": {}}}, ",
                "\"lower_bound\": {}, ",
                "\"measured_availability\": {}, ",
                "\"worst_failed\": {}, ",
                "\"witness\": [{}], ",
                "\"exact\": {}, ",
                "\"load_stats\": {{\"min\": {}, \"max\": {}, \"mean\": {:.3}}}, ",
                "\"timings_ns\": {{\"plan\": {}, \"build\": {}, \"attack\": {}}}, ",
                "\"certificate\": {}}}"
            ),
            self.strategy,
            self.params.n(),
            self.params.b(),
            self.params.r(),
            self.params.s(),
            self.params.k(),
            self.lower_bound,
            self.measured_availability,
            self.worst_failed,
            witness.join(", "),
            self.exact,
            self.load_stats.min,
            self.load_stats.max,
            self.load_stats.mean,
            self.timings.plan_ns,
            self.timings.build_ns,
            self.timings.attack_ns,
            self.certificate
                .as_ref()
                .map_or_else(|| "null".to_string(), Certificate::to_json),
        )
    }
}

/// The facade running plan → build → attack → report for any
/// [`StrategyKind`].
///
/// # Examples
///
/// ```
/// use wcp_core::{Engine, StrategyKind, SystemParams};
///
/// let params = SystemParams::new(13, 26, 3, 2, 3)?;
/// let engine = Engine::new(params);
/// let report = engine.evaluate(&StrategyKind::Combo)?;
/// assert!(report.exact); // C(13,3) is tiny — enumerated exhaustively
/// assert!(report.measured_availability as i64 >= report.lower_bound);
/// assert!(report.to_json().contains("\"strategy\": \"combo\""));
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine<A: Attacker = ExhaustiveAttacker> {
    params: SystemParams,
    ctx: PlannerContext,
    attacker: A,
}

impl Engine<ExhaustiveAttacker> {
    /// An engine with the built-in exhaustive/probing attacker.
    #[must_use]
    pub fn new(params: SystemParams) -> Self {
        Self::with_attacker(params, ExhaustiveAttacker::default())
    }
}

impl<A: Attacker> Engine<A> {
    /// An engine with a custom adversary (e.g.
    /// `wcp_adversary::AdversaryConfig`, which implements [`Attacker`]).
    #[must_use]
    pub fn with_attacker(params: SystemParams, attacker: A) -> Self {
        Self {
            params,
            ctx: PlannerContext::default(),
            attacker,
        }
    }

    /// Replaces the planner context.
    #[must_use]
    pub fn with_context(mut self, ctx: PlannerContext) -> Self {
        self.ctx = ctx;
        self
    }

    /// The evaluated parameters.
    #[must_use]
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The planner context in use.
    #[must_use]
    pub fn context(&self) -> &PlannerContext {
        &self.ctx
    }

    /// Runs the full pipeline for one strategy kind.
    ///
    /// # Errors
    ///
    /// Planning and build errors ([`PlacementError`]); also
    /// [`PlacementError::InvalidPlacement`] if a strategy materializes
    /// the wrong number of objects (a strategy bug the facade refuses to
    /// report around).
    pub fn evaluate(&self, kind: &StrategyKind) -> Result<EvaluationReport, PlacementError> {
        // lint:allow(determinism, wall-clock timings are telemetry; they never feed a decision)
        let t = Instant::now();
        let strategy = kind.plan(&self.params, &self.ctx)?;
        let plan_ns = t.elapsed().as_nanos() as u64;
        self.run(strategy.as_ref(), plan_ns)
    }

    /// Runs build → attack → report for an already planned strategy
    /// (`timings.plan_ns` is 0).
    ///
    /// # Errors
    ///
    /// Build errors, as for [`evaluate`](Self::evaluate).
    pub fn evaluate_strategy(
        &self,
        strategy: &dyn PlacementStrategy,
    ) -> Result<EvaluationReport, PlacementError> {
        self.run(strategy, 0)
    }

    /// Evaluates one representative of every strategy family
    /// ([`StrategyKind::all`]), skipping kinds whose packing slot is not
    /// constructible at these parameters.
    ///
    /// # Errors
    ///
    /// Propagates every error except [`PlacementError::Design`] (an
    /// unconstructible slot merely drops that kind from the sweep).
    pub fn evaluate_all(&self) -> Result<Vec<EvaluationReport>, PlacementError> {
        let mut reports = Vec::new();
        for kind in StrategyKind::all(&self.params) {
            match self.evaluate(&kind) {
                Ok(report) => reports.push(report),
                Err(PlacementError::Design(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(reports)
    }

    fn run(
        &self,
        strategy: &dyn PlacementStrategy,
        plan_ns: u64,
    ) -> Result<EvaluationReport, PlacementError> {
        // lint:allow(determinism, wall-clock timings are telemetry; they never feed a decision)
        let t = Instant::now();
        let placement = strategy.build(&self.params)?;
        let build_ns = t.elapsed().as_nanos() as u64;
        if placement.num_objects() as u64 != self.params.b() {
            return Err(PlacementError::InvalidPlacement(format!(
                "strategy '{}' built {} objects, expected {}",
                strategy.name(),
                placement.num_objects(),
                self.params.b()
            )));
        }
        // lint:allow(determinism, wall-clock timings are telemetry; they never feed a decision)
        let t = Instant::now();
        let outcome = self
            .attacker
            .attack(&placement, self.params.s(), self.params.k());
        let attack_ns = t.elapsed().as_nanos() as u64;
        Ok(EvaluationReport {
            strategy: strategy.name().to_string(),
            params: self.params,
            lower_bound: strategy.lower_bound(&self.params),
            measured_availability: self.params.b() - outcome.failed,
            worst_failed: outcome.failed,
            witness: outcome.nodes,
            exact: outcome.exact,
            load_stats: LoadStats::of(&placement),
            timings: Timings {
                plan_ns,
                build_ns,
                attack_ns,
            },
            certificate: outcome.certificate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomVariant;

    fn params(n: u16, b: u64, r: u16, s: u16, k: u16) -> SystemParams {
        SystemParams::new(n, b, r, s, k).unwrap()
    }

    #[test]
    fn exhaustive_attacker_matches_brute_force_semantics() {
        let p = params(10, 30, 3, 2, 3);
        let placement = StrategyKind::Ring
            .plan(&p, &PlannerContext::default())
            .unwrap()
            .build(&p)
            .unwrap();
        let wc = ExhaustiveAttacker::default().attack(&placement, 2, 3);
        assert!(wc.exact);
        assert_eq!(placement.failed_objects(&wc.nodes, 2), wc.failed);
        // k consecutive failures on a ring kill (b/n)·(k−s+1+min(r−s,n−k)).
        assert_eq!(wc.failed, 3 * (3 - 2 + 1 + 1));
    }

    #[test]
    fn probe_fallback_is_well_formed() {
        let p = params(64, 200, 3, 2, 8);
        let placement = StrategyKind::Random {
            seed: 1,
            variant: RandomVariant::LoadBalanced,
        }
        .plan(&p, &PlannerContext::default())
        .unwrap()
        .build(&p)
        .unwrap();
        let tight = ExhaustiveAttacker { budget: 10 };
        let wc = tight.attack(&placement, 2, 8);
        assert!(!wc.exact);
        assert_eq!(wc.nodes.len(), 8);
        assert_eq!(placement.failed_objects(&wc.nodes, 2), wc.failed);
    }

    #[test]
    fn evaluate_reports_are_consistent() {
        let p = params(13, 26, 3, 2, 3);
        let engine = Engine::new(p);
        for kind in StrategyKind::all(&p) {
            let report = engine.evaluate(&kind).expect("evaluates");
            assert_eq!(
                report.measured_availability + report.worst_failed,
                p.b(),
                "{}",
                report.strategy
            );
            assert!(report.exact, "{}", report.strategy);
            assert!(
                report.measured_availability as i64 >= report.lower_bound,
                "{}: measured {} < claimed {}",
                report.strategy,
                report.measured_availability,
                report.lower_bound
            );
            assert_eq!(report.witness.len(), usize::from(p.k()));
        }
    }

    #[test]
    fn evaluate_all_sweeps_every_family() {
        let p = params(13, 26, 3, 2, 3);
        let reports = Engine::new(p).evaluate_all().expect("sweep");
        let names: Vec<&str> = reports.iter().map(|r| r.strategy.as_str()).collect();
        for expected in [
            "combo",
            "ring",
            "group",
            "adaptive",
            "random(load-balanced)",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }
        assert!(names.iter().filter(|n| n.starts_with("simple")).count() >= 2);
    }

    #[test]
    fn json_is_syntactically_sound() {
        let p = params(13, 26, 3, 2, 3);
        let report = Engine::new(p).evaluate(&StrategyKind::Group).unwrap();
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"strategy\"",
            "\"params\"",
            "\"lower_bound\"",
            "\"measured_availability\"",
            "\"witness\"",
            "\"load_stats\"",
            "\"timings_ns\"",
        ] {
            assert!(json.contains(key), "{key} missing in {json}");
        }
    }
}
