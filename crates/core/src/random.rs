//! Random replica placement (Definition 4) and the unconstrained variant
//! `Random′` from the proof of Theorem 2.
//!
//! `Random` draws a placement that puts at most `⌈ℓ⌉ = ⌈rb/n⌉` replicas on
//! any node. Sampling exactly uniformly over that set is intractable; as
//! in prior empirical work we sample objects sequentially, choosing each
//! object's `r` distinct nodes weighted by remaining node capacity, and
//! restart on the (rare) dead ends. `Random′` drops the load cap — each
//! object picks `r` distinct nodes uniformly — which is the process
//! Theorem 2 analyzes (the two coincide as `ℓ → ∞`).

use crate::{Placement, PlacementError, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which sampling process to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomVariant {
    /// Definition 4 with capacity-weighted sampling: at most `⌈rb/n⌉`
    /// replicas per node, nodes drawn proportionally to remaining
    /// capacity (keeps the placement close to uniform over the capped
    /// set).
    LoadBalanced,
    /// Definition 4 with *unweighted* sequential sampling: each replica
    /// picks uniformly among nodes with remaining capacity. Near the end
    /// of a tight placement the few nodes with spare capacity attract all
    /// remaining objects, creating correlated hot spots — an artifact the
    /// paper's Fig. 7 error curves exhibit, so its reproduction offers
    /// this variant.
    SequentialUniform,
    /// `Random′` of Theorem 2: no load cap.
    Unconstrained,
}

impl RandomVariant {
    /// The variant's display name, shared by
    /// [`crate::PlacementStrategy::name`] and
    /// [`crate::StrategyKind::label`] so the two can never drift apart.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RandomVariant::LoadBalanced => "random(load-balanced)",
            RandomVariant::SequentialUniform => "random(sequential-uniform)",
            RandomVariant::Unconstrained => "random(unconstrained)",
        }
    }
}

/// A seeded random placement strategy.
///
/// # Examples
///
/// ```
/// use wcp_core::{RandomStrategy, RandomVariant, SystemParams};
///
/// let params = SystemParams::new(71, 600, 3, 2, 3)?;
/// let placement = RandomStrategy::new(7, RandomVariant::LoadBalanced).place(&params)?;
/// assert_eq!(placement.num_objects(), 600);
/// // Load cap: ⌈3·600/71⌉ = 26.
/// assert!(placement.max_load() <= 26);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    seed: u64,
    variant: RandomVariant,
}

impl RandomStrategy {
    /// Creates a strategy with the given RNG seed (placements are
    /// deterministic given seed and parameters).
    #[must_use]
    pub fn new(seed: u64, variant: RandomVariant) -> Self {
        Self { seed, variant }
    }

    /// The load cap `⌈rb/n⌉` of Definition 4 for these parameters.
    #[must_use]
    pub fn load_cap(params: &SystemParams) -> u32 {
        let total = u64::from(params.r()) * params.b();
        u32::try_from(total.div_ceil(u64::from(params.n()))).expect("load cap fits u32")
    }

    /// Draws a placement.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] only for degenerate inputs that
    /// [`SystemParams`] already rejects; sampling itself cannot fail (the
    /// load-balanced variant restarts on dead ends, and a deterministic
    /// round-robin fallback guarantees termination).
    pub fn place(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.variant {
            RandomVariant::Unconstrained => self.place_unconstrained(params, &mut rng),
            RandomVariant::LoadBalanced | RandomVariant::SequentialUniform => {
                let weighted = self.variant == RandomVariant::LoadBalanced;
                for _attempt in 0..100 {
                    if let Some(p) = self.try_place_balanced(params, weighted, &mut rng)? {
                        return Ok(p);
                    }
                }
                // Deterministic fallback: round-robin satisfies the cap.
                let b = usize::try_from(params.b()).expect("b fits usize");
                let n = usize::from(params.n());
                let r = usize::from(params.r());
                let mut sets = Vec::with_capacity(b);
                for i in 0..b {
                    let mut set: Vec<u16> = (0..r).map(|j| ((i * r + j) % n) as u16).collect();
                    set.sort_unstable();
                    sets.push(set);
                }
                Placement::new(params.n(), params.r(), sets)
            }
        }
    }

    fn place_unconstrained(
        &self,
        params: &SystemParams,
        rng: &mut StdRng,
    ) -> Result<Placement, PlacementError> {
        let b = usize::try_from(params.b()).expect("b fits usize");
        let n = params.n();
        let r = usize::from(params.r());
        let mut sets = Vec::with_capacity(b);
        let mut set: Vec<u16> = Vec::with_capacity(r);
        for _ in 0..b {
            set.clear();
            while set.len() < r {
                let nd = rng.gen_range(0..n);
                if !set.contains(&nd) {
                    set.push(nd);
                }
            }
            set.sort_unstable();
            sets.push(set.clone());
        }
        Placement::new(n, params.r(), sets)
    }

    /// One attempt at a load-capped draw; `None` on a dead end (fewer
    /// than `r` nodes still have capacity). `weighted` selects
    /// capacity-proportional vs uniform-among-eligible node choice.
    fn try_place_balanced(
        &self,
        params: &SystemParams,
        weighted: bool,
        rng: &mut StdRng,
    ) -> Result<Option<Placement>, PlacementError> {
        let b = usize::try_from(params.b()).expect("b fits usize");
        let n = usize::from(params.n());
        let r = usize::from(params.r());
        let cap = Self::load_cap(params);
        let mut remaining = vec![cap; n];
        let mut sets = Vec::with_capacity(b);
        for _ in 0..b {
            let mut set: Vec<u16> = Vec::with_capacity(r);
            for _ in 0..r {
                // Draw over nodes not yet in this set with remaining
                // capacity; weight = capacity or 1.
                let weight_of = |nd: usize, c: u32| -> u64 {
                    if c == 0 || set.contains(&(nd as u16)) {
                        0
                    } else if weighted {
                        u64::from(c)
                    } else {
                        1
                    }
                };
                let total: u64 = remaining
                    .iter()
                    .enumerate()
                    .map(|(nd, &c)| weight_of(nd, c))
                    .sum();
                if total == 0 {
                    return Ok(None);
                }
                let mut ticket = rng.gen_range(0..total);
                let mut chosen = None;
                for (nd, &c) in remaining.iter().enumerate() {
                    let w = weight_of(nd, c);
                    if w == 0 {
                        continue;
                    }
                    if ticket < w {
                        chosen = Some(nd);
                        break;
                    }
                    ticket -= w;
                }
                let Some(nd) = chosen else {
                    return Ok(None);
                };
                set.push(nd as u16);
            }
            for &nd in &set {
                remaining[usize::from(nd)] -= 1;
            }
            set.sort_unstable();
            sets.push(set);
        }
        Ok(Some(Placement::new(params.n(), params.r(), sets)?))
    }
}

impl crate::PlacementStrategy for RandomStrategy {
    fn name(&self) -> &str {
        self.variant.label()
    }

    /// Random placement offers only probabilistic guarantees (Theorem 2);
    /// its deterministic worst-case bound is the vacuous 0.
    fn lower_bound(&self, _params: &SystemParams) -> i64 {
        0
    }

    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        self.place(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u16, b: u64, r: u16) -> SystemParams {
        SystemParams::new(n, b, r, 2, 3).unwrap()
    }

    #[test]
    fn load_cap_respected() {
        for (n, b, r) in [(31u16, 600u64, 5u16), (71, 1200, 3), (11, 100, 4)] {
            let p = params(n, b, r);
            let cap = RandomStrategy::load_cap(&p);
            let placement = RandomStrategy::new(1, RandomVariant::LoadBalanced)
                .place(&p)
                .unwrap();
            assert!(placement.max_load() <= cap, "n={n} b={b} r={r}");
            assert_eq!(placement.num_objects(), b as usize);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = params(31, 300, 3);
        let a = RandomStrategy::new(9, RandomVariant::LoadBalanced)
            .place(&p)
            .unwrap();
        let b = RandomStrategy::new(9, RandomVariant::LoadBalanced)
            .place(&p)
            .unwrap();
        assert_eq!(a, b);
        let c = RandomStrategy::new(10, RandomVariant::LoadBalanced)
            .place(&p)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn unconstrained_has_distinct_replicas() {
        let p = params(31, 500, 5);
        let placement = RandomStrategy::new(3, RandomVariant::Unconstrained)
            .place(&p)
            .unwrap();
        for set in placement.replica_sets() {
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sequential_uniform_respects_cap() {
        let p = params(31, 600, 5);
        let cap = RandomStrategy::load_cap(&p);
        let placement = RandomStrategy::new(4, RandomVariant::SequentialUniform)
            .place(&p)
            .unwrap();
        assert!(placement.max_load() <= cap);
        assert_eq!(placement.num_objects(), 600);
    }

    #[test]
    fn tight_capacity_instance_terminates() {
        // b·r exactly equals n·cap: the sampler must finish (possibly via
        // restart/fallback).
        let p = SystemParams::new(10, 10, 5, 2, 3).unwrap(); // ℓ = 5 exactly
        let placement = RandomStrategy::new(0, RandomVariant::LoadBalanced)
            .place(&p)
            .unwrap();
        assert!(placement.max_load() <= 5);
    }

    #[test]
    fn spread_looks_random() {
        // Not a statistical test — just check the placement isn't the
        // degenerate round-robin fallback (which would have max-min ≤ 1
        // *and* perfectly sequential sets).
        let p = params(71, 2000, 3);
        let placement = RandomStrategy::new(42, RandomVariant::LoadBalanced)
            .place(&p)
            .unwrap();
        let distinct: std::collections::HashSet<_> = placement.replica_sets().iter().collect();
        assert!(distinct.len() > 1500, "suspiciously few distinct sets");
    }
}
