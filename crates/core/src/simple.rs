//! The `Simple(x, λ)` placement strategy (Definition 2).
//!
//! A `Simple(x, λ)` placement is exactly a `(x+1)-(n, r, λ)` packing: no
//! `x+1` nodes jointly host more than `λ` objects. Placements are
//! materialized from a base unit packing (index `μ`) by Observation 1:
//! copy the unit `λ/μ` times and hand out blocks in round-robin order, so
//! no block is used more than `⌈b/capacity⌉ ≤ λ/μ` times.

use crate::{Placement, PlacementError, SystemParams, UnitSpec};
use wcp_designs::registry::RegistryConfig;

/// A planned `Simple(x, λ)` strategy.
///
/// # Examples
///
/// ```
/// use wcp_core::{SimpleStrategy, SystemParams};
/// use wcp_designs::registry::RegistryConfig;
///
/// // n = 71, r = 3, x = 1: STS(69)-backed, as in the paper's Fig. 2.
/// let params = SystemParams::new(71, 1000, 3, 2, 3)?;
/// let strat = SimpleStrategy::plan_constructive(1, &params, &RegistryConfig::default())?;
/// assert_eq!(strat.lambda(), 2); // 1000 objects need 2 copies of STS(69)
/// let placement = strat.build(1000)?;
/// assert_eq!(placement.num_objects(), 1000);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimpleStrategy {
    spec: UnitSpec,
    lambda: u64,
    n: u16,
    r: u16,
    name: String,
}

impl SimpleStrategy {
    /// Wraps an explicit spec with a chosen `λ` (must be a multiple of the
    /// spec's `μ`; use [`UnitSpec::units_for`] to size it).
    #[must_use]
    pub fn from_spec(spec: UnitSpec, lambda: u64, n: u16, r: u16) -> Self {
        let name = format!("simple(x={}, λ={lambda})", spec.x);
        Self {
            spec,
            lambda,
            n,
            r,
            name,
        }
    }

    /// Plans a `Simple(x, λ)` for `params.b()` objects with minimal `λ`
    /// (Eqn. 1), using the best constructible unit packing.
    ///
    /// # Errors
    ///
    /// [`PlacementError::Design`] if nothing is constructible at this `x`;
    /// [`PlacementError::InsufficientCapacity`] if `b` exceeds what any
    /// `λ` can host (cannot happen while capacity grows with `λ`).
    pub fn plan_constructive(
        x: u16,
        params: &SystemParams,
        config: &RegistryConfig,
    ) -> Result<Self, PlacementError> {
        let profile = crate::PackingProfile::constructive(params, config)?;
        if x >= profile.s() {
            return Err(PlacementError::InvalidParams(format!(
                "x must satisfy x < s, got x={x}, s={}",
                profile.s()
            )));
        }
        let spec = profile.spec(x).clone();
        let d = spec
            .units_for(params.b())
            .ok_or(PlacementError::InsufficientCapacity {
                requested: params.b(),
                capacity: 0,
            })?;
        let lambda = d * spec.mu;
        Ok(Self::from_spec(spec, lambda, params.n(), params.r()))
    }

    /// The packing index `λ`.
    #[must_use]
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// The overlap bound `x`.
    #[must_use]
    pub fn x(&self) -> u16 {
        self.spec.x
    }

    /// The sub-system size `n_x` actually used.
    #[must_use]
    pub fn nx(&self) -> u16 {
        self.spec.nx
    }

    /// Objects this strategy can host (Lemma 1 / achieved capacity).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.spec.capacity(self.lambda / self.spec.mu.max(1))
    }

    /// Availability lower bound for `b` objects (Lemma 2).
    #[must_use]
    pub fn lower_bound(&self, b: u64, k: u16, s: u16) -> i64 {
        crate::lb_avail_si(b, self.lambda, k, s, self.spec.x)
    }

    /// Materializes the placement for `b` objects on the full node set
    /// (blocks live on nodes `0..n_x`; nodes `n_x..n` stay empty, the
    /// slight load imbalance the paper's Observation 2 discusses).
    ///
    /// # Errors
    ///
    /// [`PlacementError::InsufficientCapacity`] when `b` exceeds
    /// [`capacity`](Self::capacity); [`PlacementError::Design`] when the
    /// spec has no constructive backing (paper-profile slots with `x > 0`).
    pub fn build(&self, b: u64) -> Result<Placement, PlacementError> {
        let cap = self.capacity();
        if b > cap {
            return Err(PlacementError::InsufficientCapacity {
                requested: b,
                capacity: cap,
            });
        }
        let b_us = usize::try_from(b).expect("b fits usize");
        if self.spec.x == 0 {
            return round_robin(self.n, self.spec.nx, self.r, b_us);
        }
        let unit = self.spec.unit.as_ref().ok_or_else(|| {
            PlacementError::Design(format!(
                "spec '{}' carries no constructive unit",
                self.spec.provenance
            ))
        })?;
        let unit_cap = usize::try_from(unit.capacity().min(b)).expect("fits");
        let base = unit.materialize(unit_cap)?;
        let base_blocks = base.blocks();
        let mut sets = Vec::with_capacity(b_us);
        for i in 0..b_us {
            sets.push(base_blocks[i % base_blocks.len()].clone());
        }
        Placement::new(self.n, self.r, sets)
    }
}

impl crate::PlacementStrategy for SimpleStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    /// Lemma 2 at the given parameters' `(b, k, s)`.
    fn lower_bound(&self, params: &SystemParams) -> i64 {
        self.lower_bound(params.b(), params.k(), params.s())
    }

    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        self.build(params.b())
    }
}

/// `Simple(0, λ)` realization: hand nodes out in one circular sweep, so
/// every node's load is within 1 of `rb/n_x` and never exceeds `λ`.
fn round_robin(n: u16, nx: u16, r: u16, b: usize) -> Result<Placement, PlacementError> {
    let nx_us = usize::from(nx);
    let mut sets = Vec::with_capacity(b);
    let mut cursor = 0usize;
    for _ in 0..b {
        let mut set: Vec<u16> = (0..usize::from(r))
            .map(|j| ((cursor + j) % nx_us) as u16)
            .collect();
        set.sort_unstable();
        sets.push(set);
        cursor = (cursor + usize::from(r)) % nx_us;
    }
    Placement::new(n, r, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_designs::verify;
    use wcp_designs::BlockDesign;

    fn params(n: u16, b: u64, r: u16, s: u16, k: u16) -> SystemParams {
        SystemParams::new(n, b, r, s, k).unwrap()
    }

    #[test]
    fn sts_backed_simple_is_a_packing() {
        let p = params(71, 1500, 3, 2, 3);
        let strat = SimpleStrategy::plan_constructive(1, &p, &RegistryConfig::default()).unwrap();
        assert_eq!(strat.nx(), 69);
        assert_eq!(strat.lambda(), 2); // 1500 ≤ 2·782
        let placement = strat.build(1500).unwrap();
        // The multiset of replica sets is a 2-(71,3,2) packing.
        let design = BlockDesign::new(71, 3, placement.replica_sets().to_vec()).unwrap();
        assert!(verify::is_t_packing(&design, 2, 2));
        assert!(!verify::is_t_packing(&design, 2, 1)); // λ=2 really needed
    }

    #[test]
    fn minimal_lambda_matches_eqn1() {
        // Eqn. 1: (λ−μ)·cap/μ < b ≤ λ·cap/μ.
        let p = params(71, 783, 3, 2, 3);
        let strat = SimpleStrategy::plan_constructive(1, &p, &RegistryConfig::default()).unwrap();
        assert_eq!(strat.lambda(), 2); // 782 < 783 ≤ 1564
        let p = params(71, 782, 3, 2, 3);
        let strat = SimpleStrategy::plan_constructive(1, &p, &RegistryConfig::default()).unwrap();
        assert_eq!(strat.lambda(), 1);
    }

    #[test]
    fn load_cap_strategy() {
        let p = params(31, 100, 5, 2, 3);
        let strat = SimpleStrategy::plan_constructive(0, &p, &RegistryConfig::default()).unwrap();
        // λ0 = ceil(100·5/31) = 17.
        assert_eq!(strat.lambda(), 17);
        let placement = strat.build(100).unwrap();
        assert!(placement.max_load() <= 17);
        assert_eq!(placement.num_objects(), 100);
        // Round-robin is near-perfectly balanced.
        let loads = placement.loads();
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(max - min <= 1, "loads {loads:?}");
    }

    #[test]
    fn capacity_enforced() {
        let p = params(71, 782, 3, 2, 3);
        let strat = SimpleStrategy::plan_constructive(1, &p, &RegistryConfig::default()).unwrap();
        assert!(matches!(
            strat.build(800),
            Err(PlacementError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn lower_bound_formula() {
        let p = params(71, 1500, 3, 2, 5);
        let strat = SimpleStrategy::plan_constructive(1, &p, &RegistryConfig::default()).unwrap();
        // λ = 2, x = 1, k = 5, s = 2: penalty ⌊2·10/1⌋ = 20.
        assert_eq!(strat.lower_bound(1500, 5, 2), 1480);
    }

    #[test]
    fn replica_sets_have_distinct_nodes() {
        // Round-robin wrap-around must still produce distinct nodes.
        let placement = round_robin(10, 7, 5, 50).unwrap();
        for set in placement.replica_sets() {
            assert!(set.windows(2).all(|w| w[0] < w[1]), "{set:?}");
        }
    }
}
