//! Baseline placement strategies from the systems literature, for
//! comparison against the paper's packing-based ones.
//!
//! * [`ring_placement`] — chained declustering / consecutive placement:
//!   object `i` lives on nodes `{i, i+1, …, i+r−1} (mod n)`. Ubiquitous
//!   in practice (consistent hashing with `r` successors); its worst case
//!   is easy for an adversary — `k` *consecutive* failures wipe out every
//!   object whose window covers `s` of them ([`ring_worst_failures`]
//!   gives the closed form, proven tight in the tests).
//! * [`group_placement`] — disjoint replica groups (the "copyset"-style
//!   extreme): nodes are split into `⌊n/r⌋` groups of `r`; each object
//!   picks one group. Minimizes the *number* of affected objects per
//!   failure pattern but concentrates damage: `k` failures inside one
//!   group kill *all* of its objects at `s ≤ k`.
//!
//! Both are `O(b)` to build and make instructive comparison points in the
//! examples and tests: the paper's `Simple`/`Combo` placements dominate
//! ring placement at every parameter we exercise, while group placement
//! wins or loses depending on how `b/⌊n/r⌋` compares to the packing
//! bound — exactly the overlap trade-off the paper's introduction
//! discusses.

use crate::{Placement, PlacementError, SystemParams};

/// Chained-declustering placement: object `i` on `r` consecutive nodes
/// starting at `i mod n`.
///
/// # Errors
///
/// Propagates [`Placement::new`] validation (never fails for valid
/// [`SystemParams`]).
///
/// # Examples
///
/// ```
/// use wcp_core::{baselines::ring_placement, SystemParams};
///
/// let params = SystemParams::new(10, 20, 3, 2, 3)?;
/// let p = ring_placement(&params)?;
/// assert_eq!(p.replicas(0), &[0, 1, 2]);
/// assert_eq!(p.replicas(9), &[0, 1, 9]); // wraps around
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
pub fn ring_placement(params: &SystemParams) -> Result<Placement, PlacementError> {
    let n = usize::from(params.n());
    let r = usize::from(params.r());
    let b = usize::try_from(params.b()).expect("b fits usize");
    let mut sets = Vec::with_capacity(b);
    for i in 0..b {
        let mut set: Vec<u16> = (0..r).map(|j| ((i + j) % n) as u16).collect();
        set.sort_unstable();
        sets.push(set);
    }
    Placement::new(params.n(), params.r(), sets)
}

/// Disjoint-group placement: node groups `{0..r}, {r..2r}, …`; object `i`
/// uses group `i mod ⌊n/r⌋`.
///
/// # Errors
///
/// Propagates [`Placement::new`] validation.
pub fn group_placement(params: &SystemParams) -> Result<Placement, PlacementError> {
    let n = usize::from(params.n());
    let r = usize::from(params.r());
    let groups = n / r;
    let b = usize::try_from(params.b()).expect("b fits usize");
    let mut sets = Vec::with_capacity(b);
    for i in 0..b {
        let g = i % groups;
        let set: Vec<u16> = (g * r..(g + 1) * r).map(|p| p as u16).collect();
        sets.push(set);
    }
    Placement::new(params.n(), params.r(), sets)
}

/// Single-arc worst-case failures for [`ring_placement`], with `b` a
/// multiple of `n` (every start offset equally loaded): failing `k`
/// **consecutive** nodes kills exactly
/// `(b/n)·(k − s + 1 + min(r − s, n − k))` objects when `k ≥ s` — the
/// `k−s+1` windows fully determined inside the failed arc plus the
/// windows entering it from the left with overlap ≥ s.
///
/// The single arc is provably the adversary's optimum at `s = r`
/// (windows must lie fully inside the failed set; `m` arcs contain at
/// most `k − m(r−1)` windows). At `s < r` it is **not** always optimal,
/// even under majority thresholds `2s − 1 ≥ r`: splitting gains outright
/// for `2s − 1 < r` (each length-`s` arc buys `r − 2s + 1` extra kills;
/// see the `splitting_beats_single_arc` test), and at the boundary
/// `2s − 1 = r` unit-gap patterns such as `{0, 1, 3, 4}` at
/// `(n, r, s, k) = (9, 3, 2, 4)` let windows straddle a gap while still
/// collecting `s` hits (see `unit_gaps_beat_single_arc_at_boundary`).
/// Treat the value as the damage of one concrete attack — a lower bound
/// on the true worst case — unless `s = r`.
///
/// # Panics
///
/// Debug-asserts the regime and divisibility assumptions.
#[must_use]
pub fn ring_worst_failures(params: &SystemParams) -> u64 {
    let (n, r, s, k, b) = (
        u64::from(params.n()),
        u64::from(params.r()),
        u64::from(params.s()),
        u64::from(params.k()),
        params.b(),
    );
    debug_assert!(b.is_multiple_of(n), "closed form assumes b ≡ 0 (mod n)");
    if k < s {
        return 0;
    }
    let per_offset = b / n;
    // Start offsets killed by the arc [0, k): starts 0..=k−s hit ≥ s
    // failed nodes from inside; starts n−1, n−2, … (windows entering the
    // arc from the left) contribute while the overlap r − (n − start) ≥ s,
    // bounded by r − s and by not double-counting offsets already inside.
    let inside = k - s + 1;
    let entering = (r - s).min(n - k);
    per_offset * (inside + entering)
}

/// Worst-case failed objects for [`group_placement`], in closed form.
///
/// An object's replicas are exactly its group's `r` nodes, so the
/// adversary kills a whole group by failing any `s` of its nodes; with a
/// budget of `k` nodes it wipes out the `⌊k/s⌋` most-loaded groups and
/// gains nothing from the `k mod s < s` leftover nodes. Round-robin
/// assignment makes the first `b mod ⌊n/r⌋` groups one object heavier.
#[must_use]
pub fn group_worst_failures(params: &SystemParams) -> u64 {
    let groups = u64::from(params.n() / params.r());
    let killed = (u64::from(params.k()) / u64::from(params.s())).min(groups);
    let per = params.b() / groups;
    let heavier = params.b() % groups;
    if killed <= heavier {
        killed * (per + 1)
    } else {
        heavier * (per + 1) + (killed - heavier) * per
    }
}

/// [`ring_placement`] behind the unified [`crate::PlacementStrategy`]
/// API.
///
/// Its lower bound is the *exact* worst case `b − ring_worst_failures`
/// when that is provable — `s = r` (a window dies only when fully
/// contained in the failed set, and among any `m` failed arcs the
/// contained-window count `k − m(r−1)` is maximized by one arc) with
/// `b ≡ 0 (mod n)` — and the vacuous 0 otherwise. At `s < r` even the
/// single-arc regime `2s − 1 ≥ r` is not safe: see the counterexample
/// on [`ring_worst_failures`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStrategy;

impl crate::PlacementStrategy for RingStrategy {
    fn name(&self) -> &str {
        "ring"
    }

    fn lower_bound(&self, params: &SystemParams) -> i64 {
        let (n, b) = (u64::from(params.n()), params.b());
        if params.s() == params.r() && b.is_multiple_of(n) {
            b as i64 - ring_worst_failures(params) as i64
        } else {
            0
        }
    }

    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        ring_placement(params)
    }
}

/// [`group_placement`] behind the unified [`crate::PlacementStrategy`]
/// API; its lower bound is the exact `b −` [`group_worst_failures`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStrategy;

impl crate::PlacementStrategy for GroupStrategy {
    fn name(&self) -> &str {
        "group"
    }

    fn lower_bound(&self, params: &SystemParams) -> i64 {
        params.b() as i64 - group_worst_failures(params) as i64
    }

    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        group_placement(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_combin::KSubsets;

    fn brute_force(p: &Placement, s: u16, k: u16) -> u64 {
        KSubsets::new(p.num_nodes(), k)
            .map(|subset| p.failed_objects(&subset, s))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn unit_gaps_beat_single_arc_at_boundary() {
        // At 2s − 1 = r the single-arc formula is NOT the worst case for
        // every k: with (n, r, s, k) = (9, 3, 2, 4) the pattern
        // {0, 1, 3, 4} kills 5 window offsets (windows straddle the unit
        // gap with 2 hits) against the arc's 4.
        let params = SystemParams::new(9, 27, 3, 2, 4).unwrap();
        let p = ring_placement(&params).unwrap();
        assert_eq!(p.failed_objects(&[0, 1, 3, 4], 2), 15);
        assert_eq!(ring_worst_failures(&params), 12); // single arc only
        assert_eq!(brute_force(&p, 2, 4), 15);
    }

    #[test]
    fn ring_closed_form_matches_brute_force() {
        // Points where the single arc happens to be optimal.
        for (n, r, s, k) in [
            (10u16, 3u16, 2u16, 3u16),
            (10, 3, 3, 4),
            (10, 2, 2, 2),
            (12, 4, 3, 5),
            (12, 5, 3, 4),
            (11, 5, 4, 6),
            (11, 5, 5, 7),
        ] {
            let b = u64::from(n) * 3;
            let params = SystemParams::new(n, b, r, s, k).unwrap();
            let p = ring_placement(&params).unwrap();
            assert_eq!(
                ring_worst_failures(&params),
                brute_force(&p, s, k),
                "n={n} r={r} s={s} k={k}"
            );
        }
    }

    #[test]
    fn splitting_beats_single_arc() {
        // Outside the regime (s = 1): two isolated failures kill 2r
        // windows, strictly more than one arc of 2 (r + 1).
        let params = SystemParams::new(9, 27, 3, 1, 2).unwrap();
        let p = ring_placement(&params).unwrap();
        let single_arc_kills = 3 * (2 - 1 + 1 + 2u64); // (b/n)·(inside + entering)
        let actual = brute_force(&p, 1, 2);
        assert!(actual > single_arc_kills, "{actual} vs {single_arc_kills}");
        assert_eq!(actual, 18); // 2 nodes × r=3 windows × 3 objects each
    }

    #[test]
    fn group_placement_damage_is_concentrated() {
        // k = r failures aimed at one group kill exactly the objects of
        // that group (b/groups of them) at any s ≤ r.
        let params = SystemParams::new(12, 120, 3, 2, 3).unwrap();
        let p = group_placement(&params).unwrap();
        let per_group = 120 / (12 / 3);
        assert_eq!(brute_force(&p, 2, 3), per_group);
        // …but k < s failures spread across groups kill nothing.
        assert_eq!(brute_force(&p, 2, 1), 0);
    }

    #[test]
    fn ring_loads_are_balanced() {
        let params = SystemParams::new(10, 50, 3, 2, 3).unwrap();
        let p = ring_placement(&params).unwrap();
        let loads = p.loads();
        assert_eq!(loads.iter().sum::<u32>(), 150);
        assert!(loads.iter().all(|&l| l == 15));
    }

    #[test]
    fn group_closed_form_matches_brute_force() {
        for (n, b, r, s, k) in [
            (12u16, 120u64, 3u16, 2u16, 3u16),
            (12, 121, 3, 2, 5),
            (12, 50, 4, 2, 6),
            (15, 33, 5, 3, 7),
            (10, 40, 3, 1, 4),
            (9, 27, 3, 3, 8),
        ] {
            let params = SystemParams::new(n, b, r, s, k).unwrap();
            let p = group_placement(&params).unwrap();
            assert_eq!(
                group_worst_failures(&params),
                brute_force(&p, s, k),
                "n={n} b={b} r={r} s={s} k={k}"
            );
        }
    }

    #[test]
    fn baseline_strategy_bounds_are_tight_or_vacuous() {
        use crate::PlacementStrategy;
        let ring = RingStrategy;
        // Ring at s = r: the single-arc bound is provably exact.
        let params = SystemParams::new(10, 30, 3, 3, 4).unwrap();
        let p = ring.build(&params).unwrap();
        assert_eq!(ring.lower_bound(&params), 30 - brute_force(&p, 3, 4) as i64);
        // At s < r the ring claims only the vacuous 0 (see
        // `unit_gaps_beat_single_arc_at_boundary`).
        let params2 = SystemParams::new(10, 30, 3, 2, 3).unwrap();
        assert_eq!(ring.lower_bound(&params2), 0);
        // Group bound is always exact.
        let group = GroupStrategy;
        let pg = group.build(&params2).unwrap();
        assert_eq!(
            group.lower_bound(&params2),
            30 - brute_force(&pg, 2, 3) as i64
        );
    }

    #[test]
    fn packing_beats_ring_under_attack() {
        // The motivating comparison: same parameters, exact adversary,
        // STS-backed Simple placement loses fewer objects than the ring.
        use wcp_designs::registry::RegistryConfig;
        let params = SystemParams::new(13, 26, 3, 2, 4).unwrap();
        let ring = ring_placement(&params).unwrap();
        let ring_failed = brute_force(&ring, 2, 4);
        let simple =
            crate::SimpleStrategy::plan_constructive(1, &params, &RegistryConfig::default())
                .unwrap()
                .build(26)
                .unwrap();
        let simple_failed = brute_force(&simple, 2, 4);
        assert!(
            simple_failed < ring_failed,
            "packing {simple_failed} vs ring {ring_failed}"
        );
    }
}
