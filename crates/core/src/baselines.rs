//! Baseline placement strategies from the systems literature, for
//! comparison against the paper's packing-based ones.
//!
//! * [`ring_placement`] — chained declustering / consecutive placement:
//!   object `i` lives on nodes `{i, i+1, …, i+r−1} (mod n)`. Ubiquitous
//!   in practice (consistent hashing with `r` successors); its worst case
//!   is easy for an adversary — `k` *consecutive* failures wipe out every
//!   object whose window covers `s` of them ([`ring_worst_failures`]
//!   gives the closed form, proven tight in the tests).
//! * [`group_placement`] — disjoint replica groups (the "copyset"-style
//!   extreme): nodes are split into `⌊n/r⌋` groups of `r`; each object
//!   picks one group. Minimizes the *number* of affected objects per
//!   failure pattern but concentrates damage: `k` failures inside one
//!   group kill *all* of its objects at `s ≤ k`.
//!
//! Both are `O(b)` to build and make instructive comparison points in the
//! examples and tests: the paper's `Simple`/`Combo` placements dominate
//! ring placement at every parameter we exercise, while group placement
//! wins or loses depending on how `b/⌊n/r⌋` compares to the packing
//! bound — exactly the overlap trade-off the paper's introduction
//! discusses.

use crate::{Placement, PlacementError, SystemParams};

/// Chained-declustering placement: object `i` on `r` consecutive nodes
/// starting at `i mod n`.
///
/// # Errors
///
/// Propagates [`Placement::new`] validation (never fails for valid
/// [`SystemParams`]).
///
/// # Examples
///
/// ```
/// use wcp_core::{baselines::ring_placement, SystemParams};
///
/// let params = SystemParams::new(10, 20, 3, 2, 3)?;
/// let p = ring_placement(&params)?;
/// assert_eq!(p.replicas(0), &[0, 1, 2]);
/// assert_eq!(p.replicas(9), &[0, 1, 9]); // wraps around
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
pub fn ring_placement(params: &SystemParams) -> Result<Placement, PlacementError> {
    let n = usize::from(params.n());
    let r = usize::from(params.r());
    let b = usize::try_from(params.b()).expect("b fits usize");
    let mut sets = Vec::with_capacity(b);
    for i in 0..b {
        let mut set: Vec<u16> = (0..r).map(|j| ((i + j) % n) as u16).collect();
        set.sort_unstable();
        sets.push(set);
    }
    Placement::new(params.n(), params.r(), sets)
}

/// Disjoint-group placement: node groups `{0..r}, {r..2r}, …`; object `i`
/// uses group `i mod ⌊n/r⌋`.
///
/// # Errors
///
/// Propagates [`Placement::new`] validation.
pub fn group_placement(params: &SystemParams) -> Result<Placement, PlacementError> {
    let n = usize::from(params.n());
    let r = usize::from(params.r());
    let groups = n / r;
    let b = usize::try_from(params.b()).expect("b fits usize");
    let mut sets = Vec::with_capacity(b);
    for i in 0..b {
        let g = i % groups;
        let set: Vec<u16> = (g * r..(g + 1) * r).map(|p| p as u16).collect();
        sets.push(set);
    }
    Placement::new(params.n(), params.r(), sets)
}

/// Closed-form worst-case failures for [`ring_placement`] in the
/// *single-arc regime* `2s − 1 ≥ r` (majority-or-stronger thresholds),
/// with `b` a multiple of `n` (every start offset equally loaded):
/// failing `k` **consecutive** nodes is then optimal and kills exactly
/// `(b/n)·(k − s + 1 + min(r − s, n − k))` objects when `k ≥ s` — the
/// `k−s+1` windows fully determined inside the failed arc plus the
/// windows entering it from the left with overlap ≥ s.
///
/// Outside that regime (`2s − 1 < r`, e.g. `s = 1`) the adversary gains
/// by *splitting* failures into multiple short arcs — each arc of length
/// `s` buys `r − 2s + 1` extra kills — so no single-arc formula applies;
/// see the `splitting_beats_single_arc` test.
///
/// # Panics
///
/// Debug-asserts the regime and divisibility assumptions.
#[must_use]
pub fn ring_worst_failures(params: &SystemParams) -> u64 {
    let (n, r, s, k, b) = (
        u64::from(params.n()),
        u64::from(params.r()),
        u64::from(params.s()),
        u64::from(params.k()),
        params.b(),
    );
    debug_assert!(b.is_multiple_of(n), "closed form assumes b ≡ 0 (mod n)");
    debug_assert!(
        2 * s > r,
        "closed form assumes the single-arc regime 2s−1 ≥ r"
    );
    if k < s {
        return 0;
    }
    let per_offset = b / n;
    // Start offsets killed by the arc [0, k): starts 0..=k−s hit ≥ s
    // failed nodes from inside; starts n−1, n−2, … (windows entering the
    // arc from the left) contribute while the overlap r − (n − start) ≥ s,
    // bounded by r − s and by not double-counting offsets already inside.
    let inside = k - s + 1;
    let entering = (r - s).min(n - k);
    per_offset * (inside + entering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_combin::KSubsets;

    fn brute_force(p: &Placement, s: u16, k: u16) -> u64 {
        KSubsets::new(p.num_nodes(), k)
            .map(|subset| p.failed_objects(&subset, s))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn ring_closed_form_matches_brute_force() {
        // Single-arc regime only: 2s − 1 ≥ r.
        for (n, r, s, k) in [
            (10u16, 3u16, 2u16, 3u16),
            (10, 3, 3, 4),
            (10, 2, 2, 2),
            (12, 4, 3, 5),
            (12, 5, 3, 4),
            (11, 5, 4, 6),
            (11, 5, 5, 7),
        ] {
            let b = u64::from(n) * 3;
            let params = SystemParams::new(n, b, r, s, k).unwrap();
            let p = ring_placement(&params).unwrap();
            assert_eq!(
                ring_worst_failures(&params),
                brute_force(&p, s, k),
                "n={n} r={r} s={s} k={k}"
            );
        }
    }

    #[test]
    fn splitting_beats_single_arc() {
        // Outside the regime (s = 1): two isolated failures kill 2r
        // windows, strictly more than one arc of 2 (r + 1).
        let params = SystemParams::new(9, 27, 3, 1, 2).unwrap();
        let p = ring_placement(&params).unwrap();
        let single_arc_kills = 3 * (2 - 1 + 1 + 2u64); // (b/n)·(inside + entering)
        let actual = brute_force(&p, 1, 2);
        assert!(actual > single_arc_kills, "{actual} vs {single_arc_kills}");
        assert_eq!(actual, 18); // 2 nodes × r=3 windows × 3 objects each
    }

    #[test]
    fn group_placement_damage_is_concentrated() {
        // k = r failures aimed at one group kill exactly the objects of
        // that group (b/groups of them) at any s ≤ r.
        let params = SystemParams::new(12, 120, 3, 2, 3).unwrap();
        let p = group_placement(&params).unwrap();
        let per_group = 120 / (12 / 3);
        assert_eq!(brute_force(&p, 2, 3), per_group);
        // …but k < s failures spread across groups kill nothing.
        assert_eq!(brute_force(&p, 2, 1), 0);
    }

    #[test]
    fn ring_loads_are_balanced() {
        let params = SystemParams::new(10, 50, 3, 2, 3).unwrap();
        let p = ring_placement(&params).unwrap();
        let loads = p.loads();
        assert_eq!(loads.iter().sum::<u32>(), 150);
        assert!(loads.iter().all(|&l| l == 15));
    }

    #[test]
    fn packing_beats_ring_under_attack() {
        // The motivating comparison: same parameters, exact adversary,
        // STS-backed Simple placement loses fewer objects than the ring.
        use wcp_designs::registry::RegistryConfig;
        let params = SystemParams::new(13, 26, 3, 2, 4).unwrap();
        let ring = ring_placement(&params).unwrap();
        let ring_failed = brute_force(&ring, 2, 4);
        let simple =
            crate::SimpleStrategy::plan_constructive(1, &params, &RegistryConfig::default())
                .unwrap()
                .build(26)
                .unwrap();
        let simple_failed = brute_force(&simple, 2, 4);
        assert!(
            simple_failed < ring_failed,
            "packing {simple_failed} vs ring {ring_failed}"
        );
    }
}
