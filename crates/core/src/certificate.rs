//! Availability certificates: the prover/verifier split's data model.
//!
//! An adversary-ladder evaluation is expensive (multi-restart local
//! search plus branch-and-bound); its *verdict* should not require
//! trusting the fast path that produced it. Every ladder run therefore
//! emits a [`Certificate`]: the witness of each rung (greedy, local
//! search, exact) with a replayable decision-trace hash, and — when the
//! exact rung completed — a **bound ledger** with one admissible
//! upper bound per root child of the branch-and-bound tree, in the
//! tree's canonical root order. The `wcp-verify` crate re-checks all of
//! it against the scalar oracle in `O(witness)` without re-running
//! search.
//!
//! What a certificate *proves* (checkable from the placement alone):
//!
//! * each rung's witness really fails its claimed object count;
//! * rung claims are monotone and the final claim equals the best rung;
//! * every ledger bound is the correct admissible bound for its root
//!   child, and every root child whose bound is ≤ the claim provably
//!   cannot beat the claim.
//!
//! What remains *trusted*: that subtrees whose bound exceeds the claim
//! were actually searched to exhaustion. That part is guarded by the
//! kernel-vs-scalar differential suites, not by the certificate.
//!
//! The encoding is hand-rolled stable JSON (the workspace cannot fetch
//! serde); [`Certificate::from_value`] reads it back via
//! [`wcp_sim::json`]. 64-bit hashes are encoded as `"0x…"` strings
//! because the JSON number model is `f64` (exact only below 2^53). A
//! FNV-1a digest over the canonical encoding seals the certificate:
//! [`Certificate::from_value`] rejects any document whose digest does
//! not match its content.

use crate::Placement;
use wcp_sim::json::Value;

/// Schema version written into every certificate.
pub const CERTIFICATE_VERSION: u64 = 1;

/// Streaming FNV-1a (64-bit) — the workspace's stable non-cryptographic
/// hash, used for placement binding, decision traces and the
/// certificate seal. Not collision-resistant against adversaries; the
/// digest detects corruption and accidental drift, not forgery.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one little-endian `u64` into the state.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Binds a certificate to the exact placement it speaks about: FNV-1a
/// over the shape and every replica row in object order.
#[must_use]
pub fn placement_digest(placement: &Placement) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(u64::from(placement.num_nodes()));
    h.write_u64(u64::from(placement.replicas_per_object()));
    h.write_u64(placement.num_objects() as u64);
    for row in placement.replica_sets() {
        h.write_u64(row.len() as u64);
        for &node in row {
            h.write_u64(u64::from(node));
        }
    }
    h.finish()
}

/// Which adversary the certificate speaks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertificateKind {
    /// The budget-`k` node adversary (Definition 1).
    Node,
    /// The budget-`k` failure-unit adversary over a topology.
    Domain,
}

impl CertificateKind {
    /// Stable wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CertificateKind::Node => "node",
            CertificateKind::Domain => "domain",
        }
    }

    /// Parses a wire label.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "node" => Some(CertificateKind::Node),
            "domain" => Some(CertificateKind::Domain),
            _ => None,
        }
    }
}

/// One rung of the adversary ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RungKind {
    /// The greedy ascent seed.
    Greedy,
    /// Multi-restart steepest-ascent swap search.
    LocalSearch,
    /// The branch-and-bound exact rung.
    Exact,
}

impl RungKind {
    /// Stable wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RungKind::Greedy => "greedy",
            RungKind::LocalSearch => "local-search",
            RungKind::Exact => "exact",
        }
    }

    /// Parses a wire label.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "greedy" => Some(RungKind::Greedy),
            "local-search" => Some(RungKind::LocalSearch),
            "exact" => Some(RungKind::Exact),
            _ => None,
        }
    }
}

/// One rung's claim: its witness and how it was reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rung {
    /// Which rung of the ladder produced this claim.
    pub kind: RungKind,
    /// Objects the witness fails.
    pub failed: u64,
    /// The witness node set (for domain certificates: the union of the
    /// chosen units' leaves), sorted.
    pub witness: Vec<u16>,
    /// The witness failure-unit ids (domain certificates only; empty
    /// for node certificates), sorted.
    pub units: Vec<u32>,
    /// FNV-1a hash of the rung's decision trace (per-restart seeds and
    /// outcomes), replayable by re-running the prover; 0 for the exact
    /// rung, whose evidence is the bound ledger instead.
    pub trace: u64,
}

/// One root child of the exact rung's branch-and-bound tree, in the
/// tree's canonical root order, with the admissible upper bound on every
/// attack inside its subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntry {
    /// The root child: a node id (node certificates) or failure-unit id
    /// (domain certificates).
    pub root: u32,
    /// Admissible bound: no attack whose first element (in root order)
    /// is `root` fails more than `bound` objects.
    pub bound: u64,
}

/// A complete, self-sealed availability certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Node or domain adversary.
    pub kind: CertificateKind,
    /// Nodes in the attacked placement.
    pub n: u16,
    /// Objects in the attacked placement.
    pub b: u64,
    /// Replicas per object.
    pub r: u16,
    /// Fatality threshold.
    pub s: u16,
    /// Adversary budget (nodes or failure units).
    pub k: u16,
    /// [`placement_digest`] of the attacked placement.
    pub placement: u64,
    /// The ladder's rungs in execution order.
    pub rungs: Vec<Rung>,
    /// The exact rung's bound ledger (empty unless `exact`, or when the
    /// shape is degenerate — `k` covers every node/unit — in which case
    /// optimality needs no search).
    pub ledger: Vec<LedgerEntry>,
    /// The final claim: no budget-`k` attack fails more objects.
    pub claimed_failed: u64,
    /// Whether the claim is proved optimal (exact rung completed).
    pub exact: bool,
}

impl Certificate {
    /// The canonical encoding without the digest member (the digest is
    /// FNV-1a over exactly these bytes).
    #[must_use]
    fn body_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"version\": {}, \"kind\": \"{}\", \
             \"params\": {{\"n\": {}, \"b\": {}, \"r\": {}, \"s\": {}, \"k\": {}}}, \
             \"placement\": \"{}\", \"claimed_failed\": {}, \"exact\": {}, \"rungs\": [",
            CERTIFICATE_VERSION,
            self.kind.label(),
            self.n,
            self.b,
            self.r,
            self.s,
            self.k,
            hex(self.placement),
            self.claimed_failed,
            self.exact,
        );
        for (i, rung) in self.rungs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"kind\": \"{}\", \"failed\": {}, \"witness\": [{}], \
                 \"units\": [{}], \"trace\": \"{}\"}}",
                rung.kind.label(),
                rung.failed,
                join(rung.witness.iter()),
                join(rung.units.iter()),
                hex(rung.trace),
            );
        }
        out.push_str("], \"ledger\": [");
        for (i, entry) in self.ledger.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {}]", entry.root, entry.bound);
        }
        out.push(']');
        out
    }

    /// The certificate's seal: FNV-1a over the canonical encoding.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_bytes(self.body_json().as_bytes());
        h.finish()
    }

    /// Renders the certificate as one stable JSON object, digest
    /// included. Byte-identical for equal certificates.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{}, \"digest\": \"{}\"}}",
            self.body_json(),
            hex(self.digest())
        )
    }

    /// Parses a certificate back from its JSON form.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed member, or a digest mismatch
    /// (any tampering with the document body invalidates the seal).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = Value::parse(text).map_err(|e| e.to_string())?;
        Self::from_value(&value)
    }

    /// Parses a certificate from an already parsed [`Value`] (e.g. the
    /// `"certificate"` member of an evaluation report).
    ///
    /// # Errors
    ///
    /// As [`Certificate::from_json`].
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let version = field_u64(value, "version")?;
        if version != CERTIFICATE_VERSION {
            return Err(format!("unsupported certificate version {version}"));
        }
        let kind = CertificateKind::parse(field_str(value, "kind")?)
            .ok_or_else(|| "unknown certificate kind".to_string())?;
        let params = value
            .get("params")
            .ok_or_else(|| "missing member 'params'".to_string())?;
        let n = narrow_u16(field_u64(params, "n")?, "n")?;
        let b = field_u64(params, "b")?;
        let r = narrow_u16(field_u64(params, "r")?, "r")?;
        let s = narrow_u16(field_u64(params, "s")?, "s")?;
        let k = narrow_u16(field_u64(params, "k")?, "k")?;
        let placement = field_hex(value, "placement")?;
        let claimed_failed = field_u64(value, "claimed_failed")?;
        let exact = value
            .get("exact")
            .and_then(Value::as_bool)
            .ok_or_else(|| "missing boolean 'exact'".to_string())?;
        let mut rungs = Vec::new();
        for rv in field_array(value, "rungs")? {
            let kind = RungKind::parse(field_str(rv, "kind")?)
                .ok_or_else(|| "unknown rung kind".to_string())?;
            let failed = field_u64(rv, "failed")?;
            let witness = field_array(rv, "witness")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|x| u16::try_from(x).ok())
                        .ok_or_else(|| "non-u16 witness entry".to_string())
                })
                .collect::<Result<Vec<u16>, String>>()?;
            let units = field_array(rv, "units")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|x| u32::try_from(x).ok())
                        .ok_or_else(|| "non-u32 unit entry".to_string())
                })
                .collect::<Result<Vec<u32>, String>>()?;
            let trace = field_hex(rv, "trace")?;
            rungs.push(Rung {
                kind,
                failed,
                witness,
                units,
                trace,
            });
        }
        let mut ledger = Vec::new();
        for ev in field_array(value, "ledger")? {
            let pair = ev
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| "ledger entries must be [root, bound] pairs".to_string())?;
            let root = pair[0]
                .as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| "non-u32 ledger root".to_string())?;
            let bound = pair[1]
                .as_u64()
                .ok_or_else(|| "non-u64 ledger bound".to_string())?;
            ledger.push(LedgerEntry { root, bound });
        }
        let cert = Certificate {
            kind,
            n,
            b,
            r,
            s,
            k,
            placement,
            rungs,
            ledger,
            claimed_failed,
            exact,
        };
        let sealed = field_hex(value, "digest")?;
        if sealed != cert.digest() {
            return Err(format!(
                "digest mismatch: sealed {}, content hashes to {}",
                hex(sealed),
                hex(cert.digest())
            ));
        }
        Ok(cert)
    }
}

/// Renders a 64-bit hash as the wire format (`"0x"` + 16 hex digits).
fn hex(value: u64) -> String {
    format!("0x{value:016x}")
}

/// Parses the wire hash format back.
fn parse_hex(text: &str) -> Option<u64> {
    u64::from_str_radix(text.strip_prefix("0x")?, 16).ok()
}

fn join<T: std::fmt::Display>(items: impl Iterator<Item = T>) -> String {
    let mut out = String::new();
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&item.to_string());
    }
    out
}

fn field_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer '{key}'"))
}

fn field_str<'v>(value: &'v Value, key: &str) -> Result<&'v str, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string '{key}'"))
}

fn field_array<'v>(value: &'v Value, key: &str) -> Result<&'v [Value], String> {
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array '{key}'"))
}

fn field_hex(value: &Value, key: &str) -> Result<u64, String> {
    parse_hex(field_str(value, key)?).ok_or_else(|| format!("malformed hash '{key}'"))
}

fn narrow_u16(value: u64, key: &str) -> Result<u16, String> {
    u16::try_from(value).map_err(|_| format!("'{key}' out of u16 range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            kind: CertificateKind::Node,
            n: 13,
            b: 26,
            r: 3,
            s: 2,
            k: 3,
            placement: 0xdead_beef_0123_4567,
            rungs: vec![
                Rung {
                    kind: RungKind::Greedy,
                    failed: 4,
                    witness: vec![1, 5, 9],
                    units: vec![],
                    trace: 0x1111,
                },
                Rung {
                    kind: RungKind::Exact,
                    failed: 6,
                    witness: vec![2, 5, 9],
                    units: vec![],
                    trace: 0,
                },
            ],
            ledger: vec![
                LedgerEntry { root: 2, bound: 9 },
                LedgerEntry { root: 5, bound: 6 },
            ],
            claimed_failed: 6,
            exact: true,
        }
    }

    #[test]
    fn json_round_trips() {
        let cert = sample();
        let text = cert.to_json();
        let back = Certificate::from_json(&text).expect("parses");
        assert_eq!(back, cert);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn digest_seals_the_body() {
        let cert = sample();
        // Any body tampering (here: one failed count) breaks the seal.
        let text = cert.to_json().replace("\"failed\": 6", "\"failed\": 7");
        assert!(text.contains("\"failed\": 7"), "substitution applied");
        let err = Certificate::from_json(&text).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn malformed_members_are_named() {
        let text = sample()
            .to_json()
            .replace("\"kind\": \"node\"", "\"kind\": \"ufo\"");
        let err = Certificate::from_json(&text).unwrap_err();
        assert!(err.contains("certificate kind"), "{err}");
    }

    #[test]
    fn placement_digest_tracks_content() {
        let a = Placement::new(4, 2, vec![vec![0, 1], vec![2, 3]]).unwrap();
        let b = Placement::new(4, 2, vec![vec![0, 1], vec![1, 3]]).unwrap();
        assert_ne!(placement_digest(&a), placement_digest(&b));
        assert_eq!(placement_digest(&a), placement_digest(&a.clone()));
    }

    #[test]
    fn fnv_matches_seed_for_on_label_bytes() {
        // Same constants as wcp_sim::seed_for — a drift canary.
        let mut h = Fnv::new();
        h.write_bytes(b"fig07");
        h.write_bytes(&3u64.to_le_bytes());
        assert_eq!(h.finish(), wcp_sim::seed_for("fig07", 3));
    }
}
