//! Hierarchical failure domains: zone → rack → node trees and
//! topology-aware placement.
//!
//! The paper's adversary fails `k` individual nodes, but real clusters
//! fail along correlated boundaries: a rack's switch or a zone's power
//! feed takes every node under it down at once (Mills, Znati & Melhem's
//! hierarchical-failure-domain model). This module makes that structure
//! first class:
//!
//! * [`Topology`] — a multi-level tree over the node universe
//!   (`zone → rack → node`), with the flat single-level tree
//!   ([`Topology::flat`]) as the degenerate case that reproduces the
//!   paper's per-node model exactly;
//! * [`FailureUnit`] — the adversary's choices under a topology: every
//!   tree node (a leaf, a rack, a zone), each carrying the set of leaf
//!   nodes it takes down ([`Topology::failure_units`]);
//! * [`DomainSpreadStrategy`] — a [`PlacementStrategy`] that spreads
//!   each object's `r` replicas across maximally separated domains
//!   (minimum shared tree depth first, then load);
//! * [`DomainRepaired`] / [`repair_domain_collisions`] — a wrapper that
//!   post-processes *any* strategy's placement, re-homing replicas that
//!   collide inside one failure domain.
//!
//! The domain-level adversary itself (budget-`k` over failure units on
//! the word-parallel kernel) lives in `wcp-adversary`; the single-level
//! projection view of the same idea is [`crate::domains`].

use crate::strategy::PlacementStrategy;
use crate::{Placement, PlacementError, SystemParams};

/// A hierarchical failure-domain tree over nodes `0..n`.
///
/// The tree is stored bottom-up as one parent map per internal level:
/// level 0 is the nodes themselves, level 1 their racks, level 2 the
/// zones above the racks, and so on. Domains at each level partition the
/// level below (every entry has exactly one parent, every domain is
/// non-empty), so domains nest: two nodes in one rack are necessarily in
/// one zone.
///
/// # Examples
///
/// ```
/// use wcp_core::Topology;
///
/// // 12 nodes in 4 racks of 3, racks in 2 zones of 2.
/// let topo = Topology::split(12, &[4, 2])?;
/// assert_eq!(topo.num_levels(), 2);
/// assert_eq!(topo.domain_of(7, 1), 2); // node 7 sits in rack 2 …
/// assert_eq!(topo.domain_of(7, 2), 1); // … which sits in zone 1
/// assert_eq!(topo.nodes_in(1, 2), vec![6, 7, 8]);
/// // The adversary's choices: 12 leaves + 4 racks + 2 zones.
/// assert_eq!(topo.failure_units().len(), 18);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: u16,
    /// `maps[0][node]` is the node's level-1 domain; `maps[i][d]` is
    /// level-`i` domain `d`'s level-`i+1` parent.
    maps: Vec<Vec<u16>>,
    /// Domains per internal level (`counts[i]` for level `i + 1`).
    counts: Vec<u16>,
}

impl Topology {
    /// The flat topology: no internal levels, every node its own
    /// failure domain. Under it the domain adversary degenerates to the
    /// paper's per-node adversary.
    #[must_use]
    pub fn flat(n: u16) -> Self {
        Self {
            n,
            maps: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Builds a topology from explicit bottom-up parent maps:
    /// `maps[0]` assigns each of the `n` nodes a level-1 domain,
    /// `maps[i]` assigns each level-`i` domain a level-`i+1` parent.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] when a map's length does not
    /// match the level below, or some domain id is skipped (an empty
    /// domain).
    pub fn new(n: u16, maps: Vec<Vec<u16>>) -> Result<Self, PlacementError> {
        let mut counts = Vec::with_capacity(maps.len());
        let mut below = usize::from(n);
        for (level, map) in maps.iter().enumerate() {
            if map.len() != below {
                return Err(PlacementError::InvalidParams(format!(
                    "level-{} map covers {} entries, level below has {below}",
                    level + 1,
                    map.len()
                )));
            }
            let domains = map.iter().copied().max().map_or(0, |m| m + 1);
            if domains == 0 {
                return Err(PlacementError::InvalidParams(format!(
                    "level {} has no domains",
                    level + 1
                )));
            }
            let mut seen = vec![false; usize::from(domains)];
            for &d in map {
                seen[usize::from(d)] = true;
            }
            if let Some(empty) = seen.iter().position(|&s| !s) {
                return Err(PlacementError::InvalidParams(format!(
                    "domain {empty} at level {} is empty",
                    level + 1
                )));
            }
            counts.push(domains);
            below = usize::from(domains);
        }
        Ok(Self { n, maps, counts })
    }

    /// A single rack level from explicit node groups. Groups must
    /// partition `0..n`.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] on overlapping groups, empty
    /// groups, out-of-range nodes, or nodes not covered by any group.
    pub fn from_groups(n: u16, groups: &[Vec<u16>]) -> Result<Self, PlacementError> {
        const UNASSIGNED: u16 = u16::MAX;
        let mut map = vec![UNASSIGNED; usize::from(n)];
        for (d, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(PlacementError::InvalidParams(format!(
                    "domain {d} is empty"
                )));
            }
            for &nd in group {
                if nd >= n {
                    return Err(PlacementError::InvalidParams(format!(
                        "domain {d} contains node {nd} outside 0..{n}"
                    )));
                }
                if map[usize::from(nd)] != UNASSIGNED {
                    return Err(PlacementError::InvalidParams(format!(
                        "node {nd} appears in domains {} and {d}",
                        map[usize::from(nd)]
                    )));
                }
                map[usize::from(nd)] = d as u16;
            }
        }
        if let Some(nd) = map.iter().position(|&d| d == UNASSIGNED) {
            return Err(PlacementError::InvalidParams(format!(
                "node {nd} belongs to no domain"
            )));
        }
        Self::new(n, vec![map])
    }

    /// A balanced tree by near-equal contiguous splits: `counts[0]`
    /// racks over the nodes, `counts[1]` zones over the racks, and so
    /// on (bottom-up).
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] when a level asks for zero
    /// domains or more domains than the level below has entries.
    pub fn split(n: u16, counts: &[u16]) -> Result<Self, PlacementError> {
        let mut maps = Vec::with_capacity(counts.len());
        let mut below = n;
        for &domains in counts {
            if domains == 0 || domains > below {
                return Err(PlacementError::InvalidParams(format!(
                    "need 1 ≤ domains ≤ {below}, got {domains}"
                )));
            }
            let base = below / domains;
            let extra = below % domains;
            let mut map = Vec::with_capacity(usize::from(below));
            for d in 0..domains {
                let size = base + u16::from(d < extra);
                map.extend(std::iter::repeat_n(d, usize::from(size)));
            }
            maps.push(map);
            below = domains;
        }
        Self::new(n, maps)
    }

    /// Projects the topology onto a surviving node subset: node
    /// `active[i]` of the original universe becomes node `i` of the
    /// projected one, keeping its domain chain. Domains emptied by the
    /// projection disappear; surviving domains are renumbered densely
    /// per level in order of first appearance (ascending `active`), so
    /// the result satisfies [`Topology::new`]'s no-empty-domain
    /// invariant. Co-location is preserved exactly: two active nodes
    /// share a projected domain iff they shared the original one.
    ///
    /// This is what lets a slot-universe topology follow a dynamic
    /// membership: replanning at `m` active slots needs a topology over
    /// exactly those `m` compact nodes.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] when `active` is empty, not
    /// strictly ascending, or references a node outside `0..n`.
    pub fn project(&self, active: &[u16]) -> Result<Self, PlacementError> {
        if active.is_empty() {
            return Err(PlacementError::InvalidParams(
                "cannot project a topology onto zero nodes".into(),
            ));
        }
        if active.windows(2).any(|w| w[0] >= w[1]) || *active.last().unwrap() >= self.n {
            return Err(PlacementError::InvalidParams(format!(
                "active nodes must be strictly ascending within 0..{}",
                self.n
            )));
        }
        let mut maps = Vec::with_capacity(self.maps.len());
        // Surviving entries of the level below, by original id
        // (level 0: the active nodes themselves).
        let mut below: Vec<u16> = active.to_vec();
        for (level, map) in self.maps.iter().enumerate() {
            let mut dense = vec![u16::MAX; usize::from(self.counts[level])];
            let mut survivors = Vec::new();
            let mut projected = Vec::with_capacity(below.len());
            for &orig in &below {
                let parent = map[usize::from(orig)];
                let slot = &mut dense[usize::from(parent)];
                if *slot == u16::MAX {
                    *slot = survivors.len() as u16;
                    survivors.push(parent);
                }
                projected.push(*slot);
            }
            maps.push(projected);
            below = survivors;
        }
        Self::new(active.len() as u16, maps)
    }

    /// Number of leaf nodes.
    #[must_use]
    pub fn num_nodes(&self) -> u16 {
        self.n
    }

    /// Number of internal levels (0 for the flat topology).
    #[must_use]
    pub fn num_levels(&self) -> u16 {
        self.maps.len() as u16
    }

    /// The raw bottom-up parent maps ([`Topology::new`]'s input):
    /// `parent_maps()[0][node]` is the node's level-1 domain,
    /// `parent_maps()[i][d]` is level-`i` domain `d`'s parent. Lets
    /// experiment records embed the exact topology for re-verification.
    #[must_use]
    pub fn parent_maps(&self) -> &[Vec<u16>] {
        &self.maps
    }

    /// True when the topology has no internal levels.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        self.maps.is_empty()
    }

    /// Number of domains at internal level `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`num_levels`](Self::num_levels).
    #[must_use]
    pub fn domains_at(&self, level: u16) -> u16 {
        self.counts[usize::from(level) - 1]
    }

    /// The domain hosting `node` at internal level `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if the node or level is out of range.
    #[must_use]
    pub fn domain_of(&self, node: u16, level: u16) -> u16 {
        let mut d = self.maps[0][usize::from(node)];
        for map in &self.maps[1..usize::from(level)] {
            d = map[usize::from(d)];
        }
        d
    }

    /// The nodes under domain `domain` of internal level `level`
    /// (ascending).
    ///
    /// # Panics
    ///
    /// Panics if the level is out of range.
    #[must_use]
    pub fn nodes_in(&self, level: u16, domain: u16) -> Vec<u16> {
        (0..self.n)
            .filter(|&nd| self.domain_of(nd, level) == domain)
            .collect()
    }

    /// How many tree levels two nodes share: 0 when they meet only at
    /// the (implicit) root, up to [`num_levels`](Self::num_levels) when
    /// they sit in one bottom-level domain. Because domains nest, this
    /// is a co-location severity: same rack ⇒ larger than same zone
    /// only.
    #[must_use]
    pub fn shared_depth(&self, a: u16, b: u16) -> u16 {
        let levels = self.num_levels();
        for level in 1..=levels {
            if self.domain_of(a, level) == self.domain_of(b, level) {
                // Nesting: sharing level ℓ implies sharing every level
                // above, so a and b share all levels from ℓ up.
                return levels - level + 1;
            }
        }
        0
    }

    /// Every choice the domain adversary can spend budget on: all `n`
    /// leaves (level 0) followed by every internal domain, level by
    /// level. Units whose leaf set duplicates an earlier unit's (the
    /// fan-out-1 chains: a rack with one node, a zone with one rack) are
    /// emitted once, at their lowest level.
    #[must_use]
    pub fn failure_units(&self) -> Vec<FailureUnit> {
        let mut units: Vec<FailureUnit> = (0..self.n)
            .map(|nd| FailureUnit {
                level: 0,
                id: nd,
                nodes: vec![nd],
            })
            .collect();
        let mut seen: std::collections::BTreeSet<Vec<u16>> =
            units.iter().map(|u| u.nodes.clone()).collect();
        for level in 1..=self.num_levels() {
            for domain in 0..self.domains_at(level) {
                let nodes = self.nodes_in(level, domain);
                if seen.insert(nodes.clone()) {
                    units.push(FailureUnit {
                        level,
                        id: domain,
                        nodes,
                    });
                }
            }
        }
        units
    }
}

/// One choice of the domain adversary: a tree node and the leaf set it
/// fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureUnit {
    /// Tree level: 0 for a leaf node, 1 for a rack, 2 for a zone, …
    pub level: u16,
    /// Domain id within its level (the node id for leaves).
    pub id: u16,
    /// The leaf nodes this unit takes down (ascending).
    pub nodes: Vec<u16>,
}

/// A topology-aware strategy spreading each object's `r` replicas
/// across maximally separated failure domains: replicas are chosen one
/// at a time, minimizing first the deepest tree level shared with the
/// already-chosen replicas, then node load, then node id.
///
/// Under the flat topology this degenerates to deterministic
/// least-loaded assignment. Its
/// [`lower_bound`](PlacementStrategy::lower_bound) is the projection
/// bound of the placement it builds — sound under the *domain*
/// adversary, where the strategy's value shows up: replicas never
/// share a rack as long as racks outnumber `r`.
#[derive(Debug, Clone)]
pub struct DomainSpreadStrategy {
    topology: Topology,
}

impl DomainSpreadStrategy {
    /// A spread strategy over the given topology.
    #[must_use]
    pub fn new(topology: Topology) -> Self {
        Self { topology }
    }

    /// The topology the strategy spreads over.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

/// The projection (counting) availability bound under the domain
/// adversary, read off a concretely built placement.
///
/// Preconditions: the topology has at most one internal level, and
/// every object's replicas land on pairwise-distinct bottom-level
/// units (nodes when flat, racks otherwise). Then any failure unit
/// holds at most one replica of each object, so any `k` failed units
/// hold at most `L_k` replicas — the `k` heaviest unit loads — while
/// every killed object absorbs at least `s` of them:
/// `failed ≤ ⌊L_k / s⌋`. Mixed leaf/rack attacks are covered
/// because a leaf's load never exceeds its rack's and units inside one
/// rack are disjoint, so any `k` units are dominated by the `k`
/// heaviest racks.
///
/// Returns the vacuous 0 when a precondition fails (deeper topologies,
/// or a replica collision inside one unit).
fn projection_bound(topology: &Topology, placement: &Placement, params: &SystemParams) -> i64 {
    if topology.num_levels() > 1 {
        return 0;
    }
    let flat = topology.is_flat();
    let units = if flat {
        usize::from(params.n())
    } else {
        usize::from(topology.domains_at(1))
    };
    let mut loads = vec![0u64; units];
    let mut seen: Vec<u16> = Vec::with_capacity(usize::from(params.r()));
    for set in placement.replica_sets() {
        seen.clear();
        for &nd in set {
            let unit = if flat { nd } else { topology.domain_of(nd, 1) };
            if seen.contains(&unit) {
                return 0; // Colliding replicas: the counting argument is void.
            }
            seen.push(unit);
            loads[usize::from(unit)] += 1;
        }
    }
    loads.sort_unstable_by(|a, b| b.cmp(a));
    let l_k: u64 = loads.iter().take(usize::from(params.k())).sum();
    (params.b() as i64 - (l_k / u64::from(params.s())) as i64).max(0)
}

impl PlacementStrategy for DomainSpreadStrategy {
    fn name(&self) -> &str {
        "domain-spread"
    }

    /// The projection bound of the placement this strategy determinis-
    /// tically builds — not a closed form, but sound under the domain
    /// adversary (and a fortiori under the paper's node adversary,
    /// whose attacks are a subset of the unit attacks). 0 when the
    /// placement cannot be built or spread collision-free.
    fn lower_bound(&self, params: &SystemParams) -> i64 {
        match self.build(params) {
            Ok(placement) => projection_bound(&self.topology, &placement, params),
            Err(_) => 0,
        }
    }

    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        if self.topology.num_nodes() != params.n() {
            return Err(PlacementError::InvalidParams(format!(
                "topology spans {} nodes, system has {}",
                self.topology.num_nodes(),
                params.n()
            )));
        }
        let n = params.n();
        let r = usize::from(params.r());
        let mut loads = vec![0u32; usize::from(n)];
        let mut sets = Vec::with_capacity(params.b() as usize);
        for _ in 0..params.b() {
            let mut set: Vec<u16> = Vec::with_capacity(r);
            for _ in 0..r {
                let mut best: Option<(u16, u32, u16)> = None;
                for nd in 0..n {
                    if set.contains(&nd) {
                        continue;
                    }
                    let collision = set
                        .iter()
                        .map(|&c| self.topology.shared_depth(nd, c))
                        .max()
                        .unwrap_or(0);
                    let key = (collision, loads[usize::from(nd)], nd);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                let (_, _, nd) = best.expect("r ≤ n leaves a choice");
                loads[usize::from(nd)] += 1;
                set.push(nd);
            }
            set.sort_unstable();
            sets.push(set);
        }
        Placement::new(n, params.r(), sets)
    }
}

/// Re-homes replicas that collide inside a failure domain: for each
/// object, as long as some replica shares a domain with another and a
/// strictly less-colliding node exists, the worst-colliding replica
/// moves to the node minimizing (shared depth with the rest, load, id).
/// Returns the repaired placement and the number of replicas moved.
///
/// Collisions that cannot be resolved (fewer bottom-level domains than
/// `r`) are left at the least-colliding arrangement found.
///
/// # Errors
///
/// [`PlacementError::InvalidParams`] when the topology's node count
/// does not match the placement's.
pub fn repair_domain_collisions(
    placement: &Placement,
    topology: &Topology,
) -> Result<(Placement, u64), PlacementError> {
    if topology.num_nodes() != placement.num_nodes() {
        return Err(PlacementError::InvalidParams(format!(
            "topology spans {} nodes, placement has {}",
            topology.num_nodes(),
            placement.num_nodes()
        )));
    }
    let n = placement.num_nodes();
    let r = placement.replicas_per_object();
    let mut sets = placement.replica_sets().to_vec();
    let mut loads = placement.loads();
    let mut moved = 0u64;
    for set in &mut sets {
        // Up to r passes: each moves the worst-colliding replica if a
        // strictly better home exists.
        for _ in 0..r {
            let collision = |v: u16, others: &[u16]| -> u16 {
                others
                    .iter()
                    .filter(|&&o| o != v)
                    .map(|&o| topology.shared_depth(v, o))
                    .max()
                    .unwrap_or(0)
            };
            let Some((worst_at, worst)) = set
                .iter()
                .enumerate()
                .map(|(i, &v)| (i, collision(v, set)))
                .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            else {
                break;
            };
            if worst == 0 {
                break;
            }
            let out = set[worst_at];
            let others: Vec<u16> = set.iter().copied().filter(|&v| v != out).collect();
            let target = (0..n)
                .filter(|nd| set.binary_search(nd).is_err())
                .map(|nd| (collision(nd, &others), loads[usize::from(nd)], nd))
                .min();
            let Some((new_collision, _, target)) = target else {
                break;
            };
            if new_collision >= worst {
                break;
            }
            set.remove(worst_at);
            let at = set.binary_search(&target).expect_err("target not in set");
            set.insert(at, target);
            loads[usize::from(out)] -= 1;
            loads[usize::from(target)] += 1;
            moved += 1;
        }
    }
    Ok((Placement::new(n, r, sets)?, moved))
}

/// Any strategy made topology aware: builds the inner placement, then
/// [`repair_domain_collisions`] re-homes same-domain replicas. The
/// inner strategy's bound is not preserved by the rewrite; the wrapper
/// instead claims the projection bound of its own repaired placement
/// (0 when repairs could not clear every collision).
pub struct DomainRepaired {
    inner: Box<dyn PlacementStrategy>,
    topology: Topology,
    name: String,
}

impl DomainRepaired {
    /// Wraps a planned strategy with post-build domain repair.
    #[must_use]
    pub fn new(inner: Box<dyn PlacementStrategy>, topology: Topology) -> Self {
        let name = format!("domain-repaired({})", inner.name());
        Self {
            inner,
            topology,
            name,
        }
    }
}

impl std::fmt::Debug for DomainRepaired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainRepaired")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl PlacementStrategy for DomainRepaired {
    fn name(&self) -> &str {
        &self.name
    }

    /// The projection bound of the repaired placement (see
    /// [`DomainSpreadStrategy::lower_bound`]): sound under the domain
    /// adversary, 0 when unbuildable or still colliding after repair.
    fn lower_bound(&self, params: &SystemParams) -> i64 {
        match self.build(params) {
            Ok(placement) => projection_bound(&self.topology, &placement, params),
            Err(_) => 0,
        }
    }

    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        let inner = self.inner.build(params)?;
        let (repaired, _) = repair_domain_collisions(&inner, &self.topology)?;
        Ok(repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlannerContext, RandomStrategy, RandomVariant, StrategyKind};

    #[test]
    fn split_builds_nested_levels() {
        let topo = Topology::split(13, &[4, 2]).unwrap();
        assert_eq!(topo.num_nodes(), 13);
        assert_eq!(topo.num_levels(), 2);
        assert_eq!(topo.domains_at(1), 4);
        assert_eq!(topo.domains_at(2), 2);
        // Near-equal contiguous: 4+3+3+3 nodes, 2+2 racks.
        let sizes: Vec<usize> = (0..4).map(|d| topo.nodes_in(1, d).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3, 3]);
        // Nesting: same rack implies same zone.
        for a in 0..13 {
            for b in 0..13 {
                if topo.domain_of(a, 1) == topo.domain_of(b, 1) {
                    assert_eq!(topo.domain_of(a, 2), topo.domain_of(b, 2));
                }
            }
        }
    }

    #[test]
    fn invalid_topologies_rejected() {
        // Wrong map length.
        assert!(Topology::new(4, vec![vec![0, 0, 1]]).is_err());
        // Skipped (empty) domain id.
        assert!(Topology::new(4, vec![vec![0, 0, 2, 2]]).is_err());
        // Second level not covering the first level's domains.
        assert!(Topology::new(4, vec![vec![0, 0, 1, 1], vec![0]]).is_err());
        // Split bounds.
        assert!(Topology::split(5, &[0]).is_err());
        assert!(Topology::split(5, &[6]).is_err());
        assert!(Topology::split(6, &[3, 4]).is_err());
    }

    #[test]
    fn explicit_groups_validate_overlap_and_coverage() {
        let topo = Topology::from_groups(6, &[vec![0, 3], vec![1, 4], vec![2, 5]]).unwrap();
        assert_eq!(topo.domain_of(4, 1), 1);
        assert_eq!(topo.nodes_in(1, 0), vec![0, 3]);
        // Overlap.
        assert!(Topology::from_groups(4, &[vec![0, 1], vec![1, 2, 3]]).is_err());
        // Empty group.
        assert!(Topology::from_groups(2, &[vec![0, 1], vec![]]).is_err());
        // Uncovered node.
        assert!(Topology::from_groups(4, &[vec![0, 1], vec![2]]).is_err());
        // Out of range.
        assert!(Topology::from_groups(3, &[vec![0, 1], vec![2, 3]]).is_err());
    }

    #[test]
    fn flat_units_are_exactly_the_leaves() {
        let topo = Topology::flat(5);
        assert!(topo.is_flat());
        let units = topo.failure_units();
        assert_eq!(units.len(), 5);
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.level, 0);
            assert_eq!(u.nodes, vec![i as u16]);
        }
        assert_eq!(topo.shared_depth(0, 1), 0);
    }

    #[test]
    fn fanout_one_chains_deduplicate() {
        // 3 nodes, 3 racks (one node each), 1 zone: the rack units
        // duplicate the leaves and are dropped; the zone survives.
        let topo = Topology::split(3, &[3, 1]).unwrap();
        let units = topo.failure_units();
        assert_eq!(units.len(), 4);
        assert_eq!(units[3].level, 2);
        assert_eq!(units[3].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn shared_depth_ranks_colocations() {
        let topo = Topology::split(12, &[4, 2]).unwrap();
        // Nodes 0,1 share rack 0 (and zone 0): depth 2.
        assert_eq!(topo.shared_depth(0, 1), 2);
        // Nodes 0 and 3: racks 0 vs 1, both zone 0: depth 1.
        assert_eq!(topo.shared_depth(0, 3), 1);
        // Nodes 0 and 11: different zones: depth 0.
        assert_eq!(topo.shared_depth(0, 11), 0);
        assert_eq!(topo.shared_depth(5, 5), 2);
    }

    #[test]
    fn project_preserves_colocation_with_dense_ids() {
        // racks {0,1,2}..{9,10,11}; zones {racks 0,1} and {racks 2,3}.
        let topo = Topology::split(12, &[4, 2]).unwrap();
        let active = [1u16, 2, 5, 6, 10, 11];
        let proj = topo.project(&active).unwrap();
        assert_eq!(proj.num_nodes(), 6);
        assert_eq!(proj.num_levels(), 2);
        // Co-location survives projection exactly: node i of the
        // projection is node active[i] of the original.
        for (i, &a) in active.iter().enumerate() {
            for (j, &b) in active.iter().enumerate() {
                assert_eq!(
                    proj.shared_depth(i as u16, j as u16),
                    topo.shared_depth(a, b),
                    "depth mismatch projecting ({a}, {b})"
                );
            }
        }
        // All four racks and both zones keep at least one node.
        assert_eq!(proj.domains_at(1), 4);
        assert_eq!(proj.domains_at(2), 2);
    }

    #[test]
    fn project_drops_emptied_domains() {
        let topo = Topology::split(8, &[4]).unwrap();
        // Rack 1 ({2, 3}) loses both nodes and disappears.
        let proj = topo.project(&[0, 1, 4, 5, 6, 7]).unwrap();
        assert_eq!(proj.domains_at(1), 3);
        // Full membership projects to the identity.
        let all: Vec<u16> = (0..8).collect();
        assert_eq!(topo.project(&all).unwrap(), topo);
    }

    #[test]
    fn project_rejects_bad_subsets() {
        let topo = Topology::split(8, &[4]).unwrap();
        assert!(topo.project(&[]).is_err());
        assert!(topo.project(&[3, 1]).is_err());
        assert!(topo.project(&[1, 1]).is_err());
        assert!(topo.project(&[0, 8]).is_err());
    }

    #[test]
    fn spread_strategy_avoids_rack_collisions() {
        let topo = Topology::split(12, &[4]).unwrap();
        let params = SystemParams::new(12, 40, 3, 2, 3).unwrap();
        let placement = DomainSpreadStrategy::new(topo.clone())
            .build(&params)
            .unwrap();
        assert_eq!(placement.num_objects(), 40);
        for set in placement.replica_sets() {
            let mut racks: Vec<u16> = set.iter().map(|&nd| topo.domain_of(nd, 1)).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(racks.len(), 3, "replicas share a rack: {set:?}");
        }
        // Load stays balanced: 120 replicas over 12 nodes.
        assert!(placement.max_load() <= 11);
    }

    /// Brute-force worst-case availability under the domain adversary:
    /// every `k`-subset of failure units, by bitmask (test shapes keep
    /// the unit count small).
    fn exact_domain_availability(placement: &Placement, topo: &Topology, s: u16, k: u16) -> u64 {
        let units = topo.failure_units();
        assert!(units.len() < 22, "test shape too large for brute force");
        let mut worst = 0;
        for mask in 0u32..(1 << units.len()) {
            if mask.count_ones() != u32::from(k) {
                continue;
            }
            let mut nodes: Vec<u16> = units
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .flat_map(|(_, u)| u.nodes.iter().copied())
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            worst = worst.max(placement.failed_objects(&nodes, s));
        }
        placement.num_objects() as u64 - worst
    }

    #[test]
    fn spread_bound_is_tight_on_flat_balanced_shapes() {
        // Flat, n = 6, b = 6, r = 3: least-loaded assignment packs the
        // sets {0,1,2} and {3,4,5} three times each. Node loads are all
        // 3, so L_2 = 6 and the bound claims b − ⌊6/2⌋ = 3 — exactly
        // what failing nodes {0, 1} achieves.
        let topo = Topology::flat(6);
        let params = SystemParams::new(6, 6, 3, 2, 2).unwrap();
        let strategy = DomainSpreadStrategy::new(topo.clone());
        let bound = strategy.lower_bound(&params);
        assert_eq!(bound, 3);
        let placement = strategy.build(&params).unwrap();
        assert_eq!(exact_domain_availability(&placement, &topo, 2, 2), 3);
    }

    #[test]
    fn spread_bound_is_sound_on_small_exhaustive_shapes() {
        // Every valid (s, k) on a 12-node rack topology: the claimed
        // bound never exceeds the brute-forced worst case.
        let topo = Topology::split(12, &[4]).unwrap();
        for (s, k) in [(1u16, 1u16), (1, 2), (2, 2), (2, 3), (3, 3), (3, 4)] {
            let params = SystemParams::new(12, 12, 3, s, k).unwrap();
            let strategy = DomainSpreadStrategy::new(topo.clone());
            let bound = strategy.lower_bound(&params);
            let placement = strategy.build(&params).unwrap();
            let exact = exact_domain_availability(&placement, &topo, s, k);
            assert!(
                bound >= 0 && bound as u64 <= exact,
                "bound {bound} exceeds exact {exact} at s={s} k={k}"
            );
        }
    }

    #[test]
    fn spread_bound_is_vacuous_only_when_preconditions_fail() {
        let params = SystemParams::new(12, 12, 3, 2, 2).unwrap();
        // Two-level topologies are outside the counting argument.
        let deep = Topology::split(12, &[4, 2]).unwrap();
        assert_eq!(DomainSpreadStrategy::new(deep).lower_bound(&params), 0);
        // Fewer racks than r forces a collision, voiding the argument.
        let cramped = Topology::split(12, &[2]).unwrap();
        assert_eq!(DomainSpreadStrategy::new(cramped).lower_bound(&params), 0);
    }

    #[test]
    fn repaired_wrapper_claims_the_projection_bound() {
        let topo = Topology::split(12, &[4]).unwrap();
        let params = SystemParams::new(12, 12, 3, 2, 2).unwrap();
        let inner = StrategyKind::Random {
            seed: 7,
            variant: RandomVariant::LoadBalanced,
        }
        .plan(&params, &PlannerContext::default())
        .unwrap();
        let wrapper = DomainRepaired::new(inner, topo.clone());
        let bound = wrapper.lower_bound(&params);
        assert!(bound > 0, "repaired placement should earn a real bound");
        let placement = wrapper.build(&params).unwrap();
        let exact = exact_domain_availability(&placement, &topo, 2, 2);
        assert!(bound as u64 <= exact, "bound {bound} exceeds exact {exact}");
        // With fewer racks than r the repairs cannot clear collisions
        // and the wrapper must fall back to the vacuous claim.
        let cramped = Topology::split(12, &[2]).unwrap();
        let inner = StrategyKind::Random {
            seed: 7,
            variant: RandomVariant::LoadBalanced,
        }
        .plan(&params, &PlannerContext::default())
        .unwrap();
        assert_eq!(DomainRepaired::new(inner, cramped).lower_bound(&params), 0);
    }

    #[test]
    fn spread_strategy_rejects_mismatched_topology() {
        let params = SystemParams::new(12, 40, 3, 2, 3).unwrap();
        assert!(DomainSpreadStrategy::new(Topology::flat(9))
            .build(&params)
            .is_err());
    }

    #[test]
    fn repair_removes_collisions_when_capacity_allows() {
        let topo = Topology::split(12, &[4]).unwrap();
        let params = SystemParams::new(12, 30, 3, 2, 3).unwrap();
        // A rack-oblivious random placement collides often.
        let oblivious = RandomStrategy::new(7, RandomVariant::LoadBalanced)
            .place(&params)
            .unwrap();
        let (repaired, moved) = repair_domain_collisions(&oblivious, &topo).unwrap();
        assert!(moved > 0, "expected at least one collision to repair");
        for set in repaired.replica_sets() {
            let mut racks: Vec<u16> = set.iter().map(|&nd| topo.domain_of(nd, 1)).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(racks.len(), 3, "unresolved collision: {set:?}");
        }
        // Idempotent once clean.
        let (again, moved_again) = repair_domain_collisions(&repaired, &topo).unwrap();
        assert_eq!(moved_again, 0);
        assert_eq!(again, repaired);
    }

    #[test]
    fn repair_is_identity_on_flat_topologies() {
        let params = SystemParams::new(9, 20, 3, 2, 3).unwrap();
        let placement = RandomStrategy::new(3, RandomVariant::LoadBalanced)
            .place(&params)
            .unwrap();
        let (repaired, moved) = repair_domain_collisions(&placement, &Topology::flat(9)).unwrap();
        assert_eq!(moved, 0);
        assert_eq!(repaired, placement);
        // Mismatched universe is rejected.
        assert!(repair_domain_collisions(&placement, &Topology::flat(8)).is_err());
    }

    #[test]
    fn repaired_wrapper_builds_through_the_trait() {
        let topo = Topology::split(12, &[4]).unwrap();
        let params = SystemParams::new(12, 24, 3, 2, 3).unwrap();
        let inner = StrategyKind::Ring
            .plan(&params, &PlannerContext::default())
            .unwrap();
        let wrapped = DomainRepaired::new(inner, topo.clone());
        assert_eq!(wrapped.name(), "domain-repaired(ring)");
        assert_eq!(wrapped.lower_bound(&params), 0);
        let placement = wrapped.build(&params).unwrap();
        for set in placement.replica_sets() {
            let mut racks: Vec<u16> = set.iter().map(|&nd| topo.domain_of(nd, 1)).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(racks.len(), 3, "ring collision survived repair: {set:?}");
        }
    }
}
