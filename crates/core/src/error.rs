//! Error type shared by the placement strategies.

use std::fmt;
use wcp_designs::DesignError;

/// Errors raised when validating parameters or building placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// System parameters violate the model constraints of Fig. 1
    /// (`1 ≤ s ≤ r ≤ n`, `s ≤ k < n`, …).
    InvalidParams(String),
    /// The requested strategy cannot place all `b` objects within its
    /// capacity constraint (Lemma 1 / Eqn. 3).
    InsufficientCapacity {
        /// Objects requested.
        requested: u64,
        /// Objects placeable.
        capacity: u64,
    },
    /// An underlying design construction failed.
    Design(String),
    /// A placement failed structural validation.
    InvalidPlacement(String),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            PlacementError::InsufficientCapacity {
                requested,
                capacity,
            } => write!(
                f,
                "cannot place {requested} objects, capacity is {capacity}"
            ),
            PlacementError::Design(msg) => write!(f, "design construction failed: {msg}"),
            PlacementError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl From<DesignError> for PlacementError {
    fn from(e: DesignError) -> Self {
        PlacementError::Design(e.to_string())
    }
}
