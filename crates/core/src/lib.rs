//! Worst-case replica placement strategies (Li, Gao & Reiter, ICDCS 2015).
//!
//! A system of `n` nodes hosts `b` objects, each replicated onto `r`
//! distinct nodes. An adversary who knows the placement fails `k` nodes;
//! an object fails once `s` of its replicas are on failed nodes. The
//! availability of a placement is the number of objects that survive the
//! *worst* choice of `k` nodes (Definition 1). This crate implements the
//! paper's placement strategies and their availability lower bounds:
//!
//! * [`Placement`] — the `π : O → 2^N` mapping, with validation and load
//!   accounting;
//! * [`SimpleStrategy`] — `Simple(x, λ)` placements (Definition 2), i.e.
//!   `(x+1)-(n, r, λ)` packings, built from the constructive design
//!   registry of [`wcp_designs`]; availability bound `lbAvail_si` (Lemma 2);
//! * [`ComboStrategy`] — `Combo(⟨λ_x⟩)` placements (Definition 3) dividing
//!   objects across `Simple(x, λ_x)` sub-placements; includes the dynamic
//!   program of Sec. III-B1 (Eqns. 5–7) maximizing the bound `lbAvail_co`
//!   (Lemma 3) for a target number of failures `k`;
//! * [`RandomStrategy`] — the load-balanced random placement the paper
//!   compares against (Definition 4), plus the unconstrained variant
//!   `Random′` used in the Theorem-2 analysis;
//! * [`PackingProfile`] — the per-`x` packing parameters `(n_x, μ_x)` and
//!   capacities feeding the DP: either the paper's Fig. 4 table
//!   ([`PackingProfile::paper`]) or whatever the construction registry can
//!   actually build ([`PackingProfile::constructive`]);
//! * [`PlacementStrategy`] / [`StrategyKind`] — the unified strategy
//!   abstraction every family (Simple, Combo, Random, the ring/group
//!   baselines, adaptive snapshots) implements;
//! * [`Engine`] — the facade running plan → build → attack → report in
//!   one call, returning a serializable [`EvaluationReport`].
//!
//! # Quickstart
//!
//! ```
//! use wcp_core::{Engine, StrategyKind, SystemParams};
//!
//! // 71 nodes, 1200 objects, 3 replicas each; an object dies when 2
//! // replicas die; plan for 3 node failures.
//! let params = SystemParams::new(71, 1200, 3, 2, 3)?;
//! let report = Engine::new(params).evaluate(&StrategyKind::Combo)?;
//! assert!(report.lower_bound > 1100); // most objects survive, guaranteed
//! assert!(report.measured_availability as i64 >= report.lower_bound);
//! # Ok::<(), wcp_core::PlacementError>(())
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod baselines;
mod bounds;
pub mod certificate;
mod combo;
pub mod domains;
pub mod dynamic;
pub mod engine;
mod error;
pub mod io;
pub mod parallel;
mod params;
mod placement;
pub mod profiles;
mod random;
mod simple;
pub mod strategy;
pub mod sweep;
pub mod topology;

pub use adaptive::AdaptiveSnapshot;
pub use baselines::{GroupStrategy, RingStrategy};
pub use bounds::{lb_avail_co, lb_avail_si, simple_capacity};
pub use certificate::{
    placement_digest, Certificate, CertificateKind, Fnv, LedgerEntry, Rung, RungKind,
};
pub use combo::{combo_plan, ComboPlan, ComboStrategy};
pub use dynamic::{
    movement_between, ClusterEvent, DynamicConfig, DynamicEngine, DynamicError, MovementReport,
    RepairAction, StepReport,
};
pub use engine::{
    AttackOutcome, Attacker, Engine, EvaluationReport, ExhaustiveAttacker, LoadStats, Timings,
};
pub use error::PlacementError;
pub use parallel::Parallelism;
pub use params::SystemParams;
pub use placement::Placement;
pub use profiles::{PackingProfile, UnitSpec};
pub use random::{RandomStrategy, RandomVariant};
pub use simple::SimpleStrategy;
pub use strategy::{PlacementStrategy, PlannerContext, StrategyKind};
pub use sweep::{
    run_indexed, sweep_with, AdversarySpec, CellAttacker, DefaultCellAttacker, ParamGrid,
    SweepCell, SweepOptions, SweepRecord, SweepSpec,
};
pub use topology::{
    repair_domain_collisions, DomainRepaired, DomainSpreadStrategy, FailureUnit, Topology,
};
