//! System parameters (the paper's Fig. 1 notation).

use crate::PlacementError;

/// The parameters of a placement problem instance.
///
/// | field | paper | meaning |
/// |---|---|---|
/// | `n` | `n` | number of nodes |
/// | `b` | `b` | number of objects |
/// | `r` | `r` | replicas per object |
/// | `s` | `s` | replica failures that fail an object, `1 ≤ s ≤ r` |
/// | `k` | `k` | node failures to plan for, `s ≤ k < n` |
///
/// # Examples
///
/// ```
/// use wcp_core::SystemParams;
///
/// let p = SystemParams::new(71, 2400, 3, 2, 4)?;
/// assert_eq!(p.n(), 71);
/// assert!(SystemParams::new(71, 2400, 3, 5, 4).is_err()); // s > r
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemParams {
    n: u16,
    b: u64,
    r: u16,
    s: u16,
    k: u16,
}

impl SystemParams {
    /// Validates and creates an instance.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] when any model constraint fails:
    /// `r ≥ 1`, `1 ≤ s ≤ r`, `s ≤ k < n`, `r ≤ n`, `b ≥ 1`.
    pub fn new(n: u16, b: u64, r: u16, s: u16, k: u16) -> Result<Self, PlacementError> {
        if r == 0 {
            return Err(PlacementError::InvalidParams("r must be ≥ 1".into()));
        }
        if s == 0 || s > r {
            return Err(PlacementError::InvalidParams(format!(
                "s must satisfy 1 ≤ s ≤ r, got s={s}, r={r}"
            )));
        }
        if k < s || k >= n {
            return Err(PlacementError::InvalidParams(format!(
                "k must satisfy s ≤ k < n, got s={s}, k={k}, n={n}"
            )));
        }
        if r > n {
            return Err(PlacementError::InvalidParams(format!(
                "r replicas need r ≤ n distinct nodes, got r={r}, n={n}"
            )));
        }
        if b == 0 {
            return Err(PlacementError::InvalidParams("b must be ≥ 1".into()));
        }
        Ok(Self { n, b, r, s, k })
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> u16 {
        self.n
    }

    /// Number of objects.
    #[must_use]
    pub fn b(&self) -> u64 {
        self.b
    }

    /// Replicas per object.
    #[must_use]
    pub fn r(&self) -> u16 {
        self.r
    }

    /// Fatality threshold: replica failures that fail an object.
    #[must_use]
    pub fn s(&self) -> u16 {
        self.s
    }

    /// Node failures planned for.
    #[must_use]
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Same parameters with a different failure count (used by the Fig. 3
    /// sensitivity study).
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] if `k` is out of range.
    pub fn with_k(&self, k: u16) -> Result<Self, PlacementError> {
        Self::new(self.n, self.b, self.r, self.s, k)
    }

    /// Same parameters with a different object count.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] if `b = 0`.
    pub fn with_b(&self, b: u64) -> Result<Self, PlacementError> {
        Self::new(self.n, b, self.r, self.s, self.k)
    }

    /// The load-balance target `ℓ = rb/n` (average replicas per node).
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        u64::from(self.r) as f64 * self.b as f64 / f64::from(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_paper_instances() {
        for (n, b, r, s, k) in [
            (71u16, 600u64, 2u16, 2u16, 2u16),
            (71, 38_400, 5, 5, 7),
            (257, 9600, 5, 3, 8),
            (31, 4800, 3, 2, 5),
        ] {
            assert!(
                SystemParams::new(n, b, r, s, k).is_ok(),
                "({n},{b},{r},{s},{k})"
            );
        }
    }

    #[test]
    fn invalid_instances() {
        assert!(SystemParams::new(71, 600, 0, 1, 2).is_err()); // r = 0
        assert!(SystemParams::new(71, 600, 3, 0, 2).is_err()); // s = 0
        assert!(SystemParams::new(71, 600, 3, 4, 4).is_err()); // s > r
        assert!(SystemParams::new(71, 600, 3, 2, 1).is_err()); // k < s
        assert!(SystemParams::new(71, 600, 3, 2, 71).is_err()); // k = n
        assert!(SystemParams::new(4, 600, 5, 2, 3).is_err()); // r > n
        assert!(SystemParams::new(71, 0, 3, 2, 3).is_err()); // b = 0
    }

    #[test]
    fn load_factor() {
        let p = SystemParams::new(71, 1200, 3, 2, 3).unwrap();
        assert!((p.load_factor() - 3600.0 / 71.0).abs() < 1e-12);
    }

    #[test]
    fn with_k_revalidates() {
        let p = SystemParams::new(71, 1200, 3, 2, 3).unwrap();
        assert!(p.with_k(5).is_ok());
        assert!(p.with_k(1).is_err());
    }
}
