//! Packing profiles: the per-`x` parameters `(n_x, μ_x)` and capacities
//! that instantiate `Simple(x, λ)` placements and feed the Combo DP.
//!
//! The paper's Sec. III-C selects, for each `x < s`, a sub-system size
//! `n_x ≤ n` and index `μ_x` for which a `(x+1)-(n_x, r, μ_x)` design is
//! known; its Fig. 4 lists the choices for `n ∈ {31, 71, 257}`. A profile
//! captures those choices together with the *capacity* one index unit
//! provides. Two flavors exist:
//!
//! * [`PackingProfile::paper`] — the verbatim Fig. 4 table with
//!   design-theoretic capacities `μ_x·C(n_x, x+1)/C(r, x+1)` (kept as a
//!   rational so the paper's one divisibility-violating entry, `2-(70,4,1)`,
//!   still evaluates the way the paper's arithmetic does);
//! * [`PackingProfile::constructive`] — whatever
//!   [`wcp_designs::registry`] can actually build, with *achieved*
//!   capacities; placements built from this profile are real block
//!   collections, not just arithmetic.

use crate::{PlacementError, SystemParams};
use wcp_designs::registry::{best_unit_packing, RegistryConfig, UnitPacking};

/// Parameters of one `Simple(x, ·)` slot inside a profile.
#[derive(Debug, Clone)]
pub struct UnitSpec {
    /// Strength-defining overlap bound `x` (the slot covers `x ∈ [s]`).
    pub x: u16,
    /// Sub-system size `n_x ≤ n` (0 when the slot is unusable).
    pub nx: u16,
    /// Design index of one unit; `λ_x` must be a multiple of `μ_x`
    /// (Observation 1).
    pub mu: u64,
    /// Capacity numerator: one unit (index `μ_x`) holds
    /// `⌊d·cap_num/cap_den⌋` objects at `λ_x = d·μ_x`.
    pub cap_num: u64,
    /// Capacity denominator.
    pub cap_den: u64,
    /// Which design backs this slot.
    pub provenance: String,
    /// Constructive unit, when the profile can actually build placements.
    pub unit: Option<UnitPacking>,
}

impl UnitSpec {
    /// Objects placeable with `d` index units (`λ_x = d·μ_x`):
    /// `⌊d·cap_num/cap_den⌋`.
    #[must_use]
    pub fn capacity(&self, d: u64) -> u64 {
        if self.cap_den == 0 {
            return 0;
        }
        u64::try_from(u128::from(d) * u128::from(self.cap_num) / u128::from(self.cap_den))
            .expect("capacity fits u64")
    }

    /// Smallest unit count whose capacity reaches `b` (`None` if even huge
    /// `d` cannot, i.e. the slot is unusable).
    #[must_use]
    pub fn units_for(&self, b: u64) -> Option<u64> {
        if b == 0 {
            return Some(0);
        }
        if self.cap_num == 0 {
            return None;
        }
        // ceil(b·den/num)
        let d = (u128::from(b) * u128::from(self.cap_den)).div_ceil(u128::from(self.cap_num));
        Some(u64::try_from(d).expect("unit count fits u64"))
    }
}

/// A full per-`x` profile for a system (`x ∈ [s]`).
#[derive(Debug, Clone)]
pub struct PackingProfile {
    r: u16,
    s: u16,
    specs: Vec<UnitSpec>,
}

/// The paper's Fig. 4 sub-system sizes: `fig4_nx(n, r, x)` for
/// `n ∈ {31, 71, 257}`, `2 ≤ r ≤ 5`, `1 ≤ x < r` (μ = 1 throughout;
/// `x = 0` uses `n_0 = n`).
#[must_use]
pub fn fig4_nx(n: u16, r: u16, x: u16) -> Option<u16> {
    if x == 0 {
        return matches!(n, 31 | 71 | 257).then_some(n);
    }
    let table: &[(u16, u16, &[u16])] = &[
        // (n, r, [n_1, n_2, …, n_{r-1}])
        (31, 2, &[31]),
        (31, 3, &[31, 31]),
        (31, 4, &[28, 28, 31]),
        (31, 5, &[25, 26, 23, 31]),
        (71, 2, &[71]),
        (71, 3, &[69, 71]),
        (71, 4, &[70, 70, 71]),
        (71, 5, &[65, 65, 71, 71]),
        (257, 2, &[257]),
        (257, 3, &[255, 257]),
        (257, 4, &[256, 256, 257]),
        (257, 5, &[245, 257, 243, 257]),
    ];
    table
        .iter()
        .find(|&&(tn, tr, _)| tn == n && tr == r)
        .and_then(|&(_, _, row)| row.get(usize::from(x) - 1).copied())
}

impl PackingProfile {
    /// Builds the paper's Fig. 4 profile for `n ∈ {31, 71, 257}`.
    ///
    /// Capacities are the design-theoretic `μ·C(n_x, x+1)/C(r, x+1)`; the
    /// profile is for *arithmetic* reproduction (Figs. 3, 9, 10) — it
    /// cannot materialize placements ([`UnitSpec::unit`] is `None`).
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] when `(n, r)` is outside the
    /// paper's table.
    pub fn paper(params: &SystemParams) -> Result<Self, PlacementError> {
        let (n, r, s) = (params.n(), params.r(), params.s());
        let mut specs = Vec::with_capacity(usize::from(s));
        for x in 0..s {
            let nx = fig4_nx(n, r, x).ok_or_else(|| {
                PlacementError::InvalidParams(format!(
                    "paper profile only covers n ∈ {{31, 71, 257}}, 2 ≤ r ≤ 5; got n={n}, r={r}"
                ))
            })?;
            let cap_num = wcp_combin::binomial(u64::from(nx), u64::from(x) + 1)
                .and_then(|v| u64::try_from(v).ok())
                .expect("C(n_x, x+1) fits u64");
            let cap_den = wcp_combin::binomial(u64::from(r), u64::from(x) + 1)
                .and_then(|v| u64::try_from(v).ok())
                .expect("C(r, x+1) fits u64");
            specs.push(UnitSpec {
                x,
                nx,
                mu: 1,
                cap_num,
                cap_den,
                provenance: format!("paper Fig. 4: {}-({nx},{r},1)", x + 1),
                unit: None,
            });
        }
        Ok(Self { r, s, specs })
    }

    /// Builds a profile from what the construction registry can deliver,
    /// with achieved capacities. Placements built from this profile are
    /// concrete.
    ///
    /// `x = 0` is special-cased: a `Simple(0, λ)` placement is just a
    /// load-cap of `λ` replicas per node, realized by round-robin, with
    /// the exact capacity `⌊λ·n/r⌋`.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] if not even `x = 0` is usable
    /// (never happens for valid [`SystemParams`]).
    pub fn constructive(
        params: &SystemParams,
        config: &RegistryConfig,
    ) -> Result<Self, PlacementError> {
        let (n, r, s, b) = (params.n(), params.r(), params.s(), params.b());
        let mut specs = Vec::with_capacity(usize::from(s));
        for x in 0..s {
            if x == 0 {
                specs.push(UnitSpec {
                    x,
                    nx: n,
                    mu: 1,
                    cap_num: u64::from(n),
                    cap_den: u64::from(r),
                    provenance: format!("round-robin load cap (≤ λ replicas/node) on {n} nodes"),
                    unit: None,
                });
                continue;
            }
            match best_unit_packing(x + 1, r, n, b, config) {
                Some(unit) => specs.push(UnitSpec {
                    x,
                    nx: unit.v(),
                    mu: 1,
                    cap_num: unit.capacity(),
                    cap_den: 1,
                    provenance: unit.provenance().to_string(),
                    unit: Some(unit),
                }),
                None => specs.push(UnitSpec {
                    x,
                    nx: 0,
                    mu: 1,
                    cap_num: 0,
                    cap_den: 1,
                    provenance: "unconstructible".into(),
                    unit: None,
                }),
            }
        }
        Ok(Self { r, s, specs })
    }

    /// Block size `r`.
    #[must_use]
    pub fn r(&self) -> u16 {
        self.r
    }

    /// Fatality threshold `s` (the profile covers `x ∈ [s]`).
    #[must_use]
    pub fn s(&self) -> u16 {
        self.s
    }

    /// The spec for overlap bound `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ s`.
    #[must_use]
    pub fn spec(&self, x: u16) -> &UnitSpec {
        &self.specs[usize::from(x)]
    }

    /// All specs, indexed by `x`.
    #[must_use]
    pub fn specs(&self) -> &[UnitSpec] {
        &self.specs
    }

    /// Total capacity with one index unit per slot (a quick feasibility
    /// signal; the DP decides the real mix).
    #[must_use]
    pub fn unit_capacity_total(&self) -> u64 {
        self.specs.iter().map(|sp| sp.capacity(1)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_lookup() {
        assert_eq!(fig4_nx(71, 3, 1), Some(69));
        assert_eq!(fig4_nx(71, 5, 1), Some(65));
        assert_eq!(fig4_nx(71, 5, 2), Some(65));
        assert_eq!(fig4_nx(71, 5, 3), Some(71));
        assert_eq!(fig4_nx(257, 5, 3), Some(243));
        assert_eq!(fig4_nx(31, 4, 1), Some(28));
        assert_eq!(fig4_nx(31, 5, 2), Some(26));
        assert_eq!(fig4_nx(100, 3, 1), None);
        assert_eq!(fig4_nx(31, 5, 5), None);
    }

    #[test]
    fn paper_profile_capacities() {
        let p = SystemParams::new(71, 1200, 3, 2, 3).unwrap();
        let prof = PackingProfile::paper(&p).unwrap();
        assert_eq!(prof.spec(0).capacity(1), 71 / 3);
        assert_eq!(prof.spec(1).capacity(1), 782); // STS(69)
        assert_eq!(prof.spec(1).capacity(2), 1564);
        // Fractional x = 0 capacity accumulates: ⌊d·71/3⌋.
        assert_eq!(prof.spec(0).capacity(3), 71);
    }

    #[test]
    fn paper_profile_handles_nonintegral_slot() {
        // n = 71, r = 4: the Fig. 4 entry n_1 = 70 has C(70,2)/C(4,2)
        // = 402.5; capacities must floor per unit count, not per unit.
        let p = SystemParams::new(71, 1200, 4, 2, 3).unwrap();
        let prof = PackingProfile::paper(&p).unwrap();
        assert_eq!(prof.spec(1).capacity(1), 402);
        assert_eq!(prof.spec(1).capacity(2), 805);
    }

    #[test]
    fn units_for_is_inverse_of_capacity() {
        let p = SystemParams::new(257, 9600, 5, 3, 6).unwrap();
        let prof = PackingProfile::paper(&p).unwrap();
        for x in 0..3u16 {
            let spec = prof.spec(x);
            for b in [1u64, 17, 500, 9600] {
                let d = spec.units_for(b).unwrap();
                assert!(spec.capacity(d) >= b, "x={x} b={b} d={d}");
                if d > 0 {
                    assert!(spec.capacity(d - 1) < b, "x={x} b={b} d={d} not minimal");
                }
            }
        }
    }

    #[test]
    fn constructive_profile_builds() {
        let p = SystemParams::new(71, 600, 3, 2, 3).unwrap();
        let prof = PackingProfile::constructive(&p, &RegistryConfig::default()).unwrap();
        assert_eq!(prof.spec(0).nx, 71);
        assert_eq!(prof.spec(1).nx, 69); // STS(69)
        assert_eq!(prof.spec(1).cap_num, 782);
        assert!(prof.spec(1).unit.is_some());
    }

    #[test]
    fn paper_profile_rejects_unknown_n() {
        let p = SystemParams::new(100, 600, 3, 2, 3).unwrap();
        assert!(PackingProfile::paper(&p).is_err());
    }
}
