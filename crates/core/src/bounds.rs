//! Availability lower bounds (Lemmas 1–3 of the paper).

use wcp_combin::binomial;

/// `C(a, b)` as `u128`, panicking on overflow (parameters here are tiny).
fn c(a: u64, b: u64) -> u128 {
    binomial(a, b).expect("binomial overflow in bound computation")
}

/// Lemma 1: the capacity of a `Simple(x, λ)` placement on `n_x` nodes —
/// the largest `b` for which a `(x+1)-(n_x, r, λ)` packing can exist:
/// `⌊λ·C(n_x, x+1)/C(r, x+1)⌋`.
///
/// # Examples
///
/// ```
/// use wcp_core::simple_capacity;
///
/// // STS(69) copied twice: λ = 2 ⇒ 1564 objects.
/// assert_eq!(simple_capacity(69, 3, 1, 2), 1564);
/// ```
#[must_use]
pub fn simple_capacity(nx: u16, r: u16, x: u16, lambda: u64) -> u64 {
    let num = c(u64::from(nx), u64::from(x) + 1);
    let den = c(u64::from(r), u64::from(x) + 1);
    u64::try_from(u128::from(lambda) * num / den).expect("capacity fits u64")
}

/// Lemma 2: the availability lower bound of a `Simple(x, λ)` placement,
/// `lbAvail_si = b − ⌊λ·C(k, x+1)/C(s, x+1)⌋`.
///
/// The formula can be negative (the bound is then vacuous); the paper
/// plots such values in Fig. 10, so the raw signed value is returned.
///
/// # Examples
///
/// ```
/// use wcp_core::lb_avail_si;
///
/// // b = 600 objects in an STS(69)-based Simple(1, 1) placement,
/// // s = 2, k = 5: at most ⌊C(5,2)/C(2,2)⌋ = 10 objects can be killed.
/// assert_eq!(lb_avail_si(600, 1, 5, 2, 1), 590);
/// ```
#[must_use]
pub fn lb_avail_si(b: u64, lambda: u64, k: u16, s: u16, x: u16) -> i64 {
    let pen =
        u128::from(lambda) * c(u64::from(k), u64::from(x) + 1) / c(u64::from(s), u64::from(x) + 1);
    b as i64 - i64::try_from(pen).expect("penalty fits i64")
}

/// Lemma 3: the availability lower bound of a `Combo(⟨λ_x⟩)` placement,
/// `lbAvail_co = b − Σ_x ⌊λ_x·C(k, x+1)/C(s, x+1)⌋` with `x` ranging over
/// `0..s` (`lambdas[x]` is `λ_x`).
///
/// # Examples
///
/// ```
/// use wcp_core::lb_avail_co;
///
/// // λ0 = 0, λ1 = 2 at s = 2, k = 4: penalty ⌊2·C(4,2)/C(2,2)⌋ = 12.
/// assert_eq!(lb_avail_co(&[0, 2], 1000, 4, 2), 988);
/// ```
#[must_use]
pub fn lb_avail_co(lambdas: &[u64], b: u64, k: u16, s: u16) -> i64 {
    let mut pen: i64 = 0;
    for (x, &lambda) in lambdas.iter().enumerate() {
        let p = u128::from(lambda) * c(u64::from(k), x as u64 + 1) / c(u64::from(s), x as u64 + 1);
        pen += i64::try_from(p).expect("penalty fits i64");
    }
    b as i64 - pen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_design_counts() {
        assert_eq!(simple_capacity(69, 3, 1, 1), 782); // STS(69)
        assert_eq!(simple_capacity(65, 5, 2, 1), 4368); // Möbius 3-(65,5,1)
        assert_eq!(simple_capacity(25, 5, 1, 1), 30); // AG(2,5)
        assert_eq!(simple_capacity(31, 5, 4, 1), 169_911); // C(31,5)
                                                           // Non-integral ratio floors: the paper's 2-(70,4,1) slot.
        assert_eq!(simple_capacity(70, 4, 1, 2), 805); // ⌊2·2415/6⌋
        assert_eq!(simple_capacity(70, 4, 1, 1), 402); // ⌊2415/6⌋
    }

    #[test]
    fn lemma2_examples() {
        // s = 3, x = 2, k = 5: penalty per λ is ⌊C(5,3)/C(3,3)⌋ = 10.
        assert_eq!(lb_avail_si(1200, 1, 5, 3, 2), 1190);
        assert_eq!(lb_avail_si(1200, 3, 5, 3, 2), 1170);
        // Vacuous bound goes negative.
        assert_eq!(lb_avail_si(5, 10, 5, 2, 1), 5 - 100);
    }

    #[test]
    fn lemma3_sums_penalties() {
        // s = 3: x = 0 penalty ⌊λ0·k/3⌋? No: C(k,1)/C(3,1) = k/3.
        let lb = lb_avail_co(&[3, 1, 2], 1000, 6, 3);
        // x=0: ⌊3·6/3⌋ = 6; x=1: ⌊1·15/3⌋ = 5; x=2: ⌊2·20/1⌋ = 40.
        assert_eq!(lb, 1000 - 6 - 5 - 40);
    }

    #[test]
    fn zero_lambdas_mean_no_penalty() {
        assert_eq!(lb_avail_co(&[0, 0, 0], 777, 6, 3), 777);
    }
}
