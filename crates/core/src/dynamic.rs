//! Dynamic membership: maintaining a placement across cluster churn.
//!
//! The paper's model is one-shot: place `b` objects on a *static* set of
//! `n` nodes, then let the Definition-1 adversary fail the worst `k`
//! nodes. Real clusters churn — nodes join, drain, crash and come back
//! while objects must stay `k`-failure-safe — and every membership
//! change re-opens the adversary's move: the worst `k`-set must be
//! re-searched against the *current* placement, and the placement itself
//! may need repair before the guarantee means anything (replicas on a
//! dead node are already lost to an adversary who gets that node for
//! free).
//!
//! This module makes that continuous setting first class:
//!
//! * [`ClusterEvent`] — the membership event model
//!   ([`Join`](ClusterEvent::Join) / [`Leave`](ClusterEvent::Leave) /
//!   [`Fail`](ClusterEvent::Fail) / [`Recover`](ClusterEvent::Recover)),
//!   convertible from `wcp_sim::churn` trace events;
//! * [`DynamicEngine`] — wraps the static planning/attack pipeline of
//!   [`crate::Engine`] and keeps a live [`Placement`] valid across an
//!   event stream by **incremental repair**: on a departure it re-homes
//!   only the replicas that lived on the lost node, on an arrival it
//!   drains only enough replicas to pull the newcomer up to the mean
//!   load. After every event it re-runs the Definition-1 adversary (any
//!   [`Attacker`]) against the repaired placement *and* against a
//!   from-scratch replan at the current membership, and falls back to
//!   the replan when incremental availability degrades past the
//!   configured [`DynamicConfig::threshold`] — so bounded movement never
//!   silently costs more than `threshold · b` objects of worst-case
//!   availability;
//! * [`StepReport`] / [`MovementReport`] — per-event and cumulative
//!   accounting of objects moved (incremental vs what a full replan
//!   would have moved) and availability (incremental vs oracle), the
//!   quantities the differential test suite and the `churn` experiment
//!   sweep report.
//!
//! # Node slots
//!
//! The engine works over a fixed universe of `capacity` node *slots*.
//! Slots `0..n` start up; [`ClusterEvent::Join`] activates a drained or
//! never-provisioned slot, so node identities are stable across the
//! whole trace and placements at different times are directly
//! comparable (that is what makes movement accounting well defined).
//! Down slots host no replicas after repair, so attacking the slot-space
//! placement is equivalent to attacking the active sub-cluster.
//!
//! # Examples
//!
//! ```
//! use wcp_core::dynamic::{ClusterEvent, DynamicConfig, DynamicEngine};
//! use wcp_core::{StrategyKind, SystemParams};
//!
//! let params = SystemParams::new(13, 26, 3, 2, 3)?;
//! let mut engine = DynamicEngine::new(
//!     params,
//!     StrategyKind::Ring,
//!     16, // capacity: three spare slots beyond the initial 13
//!     DynamicConfig::default(),
//! )?;
//! let step = engine.apply(ClusterEvent::Fail { node: 4 })?;
//! // Only the failed node's replicas moved …
//! assert_eq!(step.moved, 6); // ring: 13 nodes × 26 objects × 3 replicas → 6 on node 4
//! assert!(step.moved < step.replan_moved);
//! // … and worst-case availability stays within the configured threshold
//! // of a from-scratch replan.
//! assert!(step.availability as f64
//!     >= step.oracle_availability as f64 - 0.02 * 26.0);
//! # Ok::<(), wcp_core::dynamic::DynamicError>(())
//! ```

use crate::certificate::Certificate;
use crate::engine::{Attacker, ExhaustiveAttacker};
use crate::strategy::{PlacementStrategy, PlannerContext, StrategyKind};
use crate::topology::Topology;
use crate::{Placement, PlacementError, RandomVariant, SystemParams};

/// A cluster-membership event (the dynamic half of the model; the
/// static half — what the adversary does between events — is Definition
/// 1 unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A drained or never-provisioned slot comes up.
    Join {
        /// The slot that joins.
        node: u16,
    },
    /// An up node drains and leaves in a planned fashion. Its replicas
    /// are re-homed just like a crash; the distinction is kept because
    /// operators schedule leaves but not failures.
    Leave {
        /// The node that leaves.
        node: u16,
    },
    /// An up node crashes.
    Fail {
        /// The node that fails.
        node: u16,
    },
    /// A crashed node comes back up.
    Recover {
        /// The node that recovers.
        node: u16,
    },
}

impl ClusterEvent {
    /// The slot the event touches.
    #[must_use]
    pub fn node(&self) -> u16 {
        match *self {
            ClusterEvent::Join { node }
            | ClusterEvent::Leave { node }
            | ClusterEvent::Fail { node }
            | ClusterEvent::Recover { node } => node,
        }
    }

    /// Stable lowercase label (matches `wcp_sim::churn` encoding).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ClusterEvent::Join { .. } => "join",
            ClusterEvent::Leave { .. } => "leave",
            ClusterEvent::Fail { .. } => "fail",
            ClusterEvent::Recover { .. } => "recover",
        }
    }

    /// True when the event takes a node down (and repair must re-home
    /// replicas).
    #[must_use]
    pub fn is_departure(&self) -> bool {
        matches!(self, ClusterEvent::Leave { .. } | ClusterEvent::Fail { .. })
    }
}

impl From<wcp_sim::churn::ChurnEvent> for ClusterEvent {
    fn from(e: wcp_sim::churn::ChurnEvent) -> Self {
        use wcp_sim::churn::ChurnEventKind;
        match e.kind {
            ChurnEventKind::Join => ClusterEvent::Join { node: e.node },
            ChurnEventKind::Leave => ClusterEvent::Leave { node: e.node },
            ChurnEventKind::Fail => ClusterEvent::Fail { node: e.node },
            ChurnEventKind::Recover => ClusterEvent::Recover { node: e.node },
        }
    }
}

impl From<&wcp_sim::churn::ChurnEvent> for ClusterEvent {
    fn from(e: &wcp_sim::churn::ChurnEvent) -> Self {
        ClusterEvent::from(*e)
    }
}

/// Errors of the dynamic subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicError {
    /// The event is illegal in the current membership state (e.g.
    /// failing a node that is already down). The engine state is
    /// unchanged.
    InvalidEvent(String),
    /// Applying the event would leave fewer up nodes than the placement
    /// model needs (`active > k` and `active ≥ r`). The event is
    /// rejected and the engine state is unchanged.
    InsufficientNodes {
        /// Up nodes the event would leave.
        active: u16,
        /// Minimum up nodes the model needs.
        need: u16,
    },
    /// An underlying planning/build error.
    Placement(PlacementError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::InvalidEvent(msg) => write!(f, "invalid cluster event: {msg}"),
            DynamicError::InsufficientNodes { active, need } => write!(
                f,
                "membership too small: {active} up nodes, placement model needs {need}"
            ),
            DynamicError::Placement(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DynamicError {}

/// A repair-invariant breach surfaced as an error instead of a panic:
/// the engine state is left unchanged and the caller decides.
fn invariant(msg: &str) -> DynamicError {
    DynamicError::Placement(PlacementError::InvalidPlacement(format!(
        "dynamic repair invariant violated: {msg}"
    )))
}

impl From<PlacementError> for DynamicError {
    fn from(e: PlacementError) -> Self {
        DynamicError::Placement(e)
    }
}

/// Tuning of the dynamic engine.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Availability slack, as a fraction of `b`: incremental repair is
    /// kept as long as its worst-case availability is within
    /// `threshold · b` objects of the from-scratch replan's; beyond
    /// that, the engine adopts the replan.
    pub threshold: f64,
    /// Planner context shared by initial planning and every replan.
    pub ctx: PlannerContext,
    /// Seed of the load-balanced `Random` strategy the engine falls back
    /// to when the configured strategy kind is not constructible at the
    /// current membership size (e.g. a packing slot that only exists at
    /// certain `n`).
    pub fallback_seed: u64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            threshold: 0.02,
            ctx: PlannerContext::default(),
            fallback_seed: 0xd15c,
        }
    }
}

/// How the engine restored validity after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// Incremental repair was kept: only replicas touching the affected
    /// node moved.
    Repaired,
    /// The engine fell back to a from-scratch replan (incremental
    /// availability degraded past [`DynamicConfig::threshold`]).
    Replanned,
}

impl RepairAction {
    /// Stable lowercase label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RepairAction::Repaired => "repaired",
            RepairAction::Replanned => "replanned",
        }
    }
}

/// The outcome of applying one [`ClusterEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The applied event.
    pub event: ClusterEvent,
    /// Repair kept, or replan adopted.
    pub action: RepairAction,
    /// Up nodes after the event.
    pub active: u16,
    /// Replicas actually moved by the adopted placement (incremental
    /// repair's movement, or the replan diff when the engine fell back).
    pub moved: u64,
    /// Replicas a full replan would have moved relative to the pre-event
    /// placement (the movement cost the incremental path avoided).
    pub replan_moved: u64,
    /// Worst-case availability of the adopted placement.
    pub availability: u64,
    /// Worst-case availability of the from-scratch replan (the oracle).
    pub oracle_availability: u64,
    /// Whether the attack on the adopted placement was proven worst.
    pub exact: bool,
    /// Whether the attack on the oracle placement was proven worst.
    pub oracle_exact: bool,
    /// The oracle strategy's claimed availability lower bound at the
    /// current membership (possibly vacuous).
    pub lower_bound: i64,
    /// The attacker's availability certificate for the *adopted*
    /// placement, when it emitted one (probe attackers report `None`).
    pub certificate: Option<Certificate>,
}

impl StepReport {
    /// Renders the step as one JSON object (jsonl-friendly).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"event\": {{\"kind\": \"{}\", \"node\": {}}}, ",
                "\"action\": \"{}\", \"active\": {}, ",
                "\"moved\": {}, \"replan_moved\": {}, ",
                "\"availability\": {}, \"oracle_availability\": {}, ",
                "\"exact\": {}, \"oracle_exact\": {}, \"lower_bound\": {}, ",
                "\"certificate\": {}}}"
            ),
            self.event.label(),
            self.event.node(),
            self.action.label(),
            self.active,
            self.moved,
            self.replan_moved,
            self.availability,
            self.oracle_availability,
            self.exact,
            self.oracle_exact,
            self.lower_bound,
            self.certificate
                .as_ref()
                .map_or_else(|| "null".to_string(), Certificate::to_json),
        )
    }
}

/// Cumulative movement accounting across a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MovementReport {
    /// Events applied.
    pub events: u64,
    /// Events resolved by incremental repair.
    pub repairs: u64,
    /// Events resolved by full replan.
    pub replans: u64,
    /// Replicas moved by the adopted placements.
    pub moved: u64,
    /// Replicas full replans would have moved at every event.
    pub replan_moved: u64,
}

impl MovementReport {
    /// `moved / replan_moved`: the fraction of full-replan movement the
    /// incremental path actually paid (1.0 when no event occurred).
    #[must_use]
    pub fn movement_ratio(&self) -> f64 {
        if self.replan_moved == 0 {
            return 1.0;
        }
        self.moved as f64 / self.replan_moved as f64
    }
}

/// Internal per-slot membership state ([`ClusterEvent::Join`] targets
/// drained slots, [`ClusterEvent::Recover`] failed ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Up,
    Failed,
    Drained,
}

/// The dynamic counterpart of [`crate::Engine`]: a live placement
/// maintained across a [`ClusterEvent`] stream by incremental repair
/// with a differential availability guard.
#[derive(Debug)]
pub struct DynamicEngine<A: Attacker = ExhaustiveAttacker> {
    base: SystemParams,
    kind: StrategyKind,
    config: DynamicConfig,
    attacker: A,
    capacity: u16,
    slots: Vec<Slot>,
    placement: Placement,
    movement: MovementReport,
    topology: Option<Topology>,
}

impl DynamicEngine<ExhaustiveAttacker> {
    /// A dynamic engine with the built-in exhaustive/probing attacker.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Placement`] when the initial plan/build fails;
    /// [`DynamicError::InvalidEvent`] when `capacity < params.n()`.
    pub fn new(
        params: SystemParams,
        kind: StrategyKind,
        capacity: u16,
        config: DynamicConfig,
    ) -> Result<Self, DynamicError> {
        Self::with_attacker(
            params,
            kind,
            capacity,
            config,
            ExhaustiveAttacker::default(),
        )
    }
}

impl<A: Attacker> DynamicEngine<A> {
    /// A dynamic engine with a custom adversary (e.g.
    /// `wcp_adversary::ScratchAdversary`, which reuses its search
    /// buffers across the per-event re-attacks).
    ///
    /// Slots `0..params.n()` start up; `params.n()..capacity` start
    /// drained (available to [`ClusterEvent::Join`]).
    ///
    /// # Errors
    ///
    /// As for [`DynamicEngine::new`].
    pub fn with_attacker(
        params: SystemParams,
        kind: StrategyKind,
        capacity: u16,
        config: DynamicConfig,
        attacker: A,
    ) -> Result<Self, DynamicError> {
        if capacity < params.n() {
            return Err(DynamicError::InvalidEvent(format!(
                "capacity {capacity} is smaller than the initial membership {}",
                params.n()
            )));
        }
        let mut engine = Self {
            base: params,
            kind,
            config,
            attacker,
            capacity,
            slots: (0..capacity)
                .map(|v| {
                    if v < params.n() {
                        Slot::Up
                    } else {
                        Slot::Drained
                    }
                })
                .collect(),
            // Placeholder replaced by the initial plan below.
            placement: Placement::new(capacity, params.r(), Vec::new())?,
            movement: MovementReport::default(),
            topology: None,
        };
        let (strategy, compact) = engine.plan_for(params.n())?;
        let built = strategy.build(&compact)?;
        engine.placement = engine.widen(&built)?;
        Ok(engine)
    }

    /// Attaches a failure-domain tree over the *slot universe*: every
    /// event's slot identifies its domain through this topology, and
    /// repair from then on prefers domain-preserving re-homes — a
    /// departed replica moves to the least-loaded node that does not
    /// co-locate with the object's surviving replicas (least shared
    /// tree depth first), and arrivals drain donors the same way.
    ///
    /// # Errors
    ///
    /// [`DynamicError::InvalidEvent`] when the topology's node count is
    /// not the engine's `capacity`.
    pub fn with_topology(mut self, topology: Topology) -> Result<Self, DynamicError> {
        if topology.num_nodes() != self.capacity {
            return Err(DynamicError::InvalidEvent(format!(
                "topology spans {} nodes, slot universe has {}",
                topology.num_nodes(),
                self.capacity
            )));
        }
        self.topology = Some(topology);
        Ok(self)
    }

    /// The attached slot-universe topology, if any.
    #[must_use]
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The deepest tree level `node` shares with any member of `set`
    /// other than `skip` (0 without a topology — every re-home is then
    /// domain neutral and repair degenerates to the topology-oblivious
    /// least-loaded choice exactly).
    fn collision_excluding(&self, node: u16, set: &[u16], skip: u16) -> u16 {
        self.topology.as_ref().map_or(0, |t| {
            set.iter()
                .filter(|&&o| o != node && o != skip)
                .map(|&o| t.shared_depth(node, o))
                .max()
                .unwrap_or(0)
        })
    }

    /// The live placement (over the full `capacity` slot space; down
    /// slots host nothing).
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The strategy kind planned initially and at every replan.
    #[must_use]
    pub fn kind(&self) -> &StrategyKind {
        &self.kind
    }

    /// Total node slots.
    #[must_use]
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// The up slots, ascending.
    #[must_use]
    pub fn active(&self) -> Vec<u16> {
        (0..self.capacity)
            .filter(|&v| self.slots[usize::from(v)] == Slot::Up)
            .collect()
    }

    /// Number of up slots.
    #[must_use]
    pub fn active_count(&self) -> u16 {
        self.slots.iter().filter(|&&s| s == Slot::Up).count() as u16
    }

    /// Cumulative movement accounting since construction.
    #[must_use]
    pub fn movement(&self) -> &MovementReport {
        &self.movement
    }

    /// Checks every live-placement invariant: exactly `b` objects, `r`
    /// sorted distinct replicas each, all on up slots, and per-node load
    /// accounting consistent with the replica sets.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Placement`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), DynamicError> {
        let b = self.placement.num_objects() as u64;
        if b != self.base.b() {
            return Err(PlacementError::InvalidPlacement(format!(
                "live placement holds {b} objects, expected {}",
                self.base.b()
            ))
            .into());
        }
        // Placement::new revalidates sortedness/distinctness/range.
        let revalidated = Placement::new(
            self.capacity,
            self.base.r(),
            self.placement.replica_sets().to_vec(),
        )?;
        for (obj, set) in revalidated.replica_sets().iter().enumerate() {
            if let Some(&down) = set
                .iter()
                .find(|&&v| self.slots[usize::from(v)] != Slot::Up)
            {
                return Err(PlacementError::InvalidPlacement(format!(
                    "object {obj} has a replica on down slot {down}"
                ))
                .into());
            }
        }
        let loads = revalidated.loads();
        let total: u64 = loads.iter().map(|&l| u64::from(l)).sum();
        if total != self.base.b() * u64::from(self.base.r()) {
            return Err(PlacementError::InvalidPlacement(format!(
                "load accounting off: {total} replicas hosted, expected {}",
                self.base.b() * u64::from(self.base.r())
            ))
            .into());
        }
        Ok(())
    }

    /// Applies one membership event: updates the slot states, repairs
    /// the placement incrementally, re-attacks, and falls back to a
    /// from-scratch replan when incremental availability degrades past
    /// [`DynamicConfig::threshold`]. On any error the engine state is
    /// unchanged (the event is rejected).
    ///
    /// # Errors
    ///
    /// [`DynamicError::InvalidEvent`] on illegal events,
    /// [`DynamicError::InsufficientNodes`] when the event would shrink
    /// the membership below `max(r, k+1)`, and
    /// [`DynamicError::Placement`] on replan failures.
    pub fn apply(&mut self, event: ClusterEvent) -> Result<StepReport, DynamicError> {
        let v = event.node();
        if v >= self.capacity {
            return Err(DynamicError::InvalidEvent(format!(
                "slot {v} outside capacity {}",
                self.capacity
            )));
        }
        let state = self.slots[usize::from(v)];
        let legal = match event {
            ClusterEvent::Join { .. } => state == Slot::Drained,
            ClusterEvent::Recover { .. } => state == Slot::Failed,
            ClusterEvent::Leave { .. } | ClusterEvent::Fail { .. } => state == Slot::Up,
        };
        if !legal {
            return Err(DynamicError::InvalidEvent(format!(
                "{} on slot {v} in state {state:?}",
                event.label()
            )));
        }
        let active_after = if event.is_departure() {
            self.active_count() - 1
        } else {
            self.active_count() + 1
        };
        let need = self.base.r().max(self.base.k() + 1);
        if active_after < need {
            return Err(DynamicError::InsufficientNodes {
                active: active_after,
                need,
            });
        }

        // Commit the membership change, then repair.
        self.slots[usize::from(v)] = match event {
            ClusterEvent::Join { .. } | ClusterEvent::Recover { .. } => Slot::Up,
            ClusterEvent::Leave { .. } => Slot::Drained,
            ClusterEvent::Fail { .. } => Slot::Failed,
        };
        let before = self.placement.clone();
        let (repaired, moved) = if event.is_departure() {
            self.repair_departure(v)?
        } else {
            self.rebalance_arrival(v)?
        };
        let outcome = self
            .attacker
            .attack(&repaired, self.base.s(), self.base.k());
        let availability = self.base.b() - outcome.failed;

        // Differential oracle: a from-scratch replan at the current
        // membership, attacked by the same adversary.
        let (strategy, compact) = self.plan_for(active_after)?;
        let lower_bound = strategy.lower_bound(&compact);
        let oracle = self.widen(&strategy.build(&compact)?)?;
        let oracle_outcome = self.attacker.attack(&oracle, self.base.s(), self.base.k());
        let oracle_availability = self.base.b() - oracle_outcome.failed;
        let replan_moved = movement_between(&before, &oracle);

        let degraded = (oracle_availability.saturating_sub(availability)) as f64
            > self.config.threshold * self.base.b() as f64;
        let oracle_exact = oracle_outcome.exact;
        let (action, adopted, adopted_avail, adopted_exact, adopted_moved, adopted_cert) =
            if degraded {
                (
                    RepairAction::Replanned,
                    oracle,
                    oracle_availability,
                    oracle_exact,
                    replan_moved,
                    oracle_outcome.certificate,
                )
            } else {
                (
                    RepairAction::Repaired,
                    repaired,
                    availability,
                    outcome.exact,
                    moved,
                    outcome.certificate,
                )
            };
        self.placement = adopted;
        self.movement.events += 1;
        self.movement.moved += adopted_moved;
        self.movement.replan_moved += replan_moved;
        match action {
            RepairAction::Repaired => self.movement.repairs += 1,
            RepairAction::Replanned => self.movement.replans += 1,
        }
        Ok(StepReport {
            event,
            action,
            active: active_after,
            moved: adopted_moved,
            replan_moved,
            availability: adopted_avail,
            oracle_availability,
            exact: adopted_exact,
            oracle_exact,
            lower_bound,
            certificate: adopted_cert,
        })
    }

    /// Applies a whole trace, stopping at the first error.
    ///
    /// # Errors
    ///
    /// As for [`apply`](Self::apply); the reports of the successfully
    /// applied prefix are lost (use [`apply`](Self::apply) directly to
    /// keep them).
    pub fn run_trace<I, E>(&mut self, events: I) -> Result<Vec<StepReport>, DynamicError>
    where
        I: IntoIterator<Item = E>,
        E: Into<ClusterEvent>,
    {
        events.into_iter().map(|e| self.apply(e.into())).collect()
    }

    /// Re-homes every replica living on the departed node `v` to the
    /// least-loaded up node not already in the object's set. With a
    /// topology attached, domain preservation ranks first: among the up
    /// candidates, the one sharing the least tree depth with the
    /// object's surviving replicas wins, load and id breaking ties.
    fn repair_departure(&self, v: u16) -> Result<(Placement, u64), DynamicError> {
        let mut sets = self.placement.replica_sets().to_vec();
        let mut loads = self.placement.loads();
        let active = self.active();
        let mut moved = 0u64;
        for set in &mut sets {
            let Ok(i) = set.binary_search(&v) else {
                continue;
            };
            let target = active
                .iter()
                .copied()
                .filter(|w| set.binary_search(w).is_err())
                .min_by_key(|&w| {
                    (
                        self.collision_excluding(w, set, v),
                        loads[usize::from(w)],
                        w,
                    )
                });
            let Some(w) = target else {
                return Err(DynamicError::InsufficientNodes {
                    active: active.len() as u16,
                    need: self.base.r(),
                });
            };
            set.remove(i);
            let Err(pos) = set.binary_search(&w) else {
                return Err(invariant(
                    "departure re-home target already replicates the object",
                ));
            };
            set.insert(pos, w);
            loads[usize::from(v)] -= 1;
            loads[usize::from(w)] += 1;
            moved += 1;
        }
        Ok((Placement::new(self.capacity, self.base.r(), sets)?, moved))
    }

    /// Pulls the newly arrived node `v` up to the floor of the mean load
    /// by draining replicas from the heaviest up nodes (bounded
    /// movement: at most `⌊rb/active⌋` replicas). With a topology
    /// attached, each donor prefers handing over the object whose
    /// remaining replicas co-locate least with the newcomer.
    fn rebalance_arrival(&self, v: u16) -> Result<(Placement, u64), DynamicError> {
        let mut sets = self.placement.replica_sets().to_vec();
        let mut loads = self.placement.loads();
        let active = self.active();
        let mean_floor = (u64::from(self.base.r()) * self.base.b()) / active.len().max(1) as u64;
        let mut moved = 0u64;
        'fill: while u64::from(loads[usize::from(v)]) < mean_floor {
            // Donors, heaviest first, that still improve balance.
            let mut donors: Vec<u16> = active
                .iter()
                .copied()
                .filter(|&w| w != v && loads[usize::from(w)] > loads[usize::from(v)] + 1)
                .collect();
            donors.sort_by_key(|&w| (std::cmp::Reverse(loads[usize::from(w)]), w));
            for w in donors {
                let mut eligible = sets
                    .iter_mut()
                    .filter(|set| set.binary_search(&w).is_ok() && set.binary_search(&v).is_err());
                // Without a topology every candidate keys to 0, so the
                // early-exit first match IS the minimum — keep the
                // O(first hit) scan instead of walking all b sets.
                let donated = if self.topology.is_none() {
                    eligible.next()
                } else {
                    eligible.min_by_key(|set| self.collision_excluding(v, set, w))
                };
                if let Some(set) = donated {
                    let Ok(i) = set.binary_search(&w) else {
                        return Err(invariant("arrival donor no longer replicates the object"));
                    };
                    set.remove(i);
                    let Err(pos) = set.binary_search(&v) else {
                        return Err(invariant("arrival target already replicates the object"));
                    };
                    set.insert(pos, v);
                    loads[usize::from(w)] -= 1;
                    loads[usize::from(v)] += 1;
                    moved += 1;
                    continue 'fill;
                }
            }
            break; // No donor can improve balance further.
        }
        Ok((Placement::new(self.capacity, self.base.r(), sets)?, moved))
    }

    /// Plans the configured kind at a compact membership of `m` nodes,
    /// falling back to load-balanced `Random` when the kind is not
    /// constructible there.
    ///
    /// The attached slot-universe topology is projected onto the active
    /// slots so topology-aware kinds see the surviving failure domains
    /// at the compact node count. Without the projection the capacity-
    /// sized topology fails the planner's `num_nodes == n` filter and
    /// every replan silently degrades to the flat topology.
    fn plan_for(&self, m: u16) -> Result<(Box<dyn PlacementStrategy>, SystemParams), DynamicError> {
        let need = self.base.r().max(self.base.k() + 1);
        if m < need {
            return Err(DynamicError::InsufficientNodes { active: m, need });
        }
        let compact = SystemParams::new(
            m,
            self.base.b(),
            self.base.r(),
            self.base.s(),
            self.base.k(),
        )?;
        let ctx = match &self.topology {
            Some(topo) => {
                let active = self.active();
                debug_assert_eq!(active.len(), usize::from(m));
                PlannerContext {
                    topology: Some(topo.project(&active)?),
                    ..self.config.ctx.clone()
                }
            }
            None => self.config.ctx.clone(),
        };
        match self.kind.plan(&compact, &ctx) {
            Ok(strategy) => Ok((strategy, compact)),
            Err(PlacementError::Design(_) | PlacementError::InsufficientCapacity { .. }) => {
                let fallback = StrategyKind::Random {
                    seed: self.config.fallback_seed,
                    variant: RandomVariant::LoadBalanced,
                };
                Ok((fallback.plan(&compact, &ctx)?, compact))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Maps a compact placement (nodes `0..m`) onto the up slots of the
    /// full slot space (monotone, so sortedness is preserved).
    fn widen(&self, compact: &Placement) -> Result<Placement, DynamicError> {
        let active = self.active();
        let sets = compact
            .replica_sets()
            .iter()
            .map(|set| set.iter().map(|&i| active[usize::from(i)]).collect())
            .collect();
        Ok(Placement::new(self.capacity, self.base.r(), sets)?)
    }
}

/// Replicas that must be copied to new homes to turn `old` into `new`:
/// `Σ_objects |new_set ∖ old_set|`. Both placements must hold the same
/// objects in the same order (true for any two placements of one
/// [`DynamicEngine`] history).
#[must_use]
pub fn movement_between(old: &Placement, new: &Placement) -> u64 {
    old.replica_sets()
        .iter()
        .zip(new.replica_sets())
        .map(|(a, b)| b.iter().filter(|w| a.binary_search(w).is_err()).count() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_sim::churn::ChurnSpec;

    fn params(n: u16, b: u64, r: u16, s: u16, k: u16) -> SystemParams {
        SystemParams::new(n, b, r, s, k).unwrap()
    }

    fn ring_engine() -> DynamicEngine {
        DynamicEngine::new(
            params(13, 26, 3, 2, 3),
            StrategyKind::Ring,
            16,
            DynamicConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn initial_state_is_valid() {
        let engine = ring_engine();
        engine.validate().unwrap();
        assert_eq!(engine.active_count(), 13);
        assert_eq!(engine.placement().num_nodes(), 16);
        assert_eq!(engine.placement().num_objects(), 26);
    }

    #[test]
    fn departure_moves_only_touched_replicas() {
        let mut engine = ring_engine();
        let load_before = engine.placement().loads()[4];
        let step = engine.apply(ClusterEvent::Fail { node: 4 }).unwrap();
        engine.validate().unwrap();
        assert_eq!(step.moved, u64::from(load_before));
        assert_eq!(engine.placement().loads()[4], 0);
        assert_eq!(step.active, 12);
        assert!(step.replan_moved >= step.moved);
    }

    #[test]
    fn arrival_rebalances_toward_mean() {
        let mut engine = ring_engine();
        let step = engine.apply(ClusterEvent::Join { node: 13 }).unwrap();
        engine.validate().unwrap();
        // 26·3 replicas over 14 nodes: mean floor 5.
        assert_eq!(u64::from(engine.placement().loads()[13]), step.moved.min(5));
        assert!(step.moved >= 4, "newcomer should absorb load, got {step:?}");
    }

    #[test]
    fn illegal_events_leave_state_unchanged() {
        let mut engine = ring_engine();
        let before = engine.placement().clone();
        assert!(matches!(
            engine.apply(ClusterEvent::Recover { node: 3 }), // up, not failed
            Err(DynamicError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.apply(ClusterEvent::Join { node: 3 }), // already up
            Err(DynamicError::InvalidEvent(_))
        ));
        assert!(matches!(
            engine.apply(ClusterEvent::Fail { node: 20 }), // outside capacity
            Err(DynamicError::InvalidEvent(_))
        ));
        assert_eq!(engine.placement(), &before);
        assert_eq!(engine.movement().events, 0);
    }

    #[test]
    fn membership_floor_is_enforced() {
        // n = 4, k = 3: a single departure would leave active = 3 ≤ k.
        let mut engine = DynamicEngine::new(
            params(4, 8, 2, 1, 3),
            StrategyKind::Ring,
            4,
            DynamicConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            engine.apply(ClusterEvent::Fail { node: 0 }),
            Err(DynamicError::InsufficientNodes { active: 3, need: 4 })
        ));
        engine.validate().unwrap();
    }

    #[test]
    fn leave_then_join_round_trips_membership() {
        let mut engine = ring_engine();
        engine.apply(ClusterEvent::Leave { node: 2 }).unwrap();
        // A drained node re-joins (Recover would be illegal).
        assert!(matches!(
            engine.apply(ClusterEvent::Recover { node: 2 }),
            Err(DynamicError::InvalidEvent(_))
        ));
        engine.apply(ClusterEvent::Join { node: 2 }).unwrap();
        engine.validate().unwrap();
        assert_eq!(engine.active_count(), 13);
    }

    #[test]
    fn availability_stays_within_threshold_of_oracle() {
        let trace = ChurnSpec::new("dyn-core", 16, 13, 25).generate();
        let mut engine = DynamicEngine::new(
            params(13, 26, 3, 2, 3),
            StrategyKind::Ring,
            16,
            DynamicConfig::default(),
        )
        .unwrap();
        for event in &trace.events {
            let step = engine.apply(event.into()).unwrap();
            engine.validate().unwrap();
            assert!(
                step.availability as f64 >= step.oracle_availability as f64 - 0.02 * 26.0 - 1e-9,
                "{step:?}"
            );
        }
        let m = engine.movement();
        assert_eq!(m.events, 25);
        assert_eq!(m.repairs + m.replans, m.events);
    }

    #[test]
    fn fallback_planner_covers_unconstructible_sizes() {
        // Combo needs constructible packings; churned sizes won't always
        // have them, so the engine must fall back rather than error.
        let trace = ChurnSpec::new("dyn-combo", 16, 13, 10).generate();
        let mut engine = DynamicEngine::new(
            params(13, 26, 3, 2, 3),
            StrategyKind::Combo,
            16,
            DynamicConfig::default(),
        )
        .unwrap();
        for event in &trace.events {
            engine.apply(event.into()).unwrap();
            engine.validate().unwrap();
        }
    }

    /// Replica pairs sharing any failure domain, summed over objects.
    fn collisions(placement: &Placement, topo: &Topology) -> u64 {
        placement
            .replica_sets()
            .iter()
            .map(|set| {
                let mut c = 0u64;
                for (i, &a) in set.iter().enumerate() {
                    for &b in &set[i + 1..] {
                        if topo.shared_depth(a, b) > 0 {
                            c += 1;
                        }
                    }
                }
                c
            })
            .sum()
    }

    #[test]
    fn topology_must_span_the_slot_universe() {
        let engine = ring_engine(); // capacity 16
        assert!(matches!(
            engine.with_topology(Topology::flat(13)),
            Err(DynamicError::InvalidEvent(_))
        ));
        let engine = ring_engine();
        let engine = engine.with_topology(Topology::flat(16)).unwrap();
        assert!(engine.topology().is_some());
    }

    #[test]
    fn topology_steers_rehomes_away_from_colliding_racks() {
        // Same seeded placement, same event, two engines: the
        // topology-aware one must end with no more rack collisions, at
        // identical movement cost (domain steering only changes *where*
        // a replica lands, never how many move).
        let topo = Topology::split(12, &[4]).unwrap();
        let p = params(12, 24, 3, 2, 2);
        let kind = StrategyKind::Random {
            seed: 11,
            variant: RandomVariant::LoadBalanced,
        };
        let mk = || {
            DynamicEngine::new(p, kind.clone(), 12, DynamicConfig::default()).expect("constructs")
        };
        let mut aware = mk().with_topology(topo.clone()).unwrap();
        let mut oblivious = mk();
        assert_eq!(aware.placement(), oblivious.placement());
        let sa = aware.apply(ClusterEvent::Fail { node: 0 }).unwrap();
        let so = oblivious.apply(ClusterEvent::Fail { node: 0 }).unwrap();
        aware.validate().unwrap();
        oblivious.validate().unwrap();
        if sa.action == RepairAction::Repaired && so.action == RepairAction::Repaired {
            assert_eq!(sa.moved, so.moved);
            let ca = collisions(aware.placement(), &topo);
            let co = collisions(oblivious.placement(), &topo);
            assert!(ca <= co, "aware {ca} collisions > oblivious {co}");
        }
    }

    #[test]
    fn replan_oracle_plans_against_projected_topology() {
        // Regression: the replan oracle used to plan with the engine's
        // *config* context and never consulted the attached
        // slot-universe topology, so a domain-spread oracle silently
        // degraded to flat least-loaded assignment — byte-identical to
        // a topology-oblivious engine's and full of rack collisions.
        // A negative threshold forces the oracle to be adopted, making
        // the oracle's planning observable through the placement.
        let topo = Topology::split(12, &[4]).unwrap();
        let p = params(12, 24, 3, 2, 2);
        let config = DynamicConfig {
            threshold: -1.0,
            ..DynamicConfig::default()
        };
        let mk = || {
            DynamicEngine::new(p, StrategyKind::DomainSpread, 12, config.clone())
                .expect("constructs")
        };
        let mut aware = mk().with_topology(topo.clone()).unwrap();
        let mut oblivious = mk();
        let sa = aware.apply(ClusterEvent::Fail { node: 0 }).unwrap();
        let so = oblivious.apply(ClusterEvent::Fail { node: 0 }).unwrap();
        aware.validate().unwrap();
        oblivious.validate().unwrap();
        assert_eq!(sa.action, RepairAction::Replanned);
        assert_eq!(so.action, RepairAction::Replanned);
        // Slots 1..12 keep all four racks alive, so a projected
        // domain-spread replan is collision-free; the flat-fallback
        // oracle packs contiguous (rack-sharing) slots instead.
        assert_eq!(collisions(aware.placement(), &topo), 0);
        assert!(
            collisions(oblivious.placement(), &topo) > 0,
            "oblivious oracle unexpectedly rack-free; test shape too weak"
        );
        assert_ne!(aware.placement(), oblivious.placement());
    }

    #[test]
    fn topology_aware_arrival_prefers_separated_donations() {
        let topo = Topology::split(16, &[4]).unwrap();
        let mut aware = ring_engine().with_topology(topo.clone()).unwrap();
        let mut oblivious = ring_engine();
        let sa = aware.apply(ClusterEvent::Join { node: 13 }).unwrap();
        let so = oblivious.apply(ClusterEvent::Join { node: 13 }).unwrap();
        aware.validate().unwrap();
        if sa.action == RepairAction::Repaired && so.action == RepairAction::Repaired {
            // Donor draining is load-driven, so the movement bound is
            // identical; only the donated objects differ.
            assert_eq!(sa.moved, so.moved);
            assert!(
                collisions(aware.placement(), &topo) <= collisions(oblivious.placement(), &topo)
            );
        }
    }

    #[test]
    fn flat_topology_changes_nothing() {
        // An attached flat topology must reproduce the oblivious engine
        // decision for decision across a whole trace.
        let trace = ChurnSpec::new("dyn-flat-topo", 16, 13, 15).generate();
        let mut flat = ring_engine().with_topology(Topology::flat(16)).unwrap();
        let mut plain = ring_engine();
        for event in &trace.events {
            let a = flat.apply(event.into()).unwrap();
            let b = plain.apply(event.into()).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(flat.placement(), plain.placement());
    }

    #[test]
    fn movement_between_counts_rehomed_replicas() {
        let old = Placement::new(6, 2, vec![vec![0, 1], vec![2, 3]]).unwrap();
        let new = Placement::new(6, 2, vec![vec![0, 4], vec![2, 3]]).unwrap();
        assert_eq!(movement_between(&old, &new), 1);
        assert_eq!(movement_between(&old, &old), 0);
    }

    #[test]
    fn step_reports_serialize() {
        let mut engine = ring_engine();
        let step = engine.apply(ClusterEvent::Fail { node: 0 }).unwrap();
        let json = step.to_json();
        assert!(json.contains("\"kind\": \"fail\""));
        assert!(json.contains("\"action\": "));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
