//! Plain-text interchange for placements.
//!
//! Operators need to move placements between the planner and the systems
//! that enforce them (volume managers, schedulers). The format is
//! deliberately trivial — one object per line, replica node ids separated
//! by tabs, `#` comments — so anything from `awk` to a config-management
//! pipeline can consume it.

use crate::{Placement, PlacementError};

/// Serializes a placement to the TSV interchange format.
///
/// The header comment records `n` and `r`; each subsequent line holds one
/// object's sorted replica node ids.
///
/// # Examples
///
/// ```
/// use wcp_core::{io, Placement};
///
/// let p = Placement::new(5, 2, vec![vec![0, 3], vec![1, 4]])?;
/// let text = io::to_tsv(&p);
/// let back = io::from_tsv(&text)?;
/// assert_eq!(p, back);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[must_use]
pub fn to_tsv(placement: &Placement) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# worst-case-placement v1\tn={}\tr={}\n",
        placement.num_nodes(),
        placement.replicas_per_object()
    ));
    for set in placement.replica_sets() {
        let line: Vec<String> = set.iter().map(u16::to_string).collect();
        out.push_str(&line.join("\t"));
        out.push('\n');
    }
    out
}

/// Parses the TSV interchange format back into a placement.
///
/// # Errors
///
/// [`PlacementError::InvalidPlacement`] on malformed headers, fields, or
/// replica sets (the [`Placement::new`] invariants are re-validated).
pub fn from_tsv(text: &str) -> Result<Placement, PlacementError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| PlacementError::InvalidPlacement("empty input".into()))?;
    let parse_field = |key: &str| -> Result<u16, PlacementError> {
        header
            .split('\t')
            .find_map(|f| f.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| PlacementError::InvalidPlacement(format!("header missing {key}= field")))
    };
    let n = parse_field("n")?;
    let r = parse_field("r")?;
    let mut sets = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let set: Result<Vec<u16>, _> = line.split('\t').map(str::parse).collect();
        let set =
            set.map_err(|e| PlacementError::InvalidPlacement(format!("line {}: {e}", lineno + 2)))?;
        sets.push(set);
    }
    Placement::new(n, r, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomStrategy, RandomVariant, SystemParams};

    #[test]
    fn roundtrip_random_placement() {
        let params = SystemParams::new(31, 200, 3, 2, 3).unwrap();
        let p = RandomStrategy::new(5, RandomVariant::LoadBalanced)
            .place(&params)
            .unwrap();
        let text = to_tsv(&p);
        assert_eq!(from_tsv(&text).unwrap(), p);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# worst-case-placement v1\tn=5\tr=2\n0\t1\n\n# mid comment\n2\t4\n";
        let p = from_tsv(text).unwrap();
        assert_eq!(p.num_objects(), 2);
        assert_eq!(p.replicas(1), &[2, 4]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_tsv("").is_err());
        assert!(from_tsv("# no fields here\n0\t1\n").is_err());
        assert!(from_tsv("# v1\tn=5\tr=2\n0\tx\n").is_err());
        assert!(from_tsv("# v1\tn=5\tr=2\n0\t1\t2\n").is_err()); // wrong arity
        assert!(from_tsv("# v1\tn=5\tr=2\n1\t0\n").is_err()); // unsorted
        assert!(from_tsv("# v1\tn=5\tr=2\n0\t9\n").is_err()); // out of range
    }
}
