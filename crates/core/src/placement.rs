//! The placement mapping `π : O → 2^N`.

use crate::PlacementError;

/// A replica placement: for each object, the sorted set of `r` distinct
/// nodes hosting its replicas.
///
/// # Examples
///
/// ```
/// use wcp_core::Placement;
///
/// let p = Placement::new(5, 2, vec![vec![0, 1], vec![2, 4], vec![1, 3]])?;
/// assert_eq!(p.num_objects(), 3);
/// assert_eq!(p.max_load(), 2); // node 1 hosts two replicas
/// assert_eq!(p.replicas(1), &[2, 4]);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    n: u16,
    r: u16,
    replica_sets: Vec<Vec<u16>>,
}

impl Placement {
    /// Validates and wraps replica sets: each must be sorted, duplicate
    /// free, of size `r`, with nodes `< n`.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidPlacement`] on the first malformed set.
    pub fn new(n: u16, r: u16, replica_sets: Vec<Vec<u16>>) -> Result<Self, PlacementError> {
        for (i, set) in replica_sets.iter().enumerate() {
            if set.len() != r as usize {
                return Err(PlacementError::InvalidPlacement(format!(
                    "object {i} has {} replicas, expected {r}",
                    set.len()
                )));
            }
            if !set.windows(2).all(|w| w[0] < w[1]) || set.last().is_some_and(|&x| x >= n) {
                return Err(PlacementError::InvalidPlacement(format!(
                    "object {i} replica set is unsorted, duplicated or out of range"
                )));
            }
        }
        Ok(Self { n, r, replica_sets })
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn num_nodes(&self) -> u16 {
        self.n
    }

    /// Replicas per object `r`.
    #[must_use]
    pub fn replicas_per_object(&self) -> u16 {
        self.r
    }

    /// Number of objects `b`.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.replica_sets.len()
    }

    /// The replica set of one object.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    #[must_use]
    pub fn replicas(&self, obj: usize) -> &[u16] {
        &self.replica_sets[obj]
    }

    /// All replica sets.
    #[must_use]
    pub fn replica_sets(&self) -> &[Vec<u16>] {
        &self.replica_sets
    }

    /// Per-node load (number of replicas hosted).
    #[must_use]
    pub fn loads(&self) -> Vec<u32> {
        let mut loads = vec![0u32; self.n as usize];
        for set in &self.replica_sets {
            for &nd in set {
                loads[nd as usize] += 1;
            }
        }
        loads
    }

    /// Maximum per-node load.
    #[must_use]
    pub fn max_load(&self) -> u32 {
        self.loads().into_iter().max().unwrap_or(0)
    }

    /// For each node, the list of objects with a replica there (the
    /// inverted index used by adversaries).
    #[must_use]
    pub fn objects_by_node(&self) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); self.n as usize];
        for (obj, set) in self.replica_sets.iter().enumerate() {
            for &nd in set {
                idx[nd as usize].push(obj as u32);
            }
        }
        idx
    }

    /// Counts objects failed by the failure of node set `failed` (sorted or
    /// not): those with at least `s` replicas among the failed nodes.
    ///
    /// This is the inner expression of Definition 1; minimizing survivors
    /// over all `k`-sets is the adversary's job (`wcp-adversary`).
    #[must_use]
    pub fn failed_objects(&self, failed: &[u16], s: u16) -> u64 {
        let mut is_failed = vec![false; self.n as usize];
        for &nd in failed {
            is_failed[nd as usize] = true;
        }
        let mut count = 0u64;
        for set in &self.replica_sets {
            let hits = set.iter().filter(|&&nd| is_failed[nd as usize]).count();
            if hits >= s as usize {
                count += 1;
            }
        }
        count
    }

    /// Appends the objects of `other` (same `n` and `r`) to this placement.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidPlacement`] if `n` or `r` differ.
    pub fn extend(&mut self, other: Placement) -> Result<(), PlacementError> {
        if other.n != self.n || other.r != self.r {
            return Err(PlacementError::InvalidPlacement(format!(
                "cannot merge placements with different shapes: ({}, {}) vs ({}, {})",
                self.n, self.r, other.n, other.r
            )));
        }
        self.replica_sets.extend(other.replica_sets);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Placement {
        Placement::new(
            6,
            3,
            vec![vec![0, 1, 2], vec![0, 1, 3], vec![3, 4, 5], vec![0, 4, 5]],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Placement::new(5, 2, vec![vec![0, 0]]).is_err());
        assert!(Placement::new(5, 2, vec![vec![1, 0]]).is_err());
        assert!(Placement::new(5, 2, vec![vec![0, 5]]).is_err());
        assert!(Placement::new(5, 2, vec![vec![0, 1, 2]]).is_err());
    }

    #[test]
    fn loads() {
        let p = sample();
        assert_eq!(p.loads(), vec![3, 2, 1, 2, 2, 2]);
        assert_eq!(p.max_load(), 3);
    }

    #[test]
    fn inverted_index() {
        let p = sample();
        let idx = p.objects_by_node();
        assert_eq!(idx[0], vec![0, 1, 3]);
        assert_eq!(idx[2], vec![0]);
    }

    #[test]
    fn failure_counting() {
        let p = sample();
        // Failing {0,1}: objects 0 and 1 lose 2 replicas each.
        assert_eq!(p.failed_objects(&[0, 1], 2), 2);
        assert_eq!(p.failed_objects(&[0, 1], 1), 3);
        assert_eq!(p.failed_objects(&[0, 1], 3), 0);
        assert_eq!(p.failed_objects(&[4, 5], 2), 2);
        assert_eq!(p.failed_objects(&[], 1), 0);
    }

    #[test]
    fn merging() {
        let mut p = sample();
        let q = Placement::new(6, 3, vec![vec![1, 2, 3]]).unwrap();
        p.extend(q).unwrap();
        assert_eq!(p.num_objects(), 5);
        let bad = Placement::new(7, 3, vec![vec![1, 2, 3]]).unwrap();
        let mut p2 = sample();
        assert!(p2.extend(bad).is_err());
    }
}
