//! The placement mapping `π : O → 2^N`.

use crate::PlacementError;
use std::sync::OnceLock;

/// A replica placement: for each object, the sorted set of `r` distinct
/// nodes hosting its replicas.
///
/// # Examples
///
/// ```
/// use wcp_core::Placement;
///
/// let p = Placement::new(5, 2, vec![vec![0, 1], vec![2, 4], vec![1, 3]])?;
/// assert_eq!(p.num_objects(), 3);
/// assert_eq!(p.max_load(), 2); // node 1 hosts two replicas
/// assert_eq!(p.replicas(1), &[2, 4]);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Placement {
    n: u16,
    r: u16,
    replica_sets: Vec<Vec<u16>>,
    /// Lazily computed per-node loads, shared by every
    /// [`Placement::cached_loads`] caller; reset on mutation.
    loads_cache: OnceLock<Vec<u32>>,
}

impl PartialEq for Placement {
    fn eq(&self, other: &Self) -> bool {
        // The load cache is derived state and must not affect equality.
        self.n == other.n && self.r == other.r && self.replica_sets == other.replica_sets
    }
}

impl Eq for Placement {}

impl Placement {
    /// Validates and wraps replica sets: each must be sorted, duplicate
    /// free, of size `r`, with nodes `< n`.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidPlacement`] on the first malformed set.
    pub fn new(n: u16, r: u16, replica_sets: Vec<Vec<u16>>) -> Result<Self, PlacementError> {
        for (i, set) in replica_sets.iter().enumerate() {
            if set.len() != r as usize {
                return Err(PlacementError::InvalidPlacement(format!(
                    "object {i} has {} replicas, expected {r}",
                    set.len()
                )));
            }
            if !set.windows(2).all(|w| w[0] < w[1]) || set.last().is_some_and(|&x| x >= n) {
                return Err(PlacementError::InvalidPlacement(format!(
                    "object {i} replica set is unsorted, duplicated or out of range"
                )));
            }
        }
        Ok(Self {
            n,
            r,
            replica_sets,
            loads_cache: OnceLock::new(),
        })
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn num_nodes(&self) -> u16 {
        self.n
    }

    /// Replicas per object `r`.
    #[must_use]
    pub fn replicas_per_object(&self) -> u16 {
        self.r
    }

    /// Number of objects `b`.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.replica_sets.len()
    }

    /// The replica set of one object.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    #[must_use]
    pub fn replicas(&self, obj: usize) -> &[u16] {
        &self.replica_sets[obj]
    }

    /// All replica sets.
    #[must_use]
    pub fn replica_sets(&self) -> &[Vec<u16>] {
        &self.replica_sets
    }

    /// Per-node load (number of replicas hosted), as a fresh vector the
    /// caller may mutate. Hot paths that only read should prefer
    /// [`Placement::cached_loads`].
    #[must_use]
    pub fn loads(&self) -> Vec<u32> {
        self.cached_loads().to_vec()
    }

    /// Per-node load, computed once per placement and memoized: repeated
    /// calls (adversary restarts, per-cell evaluations) are free after
    /// the first.
    #[must_use]
    pub fn cached_loads(&self) -> &[u32] {
        self.loads_cache.get_or_init(|| {
            let mut loads = vec![0u32; self.n as usize];
            for set in &self.replica_sets {
                for &nd in set {
                    loads[nd as usize] += 1;
                }
            }
            loads
        })
    }

    /// Maximum per-node load.
    #[must_use]
    pub fn max_load(&self) -> u32 {
        self.cached_loads().iter().copied().max().unwrap_or(0)
    }

    /// For each node, the list of objects with a replica there (the
    /// inverted index used by adversaries).
    #[must_use]
    pub fn objects_by_node(&self) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); self.n as usize];
        for (obj, set) in self.replica_sets.iter().enumerate() {
            for &nd in set {
                idx[nd as usize].push(obj as u32);
            }
        }
        idx
    }

    /// The inverted index in CSR form: `offsets` has `n + 1` entries and
    /// node `nd`'s objects are `objects[offsets[nd]..offsets[nd + 1]]`,
    /// sorted ascending. One flat allocation instead of `n` inner
    /// vectors — the cache-friendly shape the word-parallel adversary
    /// kernel consumes.
    ///
    /// # Examples
    ///
    /// ```
    /// use wcp_core::Placement;
    ///
    /// let p = Placement::new(4, 2, vec![vec![0, 1], vec![1, 3]])?;
    /// let (offsets, objects) = p.objects_by_node_flat();
    /// assert_eq!(offsets, vec![0, 1, 3, 3, 4]);
    /// assert_eq!(objects, vec![0, 0, 1, 1]);
    /// # Ok::<(), wcp_core::PlacementError>(())
    /// ```
    #[must_use]
    pub fn objects_by_node_flat(&self) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = Vec::new();
        let mut objects = Vec::new();
        self.objects_by_node_flat_into(&mut offsets, &mut objects);
        (offsets, objects)
    }

    /// [`Placement::objects_by_node_flat`] writing into caller-owned
    /// buffers, so batch evaluators rebuild the index without
    /// reallocating.
    pub fn objects_by_node_flat_into(&self, offsets: &mut Vec<u32>, objects: &mut Vec<u32>) {
        let n = self.n as usize;
        offsets.clear();
        offsets.resize(n + 1, 0);
        for set in &self.replica_sets {
            for &nd in set {
                offsets[nd as usize + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        objects.clear();
        objects.resize(offsets[n] as usize, 0);
        // Fill using offsets[nd] as a running cursor (rows come out
        // ascending because objects are visited in order), then shift the
        // offsets back into place.
        for (obj, set) in self.replica_sets.iter().enumerate() {
            for &nd in set {
                let cursor = &mut offsets[nd as usize];
                objects[*cursor as usize] = obj as u32;
                *cursor += 1;
            }
        }
        for i in (1..=n).rev() {
            offsets[i] = offsets[i - 1];
        }
        offsets[0] = 0;
    }

    /// Counts objects failed by the failure of node set `failed` (sorted or
    /// not): those with at least `s` replicas among the failed nodes.
    ///
    /// This is the inner expression of Definition 1; minimizing survivors
    /// over all `k`-sets is the adversary's job (`wcp-adversary`).
    #[must_use]
    pub fn failed_objects(&self, failed: &[u16], s: u16) -> u64 {
        let mut is_failed = vec![false; self.n as usize];
        for &nd in failed {
            is_failed[nd as usize] = true;
        }
        let mut count = 0u64;
        for set in &self.replica_sets {
            let hits = set.iter().filter(|&&nd| is_failed[nd as usize]).count();
            if hits >= s as usize {
                count += 1;
            }
        }
        count
    }

    /// Every `stride`-th object of this placement (starting at object
    /// 0), as its own placement over the same nodes. A `stride` of `0`
    /// or `1` copies every object.
    ///
    /// Differential validators use this to check large-`b` backends
    /// against the scalar oracle on a shape small enough to afford:
    /// subsampling preserves the per-object replica sets exactly, so
    /// any per-object disagreement between backends survives into the
    /// subsample.
    #[must_use]
    pub fn subsample(&self, stride: usize) -> Self {
        Self {
            n: self.n,
            r: self.r,
            replica_sets: self
                .replica_sets
                .iter()
                .step_by(stride.max(1))
                .cloned()
                .collect(),
            loads_cache: OnceLock::new(),
        }
    }

    /// Appends the objects of `other` (same `n` and `r`) to this placement.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidPlacement`] if `n` or `r` differ.
    pub fn extend(&mut self, other: Placement) -> Result<(), PlacementError> {
        if other.n != self.n || other.r != self.r {
            return Err(PlacementError::InvalidPlacement(format!(
                "cannot merge placements with different shapes: ({}, {}) vs ({}, {})",
                self.n, self.r, other.n, other.r
            )));
        }
        self.replica_sets.extend(other.replica_sets);
        self.loads_cache = OnceLock::new();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Placement {
        Placement::new(
            6,
            3,
            vec![vec![0, 1, 2], vec![0, 1, 3], vec![3, 4, 5], vec![0, 4, 5]],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Placement::new(5, 2, vec![vec![0, 0]]).is_err());
        assert!(Placement::new(5, 2, vec![vec![1, 0]]).is_err());
        assert!(Placement::new(5, 2, vec![vec![0, 5]]).is_err());
        assert!(Placement::new(5, 2, vec![vec![0, 1, 2]]).is_err());
    }

    #[test]
    fn loads() {
        let p = sample();
        assert_eq!(p.loads(), vec![3, 2, 1, 2, 2, 2]);
        assert_eq!(p.max_load(), 3);
    }

    #[test]
    fn inverted_index() {
        let p = sample();
        let idx = p.objects_by_node();
        assert_eq!(idx[0], vec![0, 1, 3]);
        assert_eq!(idx[2], vec![0]);
    }

    #[test]
    fn csr_index_matches_nested_index() {
        let p = sample();
        let nested = p.objects_by_node();
        let (offsets, objects) = p.objects_by_node_flat();
        assert_eq!(offsets.len(), usize::from(p.num_nodes()) + 1);
        assert_eq!(
            objects.len(),
            p.num_objects() * usize::from(p.replicas_per_object())
        );
        for nd in 0..usize::from(p.num_nodes()) {
            let row = &objects[offsets[nd] as usize..offsets[nd + 1] as usize];
            assert_eq!(row, nested[nd].as_slice(), "node {nd}");
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {nd} sorted");
        }
        // The `_into` variant reuses buffers across differently shaped
        // placements.
        let q = Placement::new(3, 2, vec![vec![0, 2], vec![1, 2]]).unwrap();
        let (mut offsets, mut objects) = (offsets, objects);
        q.objects_by_node_flat_into(&mut offsets, &mut objects);
        assert_eq!(offsets, vec![0, 1, 2, 4]);
        assert_eq!(objects, vec![0, 1, 0, 1]);
    }

    #[test]
    fn cached_loads_survive_and_reset_on_extend() {
        let mut p = sample();
        assert_eq!(p.cached_loads(), &[3, 2, 1, 2, 2, 2]);
        assert_eq!(p.cached_loads(), p.loads().as_slice());
        p.extend(Placement::new(6, 3, vec![vec![1, 2, 3]]).unwrap())
            .unwrap();
        assert_eq!(p.cached_loads(), &[3, 3, 2, 3, 2, 2]);
        // Equality ignores the memoized cache.
        let q = p.clone();
        assert_eq!(p, q);
    }

    #[test]
    fn failure_counting() {
        let p = sample();
        // Failing {0,1}: objects 0 and 1 lose 2 replicas each.
        assert_eq!(p.failed_objects(&[0, 1], 2), 2);
        assert_eq!(p.failed_objects(&[0, 1], 1), 3);
        assert_eq!(p.failed_objects(&[0, 1], 3), 0);
        assert_eq!(p.failed_objects(&[4, 5], 2), 2);
        assert_eq!(p.failed_objects(&[], 1), 0);
    }

    #[test]
    fn subsampling() {
        let p = sample();
        let q = p.subsample(2);
        assert_eq!(q.num_nodes(), p.num_nodes());
        assert_eq!(q.num_objects(), 2);
        assert_eq!(q.replicas(0), p.replicas(0));
        assert_eq!(q.replicas(1), p.replicas(2));
        assert_eq!(p.subsample(0).num_objects(), p.num_objects());
        assert_eq!(p.subsample(1), p);
        assert_eq!(p.subsample(100).num_objects(), 1);
    }

    #[test]
    fn merging() {
        let mut p = sample();
        let q = Placement::new(6, 3, vec![vec![1, 2, 3]]).unwrap();
        p.extend(q).unwrap();
        assert_eq!(p.num_objects(), 5);
        let bad = Placement::new(7, 3, vec![vec![1, 2, 3]]).unwrap();
        let mut p2 = sample();
        assert!(p2.extend(bad).is_err());
    }
}
