//! Adaptive placement under object churn — the extension the paper leaves
//! as future work ("an algorithm to adapt our placements as new objects
//! come and go would be an interesting advance", Sec. IV-D).
//!
//! [`AdaptivePlacer`] maintains a Combo-style placement incrementally:
//!
//! * **adds** draw replica sets from the planned `Simple(x, λ_x)` units,
//!   recycling freed blocks first (zero marginal penalty) and otherwise
//!   choosing the slot with the lowest *amortized penalty density* —
//!   Lemma-2 penalty per index unit divided by blocks per index unit —
//!   which is how the DP allocates in the static case;
//! * **removes** return the block to a free list — the packing property
//!   is monotone under deletion, so removal never degrades the bound;
//! * the Lemma-3 lower bound is re-evaluated after every operation from
//!   the *actual* per-slot indices in use, so the guarantee tracks the
//!   live population rather than a stale plan;
//! * when the live bound drifts too far from what a fresh DP plan would
//!   give (`replan_threshold`), the placer reports that a re-plan is
//!   worthwhile (`needs_replan`), letting operators schedule migration
//!   instead of being forced into it.

use crate::bounds::lb_avail_co;
use crate::{PackingProfile, PlacementError, SystemParams};
use std::collections::BTreeMap;

/// Identifier assigned to each live object.
pub type ObjectId = u64;

/// One placement slot: a materialized unit packing plus usage accounting.
#[derive(Debug, Clone)]
struct Slot {
    /// Blocks of one unit copy (sorted node sets).
    blocks: Vec<Vec<u16>>,
    /// Next fresh (never-used) block index, counting across copies:
    /// index `i` maps to `blocks[i % blocks.len()]` in copy `i / len`.
    next_fresh: u64,
    /// Freed block indices available for reuse (LIFO).
    free: Vec<u64>,
    /// Live objects on this slot: object id → block index.
    live: BTreeMap<ObjectId, u64>,
    /// `μ` of the unit (λ grows in multiples of it).
    mu: u64,
}

impl Slot {
    /// The slot's current effective index λ: how often the most-reused
    /// block is in use, times μ. With round-robin handout this is
    /// `⌈(highest index in use + 1)/blocks⌉·μ`.
    fn lambda_in_use(&self) -> u64 {
        if self.blocks.is_empty() {
            return 0;
        }
        let max_idx = self.live.values().max().copied();
        match max_idx {
            None => 0,
            Some(m) => (m / self.blocks.len() as u64 + 1) * self.mu,
        }
    }
}

/// An incrementally maintained worst-case-availability placement.
///
/// # Examples
///
/// ```
/// use wcp_core::adaptive::AdaptivePlacer;
/// use wcp_core::SystemParams;
/// use wcp_designs::registry::RegistryConfig;
///
/// let params = SystemParams::new(71, 600, 3, 2, 3)?;
/// let mut placer = AdaptivePlacer::new(&params, &RegistryConfig::default(), 0.05)?;
/// let a = placer.add_object()?;
/// let b = placer.add_object()?;
/// assert_eq!(placer.len(), 2);
/// placer.remove_object(a)?;
/// let c = placer.add_object()?; // reuses a's block
/// assert_eq!(placer.replicas(c).unwrap().len(), 3);
/// // With only 2 live objects the Lemma-3 bound (2 − ⌊C(3,2)⌋) is still
/// // vacuous — it becomes meaningful as the population grows.
/// assert_eq!(placer.lower_bound(), 2 - 3);
/// # drop(b);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug)]
pub struct AdaptivePlacer {
    params: SystemParams,
    slots: Vec<Slot>,
    next_id: ObjectId,
    replan_threshold: f64,
}

impl AdaptivePlacer {
    /// Builds the placer from the constructive profile sized for
    /// `params.b()` expected objects (the live population may exceed it;
    /// slots grow λ as needed).
    ///
    /// `replan_threshold` is the tolerated relative regret before
    /// [`needs_replan`](Self::needs_replan) fires (e.g. `0.05` = 5% of
    /// the ideal bound).
    ///
    /// # Errors
    ///
    /// Propagates profile construction and materialization errors.
    pub fn new(
        params: &SystemParams,
        config: &wcp_designs::registry::RegistryConfig,
        replan_threshold: f64,
    ) -> Result<Self, PlacementError> {
        let profile = PackingProfile::constructive(params, config)?;
        let mut slots = Vec::new();
        for x in 0..profile.s() {
            let spec = profile.spec(x);
            let blocks = if x == 0 {
                // Round-robin blocks over all nodes (one "copy" = a sweep
                // with per-node load exactly 1·r/n — i.e. capacity ⌊n/r⌋
                // blocks per λ unit; fresh indices extend the sweep).
                let n = usize::from(params.n());
                let r = usize::from(params.r());
                (0..n / r)
                    .map(|i| {
                        let mut set: Vec<u16> = (0..r).map(|j| ((i * r + j) % n) as u16).collect();
                        set.sort_unstable();
                        set
                    })
                    .collect()
            } else if let Some(unit) = &spec.unit {
                let limit = usize::try_from(unit.capacity().min(params.b())).unwrap_or(usize::MAX);
                unit.materialize(limit)?.into_blocks()
            } else {
                Vec::new()
            };
            slots.push(Slot {
                blocks,
                next_fresh: 0,
                free: Vec::new(),
                live: BTreeMap::new(),
                mu: spec.mu,
            });
        }
        Ok(Self {
            params: *params,
            slots,
            next_id: 0,
            replan_threshold,
        })
    }

    /// Live object count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.live.len()).sum()
    }

    /// True when no objects are placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current per-slot `λ_x` actually in use.
    #[must_use]
    pub fn lambdas(&self) -> Vec<u64> {
        self.slots.iter().map(Slot::lambda_in_use).collect()
    }

    /// The Lemma-3 lower bound for the *live* population under the
    /// current λ usage.
    #[must_use]
    pub fn lower_bound(&self) -> i64 {
        lb_avail_co(
            &self.lambdas(),
            self.len() as u64,
            self.params.k(),
            self.params.s(),
        )
    }

    /// Amortized cost of placing one more object on slot `x`: zero while
    /// reusable or already-paid-for blocks exist, else the Lemma-2
    /// penalty of one more index unit spread over the blocks it buys.
    fn placement_cost(&self, x: usize) -> Option<f64> {
        let slot = &self.slots[x];
        if slot.blocks.is_empty() {
            return None;
        }
        if !slot.free.is_empty() {
            return Some(0.0); // reuse is always free
        }
        let lam_now = slot.lambda_in_use();
        let lam_next = (slot.next_fresh / slot.blocks.len() as u64 + 1) * slot.mu;
        if lam_next <= lam_now {
            return Some(0.0); // next fresh block stays within current λ
        }
        let k = u64::from(self.params.k());
        let s = u64::from(self.params.s());
        let t = x as u64 + 1;
        let pen_per_unit = wcp_combin::binomial(k, t).expect("small") as f64
            / wcp_combin::binomial(s, t).expect("small") as f64
            * slot.mu as f64;
        Some(pen_per_unit / slot.blocks.len() as f64)
    }

    /// Places a new object, returning its id.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InsufficientCapacity`] when no slot can host
    /// another object (cannot happen while the `x = 0` sweep exists).
    pub fn add_object(&mut self) -> Result<ObjectId, PlacementError> {
        // Choose the slot with the smallest amortized cost; ties go to
        // the largest x (strongest packing).
        let mut best: Option<(f64, usize)> = None;
        for x in (0..self.slots.len()).rev() {
            if let Some(cost) = self.placement_cost(x) {
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, x));
                }
            }
        }
        let Some((_, x)) = best else {
            return Err(PlacementError::InsufficientCapacity {
                requested: self.len() as u64 + 1,
                capacity: self.len() as u64,
            });
        };
        let slot = &mut self.slots[x];
        let idx = match slot.free.pop() {
            Some(i) => i,
            None => {
                let i = slot.next_fresh;
                slot.next_fresh += 1;
                i
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        slot.live.insert(id, idx);
        Ok(id)
    }

    /// Removes an object, freeing its block for reuse.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidPlacement`] for unknown ids.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<(), PlacementError> {
        for slot in &mut self.slots {
            if let Some(idx) = slot.live.remove(&id) {
                slot.free.push(idx);
                return Ok(());
            }
        }
        Err(PlacementError::InvalidPlacement(format!(
            "unknown object id {id}"
        )))
    }

    /// The replica set of a live object.
    #[must_use]
    pub fn replicas(&self, id: ObjectId) -> Option<&[u16]> {
        for slot in &self.slots {
            if let Some(&idx) = slot.live.get(&id) {
                return Some(&slot.blocks[usize::try_from(idx).ok()? % slot.blocks.len()]);
            }
        }
        None
    }

    /// Exports the live placement (object order = ascending id).
    ///
    /// # Errors
    ///
    /// Never fails for placer-produced data; kept fallible for the
    /// [`crate::Placement`] constructor.
    pub fn snapshot(&self) -> Result<crate::Placement, PlacementError> {
        let mut entries: Vec<(ObjectId, Vec<u16>)> = Vec::with_capacity(self.len());
        for slot in &self.slots {
            for (&id, &idx) in &slot.live {
                entries.push((
                    id,
                    slot.blocks[usize::try_from(idx).expect("fits") % slot.blocks.len()].clone(),
                ));
            }
        }
        entries.sort_by_key(|(id, _)| *id);
        crate::Placement::new(
            self.params.n(),
            self.params.r(),
            entries.into_iter().map(|(_, b)| b).collect(),
        )
    }

    /// True when a fresh DP plan for the live population would beat the
    /// live bound by more than the configured threshold — the signal to
    /// re-plan and migrate.
    ///
    /// # Errors
    ///
    /// Propagates DP errors for degenerate live populations.
    pub fn needs_replan(&self) -> Result<bool, PlacementError> {
        let live = self.len() as u64;
        if live == 0 {
            return Ok(false);
        }
        let params = self.params.with_b(live)?;
        let profile = PackingProfile::constructive(
            &params,
            &wcp_designs::registry::RegistryConfig::default(),
        )?;
        let ideal = crate::combo_plan(&profile, &params)?.lb_avail;
        let current = self.lower_bound().max(0) as u64;
        Ok((ideal as f64 - current as f64) > self.replan_threshold * ideal as f64)
    }
}

/// An [`AdaptivePlacer`] behind the unified
/// [`crate::PlacementStrategy`] API: the placer's *live* population and
/// λ usage, frozen into a strategy whose `build` exports the snapshot.
///
/// Obtain one either from [`AdaptiveSnapshot::plan`] (fills a fresh
/// placer with `params.b()` objects, the path [`crate::StrategyKind`]
/// uses) or [`AdaptiveSnapshot::from_placer`] (wraps a placer that has
/// lived through churn).
#[derive(Debug)]
pub struct AdaptiveSnapshot {
    placer: AdaptivePlacer,
}

impl AdaptiveSnapshot {
    /// Builds a placer for `params`, fills it with `params.b()` objects
    /// and freezes it.
    ///
    /// # Errors
    ///
    /// Propagates placer construction and placement errors.
    pub fn plan(
        params: &SystemParams,
        config: &wcp_designs::registry::RegistryConfig,
        replan_threshold: f64,
    ) -> Result<Self, PlacementError> {
        let mut placer = AdaptivePlacer::new(params, config, replan_threshold)?;
        for _ in 0..params.b() {
            placer.add_object()?;
        }
        Ok(Self { placer })
    }

    /// Wraps an existing placer (e.g. after a churn workload).
    #[must_use]
    pub fn from_placer(placer: AdaptivePlacer) -> Self {
        Self { placer }
    }

    /// The wrapped placer.
    #[must_use]
    pub fn placer(&self) -> &AdaptivePlacer {
        &self.placer
    }

    /// Unwraps the placer for further churn.
    #[must_use]
    pub fn into_placer(self) -> AdaptivePlacer {
        self.placer
    }
}

impl crate::PlacementStrategy for AdaptiveSnapshot {
    fn name(&self) -> &str {
        "adaptive"
    }

    /// The Lemma-3 bound for the live population's λ usage, evaluated at
    /// the given parameters' `(k, s)`.
    fn lower_bound(&self, params: &SystemParams) -> i64 {
        lb_avail_co(
            &self.placer.lambdas(),
            self.placer.len() as u64,
            params.k(),
            params.s(),
        )
    }

    fn build(&self, _params: &SystemParams) -> Result<crate::Placement, PlacementError> {
        self.placer.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_designs::registry::RegistryConfig;
    use wcp_designs::{verify, BlockDesign};

    fn placer(n: u16, b: u64, r: u16, s: u16, k: u16) -> AdaptivePlacer {
        let params = SystemParams::new(n, b, r, s, k).unwrap();
        AdaptivePlacer::new(&params, &RegistryConfig::default(), 0.05).unwrap()
    }

    #[test]
    fn add_prefers_strong_slots() {
        let mut p = placer(71, 600, 3, 2, 3);
        for _ in 0..600 {
            p.add_object().unwrap();
        }
        // All 600 fit in one STS(69) copy: λ = [0, 1].
        assert_eq!(p.lambdas(), vec![0, 1]);
        assert_eq!(p.lower_bound(), 600 - 3);
    }

    #[test]
    fn churn_reuses_blocks() {
        let mut p = placer(71, 100, 3, 2, 3);
        let ids: Vec<_> = (0..100).map(|_| p.add_object().unwrap()).collect();
        let before = p.lambdas();
        // Remove half, add half back: λ must not grow.
        for &id in ids.iter().step_by(2) {
            p.remove_object(id).unwrap();
        }
        for _ in 0..50 {
            p.add_object().unwrap();
        }
        assert_eq!(p.len(), 100);
        assert_eq!(p.lambdas(), before, "churn must not inflate λ");
    }

    #[test]
    fn snapshot_is_valid_packing() {
        let mut p = placer(71, 900, 3, 2, 3);
        for _ in 0..900 {
            p.add_object().unwrap();
        }
        let placement = p.snapshot().unwrap();
        assert_eq!(placement.num_objects(), 900);
        let lam = p.lambdas()[1];
        let design = BlockDesign::new(71, 3, placement.replica_sets().to_vec()).unwrap();
        assert!(verify::is_t_packing(&design, 2, lam));
    }

    #[test]
    fn bound_tracks_live_population() {
        let mut p = placer(71, 1600, 3, 2, 3);
        for _ in 0..1600 {
            p.add_object().unwrap();
        }
        // 1600 > 2·782: λ1 = 3 in use (last sweep partially filled).
        assert_eq!(p.lambdas()[1], 3);
        assert_eq!(
            p.lower_bound(),
            lb_avail_co(&p.lambdas(), 1600, 3, 2),
            "bound must be recomputed from live λs"
        );
        // Removing the later objects shrinks λ usage back to 1 copy and
        // the bound becomes the single-copy one.
        for id in (782..1600).rev() {
            p.remove_object(id).unwrap();
        }
        assert_eq!(p.lambdas()[1], 1);
        assert_eq!(p.lower_bound(), 782 - 3);
    }

    #[test]
    fn replan_signal_fires_after_heavy_churn() {
        let mut p = placer(71, 400, 3, 3, 5);
        for _ in 0..400 {
            p.add_object().unwrap();
        }
        assert!(
            !p.needs_replan().unwrap(),
            "fresh fill must not demand a replan"
        );
        // Heavy churn keeps the call functional regardless of outcome.
        for id in 0..399 {
            let _ = p.remove_object(id);
        }
        let _ = p.needs_replan().unwrap();
    }

    #[test]
    fn snapshot_strategy_matches_placer() {
        use crate::PlacementStrategy;
        let params = SystemParams::new(71, 300, 3, 2, 3).unwrap();
        let snap = AdaptiveSnapshot::plan(&params, &RegistryConfig::default(), 0.05).unwrap();
        assert_eq!(snap.name(), "adaptive");
        assert_eq!(snap.lower_bound(&params), snap.placer().lower_bound());
        let placement = snap.build(&params).unwrap();
        assert_eq!(placement.num_objects(), 300);
        // Churned placers freeze too.
        let mut placer = snap.into_placer();
        placer.remove_object(0).unwrap();
        let snap = AdaptiveSnapshot::from_placer(placer);
        assert_eq!(snap.build(&params).unwrap().num_objects(), 299);
    }

    #[test]
    fn unknown_id_rejected() {
        let mut p = placer(31, 50, 3, 2, 3);
        assert!(p.remove_object(99).is_err());
    }

    #[test]
    fn overflow_grows_lambda_not_panics() {
        // Tiny system: capacity per copy is small, adds must keep working
        // by growing λ.
        let mut p = placer(9, 20, 3, 2, 2);
        for _ in 0..200 {
            p.add_object().unwrap();
        }
        assert_eq!(p.len(), 200);
        let placement = p.snapshot().unwrap();
        assert_eq!(placement.num_objects(), 200);
    }
}
