//! Thread-count configuration shared by every parallel subsystem.
//!
//! A [`Parallelism`] value is a *resolved* worker count: construction
//! collapses "0 = all cores" and the `WCP_THREADS` environment override
//! into a concrete `threads ≥ 1`, so everything downstream — the sweep
//! fan-out, the parallel adversary ladder — receives one unambiguous
//! number and the determinism contract ("bit-identical results for any
//! thread count") can be stated against it.
//!
//! This module holds plain configuration only; the actual threading
//! machinery lives in [`crate::sweep`] (the one sanctioned home for
//! `std::thread::scope` and atomics inside `wcp-core`).

/// A resolved worker-thread count (always ≥ 1).
///
/// # Examples
///
/// ```
/// use wcp_core::Parallelism;
///
/// assert_eq!(Parallelism::single().threads(), 1);
/// assert!(Parallelism::new(0).threads() >= 1); // 0 = all cores
/// assert_eq!(Parallelism::new(4).threads(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// A pool of exactly `threads` workers; `0` means all available
    /// cores.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: if threads == 0 {
                Self::available()
            } else {
                threads
            },
        }
    }

    /// One worker: the serial schedule.
    #[must_use]
    pub fn single() -> Self {
        Self { threads: 1 }
    }

    /// Resolves the ambient configuration: the `WCP_THREADS` environment
    /// variable if set to a positive integer, otherwise all available
    /// cores.
    #[must_use]
    pub fn from_env() -> Self {
        let requested = std::env::var("WCP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0);
        Self::new(requested.unwrap_or(0))
    }

    /// The resolved worker count (≥ 1).
    #[must_use]
    pub fn threads(self) -> usize {
        self.threads
    }

    fn available() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

impl Default for Parallelism {
    /// All available cores.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_at_least_one() {
        assert!(Parallelism::new(0).threads() >= 1);
        assert!(Parallelism::default().threads() >= 1);
    }

    #[test]
    fn explicit_counts_pass_through() {
        for t in 1..=8 {
            assert_eq!(Parallelism::new(t).threads(), t);
        }
    }

    #[test]
    fn from_env_is_positive() {
        // Whatever the ambient WCP_THREADS says (including unset or
        // garbage), resolution never yields zero workers.
        assert!(Parallelism::from_env().threads() >= 1);
    }
}
