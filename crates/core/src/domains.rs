//! Fault domains: correlated failures of whole racks / zones.
//!
//! The paper's adversary fails `k` individual nodes. Real deployments
//! lose *fault domains* — a rack's switch or a zone's power feed takes
//! every node in it down together. This module lifts the paper's theory
//! to that model by projection:
//!
//! * a [`FaultDomains`] map assigns each node to a domain;
//! * [`domain_placement`] builds a placement whose replica sets live in
//!   `r` *distinct domains*, by planning a `Simple`/`Combo` packing over
//!   the domains (treating each domain as a super-node) and then
//!   spreading replicas across the nodes of each chosen domain
//!   round-robin;
//! * [`project`] maps any node-level placement to the domain level, so
//!   the node-level adversary/bounds apply verbatim with `n = #domains`
//!   and `k = #failed domains`: an object loses a replica to a domain
//!   failure iff its projected set hits the domain, so
//!   `Avail_domains(π) = Avail(project(π))` — Lemma 2/3 bounds carry
//!   over unchanged.
//!
//! The worst-case guarantee against `k` domain failures is therefore
//! exactly the paper's guarantee computed over domains; all adversaries
//! in `wcp-adversary` work on the projected placement as-is.

use crate::{ComboStrategy, Placement, PlacementError, SystemParams};

/// A mapping of nodes to fault domains.
///
/// # Examples
///
/// ```
/// use wcp_core::domains::FaultDomains;
///
/// // 12 nodes in 4 racks of 3.
/// let fd = FaultDomains::uniform(12, 4)?;
/// assert_eq!(fd.num_domains(), 4);
/// assert_eq!(fd.domain_of(7), 2);
/// assert_eq!(fd.nodes_in(2), vec![6, 7, 8]);
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDomains {
    domain_of: Vec<u16>,
    num_domains: u16,
}

impl FaultDomains {
    /// Builds from an explicit node → domain map.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] if any domain id is out of range
    /// or some domain is empty.
    pub fn new(domain_of: Vec<u16>, num_domains: u16) -> Result<Self, PlacementError> {
        let mut seen = vec![false; usize::from(num_domains)];
        for &d in &domain_of {
            if d >= num_domains {
                return Err(PlacementError::InvalidParams(format!(
                    "domain id {d} out of range 0..{num_domains}"
                )));
            }
            seen[usize::from(d)] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(PlacementError::InvalidParams(
                "every domain must contain at least one node".into(),
            ));
        }
        Ok(Self {
            domain_of,
            num_domains,
        })
    }

    /// Splits `n` nodes into `domains` near-equal contiguous domains.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidParams`] for `domains = 0` or
    /// `domains > n`.
    pub fn uniform(n: u16, domains: u16) -> Result<Self, PlacementError> {
        if domains == 0 || domains > n {
            return Err(PlacementError::InvalidParams(format!(
                "need 1 ≤ domains ≤ n, got domains={domains}, n={n}"
            )));
        }
        // Contiguous blocks of size ⌈n/d⌉ then ⌊n/d⌋ (balanced split).
        let base = n / domains;
        let extra = n % domains;
        let mut map = Vec::with_capacity(usize::from(n));
        for d in 0..domains {
            let size = base + u16::from(d < extra);
            map.extend(std::iter::repeat_n(d, usize::from(size)));
        }
        Self::new(map, domains)
    }

    /// Number of domains.
    #[must_use]
    pub fn num_domains(&self) -> u16 {
        self.num_domains
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> u16 {
        self.domain_of.len() as u16
    }

    /// The domain of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn domain_of(&self, node: u16) -> u16 {
        self.domain_of[usize::from(node)]
    }

    /// The nodes of one domain (ascending).
    #[must_use]
    pub fn nodes_in(&self, domain: u16) -> Vec<u16> {
        self.domain_of
            .iter()
            .enumerate()
            .filter_map(|(nd, &d)| (d == domain).then_some(nd as u16))
            .collect()
    }
}

/// Projects a node-level placement to domain level: each replica set maps
/// to the set of domains it touches. Replica sets that use a domain twice
/// are rejected (they would weaken the failure threshold semantics).
///
/// # Errors
///
/// [`PlacementError::InvalidPlacement`] if shapes mismatch or an object
/// has two replicas in one domain.
pub fn project(placement: &Placement, domains: &FaultDomains) -> Result<Placement, PlacementError> {
    if placement.num_nodes() != domains.num_nodes() {
        return Err(PlacementError::InvalidPlacement(format!(
            "placement has {} nodes, domain map {}",
            placement.num_nodes(),
            domains.num_nodes()
        )));
    }
    let mut projected = Vec::with_capacity(placement.num_objects());
    for (obj, set) in placement.replica_sets().iter().enumerate() {
        let mut dset: Vec<u16> = set.iter().map(|&nd| domains.domain_of(nd)).collect();
        dset.sort_unstable();
        if dset.windows(2).any(|w| w[0] == w[1]) {
            return Err(PlacementError::InvalidPlacement(format!(
                "object {obj} has two replicas in one fault domain"
            )));
        }
        projected.push(dset);
    }
    Placement::new(
        domains.num_domains(),
        placement.replicas_per_object(),
        projected,
    )
}

/// A domain-aware strategy: plans a Combo packing *over domains* and
/// realizes it on nodes by cycling through each domain's nodes.
#[derive(Debug)]
pub struct DomainStrategy {
    domains: FaultDomains,
    inner: ComboStrategy,
    domain_params: SystemParams,
}

impl DomainStrategy {
    /// Plans for `b` objects, `r` replicas in distinct domains, objects
    /// failing at `s` *domain* losses, against `k` worst-case domain
    /// failures.
    ///
    /// # Errors
    ///
    /// Parameter validation and planning errors ([`SystemParams::new`],
    /// [`ComboStrategy::plan_constructive`]).
    pub fn plan(
        domains: FaultDomains,
        b: u64,
        r: u16,
        s: u16,
        k: u16,
        config: &wcp_designs::registry::RegistryConfig,
    ) -> Result<Self, PlacementError> {
        let domain_params = SystemParams::new(domains.num_domains(), b, r, s, k)?;
        let inner = ComboStrategy::plan_constructive(&domain_params, config)?;
        Ok(Self {
            domains,
            inner,
            domain_params,
        })
    }

    /// The worst-case availability guarantee against `k` domain failures.
    #[must_use]
    pub fn lower_bound(&self) -> u64 {
        self.inner.lower_bound()
    }

    /// Materializes the node-level placement.
    ///
    /// # Errors
    ///
    /// Propagates the inner build.
    pub fn build(&self) -> Result<Placement, PlacementError> {
        let domain_placement = self.inner.build(&self.domain_params)?;
        // Within each domain, hand out nodes round-robin so load inside a
        // domain stays balanced.
        let per_domain: Vec<Vec<u16>> = (0..self.domains.num_domains())
            .map(|d| self.domains.nodes_in(d))
            .collect();
        let mut cursor = vec![0usize; usize::from(self.domains.num_domains())];
        let mut sets = Vec::with_capacity(domain_placement.num_objects());
        for dset in domain_placement.replica_sets() {
            let mut set: Vec<u16> = dset
                .iter()
                .map(|&d| {
                    let nodes = &per_domain[usize::from(d)];
                    let c = &mut cursor[usize::from(d)];
                    let nd = nodes[*c % nodes.len()];
                    *c += 1;
                    nd
                })
                .collect();
            set.sort_unstable();
            sets.push(set);
        }
        Placement::new(self.domains.num_nodes(), self.domain_params.r(), sets)
    }
}

/// Convenience: plan and build in one call.
///
/// # Errors
///
/// See [`DomainStrategy::plan`] / [`DomainStrategy::build`].
pub fn domain_placement(
    domains: FaultDomains,
    b: u64,
    r: u16,
    s: u16,
    k: u16,
    config: &wcp_designs::registry::RegistryConfig,
) -> Result<(Placement, u64), PlacementError> {
    let strategy = DomainStrategy::plan(domains, b, r, s, k, config)?;
    let placement = strategy.build()?;
    let bound = strategy.lower_bound();
    Ok((placement, bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_designs::registry::RegistryConfig;

    #[test]
    fn uniform_split_balanced() {
        let fd = FaultDomains::uniform(13, 4).unwrap();
        let sizes: Vec<usize> = (0..4).map(|d| fd.nodes_in(d).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 13);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn invalid_maps_rejected() {
        assert!(FaultDomains::new(vec![0, 1, 5], 3).is_err()); // id out of range
        assert!(FaultDomains::new(vec![0, 0, 2], 3).is_err()); // domain 1 empty
        assert!(FaultDomains::uniform(5, 0).is_err());
        assert!(FaultDomains::uniform(5, 6).is_err());
    }

    #[test]
    fn projection_counts_domain_failures() {
        let fd = FaultDomains::uniform(12, 4).unwrap();
        // One object on nodes {0, 3, 6} = domains {0, 1, 2}.
        let p = Placement::new(12, 3, vec![vec![0, 3, 6]]).unwrap();
        let proj = project(&p, &fd).unwrap();
        assert_eq!(proj.replicas(0), &[0, 1, 2]);
        // Failing domains {0, 1} kills the object at s = 2.
        assert_eq!(proj.failed_objects(&[0, 1], 2), 1);
    }

    #[test]
    fn projection_rejects_same_domain_replicas() {
        let fd = FaultDomains::uniform(12, 4).unwrap();
        let p = Placement::new(12, 3, vec![vec![0, 1, 6]]).unwrap(); // 0,1 same rack
        assert!(project(&p, &fd).is_err());
    }

    #[test]
    fn domain_strategy_builds_and_balances() {
        // 84 nodes in 21 racks of 4; replicas in 3 distinct racks.
        let fd = FaultDomains::uniform(84, 21).unwrap();
        let (placement, bound) =
            domain_placement(fd.clone(), 200, 3, 2, 3, &RegistryConfig::default()).unwrap();
        assert_eq!(placement.num_objects(), 200);
        assert!(bound > 0);
        // Every replica set spans three distinct racks.
        let projected = project(&placement, &fd).unwrap();
        assert_eq!(projected.num_objects(), 200);
        // Node-level load stays balanced within the domain imbalance.
        let loads = placement.loads();
        let max = loads.iter().max().unwrap();
        assert!(*max <= 3 * (200 * 3 / 84 + 1) as u32);
    }
    // Adversarial end-to-end checks live in tests/domain_integration.rs
    // (an integration test links the real rlib, avoiding the
    // dev-dependency cycle with wcp-adversary).
}
