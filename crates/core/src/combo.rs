//! The `Combo(⟨λ_x⟩)` placement strategy and the dynamic program of
//! Sec. III-B1 (Eqns. 5–7).
//!
//! A Combo placement divides the `b` objects across `Simple(x, λ_x)`
//! sub-placements for `x ∈ [s]`, subject to the capacity constraint
//! (Eqn. 3). The DP chooses `⟨λ_x⟩` to maximize the availability lower
//! bound `lbAvail_co` (Lemma 3) for a *target* number of node failures
//! `k`; Sec. III-B2 (and our Fig. 3 reproduction) shows the choice is not
//! very sensitive to `k`.

use crate::bounds::lb_avail_co;
use crate::simple::SimpleStrategy;
use crate::{PackingProfile, Placement, PlacementError, SystemParams};
use wcp_combin::binomial;

/// The output of the DP: the per-`x` unit counts and object allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComboPlan {
    /// `λ_x = d_x·μ_x` for `x ∈ [s]`.
    pub lambdas: Vec<u64>,
    /// Objects assigned to each `Simple(x, λ_x)` sub-placement.
    pub objects: Vec<u64>,
    /// The maximized lower bound `lbAvail_co(⟨λ_x⟩)` (Eqn. 4); clamped at
    /// 0 like the recurrence.
    pub lb_avail: u64,
}

/// Runs the DP (Eqns. 5–7) over `profile` for `b` objects and target
/// failure count `k`, returning the optimal `⟨λ_x⟩`.
///
/// Runtime is `O(s·b·d_max)` where `d_max` is the largest unit count any
/// single slot may need; memory `O(s·b)`.
///
/// # Errors
///
/// [`PlacementError::InsufficientCapacity`] when not even the `x = 0` slot
/// can absorb the remaining objects (only possible with degenerate
/// profiles), and [`PlacementError::InvalidParams`] for `k < s`.
///
/// # Examples
///
/// ```
/// use wcp_core::{combo_plan, PackingProfile, SystemParams};
///
/// let params = SystemParams::new(71, 1200, 3, 2, 3)?;
/// let profile = PackingProfile::paper(&params)?;
/// let plan = combo_plan(&profile, &params)?;
/// // 1200 objects fit in two copies of STS(69) (782 each): λ1 = 2.
/// assert_eq!(plan.lambdas, vec![0, 2]);
/// assert_eq!(plan.lb_avail, 1200 - 2 * 3); // penalty ⌊2·C(3,2)/C(2,2)⌋
/// # Ok::<(), wcp_core::PlacementError>(())
/// ```
pub fn combo_plan(
    profile: &PackingProfile,
    params: &SystemParams,
) -> Result<ComboPlan, PlacementError> {
    let s = profile.s();
    let k = params.k();
    let b = params.b();
    if k < s {
        return Err(PlacementError::InvalidParams(format!(
            "target failures k={k} below fatality threshold s={s}"
        )));
    }
    let b_us = usize::try_from(b)
        .map_err(|_| PlacementError::InvalidParams("b too large for the DP table".into()))?;

    // Penalty of d units at slot x: ⌊d·μ_x·C(k, x+1)/C(s, x+1)⌋.
    let pen = |x: u16, d: u64| -> i64 {
        let num = binomial(u64::from(k), u64::from(x) + 1).expect("small");
        let den = binomial(u64::from(s), u64::from(x) + 1).expect("small");
        let spec = profile.spec(x);
        i64::try_from(u128::from(d) * u128::from(spec.mu) * num / den).expect("penalty fits i64")
    };

    // dp[x][b'] = best lbAvail placing b' objects with slots 0..=x;
    // choice[x][b'] = chosen d at slot x.
    let mut dp_prev: Vec<i64> = vec![0; b_us + 1];
    let mut choices: Vec<Vec<u32>> = Vec::with_capacity(usize::from(s));

    // Base case x = 0 (Eqn. 6): all b' objects go to Simple(0, λ0) with the
    // minimal λ0 whose capacity reaches b'.
    {
        let spec = profile.spec(0);
        let mut choice0 = vec![0u32; b_us + 1];
        for bp in 1..=b_us {
            let d = spec
                .units_for(bp as u64)
                .ok_or(PlacementError::InsufficientCapacity {
                    requested: bp as u64,
                    capacity: 0,
                })?;
            choice0[bp] = u32::try_from(d).expect("unit count fits u32");
            dp_prev[bp] = (bp as i64 - pen(0, d)).max(0);
        }
        choices.push(choice0);
    }

    // Inductive case (Eqn. 7).
    for x in 1..s {
        let spec = profile.spec(x);
        let mut dp_cur = vec![0i64; b_us + 1];
        let mut choice = vec![0u32; b_us + 1];
        for bp in 1..=b_us {
            // d = 0: delegate everything to smaller x.
            let mut best = dp_prev[bp];
            let mut best_d = 0u64;
            if let Some(d_max) = spec.units_for(bp as u64) {
                for d in 1..=d_max {
                    let cap = spec.capacity(d);
                    let placed = cap.min(bp as u64);
                    let rest = bp as u64 - placed;
                    let cand =
                        dp_prev[usize::try_from(rest).expect("fits")] + placed as i64 - pen(x, d);
                    if cand > best {
                        best = cand;
                        best_d = d;
                    }
                }
            }
            dp_cur[bp] = best.max(0);
            choice[bp] = u32::try_from(best_d).expect("unit count fits u32");
        }
        dp_prev = dp_cur;
        choices.push(choice);
    }

    // Backtrack from x = s−1.
    let mut lambdas = vec![0u64; usize::from(s)];
    let mut objects = vec![0u64; usize::from(s)];
    let mut bp = b;
    for x in (1..s).rev() {
        let d = u64::from(choices[usize::from(x)][usize::try_from(bp).expect("fits")]);
        let spec = profile.spec(x);
        let placed = spec.capacity(d).min(bp);
        lambdas[usize::from(x)] = d * spec.mu;
        objects[usize::from(x)] = placed;
        bp -= placed;
    }
    if bp > 0 {
        let spec = profile.spec(0);
        let d = u64::from(choices[0][usize::try_from(bp).expect("fits")]);
        lambdas[0] = d * spec.mu;
        objects[0] = bp;
    }

    let lb = lb_avail_co(&lambdas, b, k, s).max(0) as u64;
    Ok(ComboPlan {
        lambdas,
        objects,
        lb_avail: lb,
    })
}

/// A planned Combo strategy, ready to materialize placements.
#[derive(Debug, Clone)]
pub struct ComboStrategy {
    profile: PackingProfile,
    plan: ComboPlan,
}

impl ComboStrategy {
    /// Plans against the paper's Fig. 4 profile (arithmetic capacities).
    ///
    /// The resulting strategy reproduces the paper's `lbAvail_co` values
    /// exactly but can only [`build`](Self::build) when the profile's
    /// designs are constructible; use
    /// [`plan_constructive`](Self::plan_constructive) for guaranteed
    /// materialization.
    ///
    /// # Errors
    ///
    /// Propagates profile and DP errors.
    pub fn plan_paper(params: &SystemParams) -> Result<Self, PlacementError> {
        let profile = PackingProfile::paper(params)?;
        let plan = combo_plan(&profile, params)?;
        Ok(Self { profile, plan })
    }

    /// Plans against the constructive registry profile.
    ///
    /// # Errors
    ///
    /// Propagates profile and DP errors.
    pub fn plan_constructive(
        params: &SystemParams,
        config: &wcp_designs::registry::RegistryConfig,
    ) -> Result<Self, PlacementError> {
        let profile = PackingProfile::constructive(params, config)?;
        let plan = combo_plan(&profile, params)?;
        Ok(Self { profile, plan })
    }

    /// Plans against an explicit profile.
    ///
    /// # Errors
    ///
    /// Propagates DP errors.
    pub fn plan_with_profile(
        profile: PackingProfile,
        params: &SystemParams,
    ) -> Result<Self, PlacementError> {
        let plan = combo_plan(&profile, params)?;
        Ok(Self { profile, plan })
    }

    /// The chosen `⟨λ_x⟩` and allocation.
    #[must_use]
    pub fn plan(&self) -> &ComboPlan {
        &self.plan
    }

    /// The profile planned against.
    #[must_use]
    pub fn profile(&self) -> &PackingProfile {
        &self.profile
    }

    /// The maximized availability lower bound.
    #[must_use]
    pub fn lower_bound(&self) -> u64 {
        self.plan.lb_avail
    }

    /// Materializes the Combo placement: each `Simple(x, λ_x)`
    /// sub-placement is built and concatenated (they share the node set,
    /// Definition 3).
    ///
    /// # Errors
    ///
    /// [`PlacementError::Design`] when the profile cannot materialize a
    /// slot the plan uses (paper profile slots without constructions).
    pub fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        let mut placement = Placement::new(params.n(), params.r(), Vec::new())?;
        for x in (0..self.profile.s()).rev() {
            let objs = self.plan.objects[usize::from(x)];
            if objs == 0 {
                continue;
            }
            let lambda = self.plan.lambdas[usize::from(x)];
            let simple = SimpleStrategy::from_spec(
                self.profile.spec(x).clone(),
                lambda,
                params.n(),
                params.r(),
            );
            placement.extend(simple.build(objs)?)?;
        }
        Ok(placement)
    }
}

impl crate::PlacementStrategy for ComboStrategy {
    fn name(&self) -> &str {
        "combo"
    }

    /// Lemma 3 for the planned `⟨λ_x⟩`, re-evaluated at the given
    /// parameters' `(b, k)` (the Fig. 3 sensitivity study evaluates a
    /// plan at failure counts other than the one it was planned for).
    fn lower_bound(&self, params: &SystemParams) -> i64 {
        lb_avail_co(&self.plan.lambdas, params.b(), params.k(), params.s())
    }

    fn build(&self, params: &SystemParams) -> Result<Placement, PlacementError> {
        ComboStrategy::build(self, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_designs::registry::RegistryConfig;

    fn params(n: u16, b: u64, r: u16, s: u16, k: u16) -> SystemParams {
        SystemParams::new(n, b, r, s, k).unwrap()
    }

    #[test]
    fn dp_prefers_large_x_when_lambda_small() {
        // n = 71, r = 3, s = 2, b = 600: one STS(69) copy (782 ≥ 600)
        // suffices; λ1 = 1.
        let p = params(71, 600, 3, 2, 3);
        let prof = PackingProfile::paper(&p).unwrap();
        let plan = combo_plan(&prof, &p).unwrap();
        assert_eq!(plan.lambdas, vec![0, 1]);
        assert_eq!(plan.objects, vec![0, 600]);
        assert_eq!(plan.lb_avail, 600 - 3); // ⌊C(3,2)/C(2,2)⌋ = 3
    }

    #[test]
    fn dp_matches_paper_combo_fig10_case() {
        // Fig. 10b (r = s = 3, n = 71): at b = 600 and k = 3 a single index
        // unit suffices, with penalty ⌊C(3,2)/C(3,2)⌋ = ⌊C(3,3)/C(3,3)⌋ = 1
        // whether it lands on x = 1 (STS(69)) or x = 2 (complete triples) —
        // the two plans tie at lbAvail = 599 and the DP may return either.
        let p = params(71, 600, 3, 3, 3);
        let prof = PackingProfile::paper(&p).unwrap();
        let plan = combo_plan(&prof, &p).unwrap();
        assert_eq!(plan.lb_avail, 600 - 1);
        assert_eq!(plan.lambdas.iter().sum::<u64>(), 1);
        assert_eq!(plan.lambdas[0], 0);
        // At k = 5 the tie breaks: x = 2's penalty is C(5,3) = 10 vs
        // x = 1's ⌊C(5,2)/C(3,2)⌋ = 3, so the DP must use x = 1.
        let p5 = params(71, 600, 3, 3, 5);
        let plan5 = combo_plan(&prof, &p5).unwrap();
        assert_eq!(plan5.lambdas, vec![0, 1, 0]);
        assert_eq!(plan5.lb_avail, 600 - 3);
    }

    #[test]
    fn dp_switches_to_lower_x_when_b_grows() {
        // Same system, more objects: the x = 2 slot's λ2 would have to
        // grow (hurting the bound superlinearly in k), so the DP mixes or
        // switches to x = 1 copies. Verify against brute force.
        let p = params(31, 4800, 3, 3, 5);
        let prof = PackingProfile::paper(&p).unwrap();
        let plan = combo_plan(&prof, &p).unwrap();
        let brute = brute_force_best(&prof, &p);
        assert_eq!(plan.lb_avail, brute, "DP {:?} vs brute {}", plan, brute);
    }

    /// Brute force over (d1, d2) for s = 3 profiles (d0 forced minimal).
    fn brute_force_best(prof: &PackingProfile, p: &SystemParams) -> u64 {
        let b = p.b();
        let mut best = 0i64;
        let s = prof.s();
        assert_eq!(s, 3);
        let (sp0, sp1, sp2) = (prof.spec(0), prof.spec(1), prof.spec(2));
        let d1_max = sp1.units_for(b).unwrap();
        for d1 in 0..=d1_max {
            let placed1 = sp1.capacity(d1).min(b);
            let d2_max = sp2.units_for(b - placed1).unwrap();
            for d2 in 0..=d2_max {
                let placed2 = sp2.capacity(d2).min(b - placed1);
                let rest = b - placed1 - placed2;
                let d0 = sp0.units_for(rest).unwrap();
                let lambdas = [d0 * sp0.mu, d1 * sp1.mu, d2 * sp2.mu];
                let lb = crate::lb_avail_co(&lambdas, b, p.k(), p.s());
                best = best.max(lb);
            }
        }
        best.max(0) as u64
    }

    #[test]
    fn dp_matches_brute_force_across_parameters() {
        for (n, b, r, k) in [
            (71u16, 1200u64, 5u16, 4u16),
            (71, 2400, 5, 6),
            (31, 600, 4, 3),
            (257, 4800, 5, 8),
            (31, 9600, 3, 4),
        ] {
            let p = params(n, b, r, 3, k);
            let prof = PackingProfile::paper(&p).unwrap();
            let plan = combo_plan(&prof, &p).unwrap();
            assert_eq!(
                plan.lb_avail,
                brute_force_best(&prof, &p),
                "mismatch at n={n} b={b} r={r} k={k}"
            );
        }
    }

    #[test]
    fn allocation_covers_all_objects() {
        for b in [600u64, 1200, 4800, 9600, 38_400] {
            let p = params(257, b, 5, 3, 6);
            let prof = PackingProfile::paper(&p).unwrap();
            let plan = combo_plan(&prof, &p).unwrap();
            assert_eq!(plan.objects.iter().sum::<u64>(), b, "b={b}");
            // Each slot's allocation respects its λ capacity.
            for x in 0..3u16 {
                let spec = prof.spec(x);
                let lam = plan.lambdas[usize::from(x)];
                assert!(plan.objects[usize::from(x)] <= spec.capacity(lam / spec.mu));
            }
        }
    }

    #[test]
    fn constructive_build_roundtrip() {
        let p = params(71, 900, 3, 2, 3);
        let strat = ComboStrategy::plan_constructive(&p, &RegistryConfig::default()).unwrap();
        let placement = strat.build(&p).unwrap();
        assert_eq!(placement.num_objects(), 900);
        assert_eq!(placement.num_nodes(), 71);
        // Every adversarial k-set kills at least as many objects as the
        // bound predicts... i.e. bound must hold for sampled failure sets.
        let lb = strat.lower_bound();
        for probe in [[0u16, 1, 2], [10, 30, 50], [68, 69, 70]] {
            let failed = placement.failed_objects(&probe, p.s());
            assert!(
                900 - failed >= lb,
                "bound {lb} violated by probe {probe:?} ({failed} failed)"
            );
        }
    }

    #[test]
    fn s1_degenerates_to_load_cap() {
        let p = params(71, 710, 5, 1, 3);
        let prof = PackingProfile::paper(&p).unwrap();
        let plan = combo_plan(&prof, &p).unwrap();
        // λ0 = ceil(710·5/71) = 50; penalty ⌊50·3/1⌋ = 150.
        assert_eq!(plan.lambdas, vec![50]);
        assert_eq!(plan.lb_avail, 710 - 150);
    }
}
