// Fixture: lint:allow(index-guard, …) must suppress the indexing
// finding. Not compiled.
pub fn third(values: &Vec<u32>) -> u32 {
    debug_assert!(values.len() > 2);
    values[2] // lint:allow(index-guard, fixture - length asserted above)
}
