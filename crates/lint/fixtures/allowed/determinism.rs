// Fixture: lint:allow(determinism, …) must suppress the HashMap
// finding. Not compiled.
// lint:allow(determinism, fixture - membership probe only, never iterated)
use std::collections::HashMap;

pub fn contains(loads: &std::collections::BTreeMap<u16, u32>, node: u16) -> bool {
    loads.contains_key(&node)
}
