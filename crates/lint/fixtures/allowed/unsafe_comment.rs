// Fixture: a SAFETY comment satisfies the unsafe-comment rule (the
// allow escape hatch also works). Not compiled.
pub fn reinterpret(x: u32) -> i32 {
    // SAFETY: u32 and i32 have identical size and all bit patterns of
    // both are valid values; transmute between them is total.
    unsafe { std::mem::transmute(x) }
}
