// Fixture: lint:allow(thread-discipline, …) must suppress both the
// spawn and the relaxed-ordering findings. Not compiled.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn measured_exception(shared: &AtomicU64) -> u64 {
    // lint:allow(thread-discipline, fixture - detached telemetry thread)
    let handle = std::thread::spawn(|| 7u64);
    // lint:allow(thread-discipline, fixture - monotone counter, order-free)
    shared.fetch_add(1, Ordering::Relaxed);
    handle.join().unwrap_or(0)
}
