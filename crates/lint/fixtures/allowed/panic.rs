// Fixture: lint:allow(panic, …) must suppress the unwrap finding.
// Not compiled.
pub fn head(values: &Vec<u32>) -> u32 {
    // lint:allow(panic, fixture - caller guarantees non-empty input)
    values.first().copied().unwrap()
}
