// Fixture: the thread-discipline rule must fire on ad-hoc threading
// and relaxed atomics outside the sanctioned pool modules. Not
// compiled; consumed by `wcp-lint --check` and the fixture test suite.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn race_the_pool(shared: &AtomicU64) -> u64 {
    let handle = std::thread::spawn(|| 7u64);
    shared.fetch_add(1, Ordering::Relaxed);
    handle.join().unwrap_or(0)
}
