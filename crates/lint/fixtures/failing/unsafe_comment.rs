// Fixture: the unsafe-comment rule must fire on `unsafe` without a
// nearby SAFETY justification. Not compiled.
pub fn reinterpret(x: u32) -> i32 {
    unsafe { std::mem::transmute(x) }
}
