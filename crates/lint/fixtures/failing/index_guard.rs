// Fixture: the index-guard rule must fire on unguarded slice indexing.
// Not compiled.
pub fn third(values: &Vec<u32>) -> u32 {
    values[2]
}
