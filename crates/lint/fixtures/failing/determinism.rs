// Fixture: the determinism rule must fire on hash-order iteration in a
// decision path. Not compiled; consumed by `wcp-lint --check` and the
// fixture test suite.
use std::collections::HashMap;

pub fn first_key(loads: &HashMap<u16, u32>) -> Option<u16> {
    loads.keys().next().copied()
}
