// Fixture: the panic rule must fire on `.unwrap()`, `.expect(…)` and
// `panic!` in library code. Not compiled.
pub fn head(values: &Vec<u32>) -> u32 {
    values.first().copied().unwrap()
}

pub fn named(values: &Vec<u32>) -> u32 {
    values.first().copied().expect("non-empty")
}

pub fn boom() {
    panic!("placement invariant violated");
}
