//! Proptest fuzz for the hand-rolled lexer (and the rule engine riding
//! on it): on arbitrary input soups the lexer must never panic, its
//! token spans must exactly tile the input on char boundaries, and
//! lexing must be deterministic. The rule engine must swallow the same
//! soups without panicking — a linter that crashes on weird-but-legal
//! source is worse than no linter.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wcp_lint::lexer::{lex, TokenKind};
use wcp_lint::lint_source;

/// Fragments biased toward the lexer's tricky paths: raw strings with
/// varying hash counts, char-vs-lifetime quotes, nested comments,
/// numeric edge shapes, attributes, multibyte text, and the very
/// identifiers the rules hunt for.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "let ",
    "x",
    "ident_1",
    "r#match",
    "λ",
    "貓",
    " ",
    "\t",
    "\n",
    "//",
    "/*",
    "*/",
    "\"",
    "\\",
    "\"str\"",
    "r\"",
    "r#\"",
    "\"#",
    "r##\"",
    "\"##",
    "b\"",
    "br#\"",
    "c\"",
    "#",
    "'",
    "'a",
    "'a'",
    "'\\n'",
    "'\\u{1F600}'",
    "'static",
    "0",
    "1_000",
    "0xff",
    "1.5e-3",
    "2.",
    "..",
    "..=",
    "::",
    ".",
    "[",
    "]",
    "{",
    "}",
    "(",
    ")",
    "!",
    "?",
    ";",
    ",",
    "=",
    "<",
    ">",
    "unwrap",
    "expect",
    "panic",
    "HashMap",
    "Instant",
    "now",
    "unsafe",
    "SAFETY:",
    "lint:allow(",
    "lint:allow(panic,x)",
    "#[cfg(test)]",
    "#[test]",
    "mod tests",
    "vec!",
];

fn soup(seed: u64, fragments: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for _ in 0..fragments {
        out.push_str(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_and_spans_tile_the_input(
        seed in any::<u64>(),
        fragments in 0usize..120,
    ) {
        let src = soup(seed, fragments);
        let tokens = lex(&src);
        // Spans tile: start at 0, contiguous, end at len, all non-empty.
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor, "gap/overlap in {:?}", src);
            prop_assert!(t.end > t.start, "empty token in {:?}", src);
            prop_assert!(src.is_char_boundary(t.start));
            prop_assert!(src.is_char_boundary(t.end));
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len(), "tail not covered in {:?}", src);
        // Whitespace never merges with anything else.
        for t in &tokens {
            if t.kind == TokenKind::Whitespace {
                prop_assert!(t.text(&src).chars().all(char::is_whitespace));
            }
        }
    }

    #[test]
    fn lexing_is_deterministic(seed in any::<u64>(), fragments in 0usize..80) {
        let src = soup(seed, fragments);
        prop_assert_eq!(lex(&src), lex(&src));
    }

    #[test]
    fn rule_engine_never_panics_on_soup(
        seed in any::<u64>(),
        fragments in 0usize..80,
        scoped in any::<bool>(),
    ) {
        let src = soup(seed, fragments);
        // Scoped path on a determinism+panic scope file, and fixture mode.
        let path = if scoped { "crates/core/src/sweep.rs" } else { "soup.rs" };
        let diags = lint_source(path, &src, scoped);
        for d in diags {
            prop_assert!(d.line >= 1);
        }
    }

    #[test]
    fn truncation_never_panics(seed in any::<u64>(), fragments in 1usize..40) {
        // Cutting a soup at every char boundary exercises unterminated
        // strings/comments/raw-string tails.
        let src = soup(seed, fragments);
        let cut = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
            let boundaries: Vec<usize> = src
                .char_indices()
                .map(|(i, _)| i)
                .chain(std::iter::once(src.len()))
                .collect();
            boundaries[rng.gen_range(0..boundaries.len())]
        };
        let tokens = lex(&src[..cut]);
        prop_assert_eq!(tokens.last().map(|t| t.end).unwrap_or(0), cut);
    }
}
