//! Each rule's failing fixture must fire exactly that rule, and each
//! `lint:allow` twin must be silent — proving the rules detect what
//! they claim and the escape hatch actually suppresses.

use std::path::{Path, PathBuf};
use wcp_lint::{lint_source, RuleId};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn lint_fixture(sub: &str, name: &str) -> Vec<RuleId> {
    let path = fixtures_dir().join(sub).join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    // Fixture mode: path scoping off, exactly like `wcp-lint --check`.
    lint_source(&format!("fixtures/{sub}/{name}"), &text, false)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

/// The five file rules and their fixture stems.
const FILE_RULES: [(RuleId, &str); 5] = [
    (RuleId::Determinism, "determinism.rs"),
    (RuleId::Panic, "panic.rs"),
    (RuleId::Index, "index_guard.rs"),
    (RuleId::UnsafeComment, "unsafe_comment.rs"),
    (RuleId::ThreadDiscipline, "thread_discipline.rs"),
];

#[test]
fn every_failing_fixture_fires_its_rule_and_only_its_rule() {
    for (rule, name) in FILE_RULES {
        let fired = lint_fixture("failing", name);
        assert!(
            fired.contains(&rule),
            "fixtures/failing/{name} did not fire {rule}"
        );
        assert!(
            fired.iter().all(|r| *r == rule),
            "fixtures/failing/{name} fired foreign rules: {fired:?}"
        );
    }
}

#[test]
fn every_allowed_fixture_is_silent() {
    for (_, name) in FILE_RULES {
        let fired = lint_fixture("allowed", name);
        assert_eq!(fired, vec![], "fixtures/allowed/{name} was not suppressed");
    }
}

#[test]
fn panic_fixture_counts_all_three_constructs() {
    // unwrap(), expect(…) and panic! are three separate findings — the
    // baseline counts depend on per-site granularity.
    let fired = lint_fixture("failing", "panic.rs");
    assert_eq!(fired.len(), 3, "{fired:?}");
}

#[test]
fn fixture_set_is_exhaustive_per_rule() {
    // A new file rule must ship fixtures: every file-scoped RuleId is
    // covered, and no stray fixtures exist that no rule claims.
    for sub in ["failing", "allowed"] {
        let dir = fixtures_dir().join(sub);
        let mut found: Vec<String> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("{} unreadable: {e}", dir.display()))
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        found.sort();
        let mut expected: Vec<String> = FILE_RULES.iter().map(|(_, n)| (*n).to_string()).collect();
        expected.sort();
        assert_eq!(
            found, expected,
            "fixtures/{sub} out of sync with FILE_RULES"
        );
    }
}
