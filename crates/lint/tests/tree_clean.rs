//! The committed tree must be clean against the committed baseline —
//! this is the same check CI's `tidy` step runs via the `wcp-lint`
//! binary, wired into `cargo test` so a new violation (or a stale
//! baseline entry) fails before it ever reaches CI.

use std::path::{Path, PathBuf};
use wcp_lint::{baseline, walk, RuleId};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn tree_matches_committed_baseline() {
    let root = repo_root();
    let diags = walk::lint_tree(&root).expect("tree lints");
    let current = baseline::count(&diags);
    let committed = baseline::parse(
        &std::fs::read_to_string(root.join("lint_baseline.txt"))
            .expect("lint_baseline.txt is committed at the workspace root"),
    )
    .expect("baseline parses");
    let issues = baseline::diff(&committed, &current);
    assert!(
        issues.is_empty(),
        "tree vs baseline:\n{}",
        issues
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn zero_debt_rules_stay_at_zero() {
    // Determinism, unsafe-comment, thread-discipline, layering and
    // bench-schema carry no legacy debt: the baseline must not contain
    // them, so any hit fails immediately rather than being silently
    // baselined later.
    let root = repo_root();
    let committed = baseline::parse(
        &std::fs::read_to_string(root.join("lint_baseline.txt")).expect("baseline committed"),
    )
    .expect("baseline parses");
    for rule in [
        RuleId::Determinism,
        RuleId::UnsafeComment,
        RuleId::ThreadDiscipline,
        RuleId::Layering,
        RuleId::BenchSchema,
    ] {
        assert!(
            !committed.keys().any(|(r, _)| r == rule.as_str()),
            "{rule} must have no baseline entries"
        );
    }
}

#[test]
fn seeded_hash_iteration_in_a_decision_path_fails() {
    // The acceptance scenario: inject a HashMap iteration into a
    // strategy decision path and the gate must go red.
    let root = repo_root();
    let path = root.join("crates/core/src/strategy.rs");
    let original = std::fs::read_to_string(&path).expect("strategy.rs readable");
    let seeded = format!(
        "{original}\nfn injected_tiebreak(m: &std::collections::HashMap<u16, u32>) -> u32 {{\n    m.values().sum()\n}}\n"
    );
    let diags = wcp_lint::lint_source("crates/core/src/strategy.rs", &seeded, true);
    assert!(
        diags.iter().any(|d| d.rule == RuleId::Determinism),
        "seeded HashMap did not trip the determinism rule"
    );
    // And the baseline has no determinism allowance to hide behind.
    let committed = baseline::parse(
        &std::fs::read_to_string(root.join("lint_baseline.txt")).expect("baseline committed"),
    )
    .expect("baseline parses");
    let issues = baseline::diff(&committed, &baseline::count(&diags));
    assert!(
        issues.iter().any(|i| matches!(
            i,
            baseline::DiffIssue::New { rule, .. } if rule == "determinism"
        )),
        "baseline diff did not flag the seeded violation: {issues:?}"
    );
}
