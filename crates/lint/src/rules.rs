//! The file-level rule catalog: determinism, panic-freedom, unguarded
//! indexing, and `unsafe`-requires-`SAFETY`-comment.
//!
//! Rules operate on the token stream of a [`SourceFile`]; comments and
//! string literals can never fire a rule. Each rule self-scopes by path
//! (see the predicates below) and skips `#[cfg(test)]` / `#[test]`
//! regions; a `// lint:allow(rule, reason)` on or above the line
//! suppresses the finding.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::{Diagnostic, RuleId};

/// Files whose decisions must be bit-reproducible: the planner
/// strategies, the sweep/dynamic engines, and every adversary module.
/// (Byte-identical parallel sweeps and packed ≡ scalar parity are
/// acceptance claims of PRs 2/4/5.)
fn determinism_scope(path: &str) -> bool {
    const CORE_DECISION_FILES: [&str; 11] = [
        "adaptive.rs",
        "baselines.rs",
        "combo.rs",
        "domains.rs",
        "dynamic.rs",
        "engine.rs",
        "random.rs",
        "simple.rs",
        "strategy.rs",
        "sweep.rs",
        "topology.rs",
    ];
    path.starts_with("crates/adversary/src/")
        || CORE_DECISION_FILES
            .iter()
            .any(|f| path == format!("crates/core/src/{f}"))
}

/// Non-test library code that will sit behind the serving loop: the
/// `core`, `adversary` and `sim` crates' `src/` trees (no `src/bin/`).
fn panic_scope(path: &str) -> bool {
    [
        "crates/core/src/",
        "crates/adversary/src/",
        "crates/sim/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
        && !path.contains("/bin/")
}

/// The only modules allowed to touch threading/atomics primitives: the
/// sweep fan-out (the one sanctioned `std::thread::scope` home in
/// `wcp-core`), the adversary's shared-incumbent pool, and the serving
/// layer's repair-thread runtime. Everything else must go through
/// their APIs, so the "bit-identical at every thread count" contract
/// has exactly three rooms to audit.
fn thread_sanctioned(path: &str) -> bool {
    path == "crates/core/src/sweep.rs"
        || path == "crates/adversary/src/pool.rs"
        || path == "crates/service/src/runtime.rs"
}

/// Keywords that may legitimately precede a `[` without forming an
/// index expression (slice patterns, `for x in [..]`, …).
const NON_INDEX_KEYWORDS: [&str; 22] = [
    "as", "box", "break", "const", "dyn", "else", "enum", "fn", "for", "if", "impl", "in", "let",
    "loop", "match", "mod", "move", "mut", "ref", "return", "static", "while",
];

/// Identifiers banned outright in determinism scope.
const NONDETERMINISTIC_IDENTS: [(&str, &str); 4] = [
    (
        "HashMap",
        "iteration order is nondeterministic; use BTreeMap or a sorted Vec \
         (byte-identical sweeps depend on it)",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic; use BTreeSet or a sorted Vec \
         (byte-identical sweeps depend on it)",
    ),
    (
        "thread_rng",
        "OS-seeded RNG breaks reproducibility; thread a seeded StdRng instead",
    ),
    (
        "from_entropy",
        "OS-seeded RNG breaks reproducibility; seed from wcp_sim::seed_for instead",
    ),
];

/// Methods that panic on the empty/err case, banned in panic scope.
const PANICKING_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that abort, banned in panic scope.
const PANICKING_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Runs every file rule on `sf`. With `scoped`, rules apply only inside
/// the paths they govern; without, all of them run (fixture mode).
#[must_use]
pub fn check_file(sf: &SourceFile, scoped: bool) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let in_determinism = !scoped || determinism_scope(&sf.path);
    let in_panic = !scoped || panic_scope(&sf.path);
    let in_thread = !scoped || !thread_sanctioned(&sf.path);
    for (pos, &ti) in sf.significant.iter().enumerate() {
        let tok = &sf.tokens[ti];
        if sf.in_test_code(tok.start) {
            continue;
        }
        if in_determinism {
            determinism_at(sf, pos, tok, &mut diags);
        }
        if in_panic {
            panic_at(sf, pos, tok, &mut diags);
            index_at(sf, pos, tok, &mut diags);
        }
        if in_thread {
            thread_discipline_at(sf, pos, tok, &mut diags);
        }
        unsafe_at(sf, pos, tok, &mut diags);
    }
    diags.retain(|d| !sf.allowed(d.rule, d.line));
    diags
}

fn push(sf: &SourceFile, tok: &Token, rule: RuleId, message: String, out: &mut Vec<Diagnostic>) {
    out.push(Diagnostic {
        file: sf.path.clone(),
        line: sf.line_of(tok.start),
        rule,
        message,
    });
}

/// Determinism: banned idents, plus `Instant::now` / `SystemTime::now`
/// call sites (the bare type in a `use` is fine — only taking a clock
/// reading is a decision-path hazard).
fn determinism_at(sf: &SourceFile, pos: usize, tok: &Token, out: &mut Vec<Diagnostic>) {
    if tok.kind != TokenKind::Ident {
        return;
    }
    let text = tok.text(&sf.text);
    if let Some((ident, why)) = NONDETERMINISTIC_IDENTS.iter().find(|(id, _)| *id == text) {
        push(
            sf,
            tok,
            RuleId::Determinism,
            format!("`{ident}`: {why}"),
            out,
        );
        return;
    }
    if matches!(text, "Instant" | "SystemTime")
        && sf.next_significant(pos, 1).map(|t| t.text(&sf.text)) == Some(":")
        && sf.next_significant(pos, 2).map(|t| t.text(&sf.text)) == Some(":")
        && sf.next_significant(pos, 3).map(|t| t.text(&sf.text)) == Some("now")
    {
        push(
            sf,
            tok,
            RuleId::Determinism,
            format!(
                "`{text}::now()` reads the wall clock in a decision path; \
                 results must be a pure function of the inputs and seed"
            ),
            out,
        );
    }
}

/// Panic-freedom: `.unwrap()` / `.expect(…)` (and their `_err` twins)
/// and `panic!` / `todo!` / `unimplemented!` in library code.
fn panic_at(sf: &SourceFile, pos: usize, tok: &Token, out: &mut Vec<Diagnostic>) {
    if tok.kind != TokenKind::Ident {
        return;
    }
    let text = tok.text(&sf.text);
    if PANICKING_METHODS.contains(&text)
        && sf.prev_significant(pos).map(|t| t.text(&sf.text)) == Some(".")
        && sf.next_significant(pos, 1).map(|t| t.text(&sf.text)) == Some("(")
    {
        push(
            sf,
            tok,
            RuleId::Panic,
            format!(
                "`.{text}()` panics in library code that will sit behind the \
                 serving loop; return a Result (e.g. wcp_core::error) instead"
            ),
            out,
        );
    } else if PANICKING_MACROS.contains(&text)
        && sf.next_significant(pos, 1).map(|t| t.text(&sf.text)) == Some("!")
    {
        push(
            sf,
            tok,
            RuleId::Panic,
            format!("`{text}!` aborts library code; return an error instead"),
            out,
        );
    }
}

/// Unguarded indexing: a `[` in expression position (directly after an
/// identifier, `)`, `]` or `?`) panics on out-of-bounds; prefer `.get`
/// or prove the bound and `lint:allow(index-guard, why)`.
fn index_at(sf: &SourceFile, pos: usize, tok: &Token, out: &mut Vec<Diagnostic>) {
    if tok.kind != TokenKind::Punct || tok.text(&sf.text) != "[" {
        return;
    }
    let Some(prev) = sf.prev_significant(pos) else {
        return;
    };
    let indexes = match prev.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(&sf.text)),
        TokenKind::Punct => matches!(prev.text(&sf.text), ")" | "]" | "?"),
        _ => false,
    };
    if indexes {
        push(
            sf,
            tok,
            RuleId::Index,
            "slice index panics on out-of-bounds; use .get()/.get_mut() or guard \
             the bound and lint:allow(index-guard, why)"
                .to_string(),
            out,
        );
    }
}

/// Thread discipline: `thread::spawn` / `thread::scope` call paths and
/// `Ordering::Relaxed` belong to the sanctioned pool modules only (see
/// [`thread_sanctioned`]); ad-hoc threading elsewhere silently forks
/// the determinism contract.
fn thread_discipline_at(sf: &SourceFile, pos: usize, tok: &Token, out: &mut Vec<Diagnostic>) {
    if tok.kind != TokenKind::Ident {
        return;
    }
    let text = tok.text(&sf.text);
    let segment = |head: &str, tail: &str| {
        text == head
            && sf.next_significant(pos, 1).map(|t| t.text(&sf.text)) == Some(":")
            && sf.next_significant(pos, 2).map(|t| t.text(&sf.text)) == Some(":")
            && sf.next_significant(pos, 3).map(|t| t.text(&sf.text)) == Some(tail)
    };
    for prim in ["spawn", "scope"] {
        if segment("thread", prim) {
            push(
                sf,
                tok,
                RuleId::ThreadDiscipline,
                format!(
                    "`thread::{prim}` outside the sanctioned pools \
                     (wcp_core::sweep, wcp_adversary::pool, \
                     wcp_service::runtime); fan work out through their \
                     deterministic APIs instead"
                ),
                out,
            );
            return;
        }
    }
    if segment("Ordering", "Relaxed") {
        push(
            sf,
            tok,
            RuleId::ThreadDiscipline,
            "`Ordering::Relaxed` outside the sanctioned pools \
             (wcp_core::sweep, wcp_adversary::pool, wcp_service::runtime); \
             route shared state through SharedBound or the sweep cursor"
                .to_string(),
            out,
        );
    }
}

/// `unsafe` requires a `// SAFETY:` comment within the three preceding
/// lines (pre-wired for the SIMD kernel; every crate currently
/// `#![forbid(unsafe_code)]`s, so this fires only where that is lifted).
fn unsafe_at(sf: &SourceFile, pos: usize, tok: &Token, out: &mut Vec<Diagnostic>) {
    if tok.kind != TokenKind::Ident || tok.text(&sf.text) != "unsafe" {
        return;
    }
    let line = sf.line_of(tok.start);
    let justified = sf.tokens[..sf.significant[pos]].iter().rev().any(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            && line.saturating_sub(sf.line_of(t.end)) <= 3
            && t.text(&sf.text).contains("SAFETY:")
    });
    if !justified {
        push(
            sf,
            tok,
            RuleId::UnsafeComment,
            "`unsafe` without a `// SAFETY:` comment in the 3 preceding lines \
             documenting why the contract holds"
                .to_string(),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<(RuleId, u32)> {
        let sf = SourceFile::parse(path, src);
        check_file(&sf, true)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    const SCOPED: &str = "crates/core/src/sweep.rs";

    #[test]
    fn hashmap_fires_only_in_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(diags(SCOPED, src), vec![(RuleId::Determinism, 1)]);
        assert_eq!(diags("crates/sim/src/json.rs", src), vec![]);
    }

    #[test]
    fn clock_reads_fire_but_bare_type_mention_does_not() {
        assert_eq!(
            diags(SCOPED, "let t = Instant::now();\n"),
            vec![(RuleId::Determinism, 1)]
        );
        assert_eq!(diags(SCOPED, "use std::time::Instant;\n"), vec![]);
        assert_eq!(
            diags(SCOPED, "SystemTime::now()"),
            vec![(RuleId::Determinism, 1)]
        );
    }

    #[test]
    fn unwrap_and_macros_fire_in_library_code() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\nfn g() { panic!(\"x\") }\n";
        assert_eq!(
            diags("crates/sim/src/json.rs", src),
            vec![(RuleId::Panic, 2), (RuleId::Panic, 4)]
        );
    }

    #[test]
    fn unwrap_or_and_catch_unwind_do_not_fire() {
        let src = "let a = v.unwrap_or(0);\nstd::panic::catch_unwind(f);\nlet w = x.expect_err;\n";
        assert_eq!(diags("crates/sim/src/json.rs", src), vec![]);
    }

    #[test]
    fn test_code_and_bins_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { v.unwrap(); }\n}\n";
        assert_eq!(diags("crates/core/src/engine.rs", src), vec![]);
        assert_eq!(
            diags("crates/core/src/bin/tool.rs", "fn f() { v.unwrap(); }"),
            vec![]
        );
    }

    #[test]
    fn indexing_fires_but_patterns_and_macros_do_not() {
        assert_eq!(
            diags("crates/core/src/engine.rs", "let x = loads[i];\n"),
            vec![(RuleId::Index, 1)]
        );
        let benign = "let [a, b] = pair;\nlet v = vec![0; n];\n#[derive(Debug)]\nlet t: [u8; 4] = x;\nfor i in [1, 2] {}\n";
        assert_eq!(diags("crates/core/src/engine.rs", benign), vec![]);
    }

    #[test]
    fn chained_index_after_call_fires() {
        assert_eq!(
            diags("crates/core/src/engine.rs", "f()[0]; m[0][1];\n"),
            vec![(RuleId::Index, 1), (RuleId::Index, 1), (RuleId::Index, 1)]
        );
    }

    #[test]
    fn unsafe_requires_nearby_safety_comment() {
        let bare = "fn f() { unsafe { g() } }\n";
        assert_eq!(
            diags("crates/gf/src/field.rs", bare),
            vec![(RuleId::UnsafeComment, 1)]
        );
        let justified = "// SAFETY: g has no preconditions.\nfn f() { unsafe { g() } }\n";
        assert_eq!(diags("crates/gf/src/field.rs", justified), vec![]);
        let stale = "// SAFETY: too far away.\n\n\n\n\nfn f() { unsafe { g() } }\n";
        assert_eq!(
            diags("crates/gf/src/field.rs", stale),
            vec![(RuleId::UnsafeComment, 6)]
        );
    }

    #[test]
    fn thread_primitives_fire_outside_the_sanctioned_pools() {
        let spawn = "let h = std::thread::spawn(move || work());\n";
        assert_eq!(
            diags("crates/adversary/src/parallel.rs", spawn),
            vec![(RuleId::ThreadDiscipline, 1)]
        );
        let scope = "thread::scope(|s| { s.spawn(|| work()); });\n";
        assert_eq!(
            diags("crates/experiments/src/bin/churn.rs", scope),
            vec![(RuleId::ThreadDiscipline, 1)]
        );
        let relaxed = "let v = cell.load(Ordering::Relaxed);\n";
        assert_eq!(
            diags("crates/sim/src/metrics.rs", relaxed),
            vec![(RuleId::ThreadDiscipline, 1)]
        );
    }

    #[test]
    fn sanctioned_pools_and_stricter_orderings_are_exempt() {
        let both = "std::thread::scope(|s| cursor.fetch_add(1, Ordering::Relaxed));\n";
        assert_eq!(diags("crates/core/src/sweep.rs", both), vec![]);
        assert_eq!(diags("crates/adversary/src/pool.rs", both), vec![]);
        assert_eq!(diags("crates/service/src/runtime.rs", both), vec![]);
        // SeqCst/Acquire are not the footgun this rule hunts, and mere
        // mentions in comments/strings never fire.
        let benign = "let v = cell.load(Ordering::SeqCst);\n// thread::spawn Ordering::Relaxed\n";
        assert_eq!(diags("crates/sim/src/metrics.rs", benign), vec![]);
    }

    #[test]
    fn allow_suppresses_exactly_its_rule() {
        let src = "let t = Instant::now(); // lint:allow(determinism, telemetry only)\n";
        assert_eq!(diags(SCOPED, src), vec![]);
        let wrong = "let t = Instant::now(); // lint:allow(panic, wrong rule)\n";
        assert_eq!(diags(SCOPED, wrong), vec![(RuleId::Determinism, 1)]);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// HashMap unwrap() panic!\nlet s = \"Instant::now() HashSet\";\n";
        assert_eq!(diags(SCOPED, src), vec![]);
    }

    #[test]
    fn unscoped_mode_runs_everything_anywhere() {
        let sf = SourceFile::parse("fixtures/x.rs", "let m: HashMap<u8, u8> = x.unwrap();\n");
        let rules: Vec<RuleId> = check_file(&sf, false).into_iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RuleId::Determinism));
        assert!(rules.contains(&RuleId::Panic));
    }
}
