//! The committed-baseline mechanism: legacy violations are tracked per
//! `(rule, file)` with a count in `lint_baseline.txt`, so existing debt
//! is burned down over time while any *new* violation — or a stale
//! baseline entry — fails immediately.
//!
//! Count-based entries (rather than line numbers) survive unrelated
//! edits to a file; the trade-off is that swapping one violation for
//! another on the same file leaves the count unchanged. That is an
//! accepted limitation: the gate's job is to keep the totals
//! monotonically shrinking.

use crate::Diagnostic;
use std::collections::BTreeMap;

/// Per-`(rule, file)` violation counts.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregates diagnostics into baseline counts.
#[must_use]
pub fn count(diags: &[Diagnostic]) -> Counts {
    let mut counts = Counts::new();
    for d in diags {
        *counts
            .entry((d.rule.as_str().to_string(), d.file.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// Renders counts in the committed format: `rule<TAB>file<TAB>count`,
/// sorted, with an explanatory header.
#[must_use]
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# wcp-lint baseline: known legacy violations, tracked per (rule, file).\n\
         # This file may only shrink. Regenerate after a burn-down with:\n\
         #   cargo run --release -p wcp-lint -- --write-baseline\n\
         # New violations are NOT added here; fix them or lint:allow(rule, reason).\n",
    );
    for ((rule, file), n) in counts {
        out.push_str(&format!("{rule}\t{file}\t{n}\n"));
    }
    out
}

/// Parses the committed format.
///
/// # Errors
///
/// A message naming the first malformed line.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(file), Some(n)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "baseline line {}: expected rule<TAB>file<TAB>count, got {line:?}",
                i + 1
            ));
        };
        let n: usize = n
            .trim()
            .parse()
            .map_err(|e| format!("baseline line {}: bad count {n:?}: {e}", i + 1))?;
        if counts
            .insert((rule.to_string(), file.to_string()), n)
            .is_some()
        {
            return Err(format!(
                "baseline line {}: duplicate entry for {rule} / {file}",
                i + 1
            ));
        }
    }
    Ok(counts)
}

/// One baseline-vs-current discrepancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffIssue {
    /// More violations than the baseline allows (0 for unlisted pairs).
    New {
        /// Rule id.
        rule: String,
        /// File.
        file: String,
        /// Baseline allowance.
        allowed: usize,
        /// Current count.
        found: usize,
    },
    /// Fewer violations than the baseline records: the entry is stale
    /// and must be shrunk (`--write-baseline`) in the same change.
    Stale {
        /// Rule id.
        rule: String,
        /// File.
        file: String,
        /// Baseline allowance.
        allowed: usize,
        /// Current count.
        found: usize,
    },
}

impl std::fmt::Display for DiffIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffIssue::New {
                rule,
                file,
                allowed,
                found,
            } => write!(
                f,
                "NEW violations: {file}: {rule}: {found} found, baseline allows {allowed}"
            ),
            DiffIssue::Stale {
                rule,
                file,
                allowed,
                found,
            } => write!(
                f,
                "STALE baseline entry: {file}: {rule}: baseline records {allowed}, only {found} \
                 remain — shrink it with --write-baseline so the debt cannot regrow"
            ),
        }
    }
}

/// Diffs current counts against the baseline (see [`DiffIssue`]).
#[must_use]
pub fn diff(baseline: &Counts, current: &Counts) -> Vec<DiffIssue> {
    let mut issues = Vec::new();
    let keys: std::collections::BTreeSet<&(String, String)> =
        baseline.keys().chain(current.keys()).collect();
    for key in keys {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        let found = current.get(key).copied().unwrap_or(0);
        let (rule, file) = (key.0.clone(), key.1.clone());
        if found > allowed {
            issues.push(DiffIssue::New {
                rule,
                file,
                allowed,
                found,
            });
        } else if found < allowed {
            issues.push(DiffIssue::Stale {
                rule,
                file,
                allowed,
                found,
            });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleId;

    fn diag(rule: RuleId, file: &str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line: 1,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let diags = vec![
            diag(RuleId::Panic, "crates/core/src/a.rs"),
            diag(RuleId::Panic, "crates/core/src/a.rs"),
            diag(RuleId::Index, "crates/sim/src/b.rs"),
        ];
        let counts = count(&diags);
        let parsed = parse(&render(&counts)).expect("round-trips");
        assert_eq!(parsed, counts);
    }

    #[test]
    fn matching_counts_are_clean() {
        let counts = count(&[diag(RuleId::Panic, "a.rs")]);
        assert_eq!(diff(&counts, &counts), vec![]);
    }

    #[test]
    fn extra_violation_is_new_even_with_an_entry() {
        let base = count(&[diag(RuleId::Panic, "a.rs")]);
        let cur = count(&[diag(RuleId::Panic, "a.rs"), diag(RuleId::Panic, "a.rs")]);
        let issues = diff(&base, &cur);
        assert_eq!(issues.len(), 1);
        assert!(matches!(
            issues[0],
            DiffIssue::New {
                found: 2,
                allowed: 1,
                ..
            }
        ));
    }

    #[test]
    fn unlisted_violation_is_new() {
        let issues = diff(&Counts::new(), &count(&[diag(RuleId::Determinism, "a.rs")]));
        assert!(matches!(issues[0], DiffIssue::New { allowed: 0, .. }));
    }

    #[test]
    fn burned_down_entry_is_stale() {
        let base = count(&[diag(RuleId::Panic, "a.rs"), diag(RuleId::Panic, "a.rs")]);
        let cur = count(&[diag(RuleId::Panic, "a.rs")]);
        let issues = diff(&base, &cur);
        assert!(matches!(
            issues[0],
            DiffIssue::Stale {
                allowed: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse("panic crates/core/src/a.rs 3").is_err());
        assert!(parse("panic\ta.rs\tmany").is_err());
        assert!(parse("panic\ta.rs\t1\npanic\ta.rs\t2").is_err());
        assert!(parse("# comment\n\npanic\ta.rs\t3\n").is_ok());
    }
}
