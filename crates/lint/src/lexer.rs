//! A small hand-rolled Rust lexer.
//!
//! `wcp-lint` needs just enough token structure to tell code from
//! comments and string literals, to recognize identifiers and the
//! punctuation around them, and to map every byte back to a line. It
//! deliberately does **not** parse: rules work on the token stream
//! (modeled on rustc's in-tree `tidy`, and consistent with the
//! no-crates.io constraint — no `syn`).
//!
//! Guarantees the fuzz suite pins down:
//!
//! * lexing never panics, on any input;
//! * token spans exactly tile the input (`tokens[0].start == 0`,
//!   contiguous, `tokens.last().end == len`), and every span boundary is
//!   a `char` boundary;
//! * lexing is a pure function of the input.
//!
//! Malformed input (unterminated strings/comments, a stray `'`) is
//! absorbed rather than rejected — a linter must keep going.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nested; unterminated runs to end of input.
    BlockComment,
    /// `"…"`, `b"…"`, `c"…"` with escapes; unterminated runs to EOL/EOF.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` …; unterminated runs to EOF.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'`.
    Char,
    /// `'ident` (including `'static`).
    Lifetime,
    /// Identifiers and keywords, plus raw idents (`r#match`).
    Ident,
    /// Integer/float literals including prefixes, exponents, suffixes.
    Number,
    /// Any other single character.
    Punct,
}

/// One token: a kind plus a byte span into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// The character starting at byte `i`, if any.
fn char_at(src: &str, i: usize) -> Option<char> {
    src.get(i..).and_then(|s| s.chars().next())
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream whose spans tile the input.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut i = 0;
    while let Some(c) = char_at(src, i) {
        let start = i;
        let kind = match c {
            _ if c.is_whitespace() => {
                while let Some(w) = char_at(src, i) {
                    if !w.is_whitespace() {
                        break;
                    }
                    i += w.len_utf8();
                }
                TokenKind::Whitespace
            }
            '/' => match char_at(src, i + 1) {
                Some('/') => {
                    i += 2;
                    while let Some(w) = char_at(src, i) {
                        if w == '\n' {
                            break;
                        }
                        i += w.len_utf8();
                    }
                    TokenKind::LineComment
                }
                Some('*') => {
                    i += 2;
                    let mut depth = 1u32;
                    while depth > 0 {
                        match (char_at(src, i), char_at(src, i + 1)) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                i += 2;
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                i += 2;
                            }
                            (Some(w), _) => i += w.len_utf8(),
                            (None, _) => break,
                        }
                    }
                    TokenKind::BlockComment
                }
                _ => {
                    i += 1;
                    TokenKind::Punct
                }
            },
            '"' => {
                i += 1;
                lex_escaped_string_body(src, &mut i);
                TokenKind::Str
            }
            '\'' => lex_quote(src, &mut i),
            _ if c.is_ascii_digit() => {
                lex_number(src, &mut i);
                TokenKind::Number
            }
            _ if is_ident_start(c) => lex_ident_or_prefixed(src, &mut i),
            _ => {
                i += c.len_utf8();
                TokenKind::Punct
            }
        };
        debug_assert!(i > start, "lexer must always make progress");
        if i == start {
            // Unreachable by construction; absorb one char rather than loop.
            i += c.len_utf8();
        }
        tokens.push(Token {
            kind,
            start,
            end: i,
        });
    }
    tokens
}

/// Consumes an escaped (non-raw) string body; `*i` sits after the
/// opening quote. Unterminated bodies run to end of input.
fn lex_escaped_string_body(src: &str, i: &mut usize) {
    while let Some(w) = char_at(src, *i) {
        *i += w.len_utf8();
        match w {
            '\\' => {
                if let Some(esc) = char_at(src, *i) {
                    *i += esc.len_utf8();
                }
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Consumes a raw string body `"…" + hashes×'#'`; `*i` sits on the
/// opening quote. Unterminated bodies run to end of input.
fn lex_raw_string_body(src: &str, i: &mut usize, hashes: usize) {
    *i += 1; // opening quote
    while let Some(w) = char_at(src, *i) {
        *i += w.len_utf8();
        if w == '"'
            && src
                .as_bytes()
                .get(*i..*i + hashes)
                .is_some_and(|t| t.iter().all(|&b| b == b'#'))
        {
            *i += hashes;
            return;
        }
    }
}

/// Disambiguates `'` between char literals, lifetimes and a stray quote;
/// `*i` sits on the quote.
fn lex_quote(src: &str, i: &mut usize) -> TokenKind {
    let start = *i;
    *i += 1;
    match char_at(src, *i) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote on this line.
            while let Some(w) = char_at(src, *i) {
                if w == '\n' {
                    break;
                }
                *i += w.len_utf8();
                if w == '\\' {
                    if let Some(esc) = char_at(src, *i) {
                        *i += esc.len_utf8();
                    }
                } else if w == '\'' {
                    return TokenKind::Char;
                }
            }
            TokenKind::Char // unterminated; absorbed
        }
        Some(c1) => {
            let after = char_at(src, *i + c1.len_utf8());
            if after == Some('\'') {
                *i += c1.len_utf8() + 1;
                TokenKind::Char
            } else if is_ident_start(c1) {
                while let Some(w) = char_at(src, *i) {
                    if !is_ident_continue(w) {
                        break;
                    }
                    *i += w.len_utf8();
                }
                TokenKind::Lifetime
            } else {
                *i = start + 1;
                TokenKind::Punct
            }
        }
        None => TokenKind::Punct,
    }
}

/// Consumes a number literal: prefixes (`0x…`), `_` separators, one
/// fractional point (not `..`), exponents, type suffixes (`1u32`).
fn lex_number(src: &str, i: &mut usize) {
    let mut seen_dot = false;
    while let Some(w) = char_at(src, *i) {
        if w.is_ascii_alphanumeric() || w == '_' {
            *i += 1;
            // `1e-5` / `1E+9`: a sign directly after an exponent marker.
            if (w == 'e' || w == 'E')
                && matches!(char_at(src, *i), Some('+' | '-'))
                && char_at(src, *i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                *i += 1;
            }
        } else if w == '.' && !seen_dot && char_at(src, *i + 1).is_some_and(|d| d.is_ascii_digit())
        {
            seen_dot = true;
            *i += 1;
        } else {
            break;
        }
    }
}

/// Consumes an identifier; if it turns out to be a string-literal prefix
/// (`r`, `b`, `br`, `c`, `cr`) glued to a quote (or `r#…` raw
/// ident/string), re-classifies accordingly. `*i` sits on the first char.
fn lex_ident_or_prefixed(src: &str, i: &mut usize) -> TokenKind {
    let start = *i;
    while let Some(w) = char_at(src, *i) {
        if !is_ident_continue(w) {
            break;
        }
        *i += w.len_utf8();
    }
    let ident = &src[start..*i];
    let raw_capable = matches!(ident, "r" | "br" | "cr");
    let escape_capable = matches!(ident, "b" | "c");
    match char_at(src, *i) {
        Some('"') if raw_capable => {
            lex_raw_string_body(src, i, 0);
            TokenKind::RawStr
        }
        Some('"') if escape_capable => {
            *i += 1;
            lex_escaped_string_body(src, i);
            TokenKind::Str
        }
        Some('#') if raw_capable => {
            let mut j = *i;
            while char_at(src, j) == Some('#') {
                j += 1;
            }
            let hashes = j - *i;
            match char_at(src, j) {
                Some('"') => {
                    *i = j;
                    lex_raw_string_body(src, i, hashes);
                    TokenKind::RawStr
                }
                Some(c) if ident == "r" && hashes == 1 && is_ident_start(c) => {
                    // Raw identifier `r#match`.
                    *i = j;
                    while let Some(w) = char_at(src, *i) {
                        if !is_ident_continue(w) {
                            break;
                        }
                        *i += w.len_utf8();
                    }
                    TokenKind::Ident
                }
                _ => TokenKind::Ident,
            }
        }
        _ => TokenKind::Ident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn significant(src: &str) -> Vec<(TokenKind, &str)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect()
    }

    #[test]
    fn spans_tile_simple_source() {
        let src = "fn main() { let x = 1; }\n";
        let tokens = lex(src);
        assert_eq!(tokens[0].start, 0);
        for pair in tokens.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(tokens.last().map(|t| t.end), Some(src.len()));
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = "// unwrap()\n/* HashMap /* nested */ still comment */ \"panic!()\" x";
        let sig = significant(src);
        assert_eq!(
            sig,
            vec![(TokenKind::Str, "\"panic!()\""), (TokenKind::Ident, "x")]
        );
    }

    #[test]
    fn raw_strings_and_prefixes() {
        let src = r####"r"a" r#"b"# br##"c"## b"d" r#match"####;
        let sig = significant(src);
        assert_eq!(sig[0], (TokenKind::RawStr, r#"r"a""#));
        assert_eq!(sig[1], (TokenKind::RawStr, r##"r#"b"#"##));
        assert_eq!(sig[2], (TokenKind::RawStr, r###"br##"c"##"###));
        assert_eq!(sig[3], (TokenKind::Str, "b\"d\""));
        assert_eq!(sig[4], (TokenKind::Ident, "r#match"));
    }

    #[test]
    fn raw_string_hash_mismatch_runs_on() {
        // `r##"…"#` never closes: absorbed to EOF, no panic.
        let src = r###"r##"abc"# x"###;
        let tokens = lex(src);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].kind, TokenKind::RawStr);
        assert_eq!(tokens[0].end, src.len());
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "'a' 'x 'static '\\n' '\\u{1F600}' ' '";
        let sig = significant(src);
        assert_eq!(sig[0], (TokenKind::Char, "'a'"));
        assert_eq!(sig[1], (TokenKind::Lifetime, "'x"));
        assert_eq!(sig[2], (TokenKind::Lifetime, "'static"));
        assert_eq!(sig[3], (TokenKind::Char, "'\\n'"));
        assert_eq!(sig[4], (TokenKind::Char, "'\\u{1F600}'"));
        assert_eq!(sig[5], (TokenKind::Char, "' '"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "1..n 2.5 1.5e-3 0xff_u32 1.max(2)";
        let sig = significant(src);
        assert_eq!(sig[0], (TokenKind::Number, "1"));
        assert_eq!(sig[1], (TokenKind::Punct, "."));
        assert_eq!(sig[2], (TokenKind::Punct, "."));
        assert_eq!(sig[3], (TokenKind::Ident, "n"));
        assert_eq!(sig[4], (TokenKind::Number, "2.5"));
        assert_eq!(sig[5], (TokenKind::Number, "1.5e-3"));
        assert_eq!(sig[6], (TokenKind::Number, "0xff_u32"));
        assert_eq!(sig[7], (TokenKind::Number, "1"));
        assert_eq!(sig[8], (TokenKind::Punct, "."));
        assert_eq!(sig[9], (TokenKind::Ident, "max"));
    }

    #[test]
    fn unterminated_forms_absorb_to_eof() {
        for src in ["\"abc", "/* never", "r#\"raw", "'\\x", "b\"oops\\"] {
            let tokens = lex(src);
            assert_eq!(tokens.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn multibyte_input_lexes_cleanly() {
        let src = "let λ = \"貓\"; // ∞";
        let tokens = lex(src);
        for t in &tokens {
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        }
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "λ"));
    }
}
