//! Crate-layering rule: the workspace dependency graph must stay the
//! intended DAG — no cycles, no upward edges.
//!
//! The layers (an edge may only point to a strictly lower rank):
//!
//! ```text
//! rank 0  wcp-combin  wcp-gf  wcp-sim          (substrate: math, json/seeds)
//! rank 1  wcp-designs wcp-analysis             (constructions, closed forms)
//! rank 2  wcp-core                             (strategies, engine, sweep)
//! rank 3  wcp-adversary                        (attack ladder)
//! rank 4  wcp-service wcp-verify               (serving layer, certificate verification)
//! rank 5  wcp-bench                            (bench fixtures, RSS/median helpers, gates)
//! rank 6  wcp-experiments wcp-lint             (binaries and tooling)
//! rank 7  worst-case-placement                 (the facade crate)
//! ```
//!
//! Manifests are parsed with a minimal hand-rolled TOML-section reader
//! (keys of `[dependencies]` / `[dev-dependencies]` /
//! `[build-dependencies]`); only `wcp-*` path dependencies participate.
//! A crate missing from the rank table is itself a diagnostic: extending
//! the workspace means declaring where the new crate sits.

use crate::{Diagnostic, RuleId};
use std::path::Path;

/// The rank of every known workspace crate (see the module docs).
const RANKS: [(&str, u32); 13] = [
    ("wcp-combin", 0),
    ("wcp-gf", 0),
    ("wcp-sim", 0),
    ("wcp-analysis", 1),
    ("wcp-designs", 1),
    ("wcp-core", 2),
    ("wcp-adversary", 3),
    ("wcp-service", 4),
    ("wcp-verify", 4),
    ("wcp-bench", 5),
    ("wcp-experiments", 6),
    ("wcp-lint", 6),
    ("worst-case-placement", 7),
];

fn rank_of(name: &str) -> Option<u32> {
    RANKS.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

/// One parsed manifest: package name plus its `wcp-*` dependency names
/// (normal, dev and build alike — the DAG must hold for all of them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The manifest's repo-relative path (for diagnostics).
    pub path: String,
    /// `package.name`.
    pub name: String,
    /// In-workspace (`wcp-*` / facade) dependencies.
    pub deps: Vec<String>,
}

/// Parses the slice of a `Cargo.toml` the layering rule needs.
#[must_use]
pub fn parse_manifest(path: &str, text: &str) -> Manifest {
    let mut section = String::new();
    let mut name = String::new();
    let mut deps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some(key) = line.split('=').next() else {
            continue;
        };
        // `wcp-core.workspace = true` keys on the part before the dot.
        let key = key.trim().split('.').next().unwrap_or("").trim();
        if section == "package" && key == "name" {
            if let Some(v) = line.split('=').nth(1) {
                name = v.trim().trim_matches('"').to_string();
            }
        }
        if matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) && (key.starts_with("wcp-") || key == "worst-case-placement")
        {
            deps.push(key.to_string());
        }
    }
    Manifest {
        path: path.to_string(),
        name,
        deps,
    }
}

/// Checks parsed manifests against the rank table, then — independently
/// of the table — walks the graph for cycles, so even two crates at a
/// misdeclared equal rank cannot hide a loop.
#[must_use]
pub fn check_manifests(manifests: &[Manifest]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut fire = |path: &str, msg: String| {
        diags.push(Diagnostic {
            file: path.to_string(),
            line: 1,
            rule: RuleId::Layering,
            message: msg,
        });
    };
    for m in manifests {
        let Some(rank) = rank_of(&m.name) else {
            fire(
                &m.path,
                format!(
                    "crate `{}` is not in the layering table; declare its rank in \
                     crates/lint/src/layering.rs",
                    m.name
                ),
            );
            continue;
        };
        for dep in &m.deps {
            match rank_of(dep) {
                Some(dep_rank) if dep_rank >= rank => fire(
                    &m.path,
                    format!(
                        "`{}` (rank {rank}) must not depend on `{dep}` (rank {dep_rank}): \
                         edges point strictly downward",
                        m.name
                    ),
                ),
                Some(_) => {}
                None => fire(
                    &m.path,
                    format!("dependency `{dep}` is not in the layering table"),
                ),
            }
        }
    }
    // Cycle sweep over the declared edges (names, ranks ignored).
    let mut visiting: Vec<&str> = Vec::new();
    let mut done: Vec<&str> = Vec::new();
    fn visit<'m>(
        name: &'m str,
        manifests: &'m [Manifest],
        visiting: &mut Vec<&'m str>,
        done: &mut Vec<&'m str>,
    ) -> Option<String> {
        if done.contains(&name) {
            return None;
        }
        if let Some(at) = visiting.iter().position(|v| *v == name) {
            let mut cycle: Vec<&str> = visiting[at..].to_vec();
            cycle.push(name);
            return Some(cycle.join(" -> "));
        }
        visiting.push(name);
        let deps = manifests
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.deps.as_slice())
            .unwrap_or_default();
        for dep in deps {
            if let Some(cycle) = visit(dep, manifests, visiting, done) {
                return Some(cycle);
            }
        }
        visiting.pop();
        done.push(name);
        None
    }
    for m in manifests {
        if let Some(cycle) = visit(&m.name, manifests, &mut visiting, &mut done) {
            fire(&m.path, format!("dependency cycle: {cycle}"));
            break;
        }
    }
    diags
}

/// Reads and checks every workspace manifest under `root`.
///
/// # Errors
///
/// I/O failures reading the workspace layout (unreadable manifests are
/// diagnostics, not errors).
pub fn check(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut manifests = Vec::new();
    let mut paths = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
    let mut crate_manifests: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path().join("Cargo.toml"))
        .filter(|p| p.is_file())
        .collect();
    crate_manifests.sort();
    paths.extend(crate_manifests);
    let mut diags = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(&p) {
            Ok(text) => manifests.push(parse_manifest(&rel, &text)),
            Err(e) => diags.push(Diagnostic {
                file: rel,
                line: 1,
                rule: RuleId::Layering,
                message: format!("unreadable manifest: {e}"),
            }),
        }
    }
    diags.extend(check_manifests(&manifests));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(name: &str, deps: &[&str]) -> Manifest {
        Manifest {
            path: format!("crates/{name}/Cargo.toml"),
            name: name.to_string(),
            deps: deps.iter().map(|d| (*d).to_string()).collect(),
        }
    }

    #[test]
    fn parses_workspace_style_manifests() {
        let text = "[package]\nname = \"wcp-core\"\n\n[dependencies]\nwcp-combin.workspace = true\nwcp-designs = { path = \"../designs\" }\nrand.workspace = true\n\n[dev-dependencies]\nproptest.workspace = true\nwcp-sim.workspace = true\n";
        let m = parse_manifest("crates/core/Cargo.toml", text);
        assert_eq!(m.name, "wcp-core");
        assert_eq!(m.deps, vec!["wcp-combin", "wcp-designs", "wcp-sim"]);
    }

    #[test]
    fn downward_edges_pass() {
        let ms = [
            manifest("wcp-core", &["wcp-combin", "wcp-designs", "wcp-sim"]),
            manifest("wcp-adversary", &["wcp-combin", "wcp-core"]),
            manifest("wcp-bench", &["wcp-core", "wcp-sim", "wcp-adversary"]),
        ];
        assert_eq!(check_manifests(&ms), vec![]);
    }

    #[test]
    fn upward_edge_fails() {
        let ms = [manifest("wcp-core", &["wcp-adversary"])];
        let d = check_manifests(&ms);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::Layering);
        assert!(
            d[0].message.contains("strictly downward"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn same_rank_edge_fails() {
        let ms = [manifest("wcp-designs", &["wcp-analysis"])];
        assert_eq!(check_manifests(&ms).len(), 1);
    }

    #[test]
    fn unknown_crate_fails() {
        let ms = [manifest("wcp-teleport", &[])];
        let d = check_manifests(&ms);
        assert!(d[0].message.contains("not in the layering table"));
    }

    #[test]
    fn cycles_are_reported_even_at_misdeclared_ranks() {
        // Both edges are individually "upward" violations too, but the
        // cycle sweep must name the loop explicitly.
        let ms = [
            manifest("wcp-core", &["wcp-adversary"]),
            manifest("wcp-adversary", &["wcp-core"]),
        ];
        let d = check_manifests(&ms);
        assert!(
            d.iter().any(|x| x.message.contains("dependency cycle")),
            "{d:?}"
        );
    }

    #[test]
    fn the_real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = check(&root).expect("workspace readable");
        assert_eq!(diags, vec![]);
    }
}
