//! Repository walk: every `.rs` file the tree lint covers, in sorted
//! (deterministic) order, plus the full-tree entry point combining the
//! file rules with the repo-level layering and bench-schema rules.

use crate::source::SourceFile;
use crate::{bench_schema, layering, rules, Diagnostic};
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = [".git", "target", "vendor", "results"];

/// Path prefixes excluded from the walk: the lint fixtures *are*
/// violations by design.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/fixtures"];

/// Lists the repo's `.rs` files under `root`, repo-relative with
/// forward slashes, sorted.
///
/// # Errors
///
/// I/O failures while listing directories.
pub fn rust_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                let rel = relative(root, &path);
                if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, forward slashes.
#[must_use]
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the whole analysis over the repository at `root`: every file
/// rule on every `.rs` file, plus the layering and bench-schema rules.
///
/// # Errors
///
/// I/O failures (individual unreadable files are diagnostics elsewhere;
/// an unlistable tree is an error).
pub fn lint_tree(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for path in rust_files(root)? {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let sf = SourceFile::parse(&relative(root, &path), &text);
        diags.extend(rules::check_file(&sf, true));
    }
    diags.extend(layering::check(root)?);
    diags.extend(bench_schema::check(root)?);
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_skips_vendor_target_and_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_files(&root).expect("walkable");
        assert!(!files.is_empty());
        for f in &files {
            let rel = relative(&root, f);
            assert!(!rel.starts_with("vendor/"), "{rel}");
            assert!(!rel.starts_with("target/"), "{rel}");
            assert!(!rel.starts_with("crates/lint/fixtures/"), "{rel}");
        }
        let rels: Vec<String> = files.iter().map(|f| relative(&root, f)).collect();
        assert!(rels.contains(&"crates/core/src/engine.rs".to_string()));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order must be deterministic");
    }
}
