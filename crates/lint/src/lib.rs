//! `wcp-lint`: project-specific static analysis for the worst-case
//! placement workspace, modeled on rustc's in-tree `tidy`.
//!
//! The repo's headline claims — byte-identical parallel sweeps,
//! decision-for-decision packed ≡ scalar adversary parity, and a serving
//! layer that must not fall over — rest on invariants `rustc` does not
//! check. This crate machine-checks them:
//!
//! * [`RuleId::Determinism`] — no `HashMap`/`HashSet`, `Instant::now`/
//!   `SystemTime::now` or `thread_rng` in planner/sweep/adversary
//!   decision paths;
//! * [`RuleId::Panic`] — no `unwrap`/`expect`/`panic!`/`todo!` in
//!   non-test library code of `core`/`adversary`/`sim`;
//! * [`RuleId::Index`] — no unguarded slice indexing in the same scope;
//! * [`RuleId::UnsafeComment`] — every `unsafe` carries a nearby
//!   `// SAFETY:` comment (pre-wired for the SIMD kernel);
//! * [`RuleId::ThreadDiscipline`] — no `std::thread::spawn`/`scope` or
//!   `Ordering::Relaxed` outside the sanctioned pool modules
//!   (`wcp_core::sweep`, `wcp_adversary::pool`), so the "bit-identical
//!   at every thread count" contract has exactly two rooms to audit;
//! * [`RuleId::Layering`] — the crate DAG has no cycles or upward edges;
//! * [`RuleId::BenchSchema`] — committed `BENCH_*.json` snapshots match
//!   a regression-gate schema, so a malformed baseline cannot silently
//!   disable the 25% gates.
//!
//! Violations diff against a committed `lint_baseline.txt`: legacy debt
//! is tracked per `(rule, file)` and burned down, while any *new*
//! violation — or a stale baseline entry — fails CI. A
//! `// lint:allow(rule, reason)` comment on or above the offending line
//! suppresses a diagnostic deliberately.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod bench_schema;
pub mod layering;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walk;

use std::fmt;

/// Identifies one rule of the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Nondeterminism in decision paths.
    Determinism,
    /// Panicking constructs in library code.
    Panic,
    /// Unguarded slice/array indexing in library code.
    Index,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeComment,
    /// Threading/atomics primitives outside the sanctioned pools.
    ThreadDiscipline,
    /// Crate-layering DAG violations.
    Layering,
    /// Malformed committed benchmark snapshots.
    BenchSchema,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::Determinism,
        RuleId::Panic,
        RuleId::Index,
        RuleId::UnsafeComment,
        RuleId::ThreadDiscipline,
        RuleId::Layering,
        RuleId::BenchSchema,
    ];

    /// The stable id used in reports, baselines and `lint:allow`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::Determinism => "determinism",
            RuleId::Panic => "panic",
            RuleId::Index => "index-guard",
            RuleId::UnsafeComment => "unsafe-comment",
            RuleId::ThreadDiscipline => "thread-discipline",
            RuleId::Layering => "layering",
            RuleId::BenchSchema => "bench-schema",
        }
    }

    /// Parses a stable id back to the rule.
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|r| r.as_str() == id)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: `(file, line, rule-id, message)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints one Rust source text. With `scoped`, each rule restricts
/// itself to the paths it governs (the tree walk); without, every
/// file rule runs regardless of path (`--check` / fixture mode).
#[must_use]
pub fn lint_source(path: &str, text: &str, scoped: bool) -> Vec<Diagnostic> {
    let sf = source::SourceFile::parse(path, text);
    rules::check_file(&sf, scoped)
}
