//! Bench-snapshot schema rule: every committed `BENCH_*.json` must
//! match one of the regression-gate schemas, so a malformed baseline
//! can never silently disable the 25% CI gates.
//!
//! The gates (`wcp_bench::regression`) accept:
//!
//! * `{"strategies": [{"strategy": <str>, "median_pipeline_ns": <num>}, …]}`
//! * `{"series":     [{"name": <str>, "median_ns": <num>}, …]}`
//! * `{"certified":  [{"name": <str>, "median_ns": <num>,
//!   "certificate": <object|null>}, …]}` — ladder timings carrying
//!   their availability certificates (the gate ignores the
//!   certificates; `wcp-verify` checks them)
//! * `{"scale":      [{"name": <str>, "b": <num>, "median_ns": <num>,
//!   "evals_per_second": <num>, "peak_rss_bytes": <num>}, …]}` — the
//!   million-object regime (the gate reads the timings; a
//!   committed-snapshot test pins the RSS budget)
//! * `{"service":    [{"name": <str>, "threads": <num>,
//!   "median_ns": <num>, "lookups_per_second": <num>,
//!   "p99_staleness_epochs": <num>, "peak_rss_bytes": <num>}, …]}` —
//!   the serving-layer closed loop (the gate reads the timings; a
//!   committed-snapshot test pins the lookups/s acceptance floor)
//!
//! plus the ungated sweep-throughput shape CI records for trending:
//!
//! * `{"throughput": [{"threads": <num>, "cells_per_second": <num>}, …]}`
//!
//! This rule validates statically what the gate would reject at run
//! time — plus what it would *mis-accept*: empty arrays, non-positive
//! or non-finite medians, duplicate entry names (which would skew the
//! per-family means).

use crate::{Diagnostic, RuleId};
use std::path::Path;
use wcp_sim::json::Value;

/// Validates one snapshot document. `file` is only used for labels.
#[must_use]
pub fn validate(file: &str, text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut fire = |msg: String| {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: RuleId::BenchSchema,
            message: msg,
        });
    };
    let doc = match Value::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            fire(format!("snapshot is not valid JSON: {e}"));
            return diags;
        }
    };
    let strategies = doc.get("strategies").and_then(Value::as_array);
    let series = doc.get("series").and_then(Value::as_array);
    let certified = doc.get("certified").and_then(Value::as_array);
    let scale = doc.get("scale").and_then(Value::as_array);
    let service = doc.get("service").and_then(Value::as_array);
    let throughput = doc.get("throughput").and_then(Value::as_array);
    let arrays = [strategies, series, certified, scale, service, throughput]
        .iter()
        .flatten()
        .count();
    if arrays > 1 {
        fire(
            "snapshot mixes \"strategies\"/\"series\"/\"certified\"/\"scale\"/\"service\"/\
             \"throughput\" arrays; the gate would pick one arbitrarily"
                .to_string(),
        );
        return diags;
    }
    if let Some(entries) = throughput {
        validate_throughput(entries, &mut fire);
        return diags;
    }
    let (entries, label, name_key, ns_key) = match (strategies, series, certified, scale, service) {
        (Some(arr), None, None, None, None) => {
            (arr, "strategies", "strategy", "median_pipeline_ns")
        }
        (None, Some(arr), None, None, None) => (arr, "series", "name", "median_ns"),
        (None, None, Some(arr), None, None) => (arr, "certified", "name", "median_ns"),
        (None, None, None, Some(arr), None) => (arr, "scale", "name", "median_ns"),
        (None, None, None, None, Some(arr)) => (arr, "service", "name", "median_ns"),
        _ => {
            fire(
                "snapshot has none of the \"strategies\"/\"series\"/\"certified\"/\"scale\"/\
                 \"service\"/\"throughput\" arrays (the regression gate would reject it)"
                    .to_string(),
            );
            return diags;
        }
    };
    if entries.is_empty() {
        fire(format!(
            "\"{label}\" is empty: an empty baseline gates nothing"
        ));
    }
    let mut names: Vec<&str> = Vec::new();
    for (idx, entry) in entries.iter().enumerate() {
        let Some(name) = entry.get(name_key).and_then(Value::as_str) else {
            fire(format!(
                "{label}[{idx}] lacks a string \"{name_key}\" field"
            ));
            continue;
        };
        if names.contains(&name) {
            fire(format!(
                "duplicate entry name {name:?} would skew the per-family mean"
            ));
        }
        names.push(name);
        match entry.get(ns_key).and_then(Value::as_f64) {
            None => fire(format!(
                "{label}[{idx}] ({name:?}) lacks a numeric \"{ns_key}\" field"
            )),
            Some(ns) if !(ns.is_finite() && ns > 0.0) => fire(format!(
                "{label}[{idx}] ({name:?}) has non-positive or non-finite {ns_key} = {ns}"
            )),
            Some(_) => {}
        }
        if label == "scale" {
            for key in ["b", "evals_per_second", "peak_rss_bytes"] {
                match entry.get(key).and_then(Value::as_f64) {
                    None => fire(format!(
                        "scale[{idx}] ({name:?}) lacks a numeric \"{key}\" field"
                    )),
                    Some(v) if !(v.is_finite() && v > 0.0) => fire(format!(
                        "scale[{idx}] ({name:?}) has non-positive or non-finite {key} = {v}"
                    )),
                    Some(_) => {}
                }
            }
        }
        if label == "service" {
            for key in ["threads", "lookups_per_second", "peak_rss_bytes"] {
                match entry.get(key).and_then(Value::as_f64) {
                    None => fire(format!(
                        "service[{idx}] ({name:?}) lacks a numeric \"{key}\" field"
                    )),
                    Some(v) if !(v.is_finite() && v > 0.0) => fire(format!(
                        "service[{idx}] ({name:?}) has non-positive or non-finite {key} = {v}"
                    )),
                    Some(_) => {}
                }
            }
            // Staleness is legitimately zero on a quiet cluster, so it
            // only has to be present, finite and non-negative.
            match entry.get("p99_staleness_epochs").and_then(Value::as_f64) {
                None => fire(format!(
                    "service[{idx}] ({name:?}) lacks a numeric \"p99_staleness_epochs\" field"
                )),
                Some(v) if !(v.is_finite() && v >= 0.0) => fire(format!(
                    "service[{idx}] ({name:?}) has negative or non-finite \
                     p99_staleness_epochs = {v}"
                )),
                Some(_) => {}
            }
        }
        if label == "certified" {
            match entry.get("certificate") {
                None => fire(format!(
                    "certified[{idx}] ({name:?}) lacks a \"certificate\" field \
                     (an object, or null for uncertified entries)"
                )),
                Some(Value::Null | Value::Object(_)) => {}
                Some(_) => fire(format!(
                    "certified[{idx}] ({name:?}) \"certificate\" must be an object or null"
                )),
            }
        }
    }
    diags
}

/// Validates the ungated sweep-throughput shape.
fn validate_throughput(entries: &[Value], fire: &mut impl FnMut(String)) {
    if entries.is_empty() {
        fire("\"throughput\" is empty: the snapshot records nothing".to_string());
    }
    for (idx, entry) in entries.iter().enumerate() {
        for key in ["threads", "cells_per_second"] {
            match entry.get(key).and_then(Value::as_f64) {
                None => fire(format!("throughput[{idx}] lacks a numeric \"{key}\" field")),
                Some(v) if !(v.is_finite() && v > 0.0) => fire(format!(
                    "throughput[{idx}] has non-positive or non-finite {key} = {v}"
                )),
                Some(_) => {}
            }
        }
    }
}

/// Validates every `BENCH_*.json` committed under `crates/bench/`.
///
/// # Errors
///
/// I/O failures listing the bench directory (unreadable snapshots are
/// diagnostics, not errors).
pub fn check(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let dir = root.join("crates/bench");
    let entries =
        std::fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut snapshots: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    snapshots.sort();
    let mut diags = Vec::new();
    if snapshots.is_empty() {
        diags.push(Diagnostic {
            file: "crates/bench".to_string(),
            line: 1,
            rule: RuleId::BenchSchema,
            message: "no committed BENCH_*.json snapshots found; the CI regression gates have no baselines".to_string(),
        });
    }
    for p in snapshots {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(&p) {
            Ok(text) => diags.extend(validate(&rel, &text)),
            Err(e) => diags.push(Diagnostic {
                file: rel,
                line: 1,
                rule: RuleId::BenchSchema,
                message: format!("unreadable snapshot: {e}"),
            }),
        }
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_schemas_validate() {
        let strategies =
            "{\"strategies\": [{\"strategy\": \"ring\", \"median_pipeline_ns\": 120}]}";
        assert_eq!(validate("a.json", strategies), vec![]);
        let series = "{\"shape\": {\"n\": 71}, \"series\": [{\"name\": \"packed_ladder\", \"median_ns\": 99.5}]}";
        assert_eq!(validate("b.json", series), vec![]);
        let certified = concat!(
            "{\"certified\": [",
            "{\"name\": \"ladder_k3\", \"median_ns\": 120, \"certificate\": {\"v\": 1}}, ",
            "{\"name\": \"ladder_k5\", \"median_ns\": 150, \"certificate\": null}",
            "]}"
        );
        assert_eq!(validate("c.json", certified), vec![]);
        let scale = concat!(
            "{\"shape\": {\"n\": 71}, \"scale\": [",
            "{\"name\": \"ladder_b1m\", \"b\": 1000000, \"median_ns\": 900000000, ",
            "\"evals_per_second\": 1.1, \"peak_rss_bytes\": 101838848}",
            "]}"
        );
        assert_eq!(validate("d.json", scale), vec![]);
        let service = concat!(
            "{\"shape\": {\"n\": 71}, \"service\": [",
            "{\"name\": \"closed_loop_t1\", \"threads\": 1, \"median_ns\": 2.2, ",
            "\"lookups_per_second\": 459830398, \"p99_staleness_epochs\": 0, ",
            "\"peak_rss_bytes\": 442970112}",
            "]}"
        );
        assert_eq!(validate("e.json", service), vec![]);
    }

    #[test]
    fn malformed_documents_fire() {
        for (text, needle) in [
            ("nope", "not valid JSON"),
            ("{}", "none of"),
            (
                "{\"throughput\": [{\"threads\": 1}]}",
                "lacks a numeric \"cells_per_second\"",
            ),
            (
                "{\"throughput\": [{\"threads\": 0, \"cells_per_second\": 9.5}]}",
                "non-positive",
            ),
            ("{\"strategies\": []}", "empty"),
            (
                "{\"series\": [{\"name\": \"x\"}]}",
                "lacks a numeric \"median_ns\"",
            ),
            (
                "{\"series\": [{\"median_ns\": 5}]}",
                "lacks a string \"name\"",
            ),
            (
                "{\"series\": [{\"name\": \"x\", \"median_ns\": 0}]}",
                "non-positive",
            ),
            (
                "{\"series\": [{\"name\": \"x\", \"median_ns\": 1}, {\"name\": \"x\", \"median_ns\": 2}]}",
                "duplicate",
            ),
            (
                "{\"series\": [], \"strategies\": []}",
                "mixes",
            ),
            (
                "{\"certified\": [{\"name\": \"x\", \"median_ns\": 5}]}",
                "lacks a \"certificate\"",
            ),
            (
                "{\"certified\": [{\"name\": \"x\", \"median_ns\": 5, \"certificate\": 7}]}",
                "must be an object or null",
            ),
            (
                "{\"certified\": [], \"series\": []}",
                "mixes",
            ),
            (
                "{\"scale\": [{\"name\": \"x\", \"median_ns\": 5}]}",
                "lacks a numeric \"b\"",
            ),
            (
                "{\"scale\": [{\"name\": \"x\", \"b\": 10, \"median_ns\": 5, \
                 \"evals_per_second\": 1.0, \"peak_rss_bytes\": 0}]}",
                "non-positive",
            ),
            (
                "{\"scale\": [], \"series\": []}",
                "mixes",
            ),
            (
                "{\"service\": [{\"name\": \"x\", \"median_ns\": 5}]}",
                "lacks a numeric \"threads\"",
            ),
            (
                "{\"service\": [{\"name\": \"x\", \"threads\": 1, \"median_ns\": 5, \
                 \"lookups_per_second\": 0, \"peak_rss_bytes\": 9, \
                 \"p99_staleness_epochs\": 0}]}",
                "non-positive",
            ),
            (
                "{\"service\": [{\"name\": \"x\", \"threads\": 1, \"median_ns\": 5, \
                 \"lookups_per_second\": 10, \"peak_rss_bytes\": 9, \
                 \"p99_staleness_epochs\": -1}]}",
                "negative or non-finite",
            ),
            (
                "{\"service\": [], \"scale\": []}",
                "mixes",
            ),
        ] {
            let diags = validate("x.json", text);
            assert!(
                diags.iter().any(|d| d.message.contains(needle)),
                "{text} => {diags:?}"
            );
        }
    }

    #[test]
    fn committed_snapshots_are_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = check(&root).expect("bench dir readable");
        assert_eq!(diags, vec![]);
    }
}
