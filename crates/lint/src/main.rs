//! The `wcp-lint` binary: the repo's `tidy` step.
//!
//! ```text
//! wcp-lint [--root DIR] [--report FILE]   # lint the tree against lint_baseline.txt
//! wcp-lint --write-baseline [--root DIR]  # regenerate the baseline after a burn-down
//! wcp-lint --check FILE [FILE …]          # lint files with every rule, no baseline
//! ```
//!
//! Exit codes: `0` clean, `1` violations (new or stale baseline), `2`
//! usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use wcp_lint::{baseline, lint_source, walk, Diagnostic};

/// Name of the committed baseline at the workspace root.
const BASELINE_FILE: &str = "lint_baseline.txt";

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    write_baseline: bool,
    check: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        report: None,
        write_baseline: false,
        check: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--check" => {
                args.check.extend(it.by_ref().map(PathBuf::from));
                if args.check.is_empty() {
                    return Err("--check needs at least one file".to_string());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: wcp-lint [--root DIR] [--report FILE] [--write-baseline] \
                     [--check FILE …]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// `--check`: every file rule, path scoping off, no baseline.
fn run_check(files: &[PathBuf]) -> Result<ExitCode, String> {
    let mut total = 0usize;
    for path in files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let diags = lint_source(&path.to_string_lossy().replace('\\', "/"), &text, false);
        for d in &diags {
            println!("{d}");
        }
        total += diags.len();
    }
    if total == 0 {
        println!("wcp-lint --check: clean");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("wcp-lint --check: {total} violation(s)");
        Ok(ExitCode::FAILURE)
    }
}

/// Renders the full-report artifact: every current diagnostic (baselined
/// or not) plus per-rule totals and the verdict line.
fn render_report(diags: &[Diagnostic], issues: &[baseline::DiffIssue]) -> String {
    let mut out = String::from("# wcp-lint report\n");
    for rule in wcp_lint::RuleId::ALL {
        let n = diags.iter().filter(|d| d.rule == rule).count();
        out.push_str(&format!("# {rule}: {n} current violation(s)\n"));
    }
    for d in diags {
        out.push_str(&format!("{d}\n"));
    }
    if issues.is_empty() {
        out.push_str("VERDICT: clean (all current violations are baselined)\n");
    } else {
        for issue in issues {
            out.push_str(&format!("{issue}\n"));
        }
        out.push_str(&format!("VERDICT: {} issue(s)\n", issues.len()));
    }
    out
}

fn run_tree(args: &Args) -> Result<ExitCode, String> {
    if !args.root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like the workspace root (no Cargo.toml); use --root",
            args.root.display()
        ));
    }
    let diags = walk::lint_tree(&args.root)?;
    let counts = baseline::count(&diags);
    let baseline_path = args.root.join(BASELINE_FILE);
    if args.write_baseline {
        std::fs::write(&baseline_path, baseline::render(&counts))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "wcp-lint: wrote {} ({} entries, {} violation(s))",
            baseline_path.display(),
            counts.len(),
            diags.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let committed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => baseline::Counts::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display())),
    };
    let issues = baseline::diff(&committed, &counts);
    if let Some(report) = &args.report {
        std::fs::write(report, render_report(&diags, &issues))
            .map_err(|e| format!("cannot write {}: {e}", report.display()))?;
    }
    if issues.is_empty() {
        println!(
            "wcp-lint: clean — {} baselined violation(s) across {} (rule, file) pair(s)",
            diags.len(),
            counts.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    for issue in &issues {
        println!("{issue}");
        if let baseline::DiffIssue::New { rule, file, .. } = issue {
            for d in diags
                .iter()
                .filter(|d| d.rule.as_str() == rule && &d.file == file)
            {
                println!("  {d}");
            }
        }
    }
    println!("wcp-lint: {} issue(s); see messages above", issues.len());
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("wcp-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = if args.check.is_empty() {
        run_tree(&args)
    } else {
        run_check(&args.check)
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("wcp-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
