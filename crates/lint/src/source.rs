//! A lexed source file plus the structure rules navigate: line
//! mapping, `// lint:allow(rule, reason)` escape hatches, and
//! `#[cfg(test)]` / `#[test]` region detection.

use crate::lexer::{lex, Token, TokenKind};
use crate::RuleId;

/// A file under analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Full text.
    pub text: String,
    /// The token stream (spans tile `text`).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-whitespace,
    /// non-comment) tokens, in order.
    pub significant: Vec<usize>,
    line_starts: Vec<usize>,
    test_regions: Vec<(usize, usize)>,
    allows: Vec<(u32, RuleId)>,
}

impl SourceFile {
    /// Lexes and indexes a file.
    #[must_use]
    pub fn parse(path: &str, text: &str) -> Self {
        let tokens = lex(text);
        let significant: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_regions = find_test_regions(&tokens, &significant, text);
        let allows = find_allows(&tokens, text, &line_starts);
        Self {
            path: path.to_string(),
            text: text.to_string(),
            tokens,
            significant,
            line_starts,
            test_regions,
            allows,
        }
    }

    /// 1-based line number of a byte offset.
    #[must_use]
    pub fn line_of(&self, byte: usize) -> u32 {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// Whether a byte offset falls inside `#[cfg(test)]` / `#[test]`
    /// code (where the panic/determinism rules do not apply).
    #[must_use]
    pub fn in_test_code(&self, byte: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| s <= byte && byte < e)
    }

    /// Whether `rule` is suppressed at `line` by a
    /// `// lint:allow(rule, reason)` on the same or the preceding line.
    #[must_use]
    pub fn allowed(&self, rule: RuleId, line: u32) -> bool {
        self.allows
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    }

    /// The significant token before position `sig_pos` (an index into
    /// [`significant`](Self::significant)).
    #[must_use]
    pub fn prev_significant(&self, sig_pos: usize) -> Option<&Token> {
        sig_pos
            .checked_sub(1)
            .and_then(|p| self.significant.get(p))
            .map(|&i| &self.tokens[i])
    }

    /// The significant token `ahead` positions after `sig_pos`.
    #[must_use]
    pub fn next_significant(&self, sig_pos: usize, ahead: usize) -> Option<&Token> {
        self.significant
            .get(sig_pos + ahead)
            .map(|&i| &self.tokens[i])
    }
}

/// Scans comments for `lint:allow(rule, reason)` directives.
fn find_allows(tokens: &[Token], text: &str, line_starts: &[usize]) -> Vec<(u32, RuleId)> {
    let mut allows = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let body = t.text(text);
        let mut rest = body;
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let id: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if let Some(rule) = RuleId::parse(&id) {
                // The directive suppresses at the comment's *last* line
                // (a multi-line block comment shields the code below it).
                let end_line = match line_starts.binary_search(&t.end) {
                    Ok(i) => i as u32 + 1,
                    Err(i) => i as u32,
                };
                allows.push((end_line, rule));
            }
        }
    }
    allows
}

/// Finds byte ranges of test-only code: the braced block following a
/// `#[cfg(test)]`-style or `#[test]` attribute. `#[cfg(not(test))]`
/// is production code and is not matched.
fn find_test_regions(tokens: &[Token], significant: &[usize], text: &str) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut k = 0;
    while k < significant.len() {
        let tok = &tokens[significant[k]];
        if tok.kind != TokenKind::Punct || tok.text(text) != "#" {
            k += 1;
            continue;
        }
        let mut m = k + 1;
        // Inner attributes (`#![…]`) never open a test region here.
        if significant
            .get(m)
            .is_some_and(|&i| tokens[i].text(text) == "!")
        {
            k += 1;
            continue;
        }
        if significant
            .get(m)
            .is_none_or(|&i| tokens[i].text(text) != "[")
        {
            k += 1;
            continue;
        }
        m += 1;
        // Collect the attribute's idents up to the matching `]`.
        let mut depth = 1u32;
        let mut idents: Vec<&str> = Vec::new();
        while depth > 0 {
            let Some(&i) = significant.get(m) else {
                break;
            };
            let t = &tokens[i];
            match (t.kind, t.text(text)) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => depth -= 1,
                (TokenKind::Ident, id) => idents.push(id),
                _ => {}
            }
            m += 1;
        }
        let first = idents.first().copied();
        let is_test_attr = idents.contains(&"test")
            && !idents.contains(&"not")
            && matches!(first, Some("cfg" | "cfg_attr" | "test"));
        if !is_test_attr {
            k = m;
            continue;
        }
        // Find the `{` opening the attributed item's body (stop at a
        // `;`: `#[cfg(test)] mod t;` has no inline body).
        let mut open = None;
        let mut probe = m;
        while let Some(&i) = significant.get(probe) {
            match (tokens[i].kind, tokens[i].text(text)) {
                (TokenKind::Punct, "{") => {
                    open = Some(probe);
                    break;
                }
                (TokenKind::Punct, ";") => break,
                _ => probe += 1,
            }
        }
        let Some(open) = open else {
            k = m;
            continue;
        };
        // Match braces to the block's close (EOF-tolerant).
        let start_byte = tokens[significant[open]].start;
        let mut depth = 0i64;
        let mut probe = open;
        let mut end_byte = text.len();
        while let Some(&i) = significant.get(probe) {
            match (tokens[i].kind, tokens[i].text(text)) {
                (TokenKind::Punct, "{") => depth += 1,
                (TokenKind::Punct, "}") => {
                    depth -= 1;
                    if depth == 0 {
                        end_byte = tokens[i].end;
                        break;
                    }
                }
                _ => {}
            }
            probe += 1;
        }
        regions.push((start_byte, end_byte));
        k = probe.max(m) + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_is_one_based() {
        let sf = SourceFile::parse("x.rs", "a\nbb\nccc\n");
        assert_eq!(sf.line_of(0), 1);
        assert_eq!(sf.line_of(2), 2);
        assert_eq!(sf.line_of(3), 2);
        assert_eq!(sf.line_of(5), 3);
    }

    #[test]
    fn cfg_test_block_is_a_test_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn tail() {}\n";
        let sf = SourceFile::parse("x.rs", src);
        let inside = src.find("fn t").expect("marker");
        let before = src.find("fn lib").expect("marker");
        let after = src.find("fn tail").expect("marker");
        assert!(sf.in_test_code(inside));
        assert!(!sf.in_test_code(before));
        assert!(!sf.in_test_code(after));
    }

    #[test]
    fn test_fn_attribute_opens_a_region() {
        let src = "#[test]\nfn check() { body(); }\nfn prod() {}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.in_test_code(src.find("body").expect("marker")));
        assert!(!sf.in_test_code(src.find("prod").expect("marker")));
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn prod() { body(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(!sf.in_test_code(src.find("body").expect("marker")));
    }

    #[test]
    fn allow_covers_same_and_next_line() {
        let src =
            "// lint:allow(panic, fixture)\nlet a = 1;\nlet b = 2; // lint:allow(determinism, x)\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.allowed(RuleId::Panic, 1));
        assert!(sf.allowed(RuleId::Panic, 2));
        assert!(!sf.allowed(RuleId::Panic, 3));
        assert!(sf.allowed(RuleId::Determinism, 3));
        assert!(!sf.allowed(RuleId::Determinism, 2));
    }

    #[test]
    fn unknown_allow_rule_is_inert() {
        let sf = SourceFile::parse("x.rs", "// lint:allow(no-such-rule, x)\nfoo();\n");
        assert!(!sf.allowed(RuleId::Panic, 2));
    }
}
