//! Log-domain factorials and binomials.
//!
//! `std` does not expose `lgamma`, so we carry a Lanczos approximation
//! (g = 7, 9 coefficients), which is accurate to ~1e-13 relative error over
//! the range used here. For bulk work over a fixed population (e.g. summing
//! `C(b, f')`-weighted terms for every `f'` up to `b = 38 400` in Theorem 2)
//! [`LnFact`] precomputes a running table of `ln i!`, which is both faster
//! and slightly more accurate than repeated Lanczos evaluations.

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is not finite or `x ≤ 0` and integral (poles of Γ).
///
/// # Examples
///
/// ```
/// use wcp_combin::ln_gamma;
///
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11); // Γ(5) = 4! = 24
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: x must be finite, got {x}");
    if x < 0.5 {
        assert!(
            x != x.floor() || x > 0.0,
            "ln_gamma: pole at non-positive integer {x}"
        );
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of `n!`.
///
/// # Examples
///
/// ```
/// use wcp_combin::ln_factorial;
///
/// assert!((ln_factorial(4) - 24f64.ln()).abs() < 1e-11);
/// assert_eq!(ln_factorial(0), 0.0);
/// ```
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0)
}

/// Natural log of `C(n, k)`; `-inf` when `k > n`.
///
/// # Examples
///
/// ```
/// use wcp_combin::ln_binomial;
///
/// assert!((ln_binomial(10, 3) - 120f64.ln()).abs() < 1e-10);
/// assert_eq!(ln_binomial(3, 10), f64::NEG_INFINITY);
/// ```
#[must_use]
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Precomputed table of `ln i!` for `i ≤ n_max`.
///
/// Built by cumulative summation of `ln i`, which keeps per-entry error at
/// the level of the rounding of the running sum (≈ 1e-12 relative at
/// `n = 40 000`). Use this when evaluating thousands of log-binomials over
/// the same population, as the Theorem-2 vulnerability computation does.
///
/// # Examples
///
/// ```
/// use wcp_combin::LnFact;
///
/// let t = LnFact::new(100);
/// assert!((t.ln_binomial(100, 50) - wcp_combin::ln_binomial(100, 50)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LnFact {
    table: Vec<f64>,
}

impl LnFact {
    /// Builds the table for factorials up to `n_max!` inclusive.
    #[must_use]
    pub fn new(n_max: u64) -> Self {
        let mut table = Vec::with_capacity(n_max as usize + 1);
        table.push(0.0);
        let mut acc = 0.0f64;
        for i in 1..=n_max {
            acc += (i as f64).ln();
            table.push(acc);
        }
        Self { table }
    }

    /// Largest `n` for which `ln n!` is available.
    #[must_use]
    pub fn n_max(&self) -> u64 {
        (self.table.len() - 1) as u64
    }

    /// `ln n!`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the table size.
    #[must_use]
    pub fn ln_factorial(&self, n: u64) -> f64 {
        self.table[n as usize]
    }

    /// `ln C(n, k)`; `-inf` when `k > n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the table size.
    #[must_use]
    pub fn ln_binomial(&self, n: u64, k: u64) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.table[n as usize] - self.table[k as usize] - self.table[(n - k) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;

    #[test]
    fn lanczos_matches_exact_factorials() {
        let mut fact = 1f64;
        for n in 1..=30u64 {
            fact *= n as f64;
            let rel = (ln_factorial(n) - fact.ln()).abs() / fact.ln().max(1.0);
            assert!(rel < 1e-12, "n={n} rel={rel}");
        }
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for n in [10u64, 31, 71, 100, 120] {
            for k in 0..=n {
                let exact = binomial(n, k).unwrap() as f64;
                let rel = (ln_binomial(n, k) - exact.ln()).abs() / exact.ln().max(1.0);
                assert!(rel < 1e-10, "C({n},{k}) rel={rel}");
            }
        }
    }

    #[test]
    fn table_matches_lanczos_at_scale() {
        let t = LnFact::new(40_000);
        for n in [1u64, 100, 5_000, 38_400, 40_000] {
            let rel = (t.ln_factorial(n) - ln_factorial(n)).abs() / ln_factorial(n).max(1.0);
            assert!(rel < 1e-11, "n={n} rel={rel}");
        }
    }

    #[test]
    fn table_binomial_sums_to_2_pow_n() {
        // Σ_k C(n,k) = 2^n; verify in log space via direct summation.
        let t = LnFact::new(300);
        let n = 300u64;
        let mut sum = 0f64;
        for k in 0..=n {
            sum += (t.ln_binomial(n, k) - n as f64 * 2f64.ln()).exp();
        }
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn half_integer_gamma() {
        // Γ(1/2) = √π.
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
    }
}
