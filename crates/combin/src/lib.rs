//! Combinatorial arithmetic substrate for the worst-case replica placement
//! library.
//!
//! Everything in the placement theory of Li, Gao & Reiter (ICDCS 2015) is
//! expressed through binomial coefficients: packing capacities
//! `λ·C(n,x+1)/C(r,x+1)`, availability penalties `⌊λ·C(k,x+1)/C(s,x+1)⌋`,
//! and the Theorem-2 vulnerability of random placement, which is a scaled
//! binomial tail with population sizes as large as `C(257,5)` raised to the
//! power of tens of thousands of objects. This crate provides:
//!
//! * [`binomial`] / [`binomial_u64`] — exact, overflow-checked binomials;
//! * [`ln_gamma`], [`ln_factorial`], [`ln_binomial`] — log-domain variants
//!   accurate to ~1e-12, with no dependency beyond `std`;
//! * [`LnFact`] — a bulk table of `ln i!` for evaluating many log-binomials
//!   with the same population quickly;
//! * [`ln_binomial_tail`] — a numerically stable `ln Σ_{j≥f} C(b,j) p^j (1−p)^{b−j}`;
//! * [`subsets`] — lexicographic k-subset iteration, ranking and unranking
//!   (used to generate complete designs lazily and to drive exhaustive
//!   adversaries).
//!
//! # Examples
//!
//! ```
//! use wcp_combin::{binomial, ln_binomial};
//!
//! assert_eq!(binomial(71, 5), Some(13_019_909));
//! let approx = ln_binomial(71, 5).exp();
//! assert!((approx - 13_019_909.0).abs() / 13_019_909.0 < 1e-10);
//! ```

#![forbid(unsafe_code)]

mod binomial;
mod lgamma;
pub mod subsets;
mod tail;

pub use binomial::{binomial, binomial_u64, falling_factorial};
pub use lgamma::{ln_binomial, ln_factorial, ln_gamma, LnFact};
pub use subsets::{KSubsets, SubsetRank};
pub use tail::{ln_binomial_tail, log_sum_exp};
