//! Exact binomial coefficients with overflow checking.

/// Computes the binomial coefficient `C(n, k)` exactly in `u128`.
///
/// Returns `None` if the intermediate product overflows `u128`. The
/// computation multiplies and divides incrementally (`c ← c·(n−i)/(i+1)`),
/// which keeps every intermediate value integral and no larger than
/// `C(n, i+1)·(n−i)`, so overflow only occurs when the true value is within
/// a factor `n` of `u128::MAX`.
///
/// # Examples
///
/// ```
/// use wcp_combin::binomial;
///
/// assert_eq!(binomial(5, 2), Some(10));
/// assert_eq!(binomial(5, 0), Some(1));
/// assert_eq!(binomial(5, 6), Some(0));
/// assert_eq!(binomial(257, 5), Some(8_984_341_696));
/// ```
#[must_use]
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 0..k {
        c = c.checked_mul(u128::from(n - i))?;
        // Division is exact: after multiplying by (n-i), c equals
        // C(n, i+1) * (i+1)! / (i+1)! * ... — concretely c is the product of
        // i+1 consecutive integers divided by i!, which (i+1) divides.
        c /= u128::from(i) + 1;
    }
    Some(c)
}

/// Computes `C(n, k)` exactly as a `u64`.
///
/// Returns `None` when the value does not fit in `u64`. Convenience wrapper
/// over [`binomial`] for the common case where callers index arrays by the
/// result.
///
/// # Examples
///
/// ```
/// use wcp_combin::binomial_u64;
///
/// assert_eq!(binomial_u64(71, 5), Some(13_019_909));
/// assert_eq!(binomial_u64(300, 150), None); // astronomically large
/// ```
#[must_use]
pub fn binomial_u64(n: u64, k: u64) -> Option<u64> {
    binomial(n, k).and_then(|v| u64::try_from(v).ok())
}

/// Computes the falling factorial `n · (n−1) ⋯ (n−k+1)` exactly.
///
/// Returns `None` on `u128` overflow. `falling_factorial(n, n)` is `n!`.
///
/// # Examples
///
/// ```
/// use wcp_combin::falling_factorial;
///
/// assert_eq!(falling_factorial(10, 3), Some(720));
/// assert_eq!(falling_factorial(10, 0), Some(1));
/// assert_eq!(falling_factorial(3, 5), Some(0));
/// ```
#[must_use]
pub fn falling_factorial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul(u128::from(n - i))?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_pascal_triangle() {
        let mut row = vec![1u128];
        for n in 0..=40u64 {
            for (k, expect) in row.iter().enumerate() {
                assert_eq!(binomial(n, k as u64), Some(*expect), "C({n},{k})");
            }
            let mut next = vec![1u128];
            for w in row.windows(2) {
                next.push(w[0] + w[1]);
            }
            next.push(1);
            row = next;
        }
    }

    #[test]
    fn symmetric() {
        for n in 0..60u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn out_of_range_is_zero() {
        assert_eq!(binomial(10, 11), Some(0));
        assert_eq!(binomial(0, 1), Some(0));
        assert_eq!(binomial(0, 0), Some(1));
    }

    #[test]
    fn paper_capacity_values() {
        // Capacities used throughout the paper's evaluation.
        // C(69,2)/C(3,2) = STS(69) block count = 782.
        assert_eq!(binomial(69, 2).unwrap() / binomial(3, 2).unwrap(), 782);
        // C(65,3)/C(5,3): 3-(65,5,1) block count = 4368.
        assert_eq!(binomial(65, 3).unwrap() / binomial(5, 3).unwrap(), 4368);
        // C(257,3)/C(5,3): 3-(257,5,1) block count = 279_616.
        assert_eq!(binomial(257, 3).unwrap() / binomial(5, 3).unwrap(), 279_616);
    }

    #[test]
    fn overflow_detected() {
        assert_eq!(binomial(1000, 500), None);
        // C(120,60) ~ 9.7e34 fits comfortably, including the method's
        // one-factor-larger intermediates.
        assert!(binomial(120, 60).is_some());
    }

    #[test]
    fn u64_wrapper_fits() {
        // C(70,35) ~ 1.12e20 > u64::MAX (1.8e19), so None.
        assert_eq!(binomial_u64(70, 35), None);
        // C(62,31) = 465428353255261088 < u64::MAX, so Some.
        assert_eq!(binomial_u64(62, 31), Some(465_428_353_255_261_088));
    }

    #[test]
    fn falling_factorial_matches_binomial() {
        for n in 0..30u64 {
            for k in 0..=n {
                let ff = falling_factorial(n, k).unwrap();
                let kfact = falling_factorial(k, k).unwrap();
                assert_eq!(ff, binomial(n, k).unwrap() * kfact);
            }
        }
    }
}
