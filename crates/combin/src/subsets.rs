//! Lexicographic k-subset iteration, ranking and unranking.
//!
//! Complete designs ("all r-subsets of the node set", the vacuous Steiner
//! system used when `x + 1 = r`) are far too large to materialize at
//! `n = 257`, so placements draw their first `b` blocks lazily through
//! [`KSubsets`]. Exhaustive adversaries also enumerate candidate failure
//! sets with it. [`SubsetRank`] provides O(k) lexicographic rank/unrank,
//! used for deterministic sampling of subsets without enumeration.

use crate::binomial;

/// Iterator over all k-subsets of `{0, 1, …, n−1}` in lexicographic order.
///
/// Each item is a freshly allocated, sorted `Vec<u16>`. For tight loops the
/// visitor [`KSubsets::for_each`] avoids the per-item allocation.
///
/// # Examples
///
/// ```
/// use wcp_combin::KSubsets;
///
/// let subsets: Vec<_> = KSubsets::new(4, 2).collect();
/// assert_eq!(subsets, vec![
///     vec![0, 1], vec![0, 2], vec![0, 3],
///     vec![1, 2], vec![1, 3], vec![2, 3],
/// ]);
/// ```
#[derive(Debug, Clone)]
pub struct KSubsets {
    n: u16,
    current: Vec<u16>,
    done: bool,
}

impl KSubsets {
    /// Creates the iterator; yields nothing when `k > n`.
    #[must_use]
    pub fn new(n: u16, k: u16) -> Self {
        let done = k > n;
        let current = (0..k).collect();
        Self { n, current, done }
    }

    /// Advances `state` to the next k-subset in lexicographic order in
    /// place, returning `false` when the sequence is exhausted.
    fn advance(n: u16, state: &mut [u16]) -> bool {
        let k = state.len();
        if k == 0 {
            return false;
        }
        // Find rightmost position that can be incremented.
        let mut i = k;
        while i > 0 {
            i -= 1;
            if state[i] < n - (k - i) as u16 {
                state[i] += 1;
                for j in i + 1..k {
                    state[j] = state[j - 1] + 1;
                }
                return true;
            }
        }
        false
    }

    /// Calls `f` for every k-subset without allocating, stopping early if
    /// `f` returns `false`.
    pub fn for_each(mut self, mut f: impl FnMut(&[u16]) -> bool) {
        if self.done {
            return;
        }
        loop {
            if !f(&self.current) {
                return;
            }
            if !Self::advance(self.n, &mut self.current) {
                return;
            }
        }
    }
}

impl Iterator for KSubsets {
    type Item = Vec<u16>;

    fn next(&mut self) -> Option<Vec<u16>> {
        if self.done {
            return None;
        }
        let item = self.current.clone();
        if !Self::advance(self.n, &mut self.current) {
            self.done = true;
        }
        Some(item)
    }
}

/// Lexicographic rank/unrank for k-subsets of `{0, …, n−1}`.
///
/// # Examples
///
/// ```
/// use wcp_combin::SubsetRank;
///
/// let sr = SubsetRank::new(5, 3);
/// assert_eq!(sr.count(), 10);
/// let s = sr.unrank(4);
/// assert_eq!(sr.rank(&s), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SubsetRank {
    n: u16,
    k: u16,
    count: u128,
}

impl SubsetRank {
    /// Creates a rank/unrank helper for k-subsets of an n-set.
    ///
    /// # Panics
    ///
    /// Panics if `C(n, k)` overflows `u128`.
    #[must_use]
    pub fn new(n: u16, k: u16) -> Self {
        let count = binomial(u64::from(n), u64::from(k)).expect("C(n,k) overflows u128");
        Self { n, k, count }
    }

    /// Number of k-subsets, `C(n, k)`.
    #[must_use]
    pub fn count(&self) -> u128 {
        self.count
    }

    /// The subset at lexicographic position `rank` (0-based), as a sorted
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `rank ≥ count()`.
    #[must_use]
    pub fn unrank(&self, mut rank: u128) -> Vec<u16> {
        assert!(rank < self.count, "rank {rank} out of range {}", self.count);
        let mut out = Vec::with_capacity(self.k as usize);
        let mut next = 0u16; // smallest value still eligible
        for slot in 0..self.k {
            let remaining = self.k - slot - 1;
            // Choose the smallest value v >= next such that the number of
            // subsets starting with values < v is <= rank.
            let mut v = next;
            loop {
                // Subsets with this slot equal to v: C(n-1-v, remaining).
                let c = binomial(u64::from(self.n - 1 - v), u64::from(remaining))
                    .expect("checked in constructor");
                if rank < c {
                    break;
                }
                rank -= c;
                v += 1;
            }
            out.push(v);
            next = v + 1;
        }
        out
    }

    /// Lexicographic position of `subset` (must be sorted, strictly
    /// increasing, within range).
    ///
    /// # Panics
    ///
    /// Panics if the subset is malformed.
    #[must_use]
    pub fn rank(&self, subset: &[u16]) -> u128 {
        assert_eq!(subset.len(), self.k as usize, "subset has wrong size");
        let mut rank = 0u128;
        let mut next = 0u16;
        for (slot, &v) in subset.iter().enumerate() {
            assert!(v >= next && v < self.n, "subset not sorted/in-range");
            let remaining = (self.k as usize - slot - 1) as u64;
            for w in next..v {
                rank +=
                    binomial(u64::from(self.n - 1 - w), remaining).expect("checked in constructor");
            }
            next = v + 1;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_correct_count() {
        for n in 0..=9u16 {
            for k in 0..=n + 1 {
                let count = KSubsets::new(n, k).count() as u128;
                let expect = binomial(u64::from(n), u64::from(k)).unwrap();
                assert_eq!(count, expect, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn lexicographic_and_distinct() {
        let all: Vec<_> = KSubsets::new(8, 3).collect();
        for w in all.windows(2) {
            assert!(w[0] < w[1], "not strictly increasing: {w:?}");
        }
        for s in &all {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn visitor_early_exit() {
        let mut seen = 0;
        KSubsets::new(10, 4).for_each(|_| {
            seen += 1;
            seen < 7
        });
        assert_eq!(seen, 7);
    }

    #[test]
    fn rank_unrank_roundtrip() {
        let sr = SubsetRank::new(9, 4);
        let all: Vec<_> = KSubsets::new(9, 4).collect();
        assert_eq!(all.len() as u128, sr.count());
        for (i, s) in all.iter().enumerate() {
            assert_eq!(sr.unrank(i as u128), *s, "unrank({i})");
            assert_eq!(sr.rank(s), i as u128, "rank({s:?})");
        }
    }

    #[test]
    fn unrank_large_population() {
        // 257 choose 5 — the complete design population for n = 257, r = 5.
        let sr = SubsetRank::new(257, 5);
        assert_eq!(sr.count(), 8_984_341_696);
        let first = sr.unrank(0);
        assert_eq!(first, vec![0, 1, 2, 3, 4]);
        let last = sr.unrank(sr.count() - 1);
        assert_eq!(last, vec![252, 253, 254, 255, 256]);
        let mid = sr.unrank(sr.count() / 2);
        assert_eq!(sr.rank(&mid), sr.count() / 2);
    }

    #[test]
    fn zero_k() {
        let v: Vec<_> = KSubsets::new(5, 0).collect();
        assert_eq!(v, vec![Vec::<u16>::new()]);
        let sr = SubsetRank::new(5, 0);
        assert_eq!(sr.count(), 1);
        assert_eq!(sr.unrank(0), Vec::<u16>::new());
    }
}
