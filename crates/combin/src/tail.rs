//! Numerically stable binomial tail sums in log space.
//!
//! Theorem 2 of the paper reduces the vulnerability of random placement to
//! `Vuln(f) = C(n,k) · P[X ≥ f]` with `X ~ Binomial(b, p)` and
//! `p = α(n,k,r,s)/C(n,r)`. With `b` up to 38 400 and `p` potentially below
//! 1e-9, the tail must be evaluated in log space; [`ln_binomial_tail`] does
//! so with a single pass and a running log-sum-exp.

use crate::LnFact;

/// Computes `ln(exp(a) + exp(b))` without overflow.
///
/// Accepts `-inf` for either argument (treated as adding zero).
///
/// # Examples
///
/// ```
/// use wcp_combin::log_sum_exp;
///
/// let v = log_sum_exp(0.0, 0.0); // ln(1 + 1)
/// assert!((v - 2f64.ln()).abs() < 1e-12);
/// assert_eq!(log_sum_exp(f64::NEG_INFINITY, 3.0), 3.0);
/// ```
#[must_use]
pub fn log_sum_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Computes `ln Σ_{j=f}^{b} C(b, j) p^j (1−p)^{b−j}` — the natural log of the
/// upper tail of a `Binomial(b, p)` distribution.
///
/// `ln_p` and `ln_1mp` are `ln p` and `ln(1−p)` supplied by the caller so
/// that extreme probabilities retain precision (compute `ln(1−p)` with
/// `ln_1p(-p)` when `p` is tiny). Returns `-inf` for an empty tail
/// (`f > b`), and `0.0` when `f == 0` (the tail is the whole distribution).
///
/// The summation starts from the largest term in the tail and adds both
/// directions of decreasing magnitude, so cancellation is not a concern and
/// terms below `exp(-60)` of the maximum are truncated (relative error
/// < 1e-20).
///
/// # Panics
///
/// Panics if `table` is too small for `b`.
///
/// # Examples
///
/// ```
/// use wcp_combin::{ln_binomial_tail, LnFact};
///
/// let t = LnFact::new(100);
/// // P[X >= 50] for X ~ Bin(100, 0.5) is ~0.5398.
/// let p: f64 = 0.5;
/// let v = ln_binomial_tail(&t, 100, p.ln(), (1.0 - p).ln(), 50).exp();
/// assert!((v - 0.5398).abs() < 1e-3);
/// ```
#[must_use]
pub fn ln_binomial_tail(table: &LnFact, b: u64, ln_p: f64, ln_1mp: f64, f: u64) -> f64 {
    if f > b {
        return f64::NEG_INFINITY;
    }
    if f == 0 {
        return 0.0;
    }
    let term = |j: u64| -> f64 {
        // Guard 0·(−inf) = NaN at the degenerate probabilities p ∈ {0, 1}.
        let success = if j == 0 { 0.0 } else { j as f64 * ln_p };
        let failure = if j == b { 0.0 } else { (b - j) as f64 * ln_1mp };
        table.ln_binomial(b, j) + success + failure
    };
    // The binomial pmf is unimodal with mode near b·p; within the tail
    // [f, b] the maximum term is at max(f, mode).
    let mode = if ln_p == f64::NEG_INFINITY {
        0
    } else {
        // mode = floor((b+1) p); compute via exp carefully (p can be tiny
        // but (b+1)p fits f64 easily).
        let p = ln_p.exp();
        (((b + 1) as f64) * p).floor().min(b as f64) as u64
    };
    let peak = mode.clamp(f, b);
    let ln_peak = term(peak);
    if ln_peak == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    const CUTOFF: f64 = 60.0;
    // Sum upward from the peak.
    let mut acc = 0.0f64; // Σ exp(term - ln_peak)
    let mut j = peak;
    loop {
        let t = term(j) - ln_peak;
        if t < -CUTOFF {
            break;
        }
        acc += t.exp();
        if j == b {
            break;
        }
        j += 1;
    }
    // Sum downward from just below the peak (still within the tail).
    let mut j = peak;
    while j > f {
        j -= 1;
        let t = term(j) - ln_peak;
        if t < -CUTOFF {
            break;
        }
        acc += t.exp();
    }
    // The tail is a probability; clamp summation error above ln(1) = 0.
    (ln_peak + acc.ln()).min(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force tail in plain f64 for moderate parameters.
    fn naive_tail(b: u64, p: f64, f: u64) -> f64 {
        let t = LnFact::new(b);
        (f..=b)
            .map(|j| {
                (t.ln_binomial(b, j) + (j as f64) * p.ln() + ((b - j) as f64) * (1.0 - p).ln())
                    .exp()
            })
            .sum()
    }

    #[test]
    fn matches_naive_summation() {
        let t = LnFact::new(2_000);
        for &(b, p) in &[(50u64, 0.3f64), (200, 0.01), (2_000, 0.5), (1_000, 0.9)] {
            for f in [0u64, 1, b / 4, b / 2, b - 1, b] {
                let got = ln_binomial_tail(&t, b, p.ln(), (-p).ln_1p(), f).exp();
                let want = naive_tail(b, p, f);
                assert!(
                    (got - want).abs() <= 1e-9 * want.max(1e-300),
                    "b={b} p={p} f={f}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn whole_distribution_is_one() {
        let t = LnFact::new(38_400);
        let p: f64 = 1e-7;
        let v = ln_binomial_tail(&t, 38_400, p.ln(), (-p).ln_1p(), 0);
        assert_eq!(v, 0.0);
        let v1 = ln_binomial_tail(&t, 38_400, p.ln(), (-p).ln_1p(), 1).exp();
        // P[X >= 1] = 1 - (1-p)^b ≈ b·p for tiny p.
        let expect = 1.0 - (1.0 - p).powi(38_400);
        assert!((v1 - expect).abs() < 1e-9, "{v1} vs {expect}");
    }

    #[test]
    fn empty_tail() {
        let t = LnFact::new(10);
        assert_eq!(
            ln_binomial_tail(&t, 10, 0.5f64.ln(), 0.5f64.ln(), 11),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn deep_tail_is_monotone() {
        let t = LnFact::new(38_400);
        let p: f64 = 3e-4;
        let mut prev = f64::INFINITY;
        for f in 0..200 {
            let v = ln_binomial_tail(&t, 38_400, p.ln(), (-p).ln_1p(), f);
            assert!(v <= prev + 1e-12, "tail must be non-increasing at f={f}");
            prev = v;
        }
    }

    #[test]
    fn log_sum_exp_commutes() {
        assert_eq!(log_sum_exp(1.0, 2.0), log_sum_exp(2.0, 1.0));
        let v = log_sum_exp(-700.0, -700.0);
        assert!((v - (-700.0 + 2f64.ln())).abs() < 1e-12);
    }
}
