//! Property-based tests for the combinatorics substrate.

use proptest::prelude::*;
use wcp_combin::{binomial, ln_binomial, ln_binomial_tail, LnFact, SubsetRank};

proptest! {
    /// Pascal's rule: C(n,k) = C(n−1,k−1) + C(n−1,k).
    #[test]
    fn pascal_rule(n in 1u64..100, k in 1u64..100) {
        let lhs = binomial(n, k).unwrap();
        let rhs = binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Log-domain binomials agree with exact ones within 1e-9 relative.
    #[test]
    fn log_matches_exact(n in 1u64..120, k in 0u64..120) {
        prop_assume!(k <= n);
        let exact = binomial(n, k).unwrap() as f64;
        let approx = ln_binomial(n, k).exp();
        prop_assert!((approx - exact).abs() <= 1e-9 * exact);
    }

    /// Unrank then rank is the identity, and unrank is monotone in rank.
    #[test]
    fn rank_roundtrip(n in 1u16..40, k in 0u16..10, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let sr = SubsetRank::new(n, k);
        let rank = u128::from(seed) % sr.count();
        let subset = sr.unrank(rank);
        prop_assert_eq!(sr.rank(&subset), rank);
        if rank + 1 < sr.count() {
            let nxt = sr.unrank(rank + 1);
            prop_assert!(nxt > subset, "lexicographic order violated");
        }
    }

    /// The binomial tail is bounded by [0, 1] and decreasing in f.
    #[test]
    fn tail_is_probability(b in 1u64..500, p in 1e-9f64..0.999, f in 0u64..500) {
        prop_assume!(f <= b);
        let t = LnFact::new(b);
        let v = ln_binomial_tail(&t, b, p.ln(), (-p).ln_1p(), f);
        prop_assert!(v <= 1e-12, "ln tail must be <= 0, got {}", v);
        if f < b {
            let v2 = ln_binomial_tail(&t, b, p.ln(), (-p).ln_1p(), f + 1);
            prop_assert!(v2 <= v + 1e-12, "tail increased at f={}", f);
        }
    }

    /// Union bound sanity: tail at f=1 equals 1 − (1−p)^b within tolerance.
    #[test]
    fn tail_at_one(b in 1u64..2000, p in 1e-6f64..0.9) {
        let t = LnFact::new(b);
        let got = ln_binomial_tail(&t, b, p.ln(), (-p).ln_1p(), 1).exp();
        let expect = -((-p).ln_1p() * b as f64).exp_m1();
        prop_assert!((got - expect).abs() < 1e-9, "got {} expect {}", got, expect);
    }
}
