//! Multi-thread stress: N reader threads hammer `lookup` while the
//! repair thread publishes epochs, checking the two serving invariants
//! the crate docs promise:
//!
//! 1. **Per-epoch-consistent answers** — every `(epoch, object, answer)`
//!    a reader observes matches that epoch's snapshot, re-checked after
//!    the fact against the record of published snapshots.
//! 2. **Monotone epochs** — no reader ever sees the epoch go backwards.
//!
//! The readers deliberately mix the two read paths (per-lookup lock
//! and batch `snapshot()`), and the writer keeps `max_batch` at 1 so
//! every churn event is its own epoch — the worst case for readers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

use wcp_core::{
    ClusterEvent, DynamicConfig, DynamicEngine, RandomVariant, StrategyKind, SystemParams,
};
use wcp_service::runtime::serve;
use wcp_service::{PlacementProvider, ServiceConfig, ServiceEvent, ServiceHandle};

fn engine(n: u16, b: u64, capacity: u16, seed: u64) -> DynamicEngine {
    let params = SystemParams::new(n, b, 3, 2, 2).unwrap();
    let kind = StrategyKind::Random {
        seed,
        variant: RandomVariant::LoadBalanced,
    };
    DynamicEngine::new(params, kind, capacity, DynamicConfig::default()).unwrap()
}

/// One reader's transcript: (epoch, object, answer) triples plus the
/// sequence of epochs it saw (for the monotonicity check).
struct Transcript {
    observations: Vec<(u64, u64, Option<u16>)>,
    epochs: Vec<u64>,
}

fn reader_loop(handle: &ServiceHandle, stop: &AtomicBool, b: u64, salt: u64) -> Transcript {
    let mut observations = Vec::new();
    let mut epochs = Vec::new();
    let mut x = salt | 1;
    while !stop.load(Ordering::SeqCst) {
        // Batch path: pin one snapshot for a burst of lookups.
        let snap = handle.snapshot();
        epochs.push(snap.epoch());
        for _ in 0..32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let object = x % (b + 3); // a few out-of-range probes too
            observations.push((snap.epoch(), object, snap.lookup(object)));
        }
        // Per-lookup path: epoch and answer read under the same lock
        // acquisition would need a snapshot anyway, so record the pair
        // from one pinned snapshot — the trait path is exercised for
        // the answer value only.
        let _ = handle.lookup(x % b);
        epochs.push(handle.snapshot_epoch());
    }
    Transcript {
        observations,
        epochs,
    }
}

#[test]
fn readers_see_monotone_epochs_and_epoch_consistent_answers() {
    const READERS: usize = 4;
    let b = 600u64;
    let eng = engine(16, b, 20, 3);

    // Record every published snapshot (epoch → its own lookup table)
    // by re-deriving them after the run from the service's final
    // report; during the run we capture them via a logging reader that
    // snapshots in a tight loop. Capturing *every* epoch is not
    // guaranteed from the outside, so instead the writer thread logs
    // each epoch's forward map itself: we enqueue one event at a time
    // and quiesce, so each epoch is observable before the next starts.
    let published: Mutex<HashMap<u64, wcp_service::Snapshot>> = Mutex::new(HashMap::new());
    let stop = AtomicBool::new(false);

    let (transcripts, report, _) = serve(
        eng,
        &ServiceConfig {
            queue_capacity: 8,
            max_batch: 1,
        },
        |handle| {
            thread::scope(|scope| {
                let mut readers = Vec::new();
                for i in 0..READERS {
                    let h = handle.clone();
                    let stop = &stop;
                    readers.push(
                        scope.spawn(move || reader_loop(&h, stop, b, (i as u64 + 1) * 0x9e37)),
                    );
                }

                // The writer: churn one event per epoch, logging each
                // published snapshot before the next event goes in.
                published
                    .lock()
                    .unwrap()
                    .insert(0, (*handle.snapshot()).clone());
                let events = [
                    ClusterEvent::Fail { node: 2 },
                    ClusterEvent::Join { node: 16 },
                    ClusterEvent::Fail { node: 9 },
                    ClusterEvent::Recover { node: 2 },
                    ClusterEvent::Join { node: 17 },
                    ClusterEvent::Fail { node: 5 },
                    ClusterEvent::Recover { node: 9 },
                    ClusterEvent::Leave { node: 11 },
                    ClusterEvent::Recover { node: 5 },
                    ClusterEvent::Join { node: 18 },
                ];
                for ev in events {
                    handle.enqueue(ServiceEvent::Churn(ev));
                    handle.quiesce();
                    let snap = handle.snapshot();
                    published
                        .lock()
                        .unwrap()
                        .insert(snap.epoch(), (*snap).clone());
                }
                stop.store(true, Ordering::SeqCst);
                readers
                    .into_iter()
                    .map(|r| r.join().expect("reader panicked"))
                    .collect::<Vec<_>>()
            })
        },
    );

    assert_eq!(report.applied, 10);
    assert_eq!(report.epochs, 10, "max_batch=1 means one epoch per event");
    let published = published.into_inner().unwrap();
    assert_eq!(published.len(), 11, "epochs 0..=10 all logged");

    let mut total = 0usize;
    for (r, t) in transcripts.iter().enumerate() {
        // Monotone epochs per reader.
        for w in t.epochs.windows(2) {
            assert!(w[0] <= w[1], "reader {r} saw epoch regress: {w:?}");
        }
        // Every observation matches the snapshot published at that
        // epoch.
        for &(epoch, object, answer) in &t.observations {
            let snap = published
                .get(&epoch)
                .unwrap_or_else(|| panic!("reader {r} saw unlogged epoch {epoch}"));
            assert_eq!(
                snap.lookup(object),
                answer,
                "reader {r}: object {object} at epoch {epoch}"
            );
            total += 1;
        }
    }
    assert!(total > 0, "readers must have observed something");
}

#[test]
fn lookups_do_not_block_across_publishes() {
    // Liveness smoke: while the repair thread grinds through a long
    // trace, a reader keeps a count of completed lookups. If a publish
    // held the lock for the duration of a repair (the design error the
    // snapshot swap exists to prevent), the reader would starve and
    // the loop below would take visibly forever; completing promptly
    // with thousands of answers is the observable contract.
    let b = 400u64;
    let stop = AtomicBool::new(false);
    let (count, report, _) = serve(
        engine(14, b, 18, 9),
        &ServiceConfig {
            queue_capacity: 2,
            max_batch: 4,
        },
        |handle| {
            thread::scope(|scope| {
                let h = handle.clone();
                let stop = &stop;
                let reader = scope.spawn(move || {
                    let mut count = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        for o in 0..64 {
                            if h.lookup(o).is_some() {
                                count += 1;
                            }
                        }
                    }
                    count
                });
                for round in 0..6u16 {
                    handle.enqueue(ServiceEvent::Churn(ClusterEvent::Fail { node: round % 14 }));
                    handle.enqueue(ServiceEvent::Churn(ClusterEvent::Recover {
                        node: round % 14,
                    }));
                }
                handle.quiesce();
                stop.store(true, Ordering::SeqCst);
                reader.join().expect("reader panicked")
            })
        },
    );
    assert_eq!(report.applied, 12);
    assert!(count > 0, "reader made progress during churn");
}
