//! Differential determinism: the served placement is a pure function
//! of the event sequence, independent of how the repair thread batched
//! it, how the queue raced, and how many adversary threads
//! (`WCP_THREADS`) attacked each epoch's placement.
//!
//! The determinism CI job replays this suite under `WCP_THREADS=1/2/8`.
//! What *is* byte-diffed across those runs: the final snapshot's
//! [`Snapshot::forward_digest`] (the whole CSR forward map) and the
//! final engine placement. What is explicitly *not*: epoch numbers
//! (batching splits vary with scheduling) and reader interleavings —
//! lookup answers are epoch-deterministic, not wall-clock-deterministic.
//!
//! [`Snapshot::forward_digest`]: wcp_service::Snapshot::forward_digest

use wcp_core::{
    ClusterEvent, DynamicConfig, DynamicEngine, RandomVariant, StrategyKind, SystemParams,
};
use wcp_service::runtime::{serve_trace, snapshot_of};
use wcp_service::ServiceConfig;

fn engine(seed: u64) -> DynamicEngine {
    let params = SystemParams::new(14, 80, 3, 2, 2).unwrap();
    let kind = StrategyKind::Random {
        seed,
        variant: RandomVariant::LoadBalanced,
    };
    DynamicEngine::new(params, kind, 18, DynamicConfig::default()).unwrap()
}

fn trace() -> Vec<ClusterEvent> {
    vec![
        ClusterEvent::Fail { node: 1 },
        ClusterEvent::Join { node: 14 },
        ClusterEvent::Fail { node: 7 },
        ClusterEvent::Recover { node: 1 },
        ClusterEvent::Leave { node: 3 },
        ClusterEvent::Join { node: 15 },
        ClusterEvent::Fail { node: 10 },
        ClusterEvent::Recover { node: 7 },
        ClusterEvent::Join { node: 16 },
        ClusterEvent::Recover { node: 10 },
        ClusterEvent::Fail { node: 14 },
        ClusterEvent::Join { node: 17 },
    ]
}

#[test]
fn final_snapshot_is_batching_invariant() {
    // Three very different drain shapes: event-at-a-time, small
    // batches under a tight queue (forcing writer back-pressure), and
    // one big gulp. The published epoch counts differ; the final
    // forward map must not.
    let configs = [
        ServiceConfig {
            queue_capacity: 1,
            max_batch: 1,
        },
        ServiceConfig {
            queue_capacity: 3,
            max_batch: 4,
        },
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 64,
        },
    ];
    let mut digests = Vec::new();
    let mut epochs = Vec::new();
    for config in &configs {
        let (digest, report, served) = serve_trace(engine(5), config, trace(), |handle| {
            handle.snapshot().forward_digest()
        });
        assert_eq!(report.applied, 12, "every event is legal in this trace");
        assert_eq!(snapshot_of(served.placement()).forward_digest(), digest);
        digests.push(digest);
        epochs.push(report.epochs);
    }
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[1], digests[2]);
    // The non-goal, pinned down so nobody "fixes" it: batching shapes
    // epoch counts, and that is fine.
    assert!(epochs[0] >= epochs[2], "finer batches publish more epochs");
}

#[test]
fn served_replay_matches_direct_engine_replay() {
    // The service must add zero policy on top of DynamicEngine: the
    // same trace applied directly yields the same placement, and its
    // snapshot the same digest. Under WCP_THREADS=1/2/8 the adversary
    // inside the engine is bit-identical (the repo-wide parallelism
    // contract), so this digest is the value CI byte-diffs.
    let (digest, _, _) = serve_trace(engine(9), &ServiceConfig::default(), trace(), |handle| {
        handle.snapshot().forward_digest()
    });
    let mut direct = engine(9);
    direct.run_trace(trace()).unwrap();
    assert_eq!(snapshot_of(direct.placement()).forward_digest(), digest);
}

#[test]
fn digest_is_sensitive_to_the_trace() {
    // Guard against a vacuous digest: drop one event and the final
    // forward map must change (this trace moves replicas every event).
    let (full, _, _) = serve_trace(engine(5), &ServiceConfig::default(), trace(), |h| {
        h.snapshot().forward_digest()
    });
    let mut shorter = trace();
    shorter.pop();
    let (cut, _, _) = serve_trace(engine(5), &ServiceConfig::default(), shorter, |h| {
        h.snapshot().forward_digest()
    });
    assert_ne!(full, cut);
}
