//! Placement-as-a-service: concurrent lookup over a churning cluster.
//!
//! Everything below `wcp-service` *computes* placements — plans them,
//! attacks them, certifies them, repairs them across churn. This crate
//! **serves** them: the [`PlacementProvider`] trait is the lookup
//! surface a storage frontend would call per request, modeled on
//! rio-rs's `ObjectPlacementProvider` (`lookup` / `upsert` /
//! `clean_server`), and the in-memory backend keeps the hot path
//! worst-case-aware by publishing only placements the adversary ladder
//! has attacked (and, when the exact rung completed, certified).
//!
//! # Epoch-snapshot concurrency model
//!
//! The backend is a classic read-copy-publish design, std-only and
//! `#![forbid(unsafe_code)]`:
//!
//! * Reads go through an immutable [`Snapshot`] — a CSR forward map
//!   (object → replica list, primary first) plus the epoch that built
//!   it and a digest of its availability [`Certificate`] when one was
//!   emitted. Snapshots are shared as `Arc<Snapshot>` and never mutate.
//! * The only shared mutable cell is an `RwLock<Arc<Snapshot>>`. A
//!   lookup holds the read lock just long enough to index the CSR; the
//!   repair thread holds the write lock just long enough to swap one
//!   `Arc` pointer. Millions of concurrent lookups therefore never
//!   block on a repair in progress — they block (briefly) only on the
//!   pointer swap itself, and batch readers can [`ServiceHandle::snapshot`]
//!   once and not even do that.
//! * Writes are asynchronous: [`PlacementProvider::upsert`] and
//!   [`PlacementProvider::remove_node`] enqueue [`ServiceEvent`]s into
//!   a bounded queue. The repair thread (the crate's one sanctioned
//!   threading room, [`runtime`]) drains the queue per epoch, replays
//!   churn through [`DynamicEngine`](wcp_core::DynamicEngine) —
//!   incremental repair with the
//!   replan-oracle fallback, re-attacked by the scratch adversary every
//!   event — and publishes the next snapshot.
//!
//! Readers observe **monotone epochs** (the writer only ever installs
//! `epoch + 1`) and **per-epoch-consistent answers** (a snapshot never
//! changes after publication); `tests/stress.rs` hammers both claims
//! under load. Staleness is bounded by queue depth: a reader holding a
//! snapshot at epoch `e` while [`ServiceHandle::published_epoch`]
//! reports `p` is exactly `p − e` repair rounds behind.
//!
//! # Upsert pins and certificates
//!
//! [`PlacementProvider::upsert`] pins an object to an explicit replica
//! list (the rio-rs client-directed placement case). Pins override the
//! engine's placement in every later snapshot until released
//! ([`ServiceEvent::Release`]) — but the adversary attacks the
//! *engine's* placement, so a snapshot with live pins keeps its
//! certificate digest while [`Snapshot::pinned`] reports how many
//! objects the certificate does not cover. Zero pins means the digest
//! covers every answer the snapshot can give.

#![forbid(unsafe_code)]

pub mod runtime;

use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use wcp_core::{Certificate, ClusterEvent, Fnv, Placement};

/// A node identifier, as everywhere else in the workspace.
pub type NodeId = u16;

/// The serving surface: what a storage frontend calls per request.
///
/// `lookup` is the hot path and must never block on repair;
/// `upsert` / `remove_node` are asynchronous — they enqueue work for
/// the repair thread and return, and their effect lands in a later
/// epoch (watch [`PlacementProvider::snapshot_epoch`] advance).
pub trait PlacementProvider {
    /// The node currently serving `object` (its primary replica), or
    /// `None` when the object is outside the placement.
    fn lookup(&self, object: u64) -> Option<NodeId>;

    /// Pins `object` to an explicit replica list (primary first),
    /// overriding the planner from the next epoch on. Returns `false`
    /// when the event queue rejected the request (service shutting
    /// down, or an empty replica list).
    fn upsert(&self, object: u64, nodes: &[NodeId]) -> bool;

    /// Takes `node` out of service: enqueues the corresponding failure
    /// event so the repair thread re-homes every replica it held.
    /// Returns `false` when the queue rejected the request.
    fn remove_node(&self, node: NodeId) -> bool;

    /// rio-rs spelling of [`remove_node`](Self::remove_node).
    fn clean_server(&self, node: NodeId) -> bool {
        self.remove_node(node)
    }

    /// The epoch of the latest *published* snapshot (what a fresh
    /// lookup would read). A snapshot held by a batch reader may be
    /// older; the difference is its staleness in epochs.
    fn snapshot_epoch(&self) -> u64;
}

/// A compact fingerprint of the availability [`Certificate`] attached
/// to a published placement — enough for an auditor to match the
/// snapshot against the full certificate logged elsewhere without the
/// snapshot carrying the rung witnesses around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertificateDigest {
    /// Objects the certificate claims the worst-case adversary fails.
    pub claimed_failed: u64,
    /// Whether the claim was proven exact (the ladder's exact rung
    /// completed).
    pub exact: bool,
    /// FNV-1a over the certificate's canonical JSON rendering.
    pub digest: u64,
}

impl CertificateDigest {
    /// Digests a full certificate.
    #[must_use]
    pub fn of(cert: &Certificate) -> Self {
        let json = cert.to_json();
        let mut h = Fnv::new();
        for b in json.bytes() {
            h.write_u64(u64::from(b));
        }
        Self {
            claimed_failed: cert.claimed_failed,
            exact: cert.exact,
            digest: h.finish(),
        }
    }
}

/// One immutable published placement: the CSR forward map a lookup
/// indexes, the epoch that built it, and the certificate digest of the
/// engine placement it was derived from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    epoch: u64,
    /// CSR row starts: object `o`'s replicas are
    /// `nodes[offsets[o]..offsets[o + 1]]`, primary first.
    offsets: Vec<u32>,
    nodes: Vec<NodeId>,
    pinned: usize,
    certificate: Option<CertificateDigest>,
}

impl Snapshot {
    /// Builds the snapshot for `placement` at `epoch`, overriding the
    /// objects pinned by `pins` (an ordered `(object, replicas)` list)
    /// and stamping the certificate digest when the attacker emitted
    /// one.
    #[must_use]
    pub fn from_placement(
        epoch: u64,
        placement: &Placement,
        pins: &[(u64, Vec<NodeId>)],
        certificate: Option<&Certificate>,
    ) -> Self {
        let sets = placement.replica_sets();
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        let mut nodes =
            Vec::with_capacity(sets.len() * usize::from(placement.replicas_per_object()));
        let mut pinned = 0;
        let mut pin_at = 0;
        offsets.push(0u32);
        for (o, set) in sets.iter().enumerate() {
            while pin_at < pins.len() && (pins[pin_at].0 as usize) < o {
                pin_at += 1;
            }
            let row: &[NodeId] = match pins.get(pin_at) {
                Some((po, replicas)) if *po as usize == o => {
                    pinned += 1;
                    replicas
                }
                _ => set,
            };
            nodes.extend_from_slice(row);
            offsets.push(nodes.len() as u32);
        }
        Self {
            epoch,
            offsets,
            nodes,
            pinned,
            certificate: certificate.map(CertificateDigest::of),
        }
    }

    /// The epoch this snapshot was published at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The number of objects the snapshot can answer for.
    #[must_use]
    pub fn num_objects(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// The object's primary replica, or `None` outside the placement.
    #[inline]
    #[must_use]
    pub fn lookup(&self, object: u64) -> Option<NodeId> {
        let o = usize::try_from(object).ok()?;
        let start = *self.offsets.get(o)? as usize;
        let end = *self.offsets.get(o + 1)? as usize;
        if start == end {
            None
        } else {
            Some(self.nodes[start])
        }
    }

    /// The object's full replica list (primary first).
    #[must_use]
    pub fn replicas(&self, object: u64) -> Option<&[NodeId]> {
        let o = usize::try_from(object).ok()?;
        let start = *self.offsets.get(o)? as usize;
        let end = *self.offsets.get(o + 1)? as usize;
        Some(&self.nodes[start..end])
    }

    /// Objects whose answers come from an [`PlacementProvider::upsert`]
    /// pin rather than the certified engine placement.
    #[must_use]
    pub fn pinned(&self) -> usize {
        self.pinned
    }

    /// The digest of the engine placement's availability certificate,
    /// when the attacker emitted one for this epoch.
    #[must_use]
    pub fn certificate(&self) -> Option<&CertificateDigest> {
        self.certificate.as_ref()
    }

    /// FNV-1a over the forward map — the value the determinism suite
    /// byte-compares across thread counts (epoch numbers and
    /// interleavings are *not* part of it; see `tests/differential.rs`).
    #[must_use]
    pub fn forward_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.num_objects());
        for w in &self.offsets {
            h.write_u64(u64::from(*w));
        }
        for nd in &self.nodes {
            h.write_u64(u64::from(*nd));
        }
        h.finish()
    }
}

/// What the repair thread should do next — either replay a churn event
/// through the dynamic engine, or pin/release an object override.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceEvent {
    /// Membership churn, replayed through [`DynamicEngine::apply`];
    /// events the engine rejects (illegal in the current membership
    /// state) are counted, not fatal.
    ///
    /// [`DynamicEngine::apply`]: wcp_core::DynamicEngine::apply
    Churn(ClusterEvent),
    /// Pin `object` to `nodes` from the next epoch on.
    Upsert {
        /// The object to pin.
        object: u64,
        /// Its replica list, primary first (non-empty).
        nodes: Vec<NodeId>,
    },
    /// Drop the pin on `object`, returning it to the engine placement.
    Release {
        /// The object to unpin.
        object: u64,
    },
}

/// Tuning for [`runtime::serve`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Most events the queue holds before [`ServiceHandle::enqueue`]
    /// blocks (back-pressure on writers; lookups are unaffected).
    pub queue_capacity: usize,
    /// Most events one repair round drains before it must publish an
    /// epoch — the lever bounding reader staleness per round.
    pub max_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 16,
        }
    }
}

/// Queue state under the mutex: pending events, drained-but-unpublished
/// count, and the shutdown latch.
#[derive(Debug, Default)]
struct QueueState {
    pending: std::collections::VecDeque<ServiceEvent>,
    in_flight: usize,
    closed: bool,
}

/// The state a [`ServiceHandle`] and the repair thread share.
#[derive(Debug)]
pub(crate) struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    queue: Mutex<QueueState>,
    /// Signaled when the queue gains work or closes (repair thread
    /// waits here).
    work: Condvar,
    /// Signaled when the queue drains or a batch publishes (writers
    /// and `quiesce` wait here).
    room: Condvar,
    capacity: usize,
}

impl Shared {
    pub(crate) fn new(first: Snapshot, capacity: usize) -> Self {
        Self {
            snapshot: RwLock::new(Arc::new(first)),
            queue: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            room: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until the repair thread may drain a batch; returns it,
    /// or `None` once the queue is closed *and* empty.
    pub(crate) fn take_batch(&self, max_batch: usize) -> Option<Vec<ServiceEvent>> {
        let mut q = self.queue.lock().expect("queue poisoned");
        loop {
            if !q.pending.is_empty() {
                let take = q.pending.len().min(max_batch.max(1));
                let batch: Vec<ServiceEvent> = q.pending.drain(..take).collect();
                q.in_flight = batch.len();
                self.room.notify_all();
                return Some(batch);
            }
            if q.closed {
                return None;
            }
            q = self.work.wait(q).expect("queue poisoned");
        }
    }

    /// Publishes `next` as the new current snapshot and retires the
    /// in-flight batch (the swap is the writer's whole critical
    /// section).
    pub(crate) fn publish(&self, next: Snapshot) {
        *self.snapshot.write().expect("snapshot poisoned") = Arc::new(next);
        let mut q = self.queue.lock().expect("queue poisoned");
        q.in_flight = 0;
        drop(q);
        self.room.notify_all();
    }

    pub(crate) fn close(&self) {
        self.queue.lock().expect("queue poisoned").closed = true;
        self.work.notify_all();
    }
}

/// The cheap, clonable handle to a running service: implements
/// [`PlacementProvider`], plus batch-reader and back-pressure
/// extensions. Obtained from [`runtime::serve`].
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        Self { shared }
    }

    /// The current snapshot, for batch readers: one `RwLock` read per
    /// *batch* instead of per lookup, at the price of staleness the
    /// caller measures via [`Snapshot::epoch`] against
    /// [`ServiceHandle::published_epoch`].
    #[must_use]
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.shared.snapshot.read().expect("snapshot poisoned"))
    }

    /// The latest published epoch.
    #[must_use]
    pub fn published_epoch(&self) -> u64 {
        self.shared
            .snapshot
            .read()
            .expect("snapshot poisoned")
            .epoch
    }

    /// Enqueues `event`, blocking while the queue is at capacity.
    /// Returns `false` once the service is shutting down (the event is
    /// dropped).
    pub fn enqueue(&self, event: ServiceEvent) -> bool {
        let shared = &*self.shared;
        let mut q = shared.queue.lock().expect("queue poisoned");
        loop {
            if q.closed {
                return false;
            }
            if q.pending.len() < shared.capacity {
                q.pending.push_back(event);
                shared.work.notify_all();
                return true;
            }
            q = shared.room.wait(q).expect("queue poisoned");
        }
    }

    /// Blocks until every event enqueued so far has been applied *and*
    /// published. After `quiesce` returns, [`Self::snapshot`] reflects
    /// all prior writes (the differential suite's synchronization
    /// point).
    pub fn quiesce(&self) {
        let shared = &*self.shared;
        let mut q = shared.queue.lock().expect("queue poisoned");
        while !q.pending.is_empty() || q.in_flight > 0 {
            let (guard, timeout) = shared
                .room
                .wait_timeout(q, Duration::from_millis(50))
                .expect("queue poisoned");
            q = guard;
            // The repair thread can only have died between batches with
            // the queue closed; re-checking after a timeout keeps a
            // mis-shut service from hanging the caller forever.
            if timeout.timed_out() && q.closed && q.in_flight == 0 {
                break;
            }
        }
    }
}

impl PlacementProvider for ServiceHandle {
    fn lookup(&self, object: u64) -> Option<NodeId> {
        self.shared
            .snapshot
            .read()
            .expect("snapshot poisoned")
            .lookup(object)
    }

    fn upsert(&self, object: u64, nodes: &[NodeId]) -> bool {
        if nodes.is_empty() {
            return false;
        }
        self.enqueue(ServiceEvent::Upsert {
            object,
            nodes: nodes.to_vec(),
        })
    }

    fn remove_node(&self, node: NodeId) -> bool {
        self.enqueue(ServiceEvent::Churn(ClusterEvent::Fail { node }))
    }

    fn snapshot_epoch(&self) -> u64 {
        self.published_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_core::{RandomStrategy, RandomVariant, SystemParams};

    fn placement(n: u16, b: u64, r: u16, seed: u64) -> Placement {
        let params = SystemParams::new(n, b, r, 1, 1).unwrap();
        RandomStrategy::new(seed, RandomVariant::LoadBalanced)
            .place(&params)
            .unwrap()
    }

    #[test]
    fn snapshot_lookup_matches_the_placement() {
        let p = placement(12, 40, 3, 7);
        let snap = Snapshot::from_placement(3, &p, &[], None);
        assert_eq!(snap.epoch(), 3);
        assert_eq!(snap.num_objects(), 40);
        assert_eq!(snap.pinned(), 0);
        for (o, set) in p.replica_sets().iter().enumerate() {
            assert_eq!(snap.lookup(o as u64), Some(set[0]));
            assert_eq!(snap.replicas(o as u64).unwrap(), &set[..]);
        }
        assert_eq!(snap.lookup(40), None);
        assert_eq!(snap.lookup(u64::MAX), None);
    }

    #[test]
    fn pins_override_without_touching_neighbours() {
        let p = placement(10, 20, 3, 1);
        let pins = vec![(4u64, vec![9u16, 8, 7]), (11, vec![0, 1, 2])];
        let snap = Snapshot::from_placement(1, &p, &pins, None);
        assert_eq!(snap.pinned(), 2);
        assert_eq!(snap.lookup(4), Some(9));
        assert_eq!(snap.replicas(11).unwrap(), &[0, 1, 2]);
        for o in (0..20u64).filter(|o| *o != 4 && *o != 11) {
            assert_eq!(snap.lookup(o), Some(p.replica_sets()[o as usize][0]));
        }
    }

    #[test]
    fn forward_digest_ignores_epoch_and_certificate() {
        let p = placement(10, 30, 3, 2);
        let a = Snapshot::from_placement(1, &p, &[], None);
        let b = Snapshot::from_placement(9, &p, &[], None);
        assert_eq!(a.forward_digest(), b.forward_digest());
        let other = Snapshot::from_placement(1, &placement(10, 30, 3, 3), &[], None);
        assert_ne!(a.forward_digest(), other.forward_digest());
    }

    #[test]
    fn certificate_digest_tracks_the_certificate() {
        use wcp_adversary::{AdversaryConfig, Ladder};
        let p = placement(12, 40, 3, 5);
        let cert = Ladder::new(&AdversaryConfig::default())
            .certified()
            .run(&p, 2, 3)
            .certificate
            .unwrap();
        let snap = Snapshot::from_placement(1, &p, &[], Some(&cert));
        let d = snap.certificate().expect("digest stamped");
        assert_eq!(d.claimed_failed, cert.claimed_failed);
        assert_eq!(d.exact, cert.exact);
        assert_eq!(*d, CertificateDigest::of(&cert));
    }
}
