//! The service's one threading room: the repair thread and the scoped
//! lifetime that contains it.
//!
//! Everything concurrent in `wcp-service` lives here (the
//! `thread-discipline` lint sanctions exactly this file, alongside
//! `wcp_core::sweep` and `wcp_adversary::pool`): [`serve`] opens a
//! `std::thread::scope`, spawns the single repair thread, hands the
//! caller a [`ServiceHandle`], and on return closes the queue and joins
//! the thread — no detached threads, no leaked state, deterministic
//! shutdown.
//!
//! # The repair loop
//!
//! Each round the thread blocks for work, drains at most
//! [`ServiceConfig::max_batch`] events, replays them **in enqueue
//! order** — churn through [`DynamicEngine::apply`] (incremental repair
//! with the replan-oracle fallback, re-attacked every event), pins into
//! the overlay — and publishes epoch `e + 1` with the last event's
//! certificate. Because the queue is FIFO and the drainer is single,
//! the engine placement after *all* events is independent of how the
//! rounds were batched; only the epoch numbering varies. That is the
//! determinism contract the differential suite checks: across
//! `WCP_THREADS=1/2/8` (and any batching) the final
//! [`Snapshot::forward_digest`] is byte-identical, while epoch counts
//! and interleavings are explicitly *not* compared.

use std::sync::Arc;
use std::thread;

use wcp_core::engine::Attacker;
use wcp_core::{ClusterEvent, DynamicEngine, Placement};

use crate::{NodeId, ServiceConfig, ServiceEvent, ServiceHandle, Shared, Snapshot};

/// What the repair thread did over the service's lifetime, returned by
/// [`serve`] next to the caller's own result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Epochs published (one per drained batch).
    pub epochs: u64,
    /// Churn events the engine applied.
    pub applied: u64,
    /// Churn events the engine rejected as illegal in the current
    /// membership state (e.g. failing an already-down node).
    pub rejected: u64,
    /// Upsert pins installed or overwritten.
    pub pinned: u64,
    /// Pins released.
    pub released: u64,
}

/// Runs a placement service for the duration of `body`.
///
/// The engine seeds epoch 0's snapshot; `body` runs on the calling
/// thread with a [`ServiceHandle`] it may clone into its own readers.
/// When `body` returns the queue closes, the repair thread drains what
/// remains (publishing those epochs), and `serve` returns the body's
/// value next to the repair thread's [`ServeReport`] and the final
/// engine, so callers can audit the end state.
///
/// # Panics
///
/// Propagates panics from `body` and from the repair thread (engine
/// invariant violations), per `std::thread::scope` semantics.
pub fn serve<A, R>(
    mut engine: DynamicEngine<A>,
    config: &ServiceConfig,
    body: impl FnOnce(&ServiceHandle) -> R,
) -> (R, ServeReport, DynamicEngine<A>)
where
    A: Attacker + Send,
    R: Send,
{
    let first = Snapshot::from_placement(0, engine.placement(), &[], None);
    let shared = Arc::new(Shared::new(first, config.queue_capacity));
    let handle = ServiceHandle::new(Arc::clone(&shared));
    let max_batch = config.max_batch;

    let (result, report) = thread::scope(|scope| {
        let repair = scope.spawn(|| repair_loop(&mut engine, &shared, max_batch));
        let result = body(&handle);
        shared.close();
        let report = repair.join().expect("repair thread panicked");
        (result, report)
    });
    (result, report, engine)
}

/// The single-drainer repair loop; returns its lifetime tally when the
/// queue closes and drains dry.
fn repair_loop<A: Attacker>(
    engine: &mut DynamicEngine<A>,
    shared: &Shared,
    max_batch: usize,
) -> ServeReport {
    let mut report = ServeReport::default();
    let mut epoch = 0u64;
    // Live upsert pins, ordered by object id (what
    // `Snapshot::from_placement` expects).
    let mut pins: Vec<(u64, Vec<NodeId>)> = Vec::new();
    while let Some(batch) = shared.take_batch(max_batch) {
        let mut certificate = None;
        for event in batch {
            match event {
                ServiceEvent::Churn(ev) => match engine.apply(ev) {
                    Ok(step) => {
                        report.applied += 1;
                        if step.certificate.is_some() {
                            certificate = step.certificate;
                        }
                    }
                    Err(_) => report.rejected += 1,
                },
                ServiceEvent::Upsert { object, nodes } => {
                    report.pinned += 1;
                    match pins.binary_search_by_key(&object, |(o, _)| *o) {
                        Ok(at) => pins[at].1 = nodes,
                        Err(at) => pins.insert(at, (object, nodes)),
                    }
                }
                ServiceEvent::Release { object } => {
                    if let Ok(at) = pins.binary_search_by_key(&object, |(o, _)| *o) {
                        pins.remove(at);
                        report.released += 1;
                    }
                }
            }
        }
        epoch += 1;
        report.epochs += 1;
        shared.publish(Snapshot::from_placement(
            epoch,
            engine.placement(),
            &pins,
            certificate.as_ref(),
        ));
    }
    report
}

/// Convenience for tests and experiments: applies `events` through a
/// served engine (enqueue → drain → publish), quiescing before
/// `inspect` runs against the settled handle.
pub fn serve_trace<A, I, R>(
    engine: DynamicEngine<A>,
    config: &ServiceConfig,
    events: I,
    inspect: impl FnOnce(&ServiceHandle) -> R,
) -> (R, ServeReport, DynamicEngine<A>)
where
    A: Attacker + Send,
    I: IntoIterator<Item = ClusterEvent>,
    R: Send,
{
    serve(engine, config, move |handle| {
        for ev in events {
            handle.enqueue(ServiceEvent::Churn(ev));
        }
        handle.quiesce();
        inspect(handle)
    })
}

/// The static half of the serving story, for benches: a snapshot built
/// straight from a placement, bypassing the engine (epoch 0, no pins).
#[must_use]
pub fn snapshot_of(placement: &Placement) -> Snapshot {
    Snapshot::from_placement(0, placement, &[], None)
}

/// Runs `worker(0..threads)` on that many scoped threads and returns
/// the results in index order.
///
/// This is the reader-side fan-out the service bench and experiment
/// use to drive concurrent lookup load; it lives here because this
/// module is the crate's one sanctioned threading room — callers
/// outside it (bench harnesses, experiment binaries) stay free of
/// `thread::scope` entirely.
///
/// # Panics
///
/// Propagates worker panics, per `std::thread::scope` semantics.
pub fn fan_out<R: Send>(threads: usize, worker: impl Fn(usize) -> R + Sync) -> Vec<R> {
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                scope.spawn({
                    let worker = &worker;
                    move || worker(i)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan_out worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementProvider;
    use wcp_core::{DynamicConfig, RandomVariant, StrategyKind, SystemParams};

    fn engine(n: u16, b: u64, capacity: u16) -> DynamicEngine {
        let params = SystemParams::new(n, b, 3, 2, 2).unwrap();
        let kind = StrategyKind::Random {
            seed: 7,
            variant: RandomVariant::LoadBalanced,
        };
        DynamicEngine::new(params, kind, capacity, DynamicConfig::default()).unwrap()
    }

    #[test]
    fn serving_a_trace_matches_direct_engine_replay() {
        let events = vec![
            ClusterEvent::Fail { node: 3 },
            ClusterEvent::Join { node: 12 },
            ClusterEvent::Recover { node: 3 },
            ClusterEvent::Fail { node: 0 },
        ];
        let (digest, report, served) = serve_trace(
            engine(12, 60, 14),
            &ServiceConfig::default(),
            events.clone(),
            |handle| handle.snapshot().forward_digest(),
        );
        assert_eq!(report.applied, 4);
        assert_eq!(report.rejected, 0);

        let mut direct = engine(12, 60, 14);
        direct.run_trace(events).unwrap();
        assert_eq!(
            snapshot_of(direct.placement()).forward_digest(),
            digest,
            "served and direct replays must agree on the forward map"
        );
        assert_eq!(served.placement(), direct.placement());
    }

    #[test]
    fn illegal_events_are_counted_not_fatal() {
        let (_, report, _) = serve_trace(
            engine(12, 40, 12),
            &ServiceConfig::default(),
            vec![
                ClusterEvent::Recover { node: 2 }, // up already: rejected
                ClusterEvent::Fail { node: 2 },
            ],
            |_| (),
        );
        assert_eq!(report.applied, 1);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn upserts_pin_and_release_restores() {
        let (answers, report, served) =
            serve(engine(12, 40, 12), &ServiceConfig::default(), |handle| {
                assert!(handle.upsert(7, &[11, 10, 9]));
                handle.quiesce();
                let pinned = handle.lookup(7);
                let pins = handle.snapshot().pinned();
                assert!(handle.enqueue(ServiceEvent::Release { object: 7 }));
                handle.quiesce();
                (pinned, pins, handle.lookup(7), handle.snapshot().pinned())
            });
        assert_eq!(answers.0, Some(11));
        assert_eq!(answers.1, 1);
        assert_eq!(answers.3, 0);
        assert_eq!(
            answers.2,
            Some(served.placement().replica_sets()[7][0]),
            "release must fall back to the engine placement"
        );
        assert_eq!(report.pinned, 1);
        assert_eq!(report.released, 1);
    }

    #[test]
    fn fan_out_returns_results_in_index_order() {
        assert_eq!(fan_out(4, |i| i * i), vec![0, 1, 4, 9]);
        assert_eq!(fan_out(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn epochs_advance_and_the_queue_rejects_after_close() {
        let (handle_out, report, _) = serve(
            engine(12, 40, 14),
            &ServiceConfig {
                queue_capacity: 4,
                max_batch: 1,
            },
            |handle| {
                assert_eq!(handle.snapshot_epoch(), 0);
                assert!(handle.remove_node(5));
                assert!(handle.enqueue(ServiceEvent::Churn(ClusterEvent::Join { node: 12 })));
                handle.quiesce();
                assert!(
                    handle.snapshot_epoch() >= 2,
                    "one epoch per max_batch=1 event"
                );
                handle.clone()
            },
        );
        assert_eq!(report.epochs, 2);
        assert!(
            !handle_out.upsert(1, &[0]),
            "writes after shutdown must be refused"
        );
        assert!(
            !handle_out.upsert(1, &[]),
            "empty replica lists are refused"
        );
    }
}
