//! A minimal JSON reader/writer for the formats this workspace emits.
//!
//! The build environment cannot fetch serde, and the tooling only needs
//! to read back its own hand-rolled output (sweep spec files, churn
//! traces, the `BENCH_*.json` snapshots), so this is a small
//! recursive-descent parser into a dynamic [`Value`], plus the matching
//! serializer [`Value::to_json`]. Numbers are stored as `f64`; that is
//! exact for every magnitude the tooling writes (counts, nanoseconds,
//! bounds — all well below 2^53). Nesting is bounded by [`MAX_DEPTH`] so
//! adversarial inputs (`[[[[…`) fail with a [`ParseError`] instead of
//! exhausting the stack.

use std::fmt;

/// Maximum container nesting the parser accepts. Everything the
/// workspace writes is < 10 levels deep; the cap exists so malformed or
/// hostile input errors out instead of overflowing the stack.
pub const MAX_DEPTH: usize = 512;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A positioned message on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (numbers with a fractional
    /// part or out of `u64` range give `None`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x <= u64::MAX as f64 && x.fract() == 0.0).then_some(x as u64)
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON that [`Value::parse`] reads back
    /// to an equal value.
    ///
    /// Integral numbers within `±2^53` print without a fractional part;
    /// other finite numbers use Rust's shortest round-trip `f64`
    /// rendering. Non-finite numbers (which no parser output can contain)
    /// degrade to `null`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wcp_sim::json::Value;
    ///
    /// let v = Value::parse(r#"{"a": [1, 2.5, "x\ny"], "b": null}"#)?;
    /// assert_eq!(v.to_json(), "{\"a\": [1, 2.5, \"x\\ny\"], \"b\": null}");
    /// assert_eq!(Value::parse(&v.to_json())?, v);
    /// # Ok::<(), wcp_sim::json::ParseError>(())
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(x) => write_number(f, *x),
            Value::Str(s) => write_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write_string(f, key)?;
                    write!(f, ": {value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a number so that parsing it back yields the same `f64`:
/// integral magnitudes below 2^53 as integers, everything else through
/// Rust's shortest round-trip rendering.
fn write_number(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        // Unreachable through parse(); kept total for hand-built values.
        return f.write_str("null");
    }
    if x == x.trunc() && x.abs() < 9_007_199_254_740_992.0 {
        return write!(f, "{}", x as i64);
    }
    write!(f, "{x}")
}

/// Writes a quoted, escaped JSON string.
fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by any
                            // workspace writer; reject rather than mangle.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = text.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_own_bench_snapshot_shape() {
        let text = r#"{
            "params": {"n": 13, "b": 260},
            "strategies": [
                {"strategy": "simple(x=0, λ=60)", "median_pipeline_ns": 498564},
                {"strategy": "ring", "median_pipeline_ns": 420637}
            ]
        }"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(
            v.get("params").and_then(|p| p.get("n")).unwrap().as_u64(),
            Some(13)
        );
        let strategies = v.get("strategies").unwrap().as_array().unwrap();
        assert_eq!(strategies.len(), 2);
        assert_eq!(
            strategies[0].get("strategy").unwrap().as_str(),
            Some("simple(x=0, λ=60)")
        );
        assert_eq!(
            strategies[1].get("median_pipeline_ns").unwrap().as_u64(),
            Some(420_637)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("12 34").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Value::parse("\"\\u03bb\"").unwrap(), Value::Str("λ".into()));
    }

    #[test]
    fn serializer_round_trips() {
        for text in [
            "null",
            "true",
            "-12.5",
            "42",
            "\"a\\nb\\\"c\\\\d\"",
            "[1, [2, {\"x\": null}], \"λ\"]",
            "{\"a\": 1, \"a\": 2}",
        ] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.to_json()).unwrap(), v, "{text}");
            // Canonical output is a fixed point of serialize ∘ parse.
            let canon = v.to_json();
            assert_eq!(Value::parse(&canon).unwrap().to_json(), canon);
        }
    }

    #[test]
    fn serializer_escapes_control_characters() {
        let v = Value::Str("\u{1}\u{8}\u{c}".into());
        assert_eq!(v.to_json(), "\"\\u0001\\b\\f\"");
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn serializer_keeps_large_integers_exact() {
        let v = Value::Num(9_007_199_254_740_991.0); // 2^53 − 1
        assert_eq!(v.to_json(), "9007199254740991");
        let v = Value::Num(9_007_199_254_740_992.0); // 2^53: float path
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Exactly at the cap still parses.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Value::parse(&ok).is_ok());
        let over = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Value::parse(&over).is_err());
    }

    #[test]
    fn as_u64_guards_fractions_and_sign() {
        assert_eq!(Value::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Value::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Value::parse("42").unwrap().as_u64(), Some(42));
    }
}
