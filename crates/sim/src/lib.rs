//! Experiment infrastructure shared by the paper-reproduction binaries.
//!
//! Nothing here is specific to replica placement: [`Summary`] aggregates
//! repeated measurements, [`Table`] renders the paper-style grids as
//! aligned text, [`Csv`] and [`JsonLines`] persist raw series for
//! external plotting, [`json`] parses and writes the hand-rolled JSON
//! the tooling exchanges (sweep specs, churn traces, benchmark
//! snapshots), [`churn`] generates seeded cluster-membership event
//! traces for the dynamic experiments, [`topo`] generates seeded
//! failure-domain topology layouts, and [`seed_for`] derives stable
//! per-run RNG seeds so every experiment is reproducible run-to-run.

#![forbid(unsafe_code)]

pub mod churn;
pub mod json;
pub mod record;
pub mod topo;
pub mod workload;

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Mean / standard deviation / extrema of a sample.
///
/// # Examples
///
/// ```
/// use wcp_sim::Summary;
///
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean, 5.0);
/// assert!((s.std - 2.138).abs() < 1e-3); // sample std (n−1)
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n−1` denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample size.
    pub count: usize,
}

impl Summary {
    /// Aggregates a slice (empty slices give a zeroed summary).
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let count = values.len();
        if count == 0 {
            return Self {
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                count,
            };
        }
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Self {
            mean,
            std: var.sqrt(),
            min,
            max,
            count,
        }
    }
}

/// Derives a stable 64-bit seed from an experiment label and run index
/// (FNV-1a), so reruns and per-figure streams are independent yet
/// reproducible.
///
/// # Examples
///
/// ```
/// assert_eq!(wcp_sim::seed_for("fig07", 3), wcp_sim::seed_for("fig07", 3));
/// assert_ne!(wcp_sim::seed_for("fig07", 3), wcp_sim::seed_for("fig07", 4));
/// ```
#[must_use]
pub fn seed_for(label: &str, index: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in label.bytes().chain(index.to_le_bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A right-aligned text table in the style of the paper's figures.
///
/// # Examples
///
/// ```
/// use wcp_sim::Table;
///
/// let mut t = Table::new(vec!["b".into(), "k=2".into(), "k=3".into()]);
/// t.row(vec!["600".into(), "75".into(), "57".into()]);
/// let text = t.render();
/// assert!(text.contains("b"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the header.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row (shorter rows are padded with blanks).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the aligned table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let measure = |row: &[String], width: &mut Vec<usize>| {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        };
        measure(&self.headers, &mut width);
        for row in &self.rows {
            measure(row, &mut width);
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, w) in width.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let pad = w - cell.chars().count();
                let _ = write!(out, "{}{}  ", " ".repeat(pad), cell);
            }
            let _ = writeln!(out);
        };
        fmt_row(&self.headers, &mut out);
        let total: usize = width.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Folds commas out of a CSV cell (the [`Csv`] writer does not quote),
/// e.g. strategy names like `simple(x=1, λ=10)`.
///
/// # Examples
///
/// ```
/// assert_eq!(wcp_sim::csv_safe("simple(x=1, λ=10)"), "simple(x=1; λ=10)");
/// assert_eq!(wcp_sim::csv_safe("ring"), "ring");
/// ```
#[must_use]
pub fn csv_safe(cell: &str) -> String {
    cell.replace(',', ";")
}

/// Line-oriented CSV writer (no quoting — writers must keep commas out of
/// cells; [`csv_safe`] folds them from free-form labels).
#[derive(Debug)]
pub struct Csv {
    path: PathBuf,
    lines: Vec<String>,
}

impl Csv {
    /// Starts a CSV with a header row.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, header: &[&str]) -> Self {
        Self {
            path: path.into(),
            lines: vec![header.join(",")],
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.lines.push(cells.join(","));
        self
    }

    /// Writes the file, creating parent directories.
    ///
    /// # Errors
    ///
    /// I/O errors from create/write.
    pub fn write(&self) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(&self.path)?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// The output path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Line-oriented JSON writer: one JSON object per line (the `jsonl`
/// convention), so sweep results stream to disk without an in-memory
/// document model.
///
/// # Examples
///
/// ```
/// use wcp_sim::JsonLines;
///
/// let dir = std::env::temp_dir().join("wcp-sim-doc-jsonl");
/// let mut out = JsonLines::new(dir.join("cells.jsonl"));
/// out.record("{\"cell\": 0}");
/// assert_eq!(out.len(), 1);
/// out.write()?;
/// # std::fs::remove_dir_all(dir).ok();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct JsonLines {
    path: PathBuf,
    lines: Vec<String>,
}

impl JsonLines {
    /// Starts an empty JSON-lines file at `path`.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            lines: Vec::new(),
        }
    }

    /// Appends one pre-serialized JSON object.
    pub fn record(&mut self, json: impl Into<String>) -> &mut Self {
        self.lines.push(json.into());
        self
    }

    /// Number of records buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no record has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Writes the file, creating parent directories.
    ///
    /// # Errors
    ///
    /// I/O errors from create/write.
    pub fn write(&self) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(&self.path)?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// The output path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Resolves the directory experiment CSVs are written to: the
/// `WCP_RESULTS_DIR` environment variable if set, else `results/` under
/// the current directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var_os("WCP_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["12345".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All rows share the same rendered width.
        assert!(lines[0].trim_end().len() <= lines[1].len());
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = seed_for("x", 0);
        let b = seed_for("x", 1);
        let c = seed_for("y", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, seed_for("x", 0));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("wcp-sim-test");
        let path = dir.join("out.csv");
        let mut csv = Csv::new(&path, &["a", "b"]);
        csv.row(&["1".into(), "2".into()]);
        csv.write().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
