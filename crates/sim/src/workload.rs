//! Zipf-skewed lookup workloads for the serving layer.
//!
//! Real object traffic is heavy-tailed: a few hot objects absorb most
//! lookups. [`ZipfSpec`] describes such a workload — `objects` ranked
//! by popularity with `P(o) ∝ 1 / (o + 1)^exponent` (object 0 hottest;
//! `exponent = 0` degenerates to uniform) — and samples it
//! deterministically from a seed, so every bench and experiment run
//! draws the byte-identical request stream.
//!
//! Two consumption styles:
//!
//! * [`ZipfSampler::draw`] draws one object id per call (inverse-CDF
//!   binary search, `O(log objects)`);
//! * [`ZipfSampler::table`] pre-draws a batch into a `Vec` so a tight
//!   lookup loop measures the *lookup*, not the sampler.

use crate::seed_for;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A reproducible zipf workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSpec {
    /// Objects in the universe (ids `0..objects`).
    pub objects: u64,
    /// Skew: 0 = uniform; ~0.99 = classic YCSB-style zipfian.
    pub exponent: f64,
    /// Base seed; streams derive from it via [`seed_for`].
    pub seed: u64,
}

impl ZipfSpec {
    /// The conventional serving workload: YCSB-style skew at the given
    /// universe size.
    #[must_use]
    pub fn ycsb(objects: u64, seed: u64) -> Self {
        Self {
            objects,
            exponent: 0.99,
            seed,
        }
    }

    /// Builds the sampler for stream `stream` (distinct streams are
    /// statistically independent but individually reproducible — one
    /// per reader thread).
    #[must_use]
    pub fn sampler(&self, stream: u64) -> ZipfSampler {
        let mut cdf = Vec::new();
        // Capped so a mis-specified universe cannot OOM the host: the
        // CDF is 8 bytes per object, and serving shapes top out at
        // ~10⁷ objects.
        let len = usize::try_from(self.objects.min(1 << 27)).unwrap_or(usize::MAX);
        cdf.reserve(len);
        let mut total = 0.0f64;
        for o in 0..len {
            let rank = o as f64 + 1.0;
            total += rank.powf(-self.exponent);
            cdf.push(total);
        }
        if total > 0.0 {
            for w in &mut cdf {
                *w /= total;
            }
        }
        let seed = seed_for("workload-zipf", self.seed ^ stream.rotate_left(17));
        ZipfSampler {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// A seeded sampler over one [`ZipfSpec`] stream.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized cumulative popularity, ascending; the sample for a
    /// uniform `u` is the first index with `cdf[i] > u`.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfSampler {
    /// Draws the next object id (0 when the universe is empty).
    #[must_use]
    pub fn draw(&mut self) -> u64 {
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c <= u) as u64
    }

    /// Pre-draws `len` samples for tight measurement loops.
    #[must_use]
    pub fn table(&mut self, len: usize) -> Vec<u64> {
        (0..len).map(|_| self.draw()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let spec = ZipfSpec::ycsb(1000, 42);
        let a = spec.sampler(0).table(256);
        let b = spec.sampler(0).table(256);
        assert_eq!(a, b);
        let c = spec.sampler(1).table(256);
        assert_ne!(a, c, "streams must differ");
    }

    #[test]
    fn samples_stay_in_range_and_skew_toward_hot_ids() {
        let spec = ZipfSpec::ycsb(100, 7);
        let draws = spec.sampler(0).table(20_000);
        assert!(draws.iter().all(|&o| o < 100));
        let hot = draws.iter().filter(|&&o| o < 10).count();
        // The top 10% of a 0.99-zipf universe draws well over a third
        // of the traffic; uniform would give 10%.
        assert!(hot * 3 > draws.len(), "hot fraction {hot}/{}", draws.len());
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let spec = ZipfSpec {
            objects: 50,
            exponent: 0.0,
            seed: 3,
        };
        let draws = spec.sampler(0).table(50_000);
        let hot = draws.iter().filter(|&&o| o < 5).count();
        let expected = draws.len() / 10;
        assert!(
            hot.abs_diff(expected) < expected / 3,
            "uniform head draw {hot} vs expected {expected}"
        );
    }

    #[test]
    fn empty_universe_answers_zero() {
        let spec = ZipfSpec::ycsb(0, 1);
        assert_eq!(spec.sampler(0).draw(), 0);
    }
}
