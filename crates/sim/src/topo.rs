//! Seeded failure-domain topology layouts for experiments.
//!
//! A [`TopoSpec`] describes a zone → rack → node tree by its fan-outs
//! (top-down) and generates a [`TopoLayout`] — plain bottom-up parent
//! maps, the representation `wcp_core::Topology::new` consumes —
//! deterministically from the spec's label and seed. An optional
//! per-rack size jitter produces the irregular racks real clusters
//! have while staying reproducible run to run.
//!
//! This crate knows nothing about placements or topologies proper;
//! `wcp_core::topology` validates and queries the tree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated topology layout: `n` leaf nodes plus one bottom-up
/// parent map per internal level (`maps[0][node]` = rack,
/// `maps[1][rack]` = zone, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoLayout {
    /// Leaf nodes.
    pub n: u16,
    /// Bottom-up parent maps (empty for a flat layout).
    pub maps: Vec<Vec<u16>>,
}

/// Parameters of a generated topology.
///
/// # Examples
///
/// ```
/// use wcp_sim::topo::TopoSpec;
///
/// // 3 zones × 4 racks × 6 nodes = 72 nodes, racks jittered ±2.
/// let spec = TopoSpec::new("doc", vec![3, 4, 6]).with_jitter(2);
/// let layout = spec.generate();
/// assert_eq!(layout.maps.len(), 2); // rack and zone levels
/// assert!(layout.n >= 48 && layout.n <= 96);
/// // Seeded generation is reproducible.
/// assert_eq!(spec.generate(), layout);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSpec {
    /// Layout label; feeds the RNG seed via [`crate::seed_for`].
    pub label: String,
    /// Fan-outs from the top: `[zones, racks_per_zone, nodes_per_rack]`
    /// (any depth ≥ 1; a single entry is a flat layout of that many
    /// nodes).
    pub fanouts: Vec<u16>,
    /// Maximum ± deviation of each bottom-level group's size from
    /// `fanouts.last()` (sizes never drop below 1).
    pub jitter: u16,
    /// Extra seed index mixed with the label (see [`crate::seed_for`]).
    pub seed_index: u64,
}

impl TopoSpec {
    /// A regular (jitter-free) spec.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    #[must_use]
    pub fn new(label: impl Into<String>, fanouts: Vec<u16>) -> Self {
        assert!(
            !fanouts.is_empty() && fanouts.iter().all(|&f| f > 0),
            "fan-outs must be non-empty and positive"
        );
        Self {
            label: label.into(),
            fanouts,
            jitter: 0,
            seed_index: 0,
        }
    }

    /// Adds per-rack size jitter.
    #[must_use]
    pub fn with_jitter(mut self, jitter: u16) -> Self {
        self.jitter = jitter;
        self
    }

    /// Number of internal levels the layout will have.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.fanouts.len() - 1
    }

    /// Generates the layout deterministically from the spec.
    ///
    /// # Panics
    ///
    /// Panics if the tree would exceed `u16::MAX` leaf nodes.
    #[must_use]
    pub fn generate(&self) -> TopoLayout {
        let mut rng = StdRng::seed_from_u64(crate::seed_for(&self.label, self.seed_index));
        // Domain counts per internal level, top-down: zones, then racks.
        let mut counts: Vec<u32> = Vec::with_capacity(self.num_levels());
        let mut acc = 1u32;
        for &f in &self.fanouts[..self.num_levels()] {
            acc = acc
                .checked_mul(u32::from(f))
                .expect("fan-out product overflows");
            counts.push(acc);
        }
        // Upper internal maps are regular: domain d of a level maps to
        // parent d / fanout.
        let mut maps: Vec<Vec<u16>> = Vec::with_capacity(self.num_levels());
        for level in (1..self.num_levels()).rev() {
            let children = counts[level];
            let fanout = u32::from(self.fanouts[level]);
            maps.push((0..children).map(|d| (d / fanout) as u16).collect());
        }
        maps.reverse();
        // Leaf map: per-rack sizes jittered around the nominal fan-out.
        let bottom = *counts.last().unwrap_or(&1);
        let nominal = i32::from(*self.fanouts.last().expect("non-empty"));
        let jitter = i32::from(self.jitter);
        let mut leaf_map = Vec::new();
        for rack in 0..bottom {
            let size = if jitter == 0 {
                nominal
            } else {
                (nominal + rng.gen_range(-jitter..=jitter)).max(1)
            };
            leaf_map.extend(std::iter::repeat_n(rack as u16, size as usize));
        }
        let n = u16::try_from(leaf_map.len()).expect("layout exceeds u16::MAX nodes");
        if self.num_levels() == 0 {
            return TopoLayout {
                n,
                maps: Vec::new(),
            };
        }
        let mut all_maps = vec![leaf_map];
        all_maps.extend(maps);
        TopoLayout { n, maps: all_maps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_layout_has_exact_shape() {
        let layout = TopoSpec::new("t", vec![2, 3, 4]).generate();
        assert_eq!(layout.n, 24);
        assert_eq!(layout.maps.len(), 2);
        // 6 racks of 4 nodes, 2 zones of 3 racks.
        assert_eq!(layout.maps[0].len(), 24);
        assert_eq!(layout.maps[1], vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(layout.maps[0][0], 0);
        assert_eq!(layout.maps[0][23], 5);
    }

    #[test]
    fn flat_spec_generates_no_levels() {
        let layout = TopoSpec::new("flat", vec![9]).generate();
        assert_eq!(layout.n, 9);
        assert!(layout.maps.is_empty());
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let spec = TopoSpec::new("j", vec![2, 4, 5]).with_jitter(2);
        let layout = spec.generate();
        assert_eq!(layout, spec.generate());
        // Rack sizes stay within the jitter band.
        let racks = 8usize;
        let mut sizes = vec![0u16; racks];
        for &rack in &layout.maps[0] {
            sizes[usize::from(rack)] += 1;
        }
        assert!(sizes.iter().all(|&s| (3..=7).contains(&s)), "{sizes:?}");
        // A different seed index shifts the sizes.
        let other = TopoSpec {
            seed_index: 1,
            ..spec.clone()
        }
        .generate();
        assert_ne!(layout, other);
    }

    #[test]
    fn layouts_validate_as_core_topologies() {
        // The contract with wcp_core: every generated layout passes
        // Topology::new. Checked structurally here (no core dependency):
        // map lengths chain and every parent id is in range.
        let layout = TopoSpec::new("v", vec![3, 3, 3]).with_jitter(1).generate();
        let mut below = usize::from(layout.n);
        for map in &layout.maps {
            assert_eq!(map.len(), below);
            let domains = usize::from(*map.iter().max().unwrap()) + 1;
            let mut seen = vec![false; domains];
            for &d in map {
                seen[usize::from(d)] = true;
            }
            assert!(seen.iter().all(|&s| s), "empty domain");
            below = domains;
        }
    }
}
