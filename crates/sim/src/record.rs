//! The one JSONL record shape every experiment binary emits.
//!
//! Historically `sweep`, `churn` and `domains` each hand-rolled their
//! own line format and `wcp-verify` grew a parser per shape. [`Record`]
//! replaces the three: one envelope naming the experiment, the strategy
//! (label + rebuildable planner `spec`), the adversary, the
//! experiment-specific scalars (`extras`), and the three optional
//! payloads downstream tools care about — the measurement `report`, a
//! bare `certificate` (only when the record carries one *outside* a
//! report), and the `topology` the run attacked under.
//!
//! The payloads stay opaque [`Value`]s here: `wcp-sim` sits at rank 0
//! and cannot name `wcp_core::Certificate`, and the consumers
//! (`wcp-verify`) re-parse them through the typed constructors anyway.
//! [`Record::certificate`] is the single lookup the verifier uses —
//! it finds a certificate wherever the record put it (embedded in the
//! report, as evaluation and step reports do, or top-level).
//!
//! Writing and parsing round-trip exactly: `Record::parse(r.to_json())`
//! reproduces `r` field for field, including `extras` order.

use crate::json::Value;

/// One experiment result line. Construct with [`Record::new`] plus the
/// builder methods; serialize with [`Record::to_json`]; read back with
/// [`Record::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Which binary produced the record (`"sweep"`, `"churn"`,
    /// `"domains"`, `"service"`, …).
    pub experiment: String,
    /// Strategy display label, when the record concerns one placement.
    pub strategy: Option<String>,
    /// Rebuildable planner spec (`StrategyKind::spec`) — present iff
    /// the placement can be reconstructed from parameters alone.
    pub spec: Option<String>,
    /// Adversary label the outcome was measured under.
    pub adversary: Option<String>,
    /// Experiment-specific scalars (cell index, seed, step number,
    /// racks/zones, …), in emission order.
    pub extras: Vec<(String, Value)>,
    /// The failure-domain tree of the run: `{"maps": [[…], …]}` (exact
    /// parent maps), `{"split": […]}`, or a `{"racks": …, "zones": …}`
    /// label for display-only use.
    pub topology: Option<Value>,
    /// The measurement payload (evaluation or step report), verbatim.
    pub report: Option<Value>,
    /// A certificate carried *outside* any report (e.g. a repaired
    /// placement that has no spec to re-evaluate). Prefer
    /// [`Record::certificate`] for reading.
    pub certificate: Option<Value>,
    /// The failure message, for cells that produced no report.
    pub error: Option<String>,
}

impl Record {
    /// An empty record for `experiment`.
    #[must_use]
    pub fn new(experiment: impl Into<String>) -> Self {
        Self {
            experiment: experiment.into(),
            strategy: None,
            spec: None,
            adversary: None,
            extras: Vec::new(),
            topology: None,
            report: None,
            certificate: None,
            error: None,
        }
    }

    /// Sets the strategy label.
    #[must_use]
    pub fn strategy(mut self, label: impl Into<String>) -> Self {
        self.strategy = Some(label.into());
        self
    }

    /// Sets the rebuildable planner spec.
    #[must_use]
    pub fn spec(mut self, spec: impl Into<String>) -> Self {
        self.spec = Some(spec.into());
        self
    }

    /// Sets the adversary label.
    #[must_use]
    pub fn adversary(mut self, label: impl Into<String>) -> Self {
        self.adversary = Some(label.into());
        self
    }

    /// Appends an experiment-specific scalar.
    #[must_use]
    pub fn extra(mut self, key: impl Into<String>, value: Value) -> Self {
        self.extras.push((key.into(), value));
        self
    }

    /// Appends an integer scalar (the common case).
    #[must_use]
    pub fn extra_u64(self, key: impl Into<String>, value: u64) -> Self {
        self.extra(key, Value::Num(value as f64))
    }

    /// Attaches the topology description.
    #[must_use]
    pub fn topology(mut self, topology: Value) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Attaches the report payload from its JSON rendering (how the
    /// core report types expose themselves).
    ///
    /// # Errors
    ///
    /// The underlying JSON parse error, stringified.
    pub fn report_json(mut self, json: &str) -> Result<Self, String> {
        self.report = Some(Value::parse(json).map_err(|e| e.to_string())?);
        Ok(self)
    }

    /// Attaches a bare certificate from its JSON rendering.
    ///
    /// # Errors
    ///
    /// The underlying JSON parse error, stringified.
    pub fn certificate_json(mut self, json: &str) -> Result<Self, String> {
        self.certificate = Some(Value::parse(json).map_err(|e| e.to_string())?);
        Ok(self)
    }

    /// Marks the record as a failed cell.
    #[must_use]
    pub fn error(mut self, message: impl Into<String>) -> Self {
        self.error = Some(message.into());
        self
    }

    /// The record's certificate, wherever it lives: inside the report
    /// (evaluation/step reports embed theirs) or top-level. `None`
    /// also when the stored certificate is JSON `null`.
    #[must_use]
    pub fn certificate(&self) -> Option<&Value> {
        let embedded = self
            .report
            .as_ref()
            .and_then(|r| r.get("certificate"))
            .or(self.certificate.as_ref());
        match embedded {
            Some(Value::Null) | None => None,
            Some(v) => Some(v),
        }
    }

    /// An extras scalar by key.
    #[must_use]
    pub fn extra_value(&self, key: &str) -> Option<&Value> {
        self.extras
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Renders the record as one JSONL line (canonical key order; empty
    /// fields are omitted, so records stay as terse as the hand-rolled
    /// formats they replaced).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut members: Vec<(String, Value)> =
            vec![("experiment".into(), Value::Str(self.experiment.clone()))];
        for (key, v) in [
            ("strategy", &self.strategy),
            ("spec", &self.spec),
            ("adversary", &self.adversary),
        ] {
            if let Some(s) = v {
                members.push((key.into(), Value::Str(s.clone())));
            }
        }
        if !self.extras.is_empty() {
            members.push(("extras".into(), Value::Object(self.extras.clone())));
        }
        if let Some(t) = &self.topology {
            members.push(("topology".into(), t.clone()));
        }
        if let Some(r) = &self.report {
            members.push(("report".into(), r.clone()));
        }
        if let Some(c) = &self.certificate {
            members.push(("certificate".into(), c.clone()));
        }
        if let Some(e) = &self.error {
            members.push(("error".into(), Value::Str(e.clone())));
        }
        Value::Object(members).to_json()
    }

    /// Parses one JSONL line back into a [`Record`].
    ///
    /// # Errors
    ///
    /// On malformed JSON, a missing/non-string `experiment` field, or
    /// a field of the wrong JSON type.
    pub fn parse(line: &str) -> Result<Self, String> {
        let value = Value::parse(line).map_err(|e| e.to_string())?;
        let experiment = value
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("record has no \"experiment\" field")?
            .to_string();
        let string_field = |key: &str| -> Result<Option<String>, String> {
            match value.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(format!("field \"{key}\" must be a string")),
            }
        };
        let extras = match value.get("extras") {
            None => Vec::new(),
            Some(Value::Object(members)) => members.clone(),
            Some(_) => return Err("field \"extras\" must be an object".into()),
        };
        Ok(Self {
            experiment,
            strategy: string_field("strategy")?,
            spec: string_field("spec")?,
            adversary: string_field("adversary")?,
            extras,
            topology: value.get("topology").cloned(),
            report: value.get("report").cloned(),
            certificate: value.get("certificate").cloned(),
            error: string_field("error")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record::new("sweep")
            .strategy("combo")
            .spec("combo")
            .adversary("auto")
            .extra_u64("index", 3)
            .extra_u64("seed", 41)
            .topology(Value::Object(vec![
                ("racks".into(), Value::Num(4.0)),
                ("zones".into(), Value::Num(2.0)),
            ]))
            .report_json("{\"params\": {\"n\": 12}, \"certificate\": {\"kind\": \"node\"}}")
            .unwrap()
    }

    #[test]
    fn round_trips_field_for_field() {
        let r = sample();
        assert_eq!(Record::parse(&r.to_json()).unwrap(), r);
        let minimal = Record::new("churn");
        assert_eq!(Record::parse(&minimal.to_json()).unwrap(), minimal);
        let failed = Record::new("sweep")
            .strategy("simple(2)")
            .error("no design");
        assert_eq!(Record::parse(&failed.to_json()).unwrap(), failed);
    }

    #[test]
    fn certificate_lookup_prefers_the_report_and_skips_nulls() {
        let embedded = sample();
        assert_eq!(
            embedded.certificate().and_then(|c| c.get("kind")),
            Some(&Value::Str("node".into()))
        );
        let bare = Record::new("domains")
            .certificate_json("{\"kind\": \"domain\"}")
            .unwrap();
        assert_eq!(
            bare.certificate().and_then(|c| c.get("kind")),
            Some(&Value::Str("domain".into()))
        );
        let null_cert = Record::new("churn")
            .report_json("{\"certificate\": null}")
            .unwrap();
        assert_eq!(null_cert.certificate(), None);
        assert_eq!(Record::new("x").certificate(), None);
    }

    #[test]
    fn extras_preserve_order_and_lookup_works() {
        let r = sample();
        let keys: Vec<&str> = r.extras.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["index", "seed"]);
        assert_eq!(r.extra_value("seed").and_then(Value::as_u64), Some(41));
        assert_eq!(r.extra_value("absent"), None);
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(Record::parse("{}").is_err(), "experiment is mandatory");
        assert!(Record::parse("{\"experiment\": 7}").is_err());
        assert!(
            Record::parse("{\"experiment\": \"x\", \"strategy\": []}").is_err(),
            "typed fields reject wrong JSON types"
        );
        assert!(Record::parse("{\"experiment\": \"x\", \"extras\": 3}").is_err());
        assert!(Record::parse("not json").is_err());
    }

    #[test]
    fn empty_fields_are_omitted_from_the_line() {
        let line = Record::new("service").to_json();
        assert_eq!(line, "{\"experiment\": \"service\"}");
    }
}
