//! Seeded cluster-churn traces for dynamic-membership experiments.
//!
//! A [`ChurnTrace`] is a replayable sequence of membership events over a
//! fixed universe of node slots: nodes drain ([`ChurnEventKind::Leave`]),
//! crash ([`ChurnEventKind::Fail`]), come back
//! ([`ChurnEventKind::Recover`]) or are provisioned fresh
//! ([`ChurnEventKind::Join`]). Traces are generated deterministically
//! from a [`ChurnSpec`] seed and round-trip through the workspace's
//! hand-rolled JSON ([`crate::json`]), so an experiment can be re-run
//! bit-for-bit from its persisted trace file.
//!
//! This crate knows nothing about placements; `wcp_core::dynamic`
//! converts these events into its own `ClusterEvent` model and maintains
//! a live placement across them.

use crate::json::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of one membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEventKind {
    /// A node is provisioned (first activation, or re-activation after a
    /// planned [`Leave`](Self::Leave)).
    Join,
    /// A node drains and leaves in a planned fashion.
    Leave,
    /// A node crashes.
    Fail,
    /// A crashed node comes back.
    Recover,
}

impl ChurnEventKind {
    /// Every kind, in declaration order.
    pub const ALL: [ChurnEventKind; 4] = [
        ChurnEventKind::Join,
        ChurnEventKind::Leave,
        ChurnEventKind::Fail,
        ChurnEventKind::Recover,
    ];

    /// Stable lowercase label (the JSON encoding).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChurnEventKind::Join => "join",
            ChurnEventKind::Leave => "leave",
            ChurnEventKind::Fail => "fail",
            ChurnEventKind::Recover => "recover",
        }
    }

    /// Parses a [`label`](Self::label) back.
    #[must_use]
    pub fn parse(label: &str) -> Option<ChurnEventKind> {
        ChurnEventKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One membership event: a kind applied to a node slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// What happened.
    pub kind: ChurnEventKind,
    /// The node slot it happened to.
    pub node: u16,
}

impl ChurnEvent {
    /// The event as a JSON object (one JSONL line in trace files).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    fn to_value(self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::Str(self.kind.label().into())),
            ("node".into(), Value::Num(f64::from(self.node))),
        ])
    }

    fn from_value(v: &Value) -> Result<ChurnEvent, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .and_then(ChurnEventKind::parse)
            .ok_or_else(|| format!("event needs a \"kind\" of join/leave/fail/recover: {v}"))?;
        let node = v
            .get("node")
            .and_then(Value::as_u64)
            .and_then(|n| u16::try_from(n).ok())
            .ok_or_else(|| format!("event needs a \"node\" slot id: {v}"))?;
        Ok(ChurnEvent { kind, node })
    }

    /// Parses one JSON event object.
    ///
    /// # Errors
    ///
    /// A human-readable message on syntax errors or missing fields.
    pub fn parse(text: &str) -> Result<ChurnEvent, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        ChurnEvent::from_value(&v)
    }
}

/// A replayable membership-event sequence over `capacity` node slots.
///
/// Slots `0..initial_active` start up; slots
/// `initial_active..capacity` start unprovisioned (available to
/// [`ChurnEventKind::Join`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnTrace {
    /// Trace label (mixed into derived seeds and file names).
    pub label: String,
    /// Total node slots that can ever exist.
    pub capacity: u16,
    /// Slots up at time zero (`0..initial_active`).
    pub initial_active: u16,
    /// The event sequence.
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// The trace as one JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        Value::Object(vec![
            ("label".into(), Value::Str(self.label.clone())),
            ("capacity".into(), Value::Num(f64::from(self.capacity))),
            (
                "initial_active".into(),
                Value::Num(f64::from(self.initial_active)),
            ),
            (
                "events".into(),
                Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
            ),
        ])
        .to_json()
    }

    /// Parses a trace document written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// A human-readable message on JSON syntax errors, missing fields or
    /// out-of-range slot numbers.
    pub fn parse(text: &str) -> Result<ChurnTrace, String> {
        let doc = Value::parse(text).map_err(|e| e.to_string())?;
        let field_u16 = |name: &str| -> Result<u16, String> {
            doc.get(name)
                .and_then(Value::as_u64)
                .and_then(|n| u16::try_from(n).ok())
                .ok_or_else(|| format!("trace needs a u16 \"{name}\" field"))
        };
        let label = doc
            .get("label")
            .and_then(Value::as_str)
            .unwrap_or("churn")
            .to_string();
        let capacity = field_u16("capacity")?;
        let initial_active = field_u16("initial_active")?;
        if initial_active > capacity {
            return Err(format!(
                "initial_active {initial_active} exceeds capacity {capacity}"
            ));
        }
        let events = doc
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| "trace needs an \"events\" array".to_string())?
            .iter()
            .map(ChurnEvent::from_value)
            .collect::<Result<Vec<_>, String>>()?;
        if let Some(e) = events.iter().find(|e| e.node >= capacity) {
            return Err(format!(
                "event targets slot {} outside capacity {capacity}",
                e.node
            ));
        }
        Ok(ChurnTrace {
            label,
            capacity,
            initial_active,
            events,
        })
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Parameters of a generated churn trace.
///
/// # Examples
///
/// ```
/// use wcp_sim::churn::ChurnSpec;
///
/// let spec = ChurnSpec::new("doc", 16, 13, 50);
/// let trace = spec.generate();
/// assert_eq!(trace.len(), 50);
/// // Seeded generation is reproducible and JSON round-trips exactly.
/// assert_eq!(spec.generate(), trace);
/// let back = wcp_sim::churn::ChurnTrace::parse(&trace.to_json())?;
/// assert_eq!(back, trace);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Trace label; also feeds the RNG seed via [`crate::seed_for`].
    pub label: String,
    /// Total node slots.
    pub capacity: u16,
    /// Slots up at time zero.
    pub initial_active: u16,
    /// The generator never lets the up count drop below this floor
    /// (defaults to `max(initial_active / 2, 1)`).
    pub min_active: u16,
    /// Events to generate.
    pub events: usize,
    /// Extra seed index mixed with the label (see [`crate::seed_for`]).
    pub seed_index: u64,
}

impl ChurnSpec {
    /// A spec with the default activity floor and seed index 0.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        capacity: u16,
        initial_active: u16,
        events: usize,
    ) -> Self {
        let initial_active = initial_active.min(capacity);
        Self {
            label: label.into(),
            capacity,
            initial_active,
            min_active: (initial_active / 2).max(1),
            events,
            seed_index: 0,
        }
    }

    /// Generates the trace deterministically from the spec.
    ///
    /// Every event is *legal* by construction: only up nodes leave or
    /// fail, only failed nodes recover, only drained/unprovisioned slots
    /// join, and the up count never drops below
    /// [`min_active`](Self::min_active).
    #[must_use]
    pub fn generate(&self) -> ChurnTrace {
        #[derive(Clone, Copy, PartialEq)]
        enum Slot {
            Up,
            Failed,
            Drained,
        }
        let mut slots: Vec<Slot> = (0..self.capacity)
            .map(|v| {
                if v < self.initial_active {
                    Slot::Up
                } else {
                    Slot::Drained
                }
            })
            .collect();
        let mut up = usize::from(self.initial_active);
        let mut rng = StdRng::seed_from_u64(crate::seed_for(&self.label, self.seed_index));
        let mut events = Vec::with_capacity(self.events);
        let pick = |slots: &[Slot], want: Slot, rng: &mut StdRng| -> Option<u16> {
            let eligible: Vec<u16> = (0..slots.len())
                .filter(|&v| slots[v] == want)
                .map(|v| v as u16)
                .collect();
            (!eligible.is_empty()).then(|| eligible[rng.gen_range(0..eligible.len())])
        };
        while events.len() < self.events {
            let mut kinds: Vec<ChurnEventKind> = Vec::with_capacity(4);
            if up > usize::from(self.min_active) {
                kinds.push(ChurnEventKind::Leave);
                kinds.push(ChurnEventKind::Fail);
            }
            if slots.contains(&Slot::Failed) {
                kinds.push(ChurnEventKind::Recover);
            }
            if slots.contains(&Slot::Drained) {
                kinds.push(ChurnEventKind::Join);
            }
            let Some(&kind) = (!kinds.is_empty()).then(|| &kinds[rng.gen_range(0..kinds.len())])
            else {
                break; // Fully up at the floor: no legal event exists.
            };
            let (want, next) = match kind {
                ChurnEventKind::Leave => (Slot::Up, Slot::Drained),
                ChurnEventKind::Fail => (Slot::Up, Slot::Failed),
                ChurnEventKind::Recover => (Slot::Failed, Slot::Up),
                ChurnEventKind::Join => (Slot::Drained, Slot::Up),
            };
            let node = pick(&slots, want, &mut rng).expect("kind was checked feasible");
            slots[usize::from(node)] = next;
            match kind {
                ChurnEventKind::Leave | ChurnEventKind::Fail => up -= 1,
                ChurnEventKind::Join | ChurnEventKind::Recover => up += 1,
            }
            events.push(ChurnEvent { kind, node });
        }
        ChurnTrace {
            label: self.label.clone(),
            capacity: self.capacity,
            initial_active: self.initial_active,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seeded_and_legal() {
        let spec = ChurnSpec::new("t", 20, 15, 200);
        let trace = spec.generate();
        assert_eq!(trace, spec.generate());
        let other = ChurnSpec {
            seed_index: 1,
            ..spec.clone()
        };
        assert_ne!(trace, other.generate());

        // Replay and check legality + the activity floor.
        let mut up: Vec<bool> = (0..20).map(|v| v < 15).collect();
        let mut failed = [false; 20];
        let mut count = 15usize;
        for e in &trace.events {
            let v = usize::from(e.node);
            match e.kind {
                ChurnEventKind::Leave | ChurnEventKind::Fail => {
                    assert!(up[v], "{e:?} on a down node");
                    up[v] = false;
                    failed[v] = e.kind == ChurnEventKind::Fail;
                    count -= 1;
                }
                ChurnEventKind::Recover => {
                    assert!(!up[v] && failed[v], "{e:?} without a crash");
                    up[v] = true;
                    failed[v] = false;
                    count += 1;
                }
                ChurnEventKind::Join => {
                    assert!(!up[v] && !failed[v], "{e:?} on an up/failed node");
                    up[v] = true;
                    count += 1;
                }
            }
            assert!(count >= usize::from(spec.min_active), "floor violated");
        }
    }

    #[test]
    fn trace_json_round_trips() {
        let trace = ChurnSpec::new("rt", 9, 7, 40).generate();
        let back = ChurnTrace::parse(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
        // Per-event JSONL lines parse back too.
        for e in &trace.events {
            assert_eq!(ChurnEvent::parse(&e.to_json()).unwrap(), *e);
        }
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(ChurnTrace::parse("not json").is_err());
        assert!(ChurnTrace::parse(r#"{"capacity": 5}"#).is_err());
        assert!(
            ChurnTrace::parse(r#"{"capacity": 5, "initial_active": 9, "events": []}"#).is_err()
        );
        assert!(ChurnTrace::parse(
            r#"{"capacity": 5, "initial_active": 3,
                "events": [{"kind": "warp", "node": 1}]}"#
        )
        .is_err());
        assert!(ChurnTrace::parse(
            r#"{"capacity": 5, "initial_active": 3,
                "events": [{"kind": "fail", "node": 7}]}"#
        )
        .is_err());
    }

    #[test]
    fn degenerate_spec_saturates() {
        // capacity == initial == min: no legal event can ever fire.
        let spec = ChurnSpec {
            min_active: 3,
            ..ChurnSpec::new("sat", 3, 3, 10)
        };
        assert!(spec.generate().is_empty());
    }
}
