//! Proptest fuzz coverage for the hand-rolled JSON layer.
//!
//! Two directions: (1) *round-trip* — any generated [`Value`]
//! serializes to text that parses back to an equal value, and the
//! serialized form is a fixed point of parse ∘ serialize; (2)
//! *robustness* — arbitrary and mutated inputs may fail to parse but
//! must never panic (the parser is the trust boundary for every spec,
//! trace and snapshot file the tooling reads back).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wcp_sim::json::Value;

/// Characters exercising every escape path of the writer and reader.
const STRING_POOL: &[char] = &[
    'a', 'Z', '0', ' ', 'λ', '∞', '"', '\\', '/', '\n', '\t', '\r', '\u{8}', '\u{c}', '\u{1}',
    '\u{7f}', '貓',
];

fn arb_string(rng: &mut StdRng) -> String {
    (0..rng.gen_range(0usize..8))
        .map(|_| STRING_POOL[rng.gen_range(0..STRING_POOL.len())])
        .collect()
}

fn arb_number(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..5) {
        0 => rng.gen_range(-1000i64..1000) as f64,
        // Integral magnitudes near the 2^53 exactness boundary.
        1 => (rng.gen_range(0u64..9_007_199_254_740_992) / 3) as f64,
        2 => -((rng.gen_range(0u64..9_007_199_254_740_992) / 7) as f64),
        3 => rng.gen_range(-1e9..1e9),
        _ => rng.gen_range(-1.0..1.0) / 1e6,
    }
}

/// A random [`Value`] tree, container arity and depth bounded.
fn arb_value(rng: &mut StdRng, depth: usize) -> Value {
    let top = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0u32..top) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Num(arb_number(rng)),
        3 => Value::Str(arb_string(rng)),
        4 => Value::Array(
            (0..rng.gen_range(0usize..5))
                .map(|_| arb_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..rng.gen_range(0usize..5))
                .map(|_| (arb_string(rng), arb_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize → parse is the identity, and the canonical form is a
    /// fixed point of parse → serialize.
    #[test]
    fn value_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = arb_value(&mut rng, 4);
        let text = value.to_json();
        let parsed = Value::parse(&text)
            .unwrap_or_else(|e| panic!("own output rejected: {e}\n{text}"));
        prop_assert_eq!(&parsed, &value);
        prop_assert_eq!(parsed.to_json(), text);
    }

    /// Truncating a valid document anywhere never panics the parser
    /// (and, except at full length, never yields a sneaky success of the
    /// same value with trailing garbage).
    #[test]
    fn truncated_documents_error_without_panicking(
        seed in any::<u64>(),
        cut in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = arb_value(&mut rng, 3).to_json();
        let boundary = (text.len() as f64 * cut) as usize;
        let boundary = (0..=boundary).rev().find(|&i| text.is_char_boundary(i)).unwrap_or(0);
        let _ = Value::parse(&text[..boundary]); // must return, not panic
    }

    /// Flipping one character of a valid document to arbitrary ASCII
    /// never panics the parser.
    #[test]
    fn mutated_documents_never_panic(
        seed in any::<u64>(),
        pos in 0.0f64..1.0,
        replacement in 0u8..127,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = arb_value(&mut rng, 3).to_json();
        let mut chars: Vec<char> = text.chars().collect();
        if !chars.is_empty() {
            let i = ((chars.len() - 1) as f64 * pos) as usize;
            chars[i] = char::from(replacement);
        }
        let mutated: String = chars.into_iter().collect();
        let _ = Value::parse(&mutated); // must return, not panic
    }

    /// Arbitrary ASCII soup never panics the parser.
    #[test]
    fn random_input_never_panics(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Bias toward JSON punctuation so the soup reaches deep parser paths.
        const POOL: &[u8] = b"{}[]\",:.-+eE0123456789 \t\n\\utrlfans\"";
        let soup: String = (0..len)
            .map(|_| char::from(POOL[rng.gen_range(0..POOL.len())]))
            .collect();
        let _ = Value::parse(&soup); // must return, not panic
    }
}

/// Deterministic regression cases the fuzzers once had to find.
#[test]
fn malformed_corpus_errors_cleanly() {
    for text in [
        "",
        "{",
        "}",
        "[",
        "[1,",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{\"a\": 1,}",
        "\"unterminated",
        "\"\\",
        "\"\\u12\"",
        "\"\\ud800\"", // lone surrogate code point
        "\"\\q\"",
        "01x",
        "-",
        "1e",
        "truely",
        "nul",
        "12 34",
        "\u{7f}",
        &"[".repeat(100_000), // must not overflow the stack
        &format!("{}1{}", "[".repeat(600), "]".repeat(600)),
    ] {
        assert!(
            Value::parse(text).is_err(),
            "expected parse error for {text:?}"
        );
    }
}
