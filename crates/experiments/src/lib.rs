//! Shared plumbing for the paper-reproduction binaries (`fig02`–`fig11`).
//!
//! Each binary regenerates one table or figure of Li, Gao & Reiter
//! (ICDCS 2015): it prints the same rows/series the paper reports and
//! writes the raw data as CSV into [`wcp_sim::results_dir`]. The helpers
//! here encode the measurement the evaluation section uses everywhere:
//! `lbAvail_co − prAvail^rnd` as a percentage of the maximum possible
//! improvement `b − prAvail^rnd`, with win/tie/loss classification.

#![forbid(unsafe_code)]

pub mod spec;

use wcp_analysis::theorem2::VulnTable;
use wcp_core::{combo_plan, lb_avail_co, PackingProfile, SystemParams};

/// The paper's object-count series: 600 doubling to `max` (38 400 in
/// Fig. 9, 9 600 in Fig. 2).
#[must_use]
pub fn b_series(max: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut b = 600u64;
    while b <= max {
        out.push(b);
        b *= 2;
    }
    out
}

/// Win/tie/loss of Combo against Random in a table cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// `lbAvail_co > prAvail` — Combo guarantees more than Random
    /// probably achieves (white cells in the paper).
    Win,
    /// Equal (light gray).
    Tie,
    /// `lbAvail_co < prAvail` (dark gray).
    Loss,
}

/// One cell of a Fig. 9/10-style table.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// `lbAvail − prAvail` as a percentage of `b − prAvail`, truncated
    /// toward zero like the paper's integer entries; `None` when
    /// `b = prAvail` (no possible improvement).
    pub pct: Option<i64>,
    /// Win/tie/loss classification.
    pub outcome: Outcome,
}

impl Cell {
    /// Computes a cell from the guaranteed lower bound and `prAvail`.
    #[must_use]
    pub fn from_values(lb: i64, pr_avail: u64, b: u64) -> Self {
        let pr = i64::try_from(pr_avail).expect("prAvail fits i64");
        let b = i64::try_from(b).expect("b fits i64");
        let outcome = match lb.cmp(&pr) {
            std::cmp::Ordering::Greater => Outcome::Win,
            std::cmp::Ordering::Equal => Outcome::Tie,
            std::cmp::Ordering::Less => Outcome::Loss,
        };
        let pct = (b != pr).then(|| 100 * (lb - pr) / (b - pr));
        Self { pct, outcome }
    }

    /// Renders like the paper's tables: the integer percentage, with `=`
    /// marking ties and `*` marking Random wins.
    #[must_use]
    pub fn render(&self) -> String {
        let marker = match self.outcome {
            Outcome::Win => "",
            Outcome::Tie => "=",
            Outcome::Loss => "*",
        };
        match self.pct {
            Some(p) => format!("{p}{marker}"),
            None => format!("na{marker}"),
        }
    }
}

/// Computes the Fig. 9 cell for one `(n, r, s, b, k)` point using the
/// paper's Fig. 4 profile and the Theorem-2 `prAvail`.
///
/// # Panics
///
/// Panics if the parameters are outside the paper grid (callers iterate
/// exactly that grid).
#[must_use]
pub fn fig9_cell(table: &VulnTable, n: u16, r: u16, s: u16, b: u64, k: u16) -> Cell {
    let params = SystemParams::new(n, b, r, s, k).expect("paper grid is valid");
    let profile = PackingProfile::paper(&params).expect("paper profile covers the grid");
    let plan = combo_plan(&profile, &params).expect("DP succeeds on the grid");
    // Evaluate the bound at the same k it was planned for (Fig. 9).
    let lb = lb_avail_co(&plan.lambdas, b, k, s);
    let pr = table.pr_avail_paper(n, k, r, s, b);
    Cell::from_values(lb, pr, b)
}

/// `lbAvail_si − prAvail` cell for a single `Simple(x, λ)` placement with
/// minimal `λ` per Eqn. 1 against the paper profile (Fig. 10 sub-tables).
/// Returns the cell and the chosen `λ`.
#[must_use]
pub fn fig10_simple_cell(
    table: &VulnTable,
    n: u16,
    r: u16,
    s: u16,
    x: u16,
    b: u64,
    k: u16,
) -> (Cell, u64) {
    let params = SystemParams::new(n, b, r, s, k).expect("paper grid is valid");
    let profile = PackingProfile::paper(&params).expect("paper profile covers the grid");
    let spec = profile.spec(x);
    let d = spec.units_for(b).expect("capacity grows with λ");
    let lambda = d * spec.mu;
    let lb = wcp_core::lb_avail_si(b, lambda, k, s, x);
    let pr = table.pr_avail_paper(n, k, r, s, b);
    (Cell::from_values(lb, pr, b), lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_series_matches_paper() {
        assert_eq!(
            b_series(38_400),
            vec![600, 1200, 2400, 4800, 9600, 19_200, 38_400]
        );
        assert_eq!(b_series(9600).len(), 5);
    }

    #[test]
    fn cell_classification() {
        let w = Cell::from_values(90, 80, 100);
        assert_eq!(w.outcome, Outcome::Win);
        assert_eq!(w.pct, Some(50));
        let t = Cell::from_values(80, 80, 100);
        assert_eq!(t.outcome, Outcome::Tie);
        assert_eq!(t.render(), "0=");
        let l = Cell::from_values(60, 80, 100);
        assert_eq!(l.outcome, Outcome::Loss);
        assert_eq!(l.render(), "-100*");
    }

    #[test]
    fn truncation_matches_paper_style() {
        // 2/3 → 66 (not 67).
        let c = Cell::from_values(90, 70, 100);
        assert_eq!(c.pct, Some(66));
    }

    #[test]
    fn no_improvement_possible() {
        let c = Cell::from_values(100, 100, 100);
        assert_eq!(c.pct, None);
        assert_eq!(c.outcome, Outcome::Tie);
    }

    #[test]
    fn fig9_upper_left_corner_wins_big() {
        // Paper: n = 71, r = 2, s = 2, b = 2400, k = 2 → Combo preserves
        // 85% of what Random probably loses.
        let table = VulnTable::new(2400);
        let cell = fig9_cell(&table, 71, 2, 2, 2400, 2);
        assert_eq!(cell.outcome, Outcome::Win);
        let pct = cell.pct.unwrap();
        assert!(
            (80..=90).contains(&pct),
            "expected ≈85 like the paper, got {pct}"
        );
    }
}
