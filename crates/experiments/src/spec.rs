//! Sweep-spec files: the JSON surface of the `sweep` binary.
//!
//! A spec file is one JSON object whose fields mirror
//! [`wcp_core::SweepSpec`]: value lists for the parameter grid, compact
//! strategy spec strings (see [`StrategyKind::parse_spec`]) and
//! adversary objects. Everything is optional except that the resulting
//! sweep must name at least one strategy:
//!
//! ```json
//! {
//!   "label": "scale-study",
//!   "n": [31, 71], "b": [600, 1200], "r": [3], "s": [2], "k": [3, 4],
//!   "strategies": ["combo", "ring", "simple:1", "random:7"],
//!   "adversaries": [{"kind": "auto", "exact_budget": 1000000}]
//! }
//! ```

use wcp_core::sweep::{AdversarySpec, SweepSpec};
use wcp_core::StrategyKind;
use wcp_sim::json::Value;

/// Parses a sweep spec document.
///
/// # Errors
///
/// A human-readable message on JSON syntax errors, unknown strategy or
/// adversary specs, or out-of-range numbers.
pub fn parse_sweep_spec(text: &str) -> Result<SweepSpec, String> {
    let doc = Value::parse(text).map_err(|e| e.to_string())?;
    if doc.get("label").is_none() && doc.as_array().is_some() {
        return Err("spec must be a JSON object, not an array".into());
    }
    let label = doc.get("label").map_or(Ok("sweep".to_string()), |v| {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| "\"label\" must be a string".to_string())
    })?;
    let mut spec = SweepSpec::new(label);
    spec.grid.n = num_list(&doc, "n")?;
    spec.grid.b = num_list(&doc, "b")?;
    spec.grid.r = num_list(&doc, "r")?;
    spec.grid.s = num_list(&doc, "s")?;
    spec.grid.k = num_list(&doc, "k")?;
    if let Some(v) = doc.get("strategies") {
        let items = v
            .as_array()
            .ok_or_else(|| "\"strategies\" must be an array of spec strings".to_string())?;
        spec.strategies = items
            .iter()
            .map(|item| {
                let s = item
                    .as_str()
                    .ok_or_else(|| "strategy specs must be strings".to_string())?;
                StrategyKind::parse_spec(s).map_err(|e| e.to_string())
            })
            .collect::<Result<_, String>>()?;
    }
    if let Some(v) = doc.get("adversaries") {
        let items = v
            .as_array()
            .ok_or_else(|| "\"adversaries\" must be an array of objects".to_string())?;
        spec.adversaries = items
            .iter()
            .map(parse_adversary)
            .collect::<Result<_, String>>()?;
    }
    Ok(spec)
}

/// Parses one adversary object: `{"kind": "exhaustive", "budget": N}` or
/// `{"kind": "auto", "exact_budget": N, "restarts": N, "max_steps": N}`
/// (auto fields defaulting from [`AdversarySpec::default`]).
fn parse_adversary(v: &Value) -> Result<AdversarySpec, String> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| "adversary objects need a string \"kind\"".to_string())?;
    let field = |name: &str, default: u64| -> Result<u64, String> {
        v.get(name).map_or(Ok(default), |x| {
            x.as_u64()
                .ok_or_else(|| format!("adversary field \"{name}\" must be a non-negative integer"))
        })
    };
    match kind {
        "exhaustive" => Ok(AdversarySpec::Exhaustive {
            budget: field("budget", 2_000_000)?,
        }),
        "auto" => {
            let AdversarySpec::Auto {
                exact_budget,
                restarts,
                max_steps,
            } = AdversarySpec::default()
            else {
                unreachable!("default is Auto");
            };
            Ok(AdversarySpec::Auto {
                exact_budget: field("exact_budget", exact_budget)?,
                restarts: u32::try_from(field("restarts", u64::from(restarts))?)
                    .map_err(|_| "\"restarts\" out of range".to_string())?,
                max_steps: u32::try_from(field("max_steps", u64::from(max_steps))?)
                    .map_err(|_| "\"max_steps\" out of range".to_string())?,
            })
        }
        other => Err(format!(
            "unknown adversary kind '{other}' (expected \"exhaustive\" or \"auto\")"
        )),
    }
}

/// Reads a `"name": [numbers]` list, converting to the target integer
/// type.
fn num_list<T: TryFrom<u64>>(doc: &Value, name: &str) -> Result<Vec<T>, String> {
    let Some(v) = doc.get(name) else {
        return Ok(Vec::new());
    };
    let items = v
        .as_array()
        .ok_or_else(|| format!("\"{name}\" must be an array of numbers"))?;
    items
        .iter()
        .map(|item| {
            let raw = item
                .as_u64()
                .ok_or_else(|| format!("\"{name}\" entries must be non-negative integers"))?;
            T::try_from(raw).map_err(|_| format!("\"{name}\" entry {raw} is out of range"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcp_core::RandomVariant;

    #[test]
    fn full_spec_parses() {
        let spec = parse_sweep_spec(
            r#"{
                "label": "study",
                "n": [13, 31], "b": [26], "r": [3], "s": [2], "k": [3, 4],
                "strategies": ["combo", "simple:1", "random:9"],
                "adversaries": [
                    {"kind": "exhaustive", "budget": 1000},
                    {"kind": "auto", "exact_budget": 500, "restarts": 2}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.label, "study");
        assert_eq!(spec.grid.n, vec![13, 31]);
        assert_eq!(spec.grid.k, vec![3, 4]);
        assert_eq!(spec.strategies.len(), 3);
        assert_eq!(
            spec.strategies[2],
            StrategyKind::Random {
                seed: 9,
                variant: RandomVariant::LoadBalanced
            }
        );
        assert_eq!(
            spec.adversaries[0],
            AdversarySpec::Exhaustive { budget: 1000 }
        );
        assert_eq!(
            spec.adversaries[1],
            AdversarySpec::Auto {
                exact_budget: 500,
                restarts: 2,
                max_steps: 200
            }
        );
        // 2 n-values × 1 b × 1 r × 1 s × 2 k × 3 strategies × 2 adversaries.
        assert_eq!(spec.cells().len(), 24);
    }

    #[test]
    fn defaults_fill_in() {
        let spec = parse_sweep_spec(r#"{"strategies": ["ring"]}"#).unwrap();
        assert_eq!(spec.label, "sweep");
        assert!(spec.grid.n.is_empty());
        assert_eq!(spec.adversaries, vec![AdversarySpec::default()]);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(parse_sweep_spec("not json").is_err());
        assert!(parse_sweep_spec(r#"{"n": "13"}"#).is_err());
        assert!(parse_sweep_spec(r#"{"n": [-1]}"#).is_err());
        assert!(parse_sweep_spec(r#"{"n": [99999999]}"#).is_err());
        assert!(parse_sweep_spec(r#"{"strategies": ["warp-drive"]}"#).is_err());
        assert!(parse_sweep_spec(r#"{"adversaries": [{"kind": "psychic"}]}"#).is_err());
        assert!(parse_sweep_spec(r#"{"adversaries": [{"budget": 5}]}"#).is_err());
    }
}
