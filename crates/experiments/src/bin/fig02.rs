//! Fig. 2 reproduction: `Avail(π) − lbAvail_si(x, λ)` for concrete
//! `Simple(1, λ)` placements at `n = 71`, `r = 3` (STS(69)-backed, as in
//! the paper), across `b ∈ {600 … 9600}`, `s ∈ {2, 3}`, `k ∈ {s̄ … 5}`.
//!
//! `Avail(π)` is measured by the worst-case adversary: exact
//! branch-and-bound where the search completes within budget (all `k ≤ 4`
//! cases; many `k = 5` ones), steepest-ascent local search otherwise — the
//! `exact` column records which. A heuristic adversary can only
//! *overestimate* `Avail`, so heuristic gaps are upper bounds.
//!
//! The whole figure is one `SweepSpec`: the `(b, s, k)` grid fans out
//! across all cores through the parallel sweep subsystem (invalid
//! combinations such as `k < s` drop out during cell enumeration), each
//! cell running the unified plan → build → attack pipeline with the
//! exact-with-fallback adversary ladder.

use wcp_adversary::SweepAdversary;
use wcp_core::sweep::{sweep_with, AdversarySpec, SweepOptions, SweepSpec};
use wcp_core::StrategyKind;
use wcp_sim::{csv_safe, results_dir, Csv, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let b_values: &[u64] = if quick {
        &[600, 2400]
    } else {
        &[600, 1200, 2400, 4800, 9600]
    };

    let mut spec = SweepSpec::new("fig02");
    spec.grid.n = vec![71];
    spec.grid.b = b_values.to_vec();
    spec.grid.r = vec![3];
    spec.grid.s = vec![2, 3];
    spec.grid.k = vec![2, 3, 4, 5];
    spec.strategies = vec![StrategyKind::Simple { x: 1 }];
    spec.adversaries = vec![AdversarySpec::Auto {
        // ~exact through k = 4; k = 5 usually completes thanks to the
        // incumbent-seeded bound, else LS takes over.
        exact_budget: 3_000_000,
        restarts: 4,
        max_steps: 200,
    }];

    let records = sweep_with(&spec, &SweepOptions::default(), SweepAdversary::new);

    let mut table = Table::new(
        [
            "b", "s", "k", "strategy", "Avail", "lbAvail", "gap", "exact",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.title("Fig. 2: Avail(pi) - lbAvail_si(x=1, lambda) for n=71, r=3 (STS(69))");
    let mut csv = Csv::new(
        results_dir().join("fig02.csv"),
        &[
            "b", "s", "k", "strategy", "avail", "lb_avail", "gap", "exact",
        ],
    );
    for record in &records {
        let report = record
            .outcome
            .as_ref()
            .expect("STS(69) slot is constructible with capacity for b");
        let gap = report.measured_availability as i64 - report.lower_bound;
        let row = [
            record.cell.params.b().to_string(),
            record.cell.params.s().to_string(),
            record.cell.params.k().to_string(),
            csv_safe(&report.strategy),
            report.measured_availability.to_string(),
            report.lower_bound.to_string(),
            gap.to_string(),
            report.exact.to_string(),
        ];
        table.row(row.to_vec());
        csv.row(&row);
    }
    println!("{}", table.render());
    csv.write().expect("write CSV");
    println!("wrote {}", csv.path().display());
    println!(
        "\nPaper shape: gaps are small (0–25 objects), grow with b at fixed s, and\n\
         are larger for s = 3 than s = 2 at the same k."
    );
}
