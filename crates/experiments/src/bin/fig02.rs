//! Fig. 2 reproduction: `Avail(π) − lbAvail_si(x, λ)` for concrete
//! `Simple(1, λ)` placements at `n = 71`, `r = 3` (STS(69)-backed, as in
//! the paper), across `b ∈ {600 … 9600}`, `s ∈ {2, 3}`, `k ∈ {s̄ … 5}`.
//!
//! `Avail(π)` is measured by the worst-case adversary: exact
//! branch-and-bound where the search completes within budget (all `k ≤ 4`
//! cases; many `k = 5` ones), steepest-ascent local search otherwise — the
//! `exact` column records which. A heuristic adversary can only
//! *overestimate* `Avail`, so heuristic gaps are upper bounds.
//!
//! Every `(b, s, k)` point runs through the unified `Engine` pipeline
//! with the exact-with-fallback adversary plugged in as its attacker;
//! the strategy column carries the planned `λ`.

use wcp_adversary::AdversaryConfig;
use wcp_core::{Engine, PlannerContext, StrategyKind, SystemParams};
use wcp_sim::{results_dir, Csv, Table};

fn main() {
    let mut table = Table::new(
        [
            "b", "s", "k", "strategy", "Avail", "lbAvail", "gap", "exact",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.title("Fig. 2: Avail(pi) - lbAvail_si(x=1, lambda) for n=71, r=3 (STS(69))");
    let mut csv = Csv::new(
        results_dir().join("fig02.csv"),
        &[
            "b", "s", "k", "strategy", "avail", "lb_avail", "gap", "exact",
        ],
    );

    let kind = StrategyKind::Simple { x: 1 };
    let ctx = PlannerContext::default();
    for b in [600u64, 1200, 2400, 4800, 9600] {
        // The plan depends only on b (x = 1, minimal λ); the s/k sweep
        // re-evaluates the same planned strategy.
        let params_any_s = SystemParams::new(71, b, 3, 2, 2).expect("valid");
        let strategy = kind
            .plan(&params_any_s, &ctx)
            .expect("STS(69) slot is constructible");
        for s in [2u16, 3] {
            for k in s.max(2)..=5 {
                if k < s {
                    continue;
                }
                let params = SystemParams::new(71, b, 3, s, k).expect("valid");
                let adversary = AdversaryConfig {
                    // ~exact through k = 4; k = 5 usually completes thanks
                    // to the incumbent-seeded bound, else LS takes over.
                    exact_budget: 3_000_000,
                    ..AdversaryConfig::default()
                };
                let report = Engine::with_attacker(params, adversary)
                    .evaluate_strategy(strategy.as_ref())
                    .expect("capacity planned for b");
                let gap = report.measured_availability as i64 - report.lower_bound;
                let row = [
                    b.to_string(),
                    s.to_string(),
                    k.to_string(),
                    report.strategy.clone(),
                    report.measured_availability.to_string(),
                    report.lower_bound.to_string(),
                    gap.to_string(),
                    report.exact.to_string(),
                ];
                table.row(row.to_vec());
                csv.row(&row);
            }
        }
    }
    println!("{}", table.render());
    csv.write().expect("write CSV");
    println!("wrote {}", csv.path().display());
    println!(
        "\nPaper shape: gaps are small (0–25 objects), grow with b at fixed s, and\n\
         are larger for s = 3 than s = 2 at the same k."
    );
}
