//! Fig. 2 reproduction: `Avail(π) − lbAvail_si(x, λ)` for concrete
//! `Simple(1, λ)` placements at `n = 71`, `r = 3` (STS(69)-backed, as in
//! the paper), across `b ∈ {600 … 9600}`, `s ∈ {2, 3}`, `k ∈ {s̄ … 5}`.
//!
//! `Avail(π)` is measured by the worst-case adversary: exact
//! branch-and-bound where the search completes within budget (all `k ≤ 4`
//! cases; many `k = 5` ones), steepest-ascent local search otherwise — the
//! `exact` column records which. A heuristic adversary can only
//! *overestimate* `Avail`, so heuristic gaps are upper bounds.

use wcp_adversary::{worst_case_failures, AdversaryConfig};
use wcp_core::{SimpleStrategy, SystemParams};
use wcp_designs::registry::RegistryConfig;
use wcp_sim::{results_dir, Csv, Table};

fn main() {
    let mut table = Table::new(
        ["b", "s", "k", "lambda", "Avail", "lbAvail", "gap", "exact"]
            .map(String::from)
            .to_vec(),
    );
    table.title("Fig. 2: Avail(pi) - lbAvail_si(x=1, lambda) for n=71, r=3 (STS(69))");
    let mut csv = Csv::new(
        results_dir().join("fig02.csv"),
        &["b", "s", "k", "lambda", "avail", "lb_avail", "gap", "exact"],
    );

    let registry = RegistryConfig::default();
    for b in [600u64, 1200, 2400, 4800, 9600] {
        // Strategy depends only on b (x = 1, minimal λ).
        let params_any_s = SystemParams::new(71, b, 3, 2, 2).expect("valid");
        let strategy = SimpleStrategy::plan_constructive(1, &params_any_s, &registry)
            .expect("STS(69) slot is constructible");
        let placement = strategy.build(b).expect("capacity planned for b");
        for s in [2u16, 3] {
            for k in s.max(2)..=5 {
                if k < s {
                    continue;
                }
                let config = AdversaryConfig {
                    // ~exact through k = 4; k = 5 usually completes thanks
                    // to the incumbent-seeded bound, else LS takes over.
                    exact_budget: 3_000_000,
                    ..AdversaryConfig::default()
                };
                let wc = worst_case_failures(&placement, s, k, &config);
                let avail = b - wc.failed;
                let lb = strategy.lower_bound(b, k, s);
                let gap = avail as i64 - lb;
                table.row(vec![
                    b.to_string(),
                    s.to_string(),
                    k.to_string(),
                    strategy.lambda().to_string(),
                    avail.to_string(),
                    lb.to_string(),
                    gap.to_string(),
                    wc.exact.to_string(),
                ]);
                csv.row(&[
                    b.to_string(),
                    s.to_string(),
                    k.to_string(),
                    strategy.lambda().to_string(),
                    avail.to_string(),
                    lb.to_string(),
                    gap.to_string(),
                    wc.exact.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());
    csv.write().expect("write CSV");
    println!("wrote {}", csv.path().display());
    println!(
        "\nPaper shape: gaps are small (0–25 objects), grow with b at fixed s, and\n\
         are larger for s = 3 than s = 2 at the same k."
    );
}
