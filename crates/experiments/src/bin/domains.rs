//! `domains` — availability under hierarchical failure domains.
//!
//! The domain counterpart of `sweep`: the requested rack fan-outs
//! become a [`TopologyAxis`] on a [`SweepSpec`] (seeded zone → rack →
//! node trees via `wcp_sim::topo`), the spec enumerates the cells, and
//! this binary plans every cell's strategy *against its topology* and
//! attacks the resulting placement twice — with the paper's per-node adversary and with the
//! domain adversary that spends its budget on whole racks/zones. A
//! third column re-attacks after `repair_domain_collisions`, measuring
//! how much of the gap topology-aware post-processing recovers for
//! topology-oblivious strategies. Summaries go to CSV; per-evaluation
//! records — embedding the exact topology, the strategy spec and the
//! ladder's availability certificate — stream to JSON-lines for
//! `wcp-verify`.
//!
//! ```text
//! domains --racks 4,8,12 --rack-size 6 --strategies combo,ring,random,domain-spread
//! domains --zones 2 --jitter 1      # two-level tree, irregular racks
//! domains --quick                   # small smoke configuration (used by CI)
//! ```

use std::process::ExitCode;
use wcp_adversary::{AdversaryConfig, DomainAttacker, ScratchAdversary};
use wcp_core::engine::Attacker;
use wcp_core::sweep::{SweepSpec, TopologyAxis};
use wcp_core::{
    repair_domain_collisions, Engine, Parallelism, PlannerContext, StrategyKind, SystemParams,
    Topology,
};
use wcp_sim::json::Value;
use wcp_sim::record::Record;
use wcp_sim::{csv_safe, results_dir, Csv, JsonLines, Table};

fn usage() -> String {
    concat!(
        "usage: domains [--quick] [--racks LIST] [--rack-size N] [--zones N]\n",
        "               [--jitter N] [--b N] [--r N] [--s N] [--k N]\n",
        "               [--strategies LIST] [--seed N] [--csv PATH] [--json PATH]\n",
        "\n",
        "For every rack count, generates a seeded failure-domain topology\n",
        "(n = racks x rack-size nodes, optionally grouped into --zones and\n",
        "jittered by --jitter), plans each strategy against it, and attacks\n",
        "the placement with the per-node adversary, the domain adversary,\n",
        "and the domain adversary after collision repair. LISTs are comma\n",
        "separated; strategy specs as for `sweep` (combo, ring, group,\n",
        "adaptive, domain-spread, simple:<x>, random[:<seed>], ...).\n",
    )
    .to_string()
}

struct Cli {
    racks: Vec<u16>,
    rack_size: u16,
    zones: u16,
    jitter: u16,
    b: u64,
    r: u16,
    s: u16,
    k: u16,
    strategies: Vec<StrategyKind>,
    seed: u64,
    csv_path: Option<String>,
    json_path: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        racks: vec![4, 8, 12],
        rack_size: 6,
        zones: 0,
        jitter: 0,
        b: 600,
        r: 3,
        s: 2,
        k: 3,
        strategies: vec![
            StrategyKind::Combo,
            StrategyKind::Ring,
            StrategyKind::parse_spec("random").expect("builtin spec"),
            StrategyKind::DomainSpread,
        ],
        seed: 0,
        csv_path: None,
        json_path: None,
    };
    let mut quick = false;
    let mut have_grid = false;
    let mut have_k = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("invalid {flag} value '{raw}'"))
        }
        match arg.as_str() {
            "--quick" => quick = true,
            "--racks" => {
                cli.racks = value("--racks")?
                    .split(',')
                    .filter(|part| !part.is_empty())
                    .map(|part| parse_num("--racks", part.trim()))
                    .collect::<Result<_, String>>()?;
                have_grid = true;
            }
            "--rack-size" => {
                cli.rack_size = parse_num("--rack-size", value("--rack-size")?)?;
                have_grid = true;
            }
            "--zones" => cli.zones = parse_num("--zones", value("--zones")?)?,
            "--jitter" => cli.jitter = parse_num("--jitter", value("--jitter")?)?,
            "--b" => {
                cli.b = parse_num("--b", value("--b")?)?;
                have_grid = true;
            }
            "--r" => cli.r = parse_num("--r", value("--r")?)?,
            "--s" => cli.s = parse_num("--s", value("--s")?)?,
            "--k" => {
                cli.k = parse_num("--k", value("--k")?)?;
                have_k = true;
            }
            "--seed" => cli.seed = parse_num("--seed", value("--seed")?)?,
            "--strategies" => {
                cli.strategies = value("--strategies")?
                    .split(',')
                    .filter(|part| !part.is_empty())
                    .map(|part| StrategyKind::parse_spec(part.trim()).map_err(|e| e.to_string()))
                    .collect::<Result<_, String>>()?;
            }
            "--csv" => cli.csv_path = Some(value("--csv")?.clone()),
            "--json" => cli.json_path = Some(value("--json")?.clone()),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    // The CI smoke configuration — only when no grid of the user's own
    // was given (explicit flags win, as in the sweep/churn binaries).
    if quick && !have_grid {
        cli.racks = vec![3, 4];
        cli.rack_size = 4;
        cli.b = 24;
        if !have_k {
            cli.k = 2;
        }
    }
    if cli.strategies.is_empty() {
        return Err(format!("no strategies selected\n\n{}", usage()));
    }
    if cli.rack_size == 0 || cli.racks.contains(&0) {
        return Err("rack counts and --rack-size must be positive".to_string());
    }
    Ok(cli)
}

/// The topology as a JSONL-embeddable object: the exact bottom-up
/// parent maps, so `wcp-verify` can rebuild it even under jitter.
fn topology_value(topo: &Topology) -> Value {
    let levels = topo
        .parent_maps()
        .iter()
        .map(|map| Value::Array(map.iter().map(|&p| Value::Num(f64::from(p))).collect()))
        .collect();
    Value::Object(vec![("maps".to_string(), Value::Array(levels))])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let header = [
        "racks",
        "zones",
        "n",
        "strategy",
        "node_avail",
        "node_exact",
        "domain_avail",
        "domain_exact",
        "repaired_domain_avail",
        "repair_moved",
    ];
    let mut table = Table::new(header.map(String::from).to_vec());
    table.title(format!(
        "domains: b={} r={} s={} k={} rack-size={} jitter={}",
        cli.b, cli.r, cli.s, cli.k, cli.rack_size, cli.jitter
    ));
    let csv_path = cli
        .csv_path
        .clone()
        .map_or_else(|| results_dir().join("domains.csv"), Into::into);
    let json_path = cli
        .json_path
        .clone()
        .map_or_else(|| results_dir().join("domains.jsonl"), Into::into);
    let mut csv = Csv::new(csv_path, &header);
    let mut jsonl = JsonLines::new(json_path);

    // The rack/zone grid is a SweepSpec axis: the spec owns topology
    // generation and canonical cell order (points outermost, strategies
    // inner); this binary keeps only its bespoke three-adversary
    // evaluation per cell.
    let axis = TopologyAxis {
        label: "domains".to_string(),
        racks: cli.racks.clone(),
        rack_size: cli.rack_size,
        zones: cli.zones,
        jitter: cli.jitter,
        seed_index: cli.seed,
    };
    let mut spec = SweepSpec::new("domains");
    spec.grid.b = vec![cli.b];
    spec.grid.r = vec![cli.r];
    spec.grid.s = vec![cli.s];
    spec.grid.k = vec![cli.k];
    spec.strategies = cli.strategies.clone();
    spec.topology = Some(axis.clone());
    // Validate up front: `cells()` skips what it cannot build, but this
    // binary owes the user a reason and a non-zero exit.
    let points = match axis.expand() {
        Ok(points) => points,
        Err(msg) => {
            eprintln!("cannot build topologies: {msg}");
            return ExitCode::FAILURE;
        }
    };
    for point in &points {
        let n = point.topology.num_nodes();
        if let Err(e) = SystemParams::new(n, cli.b, cli.r, cli.s, cli.k) {
            eprintln!(
                "invalid system parameters at {} racks (n={n}): {e}",
                point.racks
            );
            return ExitCode::FAILURE;
        }
    }
    let cells = spec.cells();
    assert_eq!(cells.len(), points.len() * spec.strategies.len());

    for (pi, point) in points.iter().enumerate() {
        let racks = point.racks;
        let topo: &Topology = &point.topology;
        let n = topo.num_nodes();
        let ctx = PlannerContext {
            topology: Some(topo.clone()),
            ..PlannerContext::default()
        };
        // Both ladders honor WCP_THREADS; results are bit-identical at
        // any thread count (the CI determinism matrix diffs this CSV).
        let adv = AdversaryConfig {
            parallelism: Some(Parallelism::from_env()),
            ..AdversaryConfig::default()
        };
        let params = cells[pi * spec.strategies.len()].params;
        let node_engine = Engine::with_attacker(params, ScratchAdversary::new(adv.clone()))
            .with_context(ctx.clone());
        let domain_attacker = DomainAttacker::with_config(topo.clone(), adv);
        let domain_engine =
            Engine::with_attacker(params, domain_attacker.clone()).with_context(ctx.clone());

        for cell in &cells[pi * spec.strategies.len()..(pi + 1) * spec.strategies.len()] {
            let kind = &cell.kind;
            // Timings are zeroed before serialization: the JSONL must be
            // byte-identical across thread counts (the CI determinism
            // matrix diffs it), and wall-clock telemetry is not.
            let node = match node_engine.evaluate(kind) {
                Ok(mut report) => {
                    report.timings = wcp_core::engine::Timings::default();
                    report
                }
                Err(e) => {
                    eprintln!("{} at {racks} racks (node adversary): {e}", kind.label());
                    return ExitCode::FAILURE;
                }
            };
            let domain = match domain_engine.evaluate(kind) {
                Ok(mut report) => {
                    report.timings = wcp_core::engine::Timings::default();
                    report
                }
                Err(e) => {
                    eprintln!("{} at {racks} racks (domain adversary): {e}", kind.label());
                    return ExitCode::FAILURE;
                }
            };
            // The repair column: the same strategy's placement after
            // collision repair, under the domain adversary.
            let (repaired_avail, repair_moved, repaired_cert) = match kind
                .plan(&params, &ctx)
                .and_then(|strategy| strategy.build(&params))
                .and_then(|placement| repair_domain_collisions(&placement, topo))
            {
                Ok((repaired, moved)) => {
                    let outcome = domain_attacker.attack(&repaired, cli.s, cli.k);
                    (cli.b - outcome.failed, moved, outcome.certificate)
                }
                Err(e) => {
                    eprintln!("{} at {racks} racks (repair): {e}", kind.label());
                    return ExitCode::FAILURE;
                }
            };
            // One record per adversary column; the topology rides along
            // so `wcp-verify` can rebuild placements and check domain
            // certificates against the exact failure-unit tree. The
            // repaired placement is not spec-rebuildable, so its record
            // carries the certificate alone.
            let topo_value = topology_value(topo);
            for (adversary, report) in [("node", &node), ("domain", &domain)] {
                let record = Record::new("domains")
                    .strategy(kind.label())
                    .spec(kind.spec())
                    .adversary(adversary)
                    .extra_u64("racks", u64::from(racks))
                    .extra_u64("zones", u64::from(point.zones))
                    .topology(topo_value.clone());
                match record.report_json(&report.to_json()) {
                    Ok(r) => {
                        jsonl.record(r.to_json());
                    }
                    Err(e) => {
                        eprintln!("domains report at {racks} racks is unrenderable: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let mut repaired_record = Record::new("domains")
                .strategy(kind.label())
                .adversary("domain-repaired")
                .extra_u64("racks", u64::from(racks))
                .extra_u64("zones", u64::from(point.zones))
                .topology(topo_value);
            if let Some(cert) = &repaired_cert {
                repaired_record = match repaired_record.certificate_json(&cert.to_json()) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("repaired certificate at {racks} racks is unrenderable: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            jsonl.record(repaired_record.to_json());
            let row = vec![
                racks.to_string(),
                point.zones.to_string(),
                n.to_string(),
                csv_safe(&kind.label()),
                node.measured_availability.to_string(),
                node.exact.to_string(),
                domain.measured_availability.to_string(),
                domain.exact.to_string(),
                repaired_avail.to_string(),
                repair_moved.to_string(),
            ];
            table.row(row.clone());
            csv.row(&row);
        }
    }

    println!("{}", table.render());
    if let Err(e) = csv.write() {
        eprintln!("cannot write {}: {e}", csv.path().display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = jsonl.write() {
        eprintln!("cannot write {}: {e}", jsonl.path().display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", csv.path().display());
    println!(
        "wrote {} ({} certified records)",
        jsonl.path().display(),
        jsonl.len()
    );
    ExitCode::SUCCESS
}
