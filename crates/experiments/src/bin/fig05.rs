//! Fig. 5 reproduction: CDFs of the capacity gap achievable with up to
//! `m = 3` chunks of Steiner (μ = 1) designs, over system sizes
//! `n ∈ [50, 800]`, for `r ∈ {2 … 5}` and each `x ∈ [r]`.
//!
//! The capacity gap at `n` is `1 − achieved/ideal` where ideal is
//! `⌊C(n, x+1)/C(r, x+1)⌋` (Lemma 1) and achieved is the best sum of
//! chunk capacities over admissible sizes (Observation 2), computed by
//! one knapsack DP per `(r, x)`. The existence oracle is
//! `wcp_designs::catalog` (resolved spectra + known families — see
//! DESIGN.md §3 for the handful of curated lists).

use wcp_designs::catalog::steiner_sizes;
use wcp_designs::chunking::{capacity_profile, ideal_capacity};
use wcp_sim::{results_dir, Csv, Table};

const N_LO: u16 = 50;
const N_HI: u16 = 800;
const M: usize = 3;

fn main() {
    let mut csv = Csv::new(results_dir().join("fig05.csv"), &["r", "x", "n", "gap"]);
    let mut table = Table::new(
        [
            "r",
            "x",
            "gap<=0.01",
            "<=0.05",
            "<=0.10",
            "<=0.25",
            "<=0.50",
            "<=0.99",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.title(format!(
        "Fig. 5: fraction of n in [{N_LO},{N_HI}] with capacity gap <= g (m <= {M} chunks, mu = 1)"
    ));

    for r in 2u16..=5 {
        for x in 0..r {
            let t = x + 1;
            let sizes = steiner_sizes(t, r, r, N_HI);
            let profile = capacity_profile(N_HI, r, t, M, &sizes, 1);
            let mut gaps = Vec::new();
            for n in N_LO..=N_HI {
                let ideal = ideal_capacity(t, r, n, 1);
                let gap = if ideal == 0 {
                    0.0
                } else {
                    1.0 - profile[n as usize] as f64 / ideal as f64
                };
                gaps.push(gap);
                csv.row(&[
                    r.to_string(),
                    x.to_string(),
                    n.to_string(),
                    format!("{gap:.6}"),
                ]);
            }
            let frac_le = |g: f64| -> String {
                let c = gaps.iter().filter(|&&v| v <= g).count();
                format!("{:.3}", c as f64 / gaps.len() as f64)
            };
            table.row(vec![
                r.to_string(),
                x.to_string(),
                frac_le(0.01),
                frac_le(0.05),
                frac_le(0.10),
                frac_le(0.25),
                frac_le(0.50),
                frac_le(0.99),
            ]);
        }
    }
    println!("{}", table.render());
    csv.write().expect("write CSV");
    println!("wrote {}", csv.path().display());
    println!(
        "\nPaper shape: for r in {{2,3,4}} nearly all system sizes reach a very small\n\
         gap at every x, while r = 5 with x in {{2,3}} admits good constructions for\n\
         only a small fraction of sizes (the sparse 3-(v,5,1)/4-(v,5,1) spectra)."
    );
}
